//! # saspgemm — Sparsity-Aware Distributed-Memory SpGEMM
//!
//! A from-scratch Rust reproduction of *"A Sparsity-Aware Distributed-Memory
//! Algorithm for Sparse-Sparse Matrix Multiplication"* (Hong & Buluç, SC 2024,
//! arXiv:2408.14558).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sparse`] — sparse-matrix substrate: COO/CSC/CSR/DCSC storage, heap-,
//!   hash- and SPA-based local SpGEMM kernels with a hybrid dispatcher,
//!   semirings, synthetic dataset generators, Matrix Market I/O.
//! * [`mpisim`] — simulated distributed-memory runtime: rank threads,
//!   MPI-style collectives, passive-target RDMA windows, exact communication
//!   accounting and an α–β network cost model; typed failures plus
//!   `run_recoverable` restart-on-failure execution under a `RetryPolicy`.
//! * [`partition`] — multilevel k-way graph partitioner (METIS-class) and
//!   random symmetric permutation.
//! * [`dist`] — the paper's contribution: the sparsity-aware 1D SpGEMM
//!   algorithm with block fetching, plus the 2D sparse SUMMA, 3D split, and
//!   outer-product 1D baselines; `SpgemmSession` extends Algorithm 1 across
//!   iterations with a persistent remote-column fetch cache; sparsity-aware
//!   2D/3D variants bring needed-set communication to the grid layouts, and
//!   an `AutoTuner` with collective-free cost analyses picks the cheapest
//!   `(algorithm, fetch mode, grid shape)` per input (`spgemm_auto`).
//! * [`apps`] — evaluation applications: algebraic-multigrid restriction
//!   (MIS-2 aggregation + Galerkin product) and batched betweenness
//!   centrality; triangle counting and Markov clustering as extensions.
//!
//! ## Quickstart
//!
//! ```
//! use saspgemm::prelude::*;
//!
//! // Generate a small structured matrix and square it with the
//! // sparsity-aware 1D algorithm on 4 simulated ranks.
//! let a = sa_sparse::gen::stencil3d(8, 8, 8, true);
//! let universe = Universe::new(4);
//! let per_rank = universe.run(|comm| {
//!     let offsets = uniform_offsets(a.ncols(), comm.size());
//!     let da = DistMat1D::from_global(comm, &a, &offsets);
//!     let db = da.clone();
//!     let (c, report) = spgemm_1d(comm, &da, &db, &Plan1D::default());
//!     (c.into_local_csc(), report)
//! });
//! assert_eq!(per_rank.len(), 4);
//! let (_, report0) = &per_rank[0];
//! // a banded stencil in natural order fetches only a fraction of A
//! assert!(report0.cv_over_mem < 0.5);
//! ```

pub use sa_apps as apps;
pub use sa_dist as dist;
pub use sa_mpisim as mpisim;
pub use sa_partition as partition;
pub use sa_sparse as sparse;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use sa_apps::{bc, galerkin, mcl, mis2, restriction, triangle};
    pub use sa_dist::{
        analyze_1d, spgemm_1d, spgemm_1d_ws, spgemm_auto, spgemm_split_3d_sa, spgemm_summa_2d_sa,
        uniform_offsets, AlgoChoice, AutoTuner, CacheConfig, CheckpointStore, CkptError, DistMat1D,
        DistMat2D, DistMat3D, FetchMode, FileStore, MatSnapshot, MemStore, Plan1D, SessionSnapshot,
        SessionStats, SpgemmReport, SpgemmSession,
    };
    pub use sa_mpisim::{
        Backend, Comm, CommError, CostModel, FaultComm, FaultPlan, Phase, PhaseTimes, RankError,
        RankOutcome, RecoverableJob, RecoveryReport, RetryPolicy, SimComm, ThreadComm, Universe,
    };
    pub use sa_partition::{partition_kway, random_symmetric_perm, Graph, PartitionConfig};
    pub use sa_sparse as sparse_crate;
    pub use sa_sparse::{
        semiring::{OrAnd, PlusTimes},
        Coo, Csc, Csr, Dcsc, Perm, Schedule, SpgemmWorkspace,
    };
    pub use {sa_dist, sa_mpisim, sa_partition, sa_sparse};
}
