//! Sparse-matrix substrate for the sparsity-aware SpGEMM reproduction.
//!
//! Provides the storage formats the paper's implementation relies on
//! (most importantly **DCSC**, the double-compressed sparse column format of
//! Buluç & Gilbert used by CombBLAS), the local SpGEMM kernels (heap-based
//! [Azad et al. 2016], hash-based [Nagasaka et al. 2019], dense-accumulator,
//! and the hybrid dispatcher the paper uses), semiring abstraction, synthetic
//! dataset generators standing in for the SuiteSparse evaluation matrices,
//! and Matrix Market I/O.
//!
//! Module map (paper § in parentheses):
//!
//! * [`coo`] / [`csc`] / [`csr`] / [`dense`] — construction and baseline
//!   storage formats.
//! * [`dcsc`] — the hypersparse format of the 1D slices (§II); includes
//!   [`DcscBuilder`], the ascending-column segment merge the distributed
//!   fetch path assembles `Ã` with (fresh wire data + cached segments).
//! * [`mod@spgemm`] — local kernels and the hybrid dispatcher (§II-B, Fig. 3).
//! * [`semiring`] — plus-times / min-plus / or-and algebras (§II-A).
//! * [`ewise`], [`permute`], [`stats`] — masked elementwise ops, symmetric
//!   permutations (§III-B), and distribution summaries.
//! * [`gen`] — scaled analogs of the Table II evaluation matrices.
//! * [`io`] — Matrix Market round-tripping.

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dcsc;
pub mod dense;
pub mod ewise;
pub mod gen;
pub mod io;
pub mod permute;
pub mod semiring;
pub mod spgemm;
pub mod stats;
pub mod types;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dcsc::{Dcsc, DcscBuilder};
pub use dense::Dense;
pub use permute::Perm;
pub use semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
pub use spgemm::{
    spgemm, spgemm_kernel, spgemm_with, Kernel, Schedule, SpgemmWorkspace, WorkspaceCounters,
};
pub use types::Vidx;
