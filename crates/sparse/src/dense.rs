//! Tiny dense matrix used only as a brute-force oracle in tests and
//! property checks. Column-major, `f64`-like generic.

use crate::csc::Csc;
use crate::semiring::Semiring;
use crate::types::Vidx;

/// Column-major dense matrix; the reference implementation for correctness
/// checks (never used on performance paths).
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>, // column-major
}

impl<T: Copy> Dense<T> {
    pub fn filled(nrows: usize, ncols: usize, fill: T) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![fill; nrows * ncols],
        }
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[j * self.nrows + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[j * self.nrows + i] = v;
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }
}

impl<T: Copy + Send + Sync> Dense<T> {
    /// Densify a CSC matrix over a semiring (structural zeros become
    /// `S::zero()`).
    pub fn from_csc<S: Semiring<T = T>>(m: &Csc<T>) -> Self {
        let mut d = Dense::filled(m.nrows(), m.ncols(), S::zero());
        for (r, c, v) in m.iter() {
            d.set(r as usize, c as usize, v);
        }
        d
    }

    /// Dense triple-loop semiring product — the oracle.
    pub fn matmul<S: Semiring<T = T>>(&self, other: &Dense<T>) -> Dense<T> {
        assert_eq!(self.ncols, other.nrows);
        let mut c = Dense::filled(self.nrows, other.ncols, S::zero());
        for j in 0..other.ncols {
            for k in 0..self.ncols {
                let b = other.get(k, j);
                if S::is_zero(&b) {
                    continue;
                }
                for i in 0..self.nrows {
                    let a = self.get(i, k);
                    if S::is_zero(&a) {
                        continue;
                    }
                    c.set(i, j, S::add(c.get(i, j), S::mul(a, b)));
                }
            }
        }
        c
    }

    /// Sparsify, dropping semiring zeros.
    pub fn to_csc<S: Semiring<T = T>>(&self) -> Csc<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut vals = Vec::new();
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                let v = self.get(i, j);
                if !S::is_zero(&v) {
                    rowidx.push(i as Vidx);
                    vals.push(v);
                }
            }
            colptr[j + 1] = rowidx.len();
        }
        Csc::from_parts(self.nrows, self.ncols, colptr, rowidx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::PlusTimes;

    #[test]
    fn dense_roundtrip() {
        let mut m = Coo::new(3, 2);
        m.push(0, 0, 1.5);
        m.push(2, 1, -2.0);
        let c = m.to_csc();
        let d = Dense::from_csc::<PlusTimes<f64>>(&c);
        assert_eq!(d.to_csc::<PlusTimes<f64>>(), c);
    }

    #[test]
    fn known_product() {
        // [1 2]   [0 1]   [2 1]
        // [0 3] x [1 0] = [3 0]
        let mut a = Dense::filled(2, 2, 0.0);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 1, 3.0);
        let mut b = Dense::filled(2, 2, 0.0);
        b.set(0, 1, 1.0);
        b.set(1, 0, 1.0);
        let c = a.matmul::<PlusTimes<f64>>(&b);
        assert_eq!(c.get(0, 0), 2.0);
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 0), 3.0);
        assert_eq!(c.get(1, 1), 0.0);
    }
}
