//! Double-Compressed Sparse Column (DCSC) — the hypersparse format of
//! Buluç & Gilbert (IPDPS'08) that CombBLAS stores local submatrices in and
//! that the paper's implementation uses (§II).
//!
//! Where CSC spends `O(ncols)` on `colptr` even when almost every column is
//! empty, DCSC stores only the `nzc` nonzero columns: `jc[q]` is the q-th
//! nonzero column id and `cp[q]..cp[q+1]` indexes its entries. After a 1D or
//! 2D split, local submatrices are hypersparse (`nnz ≪ ncols`), which is
//! exactly when this matters.

use crate::csc::Csc;
use crate::types::{vidx, Vidx};

/// A DCSC sparse matrix over element type `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsc<T> {
    nrows: usize,
    ncols: usize,
    /// Ids of columns holding at least one entry, ascending. Length `nzc`.
    jc: Vec<Vidx>,
    /// Entry ranges: column `jc[q]` owns entries `cp[q]..cp[q+1]`.
    /// Length `nzc + 1`.
    cp: Vec<usize>,
    /// Row ids, ascending within each column.
    ir: Vec<Vidx>,
    /// Values, parallel to `ir`.
    num: Vec<T>,
}

impl<T: Copy + Send + Sync> Dcsc<T> {
    /// Assemble from raw parts, checking invariants in debug builds.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        jc: Vec<Vidx>,
        cp: Vec<usize>,
        ir: Vec<Vidx>,
        num: Vec<T>,
    ) -> Self {
        assert_eq!(cp.len(), jc.len() + 1);
        assert_eq!(ir.len(), num.len());
        assert_eq!(*cp.last().unwrap_or(&0), ir.len());
        debug_assert!(jc.windows(2).all(|w| w[0] < w[1]), "jc strictly ascending");
        debug_assert!(jc.iter().all(|&j| (j as usize) < ncols));
        debug_assert!(
            cp.windows(2).all(|w| w[0] < w[1]),
            "no empty columns stored"
        );
        debug_assert!(ir.iter().all(|&r| (r as usize) < nrows));
        Dcsc {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Disassemble into `(jc, cp, ir, num)` — the inverse of
    /// [`Dcsc::from_parts`]. Iterative callers use this to hand a consumed
    /// `Ã`'s buffers back to a workspace pool so the next iteration's
    /// assembly reuses their capacity instead of reallocating.
    pub fn into_parts(self) -> (Vec<Vidx>, Vec<usize>, Vec<Vidx>, Vec<T>) {
        (self.jc, self.cp, self.ir, self.num)
    }

    /// An empty matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Dcsc {
            nrows,
            ncols,
            jc: Vec::new(),
            cp: vec![0],
            ir: Vec::new(),
            num: Vec::new(),
        }
    }

    /// Compress a CSC matrix (dropping empty columns from the index).
    pub fn from_csc(m: &Csc<T>) -> Self {
        let mut jc = Vec::new();
        let mut cp = vec![0usize];
        let mut ir = Vec::with_capacity(m.nnz());
        let mut num = Vec::with_capacity(m.nnz());
        for j in 0..m.ncols() {
            let (rows, vals) = m.col(j);
            if rows.is_empty() {
                continue;
            }
            jc.push(vidx(j));
            ir.extend_from_slice(rows);
            num.extend_from_slice(vals);
            cp.push(ir.len());
        }
        Dcsc {
            nrows: m.nrows(),
            ncols: m.ncols(),
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Expand back to CSC.
    pub fn to_csc(&self) -> Csc<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        for q in 0..self.jc.len() {
            colptr[self.jc[q] as usize + 1] = self.cp[q + 1] - self.cp[q];
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        Csc::from_parts(
            self.nrows,
            self.ncols,
            colptr,
            self.ir.clone(),
            self.num.clone(),
        )
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Number of nonzero columns (`nzc`).
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Nonzero column ids (ascending) — the per-rank contribution to the
    /// paper's allgathered `⃗D` vector.
    pub fn jc(&self) -> &[Vidx] {
        &self.jc
    }

    /// Entry-range prefix over nonzero columns. `cp()[q+1]-cp()[q]` is the
    /// nnz of column `jc()[q]`; this is the "prefix sum of non-zero elements
    /// in the column" replicated on every rank in Algorithm 1.
    pub fn cp(&self) -> &[usize] {
        &self.cp
    }

    /// Row-id array (what the paper exposes through the first MPI window).
    pub fn ir(&self) -> &[Vidx] {
        &self.ir
    }

    /// Value array (the second MPI window).
    pub fn num(&self) -> &[T] {
        &self.num
    }

    /// Column `j` by global id (binary search over `jc`); empty if absent.
    pub fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        match self.jc.binary_search(&vidx(j)) {
            Ok(q) => self.col_by_pos(q),
            Err(_) => (&[], &[]),
        }
    }

    /// Column by position `q` in the nonzero-column list.
    #[inline]
    pub fn col_by_pos(&self, q: usize) -> (&[Vidx], &[T]) {
        let (s, e) = (self.cp[q], self.cp[q + 1]);
        (&self.ir[s..e], &self.num[s..e])
    }

    /// Iterate `(global column id, rows, vals)` over nonzero columns.
    pub fn iter_cols(&self) -> impl Iterator<Item = (Vidx, &[Vidx], &[T])> + '_ {
        (0..self.jc.len()).map(move |q| {
            let (r, v) = self.col_by_pos(q);
            (self.jc[q], r, v)
        })
    }

    /// Dense boolean vector over rows marking which rows hold entries —
    /// `⃗Hᵢ` of Algorithm 1 (computed from the local B slice).
    pub fn row_hit_vector(&self) -> Vec<bool> {
        let mut h = vec![false; self.nrows];
        for &r in &self.ir {
            h[r as usize] = true;
        }
        h
    }

    /// Estimated heap bytes (index + value arrays).
    pub fn mem_bytes(&self) -> usize {
        self.jc.len() * std::mem::size_of::<Vidx>()
            + self.cp.len() * std::mem::size_of::<usize>()
            + self.ir.len() * std::mem::size_of::<Vidx>()
            + self.num.len() * std::mem::size_of::<T>()
    }
}

/// Incremental DCSC assembly from column segments arriving in ascending
/// column order.
///
/// This is the merge primitive the distributed fetch path builds `Ã` with:
/// each appended segment is one column's `(rows, vals)` pair, whether it
/// came off the wire this iteration or out of a fetch cache from an earlier
/// one. Columns must be pushed in strictly ascending global-column order —
/// exactly the order the per-owner fetch plans and cache walks produce.
pub struct DcscBuilder<T> {
    nrows: usize,
    ncols: usize,
    jc: Vec<Vidx>,
    cp: Vec<usize>,
    ir: Vec<Vidx>,
    num: Vec<T>,
}

impl<T: Copy + Send + Sync> DcscBuilder<T> {
    /// Start a builder for an `nrows × ncols` matrix, pre-sizing the column
    /// index for `nzc_cap` columns and the entry arrays for `nnz_cap`
    /// entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nzc_cap: usize, nnz_cap: usize) -> Self {
        let mut cp = Vec::with_capacity(nzc_cap + 1);
        cp.push(0);
        DcscBuilder {
            nrows,
            ncols,
            jc: Vec::with_capacity(nzc_cap),
            cp,
            ir: Vec::with_capacity(nnz_cap),
            num: Vec::with_capacity(nnz_cap),
        }
    }

    /// Start a builder on recycled buffers (cleared here; capacity kept).
    /// Pair with [`Dcsc::into_parts`] to assemble each iteration's `Ã`
    /// into the same allocations.
    pub fn from_buffers(
        nrows: usize,
        ncols: usize,
        mut jc: Vec<Vidx>,
        mut cp: Vec<usize>,
        mut ir: Vec<Vidx>,
        mut num: Vec<T>,
    ) -> Self {
        jc.clear();
        cp.clear();
        cp.push(0);
        ir.clear();
        num.clear();
        DcscBuilder {
            nrows,
            ncols,
            jc,
            cp,
            ir,
            num,
        }
    }

    /// Ensure capacity for `nzc_cap` more columns and `nnz_cap` more
    /// entries (no-op on recycled buffers that are already big enough).
    pub fn reserve(&mut self, nzc_cap: usize, nnz_cap: usize) {
        self.jc.reserve(nzc_cap);
        self.cp.reserve(nzc_cap);
        self.ir.reserve(nnz_cap);
        self.num.reserve(nnz_cap);
    }

    /// Append one column's segment. `col` must be strictly greater than the
    /// previously pushed column; empty segments are skipped (DCSC stores no
    /// empty columns).
    pub fn push_col(&mut self, col: Vidx, rows: &[Vidx], vals: &[T]) {
        debug_assert_eq!(rows.len(), vals.len());
        debug_assert!(
            self.jc.last().is_none_or(|&last| last < col),
            "columns must arrive in ascending order"
        );
        if rows.is_empty() {
            return;
        }
        self.jc.push(col);
        self.ir.extend_from_slice(rows);
        self.num.extend_from_slice(vals);
        self.cp.push(self.ir.len());
    }

    /// Entries appended so far.
    pub fn nnz(&self) -> usize {
        self.ir.len()
    }

    /// Finish into a [`Dcsc`].
    pub fn finish(self) -> Dcsc<T> {
        Dcsc::from_parts(self.nrows, self.ncols, self.jc, self.cp, self.ir, self.num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn hypersparse() -> Csc<f64> {
        // 6x8 with entries only in columns 1, 5, 6
        let mut m = Coo::new(6, 8);
        m.push(2, 1, 1.0);
        m.push(4, 1, 2.0);
        m.push(0, 5, 3.0);
        m.push(5, 6, 4.0);
        m.to_csc()
    }

    #[test]
    fn roundtrip_csc() {
        let c = hypersparse();
        let d = Dcsc::from_csc(&c);
        assert_eq!(d.to_csc(), c);
    }

    #[test]
    fn compression_skips_empty_columns() {
        let d = Dcsc::from_csc(&hypersparse());
        assert_eq!(d.nzc(), 3);
        assert_eq!(d.jc(), &[1, 5, 6]);
        assert_eq!(d.cp(), &[0, 2, 3, 4]);
        assert_eq!(d.nnz(), 4);
    }

    #[test]
    fn col_lookup() {
        let d = Dcsc::from_csc(&hypersparse());
        assert_eq!(d.col(1), (&[2, 4][..], &[1.0, 2.0][..]));
        assert_eq!(d.col(5), (&[0][..], &[3.0][..]));
        assert_eq!(d.col(0), (&[][..], &[][..]), "absent column is empty");
        assert_eq!(d.col(7), (&[][..], &[][..]));
    }

    #[test]
    fn row_hits() {
        let d = Dcsc::from_csc(&hypersparse());
        assert_eq!(
            d.row_hit_vector(),
            vec![true, false, true, false, true, true]
        );
    }

    #[test]
    fn empty() {
        let d: Dcsc<f64> = Dcsc::zeros(4, 4);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.nzc(), 0);
        assert_eq!(d.to_csc().nnz(), 0);
    }

    #[test]
    fn builder_merges_segments_in_order() {
        let c = hypersparse();
        let d = Dcsc::from_csc(&c);
        // rebuild column-by-column from borrowed segments, with empty
        // segments interleaved (they must vanish)
        let mut b = DcscBuilder::with_capacity(6, 8, d.nzc(), d.nnz());
        b.push_col(0, &[], &[]);
        for (j, rows, vals) in d.iter_cols() {
            b.push_col(j, rows, vals);
        }
        b.push_col(7, &[], &[]);
        let rebuilt = b.finish();
        assert_eq!(rebuilt, d);
        assert_eq!(rebuilt.to_csc(), c);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ascending")]
    fn builder_rejects_out_of_order_columns() {
        let mut b: DcscBuilder<f64> = DcscBuilder::with_capacity(4, 4, 2, 2);
        b.push_col(2, &[0], &[1.0]);
        b.push_col(1, &[0], &[1.0]);
    }

    #[test]
    fn mem_smaller_than_csc_when_hypersparse() {
        // 4 entries in a 6x10_000 matrix: DCSC index cost ~ nzc, CSC ~ ncols.
        let mut m = Coo::new(6, 10_000);
        m.push(0, 3, 1.0);
        m.push(1, 5_000, 1.0);
        m.push(2, 9_999, 1.0);
        let c = m.to_csc();
        let d = Dcsc::from_csc(&c);
        assert!(d.mem_bytes() < c.mem_bytes() / 100);
    }
}
