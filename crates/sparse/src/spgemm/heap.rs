//! Heap-based column kernel (Azad et al., SISC 2016).
//!
//! Merges the `nnz(B(:,j))` scaled columns of `A` with a binary min-heap
//! keyed on row index. Work is `O(flops · log nnz(B(:,j)))`; wins when the
//! merge width is small, which after a 1D split it usually is.

use super::ColSource;
use crate::semiring::Semiring;
use crate::types::Vidx;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compute `C(:,j) = ⊕_k A(:,k) ⊗ B(k,j)` by k-way merge.
pub fn heap_column<S: Semiring, A: ColSource<S::T> + ?Sized>(
    a: &A,
    brows: &[Vidx],
    bvals: &[S::T],
    rows_out: &mut Vec<Vidx>,
    vals_out: &mut Vec<S::T>,
) {
    // One cursor per participating A column: (row ids, values, B scalar).
    type Cursor<'c, T> = (&'c [Vidx], &'c [T], T);
    let mut cols: Vec<Cursor<'_, S::T>> = Vec::with_capacity(brows.len());
    for (&k, &bv) in brows.iter().zip(bvals) {
        let (ar, av) = a.col(k as usize);
        if !ar.is_empty() {
            cols.push((ar, av, bv));
        }
    }
    // Heap of (row, source column position); cursors advance independently.
    let mut heap: BinaryHeap<Reverse<(Vidx, u32)>> = BinaryHeap::with_capacity(cols.len());
    let mut pos: Vec<u32> = vec![0; cols.len()];
    for (s, &(ar, _, _)) in cols.iter().enumerate() {
        heap.push(Reverse((ar[0], s as u32)));
    }
    while let Some(Reverse((row, src))) = heap.pop() {
        let s = src as usize;
        let (ar, av, scale) = cols[s];
        let p = pos[s] as usize;
        let contrib = S::mul(av[p], scale);
        // Accumulate into the running tail entry if it has the same row.
        match rows_out.last() {
            Some(&last) if last == row => {
                let t = vals_out.len() - 1;
                vals_out[t] = S::add(vals_out[t], contrib);
            }
            _ => {
                // Drop a finished zero-sum entry before starting a new row.
                if let Some(&lastv) = vals_out.last() {
                    if S::is_zero(&lastv) {
                        rows_out.pop();
                        vals_out.pop();
                    }
                }
                rows_out.push(row);
                vals_out.push(contrib);
            }
        }
        pos[s] += 1;
        if (pos[s] as usize) < ar.len() {
            heap.push(Reverse((ar[pos[s] as usize], src)));
        }
    }
    if let Some(&lastv) = vals_out.last() {
        if S::is_zero(&lastv) {
            rows_out.pop();
            vals_out.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use crate::semiring::PlusTimes;

    fn a_matrix() -> Csc<f64> {
        // col0 = rows {0: 1, 2: 2}; col1 = rows {1: 3}; col2 = rows {0: 4, 2: -2}
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(2, 0, 2.0);
        m.push(1, 1, 3.0);
        m.push(0, 2, 4.0);
        m.push(2, 2, -2.0);
        m.to_csc()
    }

    fn run(brows: &[Vidx], bvals: &[f64]) -> (Vec<Vidx>, Vec<f64>) {
        let a = a_matrix();
        let mut r = Vec::new();
        let mut v = Vec::new();
        heap_column::<PlusTimes<f64>, _>(&a, brows, bvals, &mut r, &mut v);
        (r, v)
    }

    #[test]
    fn merges_two_columns() {
        // 1*col0 + 1*col2 = rows {0: 5, 2: 0} — row 2 cancels exactly.
        let (r, v) = run(&[0, 2], &[1.0, 1.0]);
        assert_eq!(r, vec![0]);
        assert_eq!(v, vec![5.0]);
    }

    #[test]
    fn disjoint_columns_interleave_sorted() {
        let (r, v) = run(&[0, 1], &[1.0, 1.0]);
        assert_eq!(r, vec![0, 1, 2]);
        assert_eq!(v, vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn scaling_applies() {
        let (r, v) = run(&[1], &[-2.0]);
        assert_eq!(r, vec![1]);
        assert_eq!(v, vec![-6.0]);
    }

    #[test]
    fn empty_b_column() {
        let (r, v) = run(&[], &[]);
        assert!(r.is_empty() && v.is_empty());
    }

    #[test]
    fn repeated_source_column() {
        // B may reference the same A column twice after merges upstream;
        // kernel treats them as independent merge sources.
        let (r, v) = run(&[0, 0], &[1.0, 1.0]);
        assert_eq!(r, vec![0, 2]);
        assert_eq!(v, vec![2.0, 4.0]);
    }
}
