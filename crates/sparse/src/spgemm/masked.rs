//! Masked SpGEMM: `C = (A·B) ⊙ M` computed without materializing `A·B`.
//!
//! The triangle-counting application (§I's cited 1D use case) only needs
//! output entries on the mask's pattern; restricting the accumulation to
//! `M`'s positions cuts both work and memory. Implemented as a
//! gather-style kernel: for each mask entry `(i, j)`, accumulate
//! `Σ_k A(i,k)·B(k,j)` only when the hybrid estimate says the mask is much
//! smaller than the full output; otherwise multiply-then-intersect wins.

use super::ColSource;
use crate::csc::Csc;
use crate::ewise::ewise_mul;
use crate::semiring::Semiring;
use crate::types::Vidx;
use rayon::prelude::*;

/// Compute `C = (A·B) ⊙ pattern(M)` — values come from the product, the
/// mask only selects positions.
pub fn spgemm_masked<S, A, B, T2>(a: &A, b: &B, mask: &Csc<T2>) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
    T2: Copy + Send + Sync,
{
    assert_eq!(a.ncols(), b.nrows());
    assert_eq!(mask.nrows(), a.nrows());
    assert_eq!(mask.ncols(), b.ncols());
    // Heuristic: if the mask is dense relative to the estimated output,
    // the plain multiply + intersect is cheaper than per-entry gathers.
    let ub = super::symbolic::upper_bound_flops(a, b);
    if (mask.nnz() as u64) * 8 > ub {
        let full = super::spgemm::<S, A, B>(a, b);
        return ewise_mul_pattern::<S, T2>(&full, mask);
    }
    let cols: Vec<(Vec<Vidx>, Vec<S::T>)> = (0..b.ncols())
        .into_par_iter()
        .with_min_len(8)
        .map(|j| {
            let (brows, bvals) = b.col(j);
            let (mrows, _) = mask.col(j);
            let mut rows_out = Vec::new();
            let mut vals_out = Vec::new();
            if mrows.is_empty() || brows.is_empty() {
                return (rows_out, vals_out);
            }
            for &i in mrows {
                // dot of A's row i (implicitly) with B(:, j): walk B's
                // column, binary-search row i in each touched A column.
                let mut acc = S::zero();
                let mut hit = false;
                for (&k, &bv) in brows.iter().zip(bvals) {
                    let (ar, av) = a.col(k as usize);
                    if let Ok(pos) = ar.binary_search(&i) {
                        acc = S::add(acc, S::mul(av[pos], bv));
                        hit = true;
                    }
                }
                if hit && !S::is_zero(&acc) {
                    rows_out.push(i);
                    vals_out.push(acc);
                }
            }
            (rows_out, vals_out)
        })
        .collect();
    let mut colptr = vec![0usize; b.ncols() + 1];
    let mut rowidx = Vec::new();
    let mut vals = Vec::new();
    for (j, (r, v)) in cols.into_iter().enumerate() {
        rowidx.extend(r);
        vals.extend(v);
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(a.nrows(), b.ncols(), colptr, rowidx, vals)
}

/// `A ⊙ pattern(M)` keeping A's values.
fn ewise_mul_pattern<S: Semiring, T2: Copy + Send + Sync>(
    a: &Csc<S::T>,
    mask: &Csc<T2>,
) -> Csc<S::T> {
    // reuse the intersection walk of ewise_mul with a value-preserving map
    let mask_like = mask.map(|_| ());
    let _ = &mask_like;
    // manual intersection to keep S::T values
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    for j in 0..a.ncols() {
        let (ra, va) = a.col(j);
        let (rm, _) = mask.col(j);
        let mut k = 0usize;
        for (&r, &v) in ra.iter().zip(va) {
            while k < rm.len() && rm[k] < r {
                k += 1;
            }
            if k < rm.len() && rm[k] == r {
                rowidx.push(r);
                vals.push(v);
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vals)
}

/// Re-export used by the heuristic fallback (kept crate-private otherwise).
pub(crate) use ewise_mul as _ewise_mul_unused;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::PlusTimes;
    use crate::spgemm::spgemm;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for _ in 0..nnz {
            coo.push(
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(1..5) as f64,
            );
        }
        coo.to_csc_with(|a, _| a)
    }

    #[test]
    fn masked_equals_multiply_then_intersect() {
        for seed in 0..5u64 {
            let a = random(40, 150, seed);
            let b = random(40, 150, seed + 50);
            let mask = random(40, 100, seed + 100);
            let full = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
            let expect = ewise_mul_pattern::<PlusTimes<f64>, f64>(&full, &mask);
            let got = spgemm_masked::<PlusTimes<f64>, _, _, f64>(&a, &b, &mask);
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn sparse_mask_takes_gather_path() {
        // tiny mask forces the gather branch; still exact
        let a = random(60, 400, 9);
        let b = random(60, 400, 10);
        let mut coo = Coo::new(60, 60);
        coo.push(3, 7, 1.0);
        coo.push(10, 7, 1.0);
        coo.push(59, 59, 1.0);
        let mask = coo.to_csc_with(|x, _| x);
        let full = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        let expect = ewise_mul_pattern::<PlusTimes<f64>, f64>(&full, &mask);
        let got = spgemm_masked::<PlusTimes<f64>, _, _, f64>(&a, &b, &mask);
        assert_eq!(got, expect);
        assert!(got.nnz() <= 3);
    }

    #[test]
    fn empty_mask_empty_output() {
        let a = random(20, 60, 11);
        let mask: Csc<f64> = Csc::zeros(20, 20);
        let got = spgemm_masked::<PlusTimes<f64>, _, _, f64>(&a, &a, &mask);
        assert_eq!(got.nnz(), 0);
    }
}
