//! Row-wise (Gustavson) SpGEMM on CSR operands.
//!
//! The hash-kernel paper the local multiply follows (Nagasaka et al., citation \[30\])
//! formulates SpGEMM row-wise: `C(i,:) = ⊕_k A(i,k) ⊗ B(k,:)`. The
//! distributed algorithms in this repository are column-oriented (CSC/DCSC
//! match the 1D column layout), but the row formulation is the natural one
//! for CSR consumers (e.g. PETSc-style row-distributed callers, which the
//! paper names as an integration target); it also serves as an independent
//! oracle for the column kernels in tests.

use crate::csr::Csr;
use crate::semiring::Semiring;
use crate::types::Vidx;
use rayon::prelude::*;

/// Rows per parallel work item (same allocation-churn rationale as the
/// column kernels' chunking).
const ROW_CHUNK: usize = 256;

/// One chunk's output: per-row lengths plus concatenated columns/values.
type ChunkOut<T> = (Vec<u32>, Vec<Vidx>, Vec<T>);

/// Row-wise SpGEMM `C = A·B` over a semiring, CSR in, CSR out.
///
/// Each output row is accumulated with a generation-stamped sparse
/// accumulator sized by `ncols(B)`; rows are produced in sorted column
/// order and explicit zeros created by cancellation are dropped, matching
/// the column kernels' semantics exactly.
pub fn spgemm_rowwise<S: Semiring>(a: &Csr<S::T>, b: &Csr<S::T>) -> Csr<S::T> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "dimension mismatch: A is ..x{}, B is {}x..",
        a.ncols(),
        b.nrows()
    );
    let nrows = a.nrows();
    let ncols = b.ncols();
    let nchunks = nrows.div_ceil(ROW_CHUNK);
    let chunks: Vec<ChunkOut<S::T>> = (0..nchunks)
        .into_par_iter()
        .map_init(
            || (vec![S::zero(); ncols], vec![0u32; ncols], 0u32, Vec::new()),
            |(vals, gen, generation, touched), ci| {
                let i0 = ci * ROW_CHUNK;
                let i1 = ((ci + 1) * ROW_CHUNK).min(nrows);
                let mut lens: Vec<u32> = Vec::with_capacity(i1 - i0);
                // Pre-size outputs from the chunk's flop upper bound (each
                // output row holds at most min(ub, ncols) entries) so the
                // accumulation loop never reallocates.
                let est: usize = (i0..i1)
                    .map(|i| {
                        let (aks, _) = a.row(i);
                        let ub: usize = aks.iter().map(|&k| b.row_nnz(k as usize)).sum();
                        ub.min(ncols)
                    })
                    .sum();
                let mut cols: Vec<Vidx> = Vec::with_capacity(est);
                let mut out: Vec<S::T> = Vec::with_capacity(est);
                for i in i0..i1 {
                    let before = cols.len();
                    spa_len::accumulate_row::<S>(
                        a, b, i, vals, gen, generation, touched, &mut cols, &mut out,
                    );
                    lens.push((cols.len() - before) as u32);
                }
                // Release flop-proportional slack (all chunks are held
                // until stitching; see the column kernel's rationale).
                if cols.capacity() > 2 * cols.len() {
                    cols.shrink_to_fit();
                    out.shrink_to_fit();
                }
                (lens, cols, out)
            },
        )
        .collect();
    let nnz: usize = chunks.iter().map(|c| c.1.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (lens, c, v) in chunks {
        for l in lens {
            rowptr.push(rowptr.last().unwrap() + l as usize);
        }
        colidx.extend_from_slice(&c);
        vals.extend_from_slice(&v);
    }
    Csr::from_parts(nrows, ncols, rowptr, colidx, vals)
}

/// The SPA row accumulation, split out so the kernel body stays readable.
mod spa_len {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_row<S: Semiring>(
        a: &Csr<S::T>,
        b: &Csr<S::T>,
        i: usize,
        vals: &mut [S::T],
        gen: &mut [u32],
        generation: &mut u32,
        touched: &mut Vec<Vidx>,
        cols_out: &mut Vec<Vidx>,
        vals_out: &mut Vec<S::T>,
    ) {
        *generation += 1;
        let g = *generation;
        touched.clear();
        let (aks, avs) = a.row(i);
        for (&k, &av) in aks.iter().zip(avs) {
            let (bjs, bvs) = b.row(k as usize);
            for (&j, &bv) in bjs.iter().zip(bvs) {
                let ju = j as usize;
                let contrib = S::mul(av, bv);
                if gen[ju] == g {
                    vals[ju] = S::add(vals[ju], contrib);
                } else {
                    gen[ju] = g;
                    vals[ju] = contrib;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        for &j in touched.iter() {
            let v = vals[j as usize];
            if !S::is_zero(&v) {
                cols_out.push(j);
                vals_out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use crate::semiring::{MinPlus, OrAnd, PlusTimes};
    use crate::spgemm::spgemm;
    use rand::{Rng, SeedableRng};

    fn random_csc(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Coo::new(nrows, ncols);
        for _ in 0..nnz {
            m.push(
                rng.gen_range(0..nrows as u32),
                rng.gen_range(0..ncols as u32),
                rng.gen_range(-4..5) as f64,
            );
        }
        m.to_csc().filter(|_, _, v| v != 0.0)
    }

    #[test]
    fn rowwise_matches_column_kernels() {
        for seed in 0..5u64 {
            let a = random_csc(35, 28, 140, seed);
            let b = random_csc(28, 31, 130, seed + 50);
            let expect = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
            let got = spgemm_rowwise::<PlusTimes<f64>>(&Csr::from_csc(&a), &Csr::from_csc(&b));
            assert_eq!(got.to_csc(), expect, "seed {seed}");
        }
    }

    #[test]
    fn rowwise_boolean_semiring() {
        let a = random_csc(20, 20, 60, 7).map(|_| true);
        let e = spgemm::<OrAnd, _, _>(&a, &a);
        let got = spgemm_rowwise::<OrAnd>(&Csr::from_csc(&a), &Csr::from_csc(&a));
        assert_eq!(got.to_csc(), e);
    }

    #[test]
    fn rowwise_minplus_shortest_hops() {
        // MinPlus square of an edge-length matrix gives 2-hop distances
        let a = random_csc(15, 15, 40, 9)
            .map(f64::abs)
            .filter(|_, _, v| v > 0.0);
        let e = spgemm::<MinPlus, _, _>(&a, &a);
        let got = spgemm_rowwise::<MinPlus>(&Csr::from_csc(&a), &Csr::from_csc(&a));
        assert_eq!(got.to_csc(), e);
    }

    #[test]
    fn rowwise_cancellation_dropped() {
        let mut ma = Coo::new(1, 2);
        ma.push(0, 0, 1.0);
        ma.push(0, 1, -1.0);
        let mut mb = Coo::new(2, 1);
        mb.push(0, 0, 1.0);
        mb.push(1, 0, 1.0);
        let c = spgemm_rowwise::<PlusTimes<f64>>(
            &Csr::from_csc(&ma.to_csc()),
            &Csr::from_csc(&mb.to_csc()),
        );
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn rowwise_empty_and_rectangular() {
        let a: Csc<f64> = Csc::zeros(4, 3);
        let b: Csc<f64> = Csc::zeros(3, 5);
        let c = spgemm_rowwise::<PlusTimes<f64>>(&Csr::from_csc(&a), &Csr::from_csc(&b));
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (4, 5, 0));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rowwise_dimension_mismatch() {
        let a = random_csc(4, 3, 5, 1);
        let b = random_csc(4, 2, 5, 2);
        let _ = spgemm_rowwise::<PlusTimes<f64>>(&Csr::from_csc(&a), &Csr::from_csc(&b));
    }
}
