//! Symbolic analysis for SpGEMM: flop upper bounds and exact output
//! structure. The upper bound drives the hybrid kernel choice; the exact
//! count verifies estimates in tests and sizes distributed merge buffers.

use super::ColSource;
use crate::semiring::OrAnd;
use crate::types::Vidx;
use rayon::prelude::*;

/// Per-output-column upper-bound flop counts:
/// `ub[j] = Σ_{k ∈ B(:,j)} nnz(A(:,k))`.
pub fn upper_bound_flops_per_col<T, A, B>(a: &A, b: &B) -> Vec<u64>
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
    B: ColSource<T> + ?Sized,
{
    (0..b.ncols())
        .into_par_iter()
        .map(|j| {
            let (brows, _) = b.col(j);
            brows.iter().map(|&k| a.col_nnz(k as usize) as u64).sum()
        })
        .collect()
}

/// Total upper-bound flops of `A·B`.
pub fn upper_bound_flops<T, A, B>(a: &A, b: &B) -> u64
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
    B: ColSource<T> + ?Sized,
{
    upper_bound_flops_per_col(a, b).iter().sum()
}

/// Exact per-column output nnz (structural — ignores numeric cancellation),
/// computed with a boolean accumulation pass.
pub fn exact_output_nnz_per_col<T, A, B>(a: &A, b: &B) -> Vec<u64>
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
    B: ColSource<T> + ?Sized,
{
    let nrows = a.nrows();
    (0..b.ncols())
        .into_par_iter()
        .map_init(
            || (vec![0u32; nrows], 0u32),
            |(stamp, gen), j| {
                *gen += 1;
                let g = *gen;
                let (brows, _) = b.col(j);
                let mut count = 0u64;
                for &k in brows {
                    let (ar, _) = a.col(k as usize);
                    for &r in ar {
                        if stamp[r as usize] != g {
                            stamp[r as usize] = g;
                            count += 1;
                        }
                    }
                }
                count
            },
        )
        .collect()
}

/// The compression factor `flops / nnz(C)` — how much accumulation the
/// multiply does; ≥ 1 structurally.
pub fn compression_ratio<T, A, B>(a: &A, b: &B) -> f64
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
    B: ColSource<T> + ?Sized,
{
    let flops = upper_bound_flops(a, b) as f64;
    let out: u64 = exact_output_nnz_per_col(a, b).iter().sum();
    if out == 0 {
        1.0
    } else {
        flops / out as f64
    }
}

/// Structural product over the boolean semiring (handy oracle).
pub fn symbolic_product<T, A>(a: &A, b: &crate::csc::Csc<T>) -> crate::csc::Csc<bool>
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
{
    // Convert inputs to boolean and reuse the general kernel.
    let ab = csc_pattern_from_source(a);
    let bb = b.map(|_| true);
    super::spgemm::<OrAnd, _, _>(&ab, &bb)
}

fn csc_pattern_from_source<T, A>(a: &A) -> crate::csc::Csc<bool>
where
    T: Copy + Send + Sync,
    A: ColSource<T> + ?Sized,
{
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::new();
    for j in 0..a.ncols() {
        let (r, _) = a.col(j);
        rowidx.extend_from_slice(r);
        colptr[j + 1] = rowidx.len();
    }
    let n = rowidx.len();
    crate::csc::Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vec![true; n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use crate::semiring::PlusTimes;
    use crate::spgemm::spgemm;

    fn mk(seed: u64) -> Csc<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Coo::new(30, 30);
        for _ in 0..120 {
            m.push(rng.gen_range(0..30), rng.gen_range(0..30), 1.0);
        }
        m.to_csc()
    }

    #[test]
    fn upper_bound_dominates_exact() {
        let a = mk(1);
        let b = mk(2);
        let ub = upper_bound_flops_per_col(&a, &b);
        let exact = exact_output_nnz_per_col(&a, &b);
        for (u, e) in ub.iter().zip(&exact) {
            assert!(u >= e, "ub {u} < exact {e}");
        }
    }

    #[test]
    fn exact_matches_real_product_structure() {
        let a = mk(3);
        let b = mk(4);
        let exact = exact_output_nnz_per_col(&a, &b);
        // All values are 1.0 (positive), so no numeric cancellation occurs
        // and the structural count equals the stored count.
        let c = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        let actual: Vec<u64> = (0..c.ncols()).map(|j| c.col_nnz(j) as u64).collect();
        assert_eq!(exact, actual);
    }

    #[test]
    fn flops_total_equals_stats_formula() {
        let a = mk(5);
        let b = mk(6);
        assert_eq!(
            upper_bound_flops(&a, &b),
            crate::stats::spgemm_flops(&a, &b)
        );
    }

    #[test]
    fn compression_ratio_at_least_one() {
        let a = mk(7);
        assert!(compression_ratio(&a, &a) >= 1.0);
    }

    #[test]
    fn symbolic_product_pattern_matches() {
        let a = mk(8);
        let b = mk(9);
        let sym = symbolic_product(&a, &b);
        let num = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        assert_eq!(sym.nnz(), num.nnz());
        for (r, c, _) in num.iter() {
            assert_eq!(sym.get(r as usize, c as usize), Some(true));
        }
    }
}
