//! Work scheduling for the parallel column loop.
//!
//! On the power-law matrices the paper targets, per-output-column flop
//! counts vary by orders of magnitude; splitting `B`'s columns into
//! fixed-width chunks then leaves every thread idle behind the one that
//! drew the hub columns — exactly the rank×thread (`c = p·t`) regime of
//! the paper's Figure 7. [`Schedule::FlopBalanced`] instead cuts the
//! column range by a greedy prefix-sum walk over the symbolic upper-bound
//! flop array (computed once per multiply and reused for hybrid kernel
//! dispatch, hash-table sizing, and output pre-sizing), producing work
//! items of roughly equal flops with a target of
//! `total / (OVERSUBSCRIPTION · threads)` — enough items that dynamic
//! stealing can also absorb estimation error.

use std::ops::Range;

/// Work items per thread the balanced splitter aims for. Oversubscribing
/// 4× keeps the tail short (the last items are small) while the per-item
/// constant cost (one pool take, one stitch entry) stays negligible.
const OVERSUBSCRIPTION: usize = 4;

/// Per-column constant cost added to the upper-bound flops, so long runs
/// of empty or near-empty columns still get split (their wall cost is the
/// per-column bookkeeping, not flops).
const COL_OVERHEAD: usize = 1;

/// How `B`'s columns are grouped into parallel work items.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Fixed-width chunks of the given column count (the pre-scheduling
    /// behaviour was `Fixed(256)`). Kept for A/B benches and as a fallback
    /// for callers that want deterministic item boundaries independent of
    /// thread count.
    Fixed(usize),
    /// Greedy prefix-sum splitting into items of roughly equal upper-bound
    /// flops, targeting `total / (4·threads)` flops per item.
    #[default]
    FlopBalanced,
}

/// Compute work-item boundaries for `ubs.len()` output columns under
/// `schedule` with `threads` workers: `bounds[i]..bounds[i+1]` is item
/// `i`'s column range. `bounds` is cleared first; on return it starts at
/// 0 and ends at `ubs.len()` (a single `[0]` entry for zero columns).
///
/// The schedule never affects results — every column is computed
/// identically whatever item it lands in — only the parallel shape.
pub(crate) fn schedule_bounds_into(
    bounds: &mut Vec<usize>,
    ubs: &[usize],
    schedule: Schedule,
    threads: usize,
) {
    bounds.clear();
    bounds.push(0);
    let ncols = ubs.len();
    match schedule {
        Schedule::Fixed(width) => {
            let width = width.max(1);
            let mut j = width;
            while j < ncols {
                bounds.push(j);
                j += width;
            }
            if ncols > 0 {
                bounds.push(ncols);
            }
        }
        Schedule::FlopBalanced => {
            let total: usize = ubs
                .iter()
                .fold(0usize, |acc, &u| acc.saturating_add(u + COL_OVERHEAD));
            let items = OVERSUBSCRIPTION * threads.max(1);
            let target = (total / items).max(1);
            let mut acc = 0usize;
            for (j, &u) in ubs.iter().enumerate() {
                let cost = u + COL_OVERHEAD;
                // A column heavy enough to fill an item on its own gets
                // isolated: close the running item before it so light
                // neighbours don't queue behind the hub.
                if cost >= target && acc > 0 {
                    bounds.push(j);
                    acc = 0;
                }
                acc += cost;
                if acc >= target && j + 1 < ncols {
                    bounds.push(j + 1);
                    acc = 0;
                }
            }
            if ncols > 0 {
                bounds.push(ncols);
            }
        }
    }
}

/// The item ranges a
/// multiply with this schedule would execute. Exposed so benches and
/// external schedulers can inspect or model the parallel shape (the
/// `sched_compare` bench replays these items to compute makespans).
pub fn schedule_items(ubs: &[usize], schedule: Schedule, threads: usize) -> Vec<Range<usize>> {
    let mut bounds = Vec::new();
    schedule_bounds_into(&mut bounds, ubs, schedule, threads);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(items: &[Range<usize>], ncols: usize) {
        if ncols == 0 {
            assert!(items.is_empty());
            return;
        }
        assert_eq!(items[0].start, 0);
        assert_eq!(items.last().unwrap().end, ncols);
        for w in items.windows(2) {
            assert_eq!(w[0].end, w[1].start, "items must tile the range");
        }
        assert!(items.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn fixed_matches_chunking() {
        let ubs = vec![1usize; 1000];
        let items = schedule_items(&ubs, Schedule::Fixed(256), 4);
        check_partition(&items, 1000);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0], 0..256);
        assert_eq!(items[3], 768..1000);
    }

    #[test]
    fn balanced_splits_uniform_evenly() {
        let ubs = vec![10usize; 800];
        let items = schedule_items(&ubs, Schedule::FlopBalanced, 4);
        check_partition(&items, 800);
        // ~4·threads items of ~equal width
        assert!(items.len() >= 14 && items.len() <= 17, "{}", items.len());
        let widths: Vec<usize> = items.iter().map(|r| r.len()).collect();
        let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
        assert!(max <= min + min / 2 + 1, "uniform widths: {widths:?}");
    }

    #[test]
    fn balanced_isolates_heavy_columns() {
        // one hub column holding ~all the flops must not drag its whole
        // fixed-width chunk onto one thread: it becomes its own item
        let mut ubs = vec![1usize; 512];
        ubs[100] = 1_000_000;
        let items = schedule_items(&ubs, Schedule::FlopBalanced, 4);
        check_partition(&items, 512);
        let hub = items.iter().find(|r| r.contains(&100)).unwrap();
        assert_eq!(hub.len(), 1, "hub column isolated, got {hub:?}");
    }

    #[test]
    fn balanced_splits_empty_runs() {
        // all-empty columns: per-column overhead still gets distributed
        let ubs = vec![0usize; 4096];
        let items = schedule_items(&ubs, Schedule::FlopBalanced, 8);
        check_partition(&items, 4096);
        assert!(items.len() > 8, "empty run must still split");
    }

    #[test]
    fn edge_cases() {
        assert!(schedule_items(&[], Schedule::FlopBalanced, 4).is_empty());
        assert!(schedule_items(&[], Schedule::Fixed(256), 4).is_empty());
        let one = schedule_items(&[7], Schedule::FlopBalanced, 8);
        assert_eq!(one, vec![0..1]);
        // Fixed(0) is clamped, not a panic/livelock
        let items = schedule_items(&[1, 1, 1], Schedule::Fixed(0), 2);
        check_partition(&items, 3);
    }

    #[test]
    fn overflow_safe_totals() {
        let ubs = vec![usize::MAX / 2; 8];
        let items = schedule_items(&ubs, Schedule::FlopBalanced, 2);
        check_partition(&items, 8);
    }
}
