//! Hash-based column kernel (Nagasaka, Matsuoka, Azad, Buluç; ParCo 2019).
//!
//! Accumulates each column's products in an open-addressing linear-probing
//! table keyed by row index, then extracts and sorts the survivors. `O(flops
//! + out·log out)` with small constants; the mid-range workhorse.

use super::ColSource;
use crate::semiring::Semiring;
use crate::types::Vidx;

const EMPTY: Vidx = Vidx::MAX;

/// Reusable open-addressing accumulator. The addressed region is a power
/// of two sized up front from the column's upper-bound flop count, so the
/// probe loop masks (never a modulo) and the table can never fill
/// mid-column (`ub` bounds the distinct keys; load factor stays ≤ 0.5):
/// there is no rehash path at all. Backing storage grows geometrically
/// and is retained across columns; a large table reused for a small
/// column clears (and later scans) only the small column's prefix, so
/// per-column cost tracks that column's `ub`, not the largest column seen.
pub struct HashAcc<T> {
    keys: Vec<Vidx>,
    vals: Vec<T>,
    mask: usize,
    len: usize,
    /// Extraction staging (sorted survivors), reused across columns.
    pairs: Vec<(Vidx, T)>,
}

impl<T: Copy> HashAcc<T> {
    pub fn new() -> Self {
        HashAcc {
            keys: Vec::new(),
            vals: Vec::new(),
            mask: 0,
            len: 0,
            pairs: Vec::new(),
        }
    }

    /// Prepare for up to `expected` insertions (load factor ≤ 0.5): the
    /// addressed prefix becomes `next_power_of_two(2·expected)` slots.
    fn reset(&mut self, expected: usize, zero: T) {
        let cap = (expected.max(4) * 2).next_power_of_two();
        if self.keys.len() < cap {
            self.keys = vec![EMPTY; cap];
            self.vals = vec![zero; cap];
        } else {
            // Reuse the allocation; clear only the prefix we will address.
            for k in &mut self.keys[..cap] {
                *k = EMPTY;
            }
        }
        self.mask = cap - 1;
        self.len = 0;
    }

    /// Multiplicative hash (Fibonacci) — cheap and adequate for row ids.
    #[inline]
    fn slot(&self, key: Vidx) -> usize {
        ((key as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as usize & self.mask
    }
}

impl<T: Copy> Default for HashAcc<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Compute `C(:,j)` by hash accumulation; `ub_flops` sizes the table.
pub fn hash_column<S: Semiring, A: ColSource<S::T> + ?Sized>(
    a: &A,
    brows: &[Vidx],
    bvals: &[S::T],
    ub_flops: usize,
    acc: &mut HashAcc<S::T>,
    rows_out: &mut Vec<Vidx>,
    vals_out: &mut Vec<S::T>,
) {
    acc.reset(ub_flops, S::zero());
    for (&k, &bv) in brows.iter().zip(bvals) {
        let (ar, av) = a.col(k as usize);
        for (&r, &x) in ar.iter().zip(av) {
            let contrib = S::mul(x, bv);
            let mut s = acc.slot(r);
            loop {
                let key = acc.keys[s];
                if key == r {
                    acc.vals[s] = S::add(acc.vals[s], contrib);
                    break;
                }
                if key == EMPTY {
                    acc.keys[s] = r;
                    acc.vals[s] = contrib;
                    acc.len += 1;
                    break;
                }
                s = (s + 1) & acc.mask;
            }
        }
    }
    // Extract (scanning only the addressed prefix), drop zeros, sort by
    // row id. The staging vector lives in the accumulator so repeated
    // columns don't reallocate it.
    let mut pairs = std::mem::take(&mut acc.pairs);
    pairs.clear();
    pairs.reserve(acc.len);
    for (i, &k) in acc.keys[..=acc.mask].iter().enumerate() {
        if k != EMPTY && !S::is_zero(&acc.vals[i]) {
            pairs.push((k, acc.vals[i]));
        }
    }
    pairs.sort_unstable_by_key(|p| p.0);
    rows_out.extend(pairs.iter().map(|p| p.0));
    vals_out.extend(pairs.iter().map(|p| p.1));
    acc.pairs = pairs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use crate::semiring::PlusTimes;

    fn a_matrix() -> Csc<f64> {
        let mut m = Coo::new(4, 3);
        m.push(0, 0, 1.0);
        m.push(3, 0, 2.0);
        m.push(1, 1, 3.0);
        m.push(0, 2, -1.0);
        m.push(3, 2, -2.0);
        m.to_csc()
    }

    #[test]
    fn accumulates_and_sorts() {
        let a = a_matrix();
        let mut acc = HashAcc::new();
        let (mut r, mut v) = (Vec::new(), Vec::new());
        hash_column::<PlusTimes<f64>, _>(&a, &[0, 1], &[2.0, 1.0], 3, &mut acc, &mut r, &mut v);
        assert_eq!(r, vec![0, 1, 3]);
        assert_eq!(v, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn cancellation_dropped() {
        let a = a_matrix();
        let mut acc = HashAcc::new();
        let (mut r, mut v) = (Vec::new(), Vec::new());
        // col0 + col2 cancels both entries exactly... (1-1, 2-2)
        hash_column::<PlusTimes<f64>, _>(&a, &[0, 2], &[1.0, 1.0], 4, &mut acc, &mut r, &mut v);
        assert!(r.is_empty(), "fully cancelled column stores nothing");
    }

    #[test]
    fn reuse_across_columns_is_clean() {
        let a = a_matrix();
        let mut acc = HashAcc::new();
        let (mut r, mut v) = (Vec::new(), Vec::new());
        hash_column::<PlusTimes<f64>, _>(&a, &[0], &[1.0], 2, &mut acc, &mut r, &mut v);
        let first = (r.clone(), v.clone());
        r.clear();
        v.clear();
        hash_column::<PlusTimes<f64>, _>(&a, &[0], &[1.0], 2, &mut acc, &mut r, &mut v);
        assert_eq!((r, v), first, "stale entries must not leak between columns");
    }

    #[test]
    fn large_table_reused_for_small_column_masks_prefix() {
        // Grow the table with a wide column, then run a small column: the
        // addressed prefix shrinks back (mask + 1 slots), stale keys
        // beyond it are never scanned, and results stay exact.
        let n = 1024;
        let mut m = Coo::new(n, 2);
        for i in 0..n as u32 {
            m.push(i, 0, 1.0);
        }
        m.push(3, 1, 5.0);
        m.push(900, 1, 7.0);
        let a = m.to_csc();
        let mut acc = HashAcc::new();
        let (mut r, mut v) = (Vec::new(), Vec::new());
        hash_column::<PlusTimes<f64>, _>(&a, &[0], &[1.0], n, &mut acc, &mut r, &mut v);
        assert_eq!(r.len(), n);
        let grown = acc.keys.len();
        r.clear();
        v.clear();
        hash_column::<PlusTimes<f64>, _>(&a, &[1], &[2.0], 2, &mut acc, &mut r, &mut v);
        assert_eq!(acc.keys.len(), grown, "backing storage is retained");
        assert!(acc.mask + 1 < grown, "small column addresses a prefix");
        assert_eq!(r, vec![3, 900]);
        assert_eq!(v, vec![10.0, 14.0]);
    }

    #[test]
    fn many_collisions_still_correct() {
        // 512 rows hitting a small table exercise probing + growth.
        let n = 512;
        let mut m = Coo::new(n, 2);
        for i in 0..n as u32 {
            m.push(i, 0, 1.0);
            m.push(i, 1, 1.0);
        }
        let a = m.to_csc();
        let mut acc = HashAcc::new();
        let (mut r, mut v) = (Vec::new(), Vec::new());
        hash_column::<PlusTimes<f64>, _>(&a, &[0, 1], &[1.0, 2.0], 2 * n, &mut acc, &mut r, &mut v);
        assert_eq!(r.len(), n);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!(v.iter().all(|&x| x == 3.0));
    }
}
