//! Dense-accumulator ("SPA") column kernel.
//!
//! A generation-stamped dense array over the row dimension: O(flops) with no
//! hashing or heap overhead, at the cost of an `O(nrows)` allocation that the
//! per-thread scratch amortizes. The hybrid dispatcher selects it when a
//! column's flop upper bound is a sizable fraction of `nrows`.

use super::ColSource;
use crate::semiring::Semiring;
use crate::types::Vidx;

/// Compute `C(:,j)` with a dense accumulator.
///
/// `gen`/`generation` implement O(1) clearing: a slot is live only when its
/// stamp equals the current generation, so consecutive columns never touch
/// slots they don't use.
#[allow(clippy::too_many_arguments)]
pub fn spa_column<S: Semiring, A: ColSource<S::T> + ?Sized>(
    a: &A,
    brows: &[Vidx],
    bvals: &[S::T],
    vals: &mut [S::T],
    gen: &mut [u32],
    generation: &mut u32,
    touched: &mut Vec<Vidx>,
    rows_out: &mut Vec<Vidx>,
    vals_out: &mut Vec<S::T>,
) {
    *generation = generation.wrapping_add(1);
    if *generation == 0 {
        // Stamp wrap-around: reset all stamps once every 2^32 columns.
        gen.fill(0);
        *generation = 1;
    }
    let g = *generation;
    touched.clear();
    for (&k, &bv) in brows.iter().zip(bvals) {
        let (ar, av) = a.col(k as usize);
        for (&r, &x) in ar.iter().zip(av) {
            let contrib = S::mul(x, bv);
            let ri = r as usize;
            if gen[ri] == g {
                vals[ri] = S::add(vals[ri], contrib);
            } else {
                gen[ri] = g;
                vals[ri] = contrib;
                touched.push(r);
            }
        }
    }
    touched.sort_unstable();
    for &r in touched.iter() {
        let v = vals[r as usize];
        if !S::is_zero(&v) {
            rows_out.push(r);
            vals_out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::csc::Csc;
    use crate::semiring::PlusTimes;

    fn a_matrix() -> Csc<f64> {
        let mut m = Coo::new(5, 2);
        m.push(0, 0, 1.0);
        m.push(4, 0, 2.0);
        m.push(0, 1, 3.0);
        m.push(2, 1, 4.0);
        m.to_csc()
    }

    type ColOut = (Vec<Vidx>, Vec<f64>);

    fn run_twice() -> (ColOut, ColOut) {
        let a = a_matrix();
        let mut vals = vec![0.0; 5];
        let mut gen = vec![0u32; 5];
        let mut g = 0u32;
        let mut touched = Vec::new();
        let run = |brows: &[Vidx],
                   bvals: &[f64],
                   vals: &mut [f64],
                   gen: &mut [u32],
                   g: &mut u32,
                   touched: &mut Vec<Vidx>| {
            let (mut r, mut v) = (Vec::new(), Vec::new());
            spa_column::<PlusTimes<f64>, _>(
                &a, brows, bvals, vals, gen, g, touched, &mut r, &mut v,
            );
            (r, v)
        };
        let first = run(
            &[0, 1],
            &[1.0, 1.0],
            &mut vals,
            &mut gen,
            &mut g,
            &mut touched,
        );
        let second = run(&[1], &[1.0], &mut vals, &mut gen, &mut g, &mut touched);
        (first, second)
    }

    #[test]
    fn accumulates_sorted() {
        let (first, _) = run_twice();
        assert_eq!(first.0, vec![0, 2, 4]);
        assert_eq!(first.1, vec![4.0, 4.0, 2.0]);
    }

    #[test]
    fn generation_stamps_isolate_columns() {
        let (_, second) = run_twice();
        assert_eq!(second.0, vec![0, 2], "no leakage from prior column");
        assert_eq!(second.1, vec![3.0, 4.0]);
    }
}
