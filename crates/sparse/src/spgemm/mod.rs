//! Local (shared-memory) SpGEMM kernels.
//!
//! The paper's local computation (§II) is "a hybrid version of Heap-based
//! SpGEMM [Azad et al. 2016] and Hash-based SpGEMM [Nagasaka et al. 2019]".
//! We implement both, plus a dense-accumulator (SPA) kernel for very dense
//! output columns, and a per-column [`Kernel::Hybrid`] dispatcher that picks
//! among them from the column's upper-bound flop count — the same policy
//! class CombBLAS' hybrid kernel uses.
//!
//! All kernels are column-by-column: `C(:,j) = ⊕_k A(:,k) ⊗ B(k,j)`, are
//! generic over [`Semiring`]s and over the column source of `A` (CSC or
//! DCSC — the distributed 1D algorithm feeds the fetched `Ã` as DCSC), and
//! parallelize over output columns with Rayon (the per-rank "OpenMP" pool).

mod hash;
mod heap;
pub mod rowwise;
pub mod schedule;
mod spa;
pub mod symbolic;
pub mod workspace;

use crate::csc::Csc;
use crate::dcsc::Dcsc;
use crate::semiring::Semiring;
use crate::types::Vidx;
use rayon::prelude::*;
use workspace::Scratch;

pub use rowwise::spgemm_rowwise;
pub use schedule::{schedule_items, Schedule};
pub use symbolic::{upper_bound_flops, upper_bound_flops_per_col};
pub use workspace::{ChunkBuf, SpgemmWorkspace, WorkspaceCounters};

/// Column access abstraction so kernels run over CSC and DCSC alike.
pub trait ColSource<T>: Sync {
    fn nrows(&self) -> usize;
    fn ncols(&self) -> usize;
    /// (row ids, values) of column `j`; empty slices if the column is empty.
    fn col(&self, j: usize) -> (&[Vidx], &[T]);
    /// nnz of column `j` (cheap; used for flop estimation).
    fn col_nnz(&self, j: usize) -> usize {
        self.col(j).0.len()
    }
}

impl<T: Copy + Send + Sync> ColSource<T> for Csc<T> {
    fn nrows(&self) -> usize {
        Csc::nrows(self)
    }
    fn ncols(&self) -> usize {
        Csc::ncols(self)
    }
    fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        Csc::col(self, j)
    }
    fn col_nnz(&self, j: usize) -> usize {
        Csc::col_nnz(self, j)
    }
}

impl<T: Copy + Send + Sync> ColSource<T> for Dcsc<T> {
    fn nrows(&self) -> usize {
        Dcsc::nrows(self)
    }
    fn ncols(&self) -> usize {
        Dcsc::ncols(self)
    }
    fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        Dcsc::col(self, j)
    }
}

/// Which accumulator a column (or a whole multiply) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Kernel {
    /// k-way merge with a binary heap — cheapest for short columns.
    Heap,
    /// Linear-probing hash accumulator — robust mid-range default.
    Hash,
    /// Dense accumulator (sparse accumulator "SPA") — wins when a column's
    /// flops approach the row dimension.
    Spa,
    /// Per-column choice among the three from the column's upper-bound
    /// flops (the paper's hybrid).
    #[default]
    Hybrid,
}

/// Pick a kernel for one output column given B's column nnz and the
/// upper-bound flop count. Thresholds follow the usual CombBLAS-style
/// heuristics: tiny columns merge cheaply; columns whose accumulation
/// footprint rivals the row dimension go dense; the rest hash.
#[inline]
fn choose_kernel(bcol_nnz: usize, ub_flops: usize, nrows: usize) -> Kernel {
    if bcol_nnz <= 2 || ub_flops <= 64 {
        Kernel::Heap
    } else if ub_flops * 4 >= nrows {
        Kernel::Spa
    } else {
        Kernel::Hash
    }
}

/// Compute one output column into the scratch's `col_rows`/`col_vals`
/// staging (cleared first). `ub` is the column's upper-bound flop count,
/// computed once per multiply by the caller's symbolic pass and shared by
/// the hybrid dispatch, the hash-table sizing, and the output pre-sizing.
fn compute_column<S: Semiring, A: ColSource<S::T> + ?Sized>(
    a: &A,
    brows: &[Vidx],
    bvals: &[S::T],
    kernel: Kernel,
    ub: usize,
    scratch: &mut Scratch<S::T>,
) {
    scratch.col_rows.clear();
    scratch.col_vals.clear();
    if brows.is_empty() {
        return;
    }
    // Single B entry: a scaled copy of one A column, already sorted.
    if brows.len() == 1 {
        let (ar, av) = a.col(brows[0] as usize);
        let b = bvals[0];
        for (&r, &x) in ar.iter().zip(av) {
            let v = S::mul(x, b);
            if !S::is_zero(&v) {
                scratch.col_rows.push(r);
                scratch.col_vals.push(v);
            }
        }
        return;
    }
    let kernel = if kernel == Kernel::Hybrid {
        choose_kernel(brows.len(), ub, a.nrows())
    } else {
        kernel
    };
    match kernel {
        Kernel::Heap => heap::heap_column::<S, A>(
            a,
            brows,
            bvals,
            &mut scratch.col_rows,
            &mut scratch.col_vals,
        ),
        Kernel::Hash => hash::hash_column::<S, A>(
            a,
            brows,
            bvals,
            ub,
            &mut scratch.hash,
            &mut scratch.col_rows,
            &mut scratch.col_vals,
        ),
        Kernel::Spa => {
            // The O(nrows) dense arrays are paid only when a column
            // actually dispatches here (most multiplies never do).
            scratch.ensure_spa(a.nrows(), S::zero());
            spa::spa_column::<S, A>(
                a,
                brows,
                bvals,
                &mut scratch.spa_vals,
                &mut scratch.spa_gen,
                &mut scratch.generation,
                &mut scratch.touched,
                &mut scratch.col_rows,
                &mut scratch.col_vals,
            )
        }
        Kernel::Hybrid => unreachable!("resolved above"),
    }
}

/// General SpGEMM `C = A·B` over a semiring with an explicit kernel choice.
///
/// Runs [`spgemm_with`] under the default flop-balanced schedule with an
/// ephemeral workspace. Parallelizes over B's columns on the current Rayon
/// pool (so calling it inside `pool.install(..)` binds it to a per-rank
/// pool, mirroring MPI+OpenMP). Iterative callers should hold a
/// [`SpgemmWorkspace`] and call [`spgemm_with`] so scratch survives
/// between multiplies.
pub fn spgemm_kernel<S, A, B>(a: &A, b: &B, kernel: Kernel) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
{
    spgemm_with::<S, A, B>(a, b, kernel, Schedule::default(), &SpgemmWorkspace::new())
}

/// General SpGEMM `C = A·B` with explicit kernel, [`Schedule`], and
/// [`SpgemmWorkspace`].
///
/// One symbolic pass computes every output column's upper-bound flop count
/// into a workspace buffer; that single array then drives (1) the work-item
/// boundaries of the schedule, (2) the hybrid per-column kernel dispatch,
/// (3) the hash accumulator's table sizing, and (4) the per-item output
/// pre-sizing (`Σ min(ub, nrows)`), so the hot loop's extends never
/// reallocate. Per-thread scratch, per-item output buffers, and the
/// symbolic arrays are all borrowed from `ws` and returned after the
/// stitch: repeated multiplies through one workspace allocate nothing
/// beyond output growth (see [`SpgemmWorkspace::counters`]).
///
/// The schedule changes only the parallel shape, never the result: output
/// is bit-identical across schedules and thread counts.
pub fn spgemm_with<S, A, B>(
    a: &A,
    b: &B,
    kernel: Kernel,
    schedule: Schedule,
    ws: &SpgemmWorkspace<S::T>,
) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "dimension mismatch: A is ..x{}, B is {}x..",
        a.ncols(),
        b.nrows()
    );
    let ncols = b.ncols();
    let nrows = a.nrows();
    let threads = rayon::current_num_threads();
    // --- symbolic pass: one upper-bound flop count per output column,
    // parallelized over fixed segments when a pool is installed (with a
    // DCSC A every col_nnz is a jc binary search — a serial prefix here
    // would cap the multi-thread speedup the schedule buys). Segment
    // buffers come from the idx pool, so steady state stays alloc-free.
    const SYMBOLIC_SEG: usize = 1024;
    let mut ubs = ws.take_idx();
    ubs.reserve(ncols);
    if threads > 1 && ncols > 2 * SYMBOLIC_SEG {
        let nseg = ncols.div_ceil(SYMBOLIC_SEG);
        let mut segs: Vec<Vec<usize>> = (0..nseg)
            .into_par_iter()
            .map(|si| {
                let (j0, j1) = (si * SYMBOLIC_SEG, ((si + 1) * SYMBOLIC_SEG).min(ncols));
                let mut seg = ws.take_idx();
                seg.reserve(j1 - j0);
                for j in j0..j1 {
                    let (brows, _) = b.col(j);
                    seg.push(brows.iter().map(|&k| a.col_nnz(k as usize)).sum());
                }
                seg
            })
            .collect();
        for seg in segs.drain(..) {
            ubs.extend_from_slice(&seg);
            ws.put_idx(seg);
        }
    } else {
        for j in 0..ncols {
            let (brows, _) = b.col(j);
            ubs.push(brows.iter().map(|&k| a.col_nnz(k as usize)).sum());
        }
    }
    // --- work items from the same array ---
    let mut bounds = ws.take_idx();
    schedule::schedule_bounds_into(&mut bounds, &ubs, schedule, threads);
    let nitems = bounds.len().saturating_sub(1);
    // Per-item results, computed in parallel with pooled per-thread
    // scratch and pooled output buffers (column lengths + concatenated
    // rows/values).
    let ubs_ref = &ubs;
    let bounds_ref = &bounds;
    let mut chunks: Vec<ChunkBuf<S::T>> = (0..nitems)
        .into_par_iter()
        .map_init(
            || ws.scratch_guard(),
            |guard, ci| {
                let scratch = guard.get();
                let (j0, j1) = (bounds_ref[ci], bounds_ref[ci + 1]);
                let mut out = ws.take_chunk();
                out.lens.reserve(j1 - j0);
                let est: usize = ubs_ref[j0..j1].iter().map(|&u| u.min(nrows)).sum();
                out.rows.reserve(est);
                out.vals.reserve(est);
                for (j, &ub) in (j0..j1).zip(&ubs_ref[j0..j1]) {
                    let (brows, bvals) = b.col(j);
                    compute_column::<S, A>(a, brows, bvals, kernel, ub, scratch);
                    out.lens.push(scratch.col_rows.len() as u32);
                    out.rows.extend_from_slice(&scratch.col_rows);
                    out.vals.extend_from_slice(&scratch.col_vals);
                }
                // Flop-proportional capacity is held by ALL items until the
                // stitch; when the output compresses pathologically (many
                // k-paths landing on one entry) release the slack so peak
                // intermediate memory stays output-proportional. The 4×
                // threshold keeps ordinary multiplies reallocation-free
                // across workspace reuse.
                if out.rows.capacity() > 4 * out.rows.len().max(1) {
                    out.rows.shrink_to_fit();
                    out.vals.shrink_to_fit();
                }
                out
            },
        )
        .collect();
    // Stitch items (ordered by construction) into one CSC, returning the
    // buffers to the pool as they drain.
    let nnz: usize = chunks.iter().map(|c| c.rows.len()).sum();
    let mut colptr = Vec::with_capacity(ncols + 1);
    colptr.push(0usize);
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for buf in chunks.drain(..) {
        for &l in &buf.lens {
            colptr.push(colptr.last().unwrap() + l as usize);
        }
        rowidx.extend_from_slice(&buf.rows);
        vals.extend_from_slice(&buf.vals);
        ws.put_chunk(buf);
    }
    ws.put_idx(ubs);
    ws.put_idx(bounds);
    Csc::from_parts(nrows, ncols, colptr, rowidx, vals)
}

/// SpGEMM with the hybrid kernel — the default entry point.
///
/// ```
/// use sa_sparse::semiring::PlusTimes;
/// use sa_sparse::spgemm::spgemm;
/// use sa_sparse::Coo;
///
/// // C = A·A on a 3-cycle: every vertex reaches its 2-hop neighbour
/// let mut coo = Coo::new(3, 3);
/// coo.push(1, 0, 1.0);
/// coo.push(2, 1, 1.0);
/// coo.push(0, 2, 1.0);
/// let a = coo.to_csc_with(|x, _| x);
/// let c = spgemm::<PlusTimes<f64>, _, _>(&a, &a);
/// assert_eq!(c.get(2, 0), Some(1.0)); // 0 → 1 → 2
/// ```
pub fn spgemm<S, A, B>(a: &A, b: &B) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
{
    spgemm_kernel::<S, A, B>(a, b, Kernel::Hybrid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::Dense;
    use crate::semiring::{OrAnd, PlusTimes};
    use rand::{Rng, SeedableRng};

    fn random_csc(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Coo::new(nrows, ncols);
        for _ in 0..nnz {
            m.push(
                rng.gen_range(0..nrows as u32),
                rng.gen_range(0..ncols as u32),
                rng.gen_range(-4..5) as f64, // integers: exact arithmetic
            );
        }
        m.to_csc().filter(|_, _, v| v != 0.0)
    }

    fn reference(a: &Csc<f64>, b: &Csc<f64>) -> Csc<f64> {
        Dense::from_csc::<PlusTimes<f64>>(a)
            .matmul::<PlusTimes<f64>>(&Dense::from_csc::<PlusTimes<f64>>(b))
            .to_csc::<PlusTimes<f64>>()
    }

    #[test]
    fn all_kernels_match_dense_reference() {
        for seed in 0..6u64 {
            let a = random_csc(40, 30, 150, seed);
            let b = random_csc(30, 25, 120, seed + 100);
            let expect = reference(&a, &b);
            for kernel in [Kernel::Heap, Kernel::Hash, Kernel::Spa, Kernel::Hybrid] {
                let got = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, kernel);
                assert_eq!(got, expect, "kernel {kernel:?} seed {seed}");
            }
        }
    }

    #[test]
    fn dcsc_source_matches_csc_source() {
        let a = random_csc(50, 40, 100, 9);
        let b = random_csc(40, 20, 80, 10);
        let ad = Dcsc::from_csc(&a);
        let via_csc = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        let via_dcsc = spgemm::<PlusTimes<f64>, _, _>(&ad, &b);
        assert_eq!(via_csc, via_dcsc);
    }

    #[test]
    fn boolean_semiring_reachability() {
        // path graph 0->1->2; A² over OrAnd gives 2-hop reachability.
        let mut m = Coo::new(3, 3);
        m.push(1, 0, true);
        m.push(2, 1, true);
        let a = m.to_csc_with(|x, _| x);
        let a2 = spgemm::<OrAnd, _, _>(&a, &a);
        assert_eq!(a2.nnz(), 1);
        assert_eq!(a2.get(2, 0), Some(true));
    }

    #[test]
    fn empty_operands() {
        let a: Csc<f64> = Csc::zeros(5, 4);
        let b: Csc<f64> = Csc::zeros(4, 3);
        let c = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (5, 3, 0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_csc(20, 20, 60, 3);
        let i = Csc::diagonal(&[1.0; 20]);
        assert_eq!(spgemm::<PlusTimes<f64>, _, _>(&a, &i), a);
        assert_eq!(spgemm::<PlusTimes<f64>, _, _>(&i, &a), a);
    }

    #[test]
    fn numeric_cancellation_dropped() {
        // A row with +1 and -1 meeting the same output position.
        // A = [1 -1], B = [1; 1]  => C = [0] (stored empty).
        let mut ma = Coo::new(1, 2);
        ma.push(0, 0, 1.0);
        ma.push(0, 1, -1.0);
        let mut mb = Coo::new(2, 1);
        mb.push(0, 0, 1.0);
        mb.push(1, 0, 1.0);
        let c = spgemm::<PlusTimes<f64>, _, _>(&ma.to_csc(), &mb.to_csc());
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn rectangular_chain() {
        // (5x3)(3x7) valid; check shape + reference equality.
        let a = random_csc(5, 3, 10, 11);
        let b = random_csc(3, 7, 12, 12);
        let c = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        assert_eq!((c.nrows(), c.ncols()), (5, 7));
        assert_eq!(c, reference(&a, &b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = random_csc(5, 3, 5, 1);
        let b = random_csc(4, 2, 5, 2);
        let _ = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
    }

    #[test]
    fn schedules_are_bit_identical() {
        let a = random_csc(120, 120, 900, 31);
        let b = random_csc(120, 120, 900, 32);
        let ws = SpgemmWorkspace::new();
        for kernel in [Kernel::Heap, Kernel::Hash, Kernel::Spa, Kernel::Hybrid] {
            let fixed =
                spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, kernel, Schedule::Fixed(256), &ws);
            let fixed7 =
                spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, kernel, Schedule::Fixed(7), &ws);
            let bal =
                spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, kernel, Schedule::FlopBalanced, &ws);
            assert_eq!(fixed, bal, "{kernel:?}");
            assert_eq!(fixed7, bal, "{kernel:?}");
        }
    }

    #[test]
    fn workspace_steady_state_allocates_nothing() {
        // pin to one thread so every counter is deterministic (with more
        // workers the scratch pool converges within `threads` allocs,
        // timing-dependent — the integration test covers that bound)
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("test pool");
        let a = random_csc(200, 200, 2000, 41);
        let b = random_csc(200, 200, 2000, 42);
        let ws = SpgemmWorkspace::new();
        // warm-up populates the pools
        let first = pool.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid, Schedule::FlopBalanced, &ws)
        });
        let warm = ws.counters();
        assert!(warm.scratch_allocs >= 1 && warm.chunk_allocs >= 1);
        for _ in 0..3 {
            let c = pool.install(|| {
                spgemm_with::<PlusTimes<f64>, _, _>(
                    &a,
                    &b,
                    Kernel::Hybrid,
                    Schedule::FlopBalanced,
                    &ws,
                )
            });
            assert_eq!(c, first);
        }
        let steady = ws.counters();
        assert_eq!(steady.scratch_allocs, warm.scratch_allocs, "no new scratch");
        assert_eq!(
            steady.chunk_allocs, warm.chunk_allocs,
            "no new chunk buffers"
        );
        assert_eq!(steady.idx_allocs, warm.idx_allocs, "no new index buffers");
        assert!(steady.scratch_reuses > warm.scratch_reuses);
        assert!(steady.chunk_reuses > warm.chunk_reuses);
    }

    #[test]
    fn single_heavy_column_and_empty_b() {
        // B with one hub column carrying every entry plus empty columns on
        // both sides — the flop-balanced splitter's degenerate case.
        let a = random_csc(80, 60, 600, 51);
        let mut coo = Coo::new(60, 40);
        for k in 0..60u32 {
            coo.push(k, 20, 1.0);
        }
        let b = coo.to_csc_with(|x: f64, _| x);
        let ws = SpgemmWorkspace::new();
        let fixed =
            spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid, Schedule::Fixed(256), &ws);
        let bal = spgemm_with::<PlusTimes<f64>, _, _>(
            &a,
            &b,
            Kernel::Hybrid,
            Schedule::FlopBalanced,
            &ws,
        );
        assert_eq!(fixed, bal);
        assert_eq!(fixed, reference(&a, &b));
        // fully empty B
        let eb: Csc<f64> = Csc::zeros(60, 10);
        let c = spgemm_with::<PlusTimes<f64>, _, _>(
            &a,
            &eb,
            Kernel::Hybrid,
            Schedule::FlopBalanced,
            &ws,
        );
        assert_eq!((c.ncols(), c.nnz()), (10, 0));
    }

    #[test]
    fn larger_random_consistency_across_kernels() {
        let a = random_csc(300, 300, 3000, 21);
        let b = random_csc(300, 300, 3000, 22);
        let h = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Heap);
        let s = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hash);
        let p = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Spa);
        let y = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid);
        assert_eq!(h, s);
        assert_eq!(s, p);
        assert_eq!(p, y);
    }
}
