//! Local (shared-memory) SpGEMM kernels.
//!
//! The paper's local computation (§II) is "a hybrid version of Heap-based
//! SpGEMM [Azad et al. 2016] and Hash-based SpGEMM [Nagasaka et al. 2019]".
//! We implement both, plus a dense-accumulator (SPA) kernel for very dense
//! output columns, and a per-column [`Kernel::Hybrid`] dispatcher that picks
//! among them from the column's upper-bound flop count — the same policy
//! class CombBLAS' hybrid kernel uses.
//!
//! All kernels are column-by-column: `C(:,j) = ⊕_k A(:,k) ⊗ B(k,j)`, are
//! generic over [`Semiring`]s and over the column source of `A` (CSC or
//! DCSC — the distributed 1D algorithm feeds the fetched `Ã` as DCSC), and
//! parallelize over output columns with Rayon (the per-rank "OpenMP" pool).

mod hash;
mod heap;
pub mod rowwise;
mod spa;
pub mod symbolic;

use crate::csc::Csc;
use crate::dcsc::Dcsc;
use crate::semiring::Semiring;
use crate::types::Vidx;
use rayon::prelude::*;

pub use rowwise::spgemm_rowwise;
pub use symbolic::{upper_bound_flops, upper_bound_flops_per_col};

/// Column access abstraction so kernels run over CSC and DCSC alike.
pub trait ColSource<T>: Sync {
    fn nrows(&self) -> usize;
    fn ncols(&self) -> usize;
    /// (row ids, values) of column `j`; empty slices if the column is empty.
    fn col(&self, j: usize) -> (&[Vidx], &[T]);
    /// nnz of column `j` (cheap; used for flop estimation).
    fn col_nnz(&self, j: usize) -> usize {
        self.col(j).0.len()
    }
}

impl<T: Copy + Send + Sync> ColSource<T> for Csc<T> {
    fn nrows(&self) -> usize {
        Csc::nrows(self)
    }
    fn ncols(&self) -> usize {
        Csc::ncols(self)
    }
    fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        Csc::col(self, j)
    }
    fn col_nnz(&self, j: usize) -> usize {
        Csc::col_nnz(self, j)
    }
}

impl<T: Copy + Send + Sync> ColSource<T> for Dcsc<T> {
    fn nrows(&self) -> usize {
        Dcsc::nrows(self)
    }
    fn ncols(&self) -> usize {
        Dcsc::ncols(self)
    }
    fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        Dcsc::col(self, j)
    }
}

/// Which accumulator a column (or a whole multiply) uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Kernel {
    /// k-way merge with a binary heap — cheapest for short columns.
    Heap,
    /// Linear-probing hash accumulator — robust mid-range default.
    Hash,
    /// Dense accumulator (sparse accumulator "SPA") — wins when a column's
    /// flops approach the row dimension.
    Spa,
    /// Per-column choice among the three from the column's upper-bound
    /// flops (the paper's hybrid).
    #[default]
    Hybrid,
}

/// Per-thread scratch reused across columns (generation-stamped SPA and a
/// growable hash table) so the hot loop allocates only for output.
struct Scratch<T> {
    spa_vals: Vec<T>,
    spa_gen: Vec<u32>,
    generation: u32,
    touched: Vec<Vidx>,
    hash: hash::HashAcc<T>,
}

impl<T: Copy> Scratch<T> {
    fn new(nrows: usize, zero: T) -> Self {
        Scratch {
            spa_vals: vec![zero; nrows],
            spa_gen: vec![0; nrows],
            generation: 0,
            touched: Vec::new(),
            hash: hash::HashAcc::new(),
        }
    }
}

/// Pick a kernel for one output column given B's column nnz and the
/// upper-bound flop count. Thresholds follow the usual CombBLAS-style
/// heuristics: tiny columns merge cheaply; columns whose accumulation
/// footprint rivals the row dimension go dense; the rest hash.
#[inline]
fn choose_kernel(bcol_nnz: usize, ub_flops: usize, nrows: usize) -> Kernel {
    if bcol_nnz <= 2 || ub_flops <= 64 {
        Kernel::Heap
    } else if ub_flops * 4 >= nrows {
        Kernel::Spa
    } else {
        Kernel::Hash
    }
}

/// Compute one output column into `(rows_out, vals_out)` (cleared first).
/// `ub` is the column's upper-bound flop count, computed once by the caller
/// and shared by the hybrid dispatch and the hash-table sizing.
#[allow(clippy::too_many_arguments)]
fn compute_column<S: Semiring, A: ColSource<S::T> + ?Sized>(
    a: &A,
    brows: &[Vidx],
    bvals: &[S::T],
    kernel: Kernel,
    ub: usize,
    scratch: &mut Scratch<S::T>,
    rows_out: &mut Vec<Vidx>,
    vals_out: &mut Vec<S::T>,
) {
    rows_out.clear();
    vals_out.clear();
    if brows.is_empty() {
        return;
    }
    // Single B entry: a scaled copy of one A column, already sorted.
    if brows.len() == 1 {
        let (ar, av) = a.col(brows[0] as usize);
        let b = bvals[0];
        for (&r, &x) in ar.iter().zip(av) {
            let v = S::mul(x, b);
            if !S::is_zero(&v) {
                rows_out.push(r);
                vals_out.push(v);
            }
        }
        return;
    }
    let kernel = if kernel == Kernel::Hybrid {
        choose_kernel(brows.len(), ub, a.nrows())
    } else {
        kernel
    };
    match kernel {
        Kernel::Heap => heap::heap_column::<S, A>(a, brows, bvals, rows_out, vals_out),
        Kernel::Hash => {
            hash::hash_column::<S, A>(a, brows, bvals, ub, &mut scratch.hash, rows_out, vals_out)
        }
        Kernel::Spa => spa::spa_column::<S, A>(
            a,
            brows,
            bvals,
            &mut scratch.spa_vals,
            &mut scratch.spa_gen,
            &mut scratch.generation,
            &mut scratch.touched,
            rows_out,
            vals_out,
        ),
        Kernel::Hybrid => unreachable!("resolved above"),
    }
}

/// Columns per parallel work item. Chunking keeps the number of output
/// allocations at O(ncols / CHUNK) instead of O(ncols): with many ranks
/// multiplying concurrently, per-column output vectors fault fresh heap
/// pages under a process-wide lock and dominate the wall time.
const CHUNK: usize = 256;

/// One chunk's output: per-column lengths plus concatenated rows/values.
type ChunkOut<T> = (Vec<u32>, Vec<Vidx>, Vec<T>);

/// General SpGEMM `C = A·B` over a semiring with an explicit kernel choice.
///
/// Parallelizes over B's columns on the current Rayon pool (so calling it
/// inside `pool.install(..)` binds it to a per-rank pool, mirroring
/// MPI+OpenMP).
pub fn spgemm_kernel<S, A, B>(a: &A, b: &B, kernel: Kernel) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "dimension mismatch: A is ..x{}, B is {}x..",
        a.ncols(),
        b.nrows()
    );
    let ncols = b.ncols();
    let nrows = a.nrows();
    let nchunks = ncols.div_ceil(CHUNK);
    // Per-chunk results, computed in parallel with per-thread scratch and
    // per-chunk output accumulation (column lengths + concatenated data).
    let chunks: Vec<ChunkOut<S::T>> = (0..nchunks)
        .into_par_iter()
        .map_init(
            || (Scratch::new(nrows, S::zero()), Vec::new(), Vec::new()),
            |(scratch, col_rows, col_vals), ci| {
                let j0 = ci * CHUNK;
                let j1 = ((ci + 1) * CHUNK).min(ncols);
                let mut lens: Vec<u32> = Vec::with_capacity(j1 - j0);
                // One symbolic pass per chunk: the upper bounds drive the
                // hybrid dispatch, the hash-table sizing, AND the output
                // pre-sizing (each output column holds at most
                // min(ub, nrows) entries), so the hot loop's extends never
                // reallocate.
                let ubs: Vec<usize> = (j0..j1)
                    .map(|j| {
                        let (brows, _) = b.col(j);
                        brows.iter().map(|&k| a.col_nnz(k as usize)).sum()
                    })
                    .collect();
                let est: usize = ubs.iter().map(|&u| u.min(nrows)).sum();
                let mut rows: Vec<Vidx> = Vec::with_capacity(est);
                let mut vals: Vec<S::T> = Vec::with_capacity(est);
                for (j, &ub) in (j0..j1).zip(&ubs) {
                    let (brows, bvals) = b.col(j);
                    compute_column::<S, A>(
                        a, brows, bvals, kernel, ub, scratch, col_rows, col_vals,
                    );
                    lens.push(col_rows.len() as u32);
                    rows.extend_from_slice(col_rows);
                    vals.extend_from_slice(col_vals);
                }
                // Flop-proportional capacity is held by ALL chunks until
                // the stitch; when the output compresses heavily (many
                // k-paths landing on one entry) release the slack so peak
                // intermediate memory stays output-proportional.
                if rows.capacity() > 2 * rows.len() {
                    rows.shrink_to_fit();
                    vals.shrink_to_fit();
                }
                (lens, rows, vals)
            },
        )
        .collect();
    // Stitch chunks (ordered by construction) into one CSC.
    let nnz: usize = chunks.iter().map(|c| c.1.len()).sum();
    let mut colptr = Vec::with_capacity(ncols + 1);
    colptr.push(0usize);
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (lens, r, v) in chunks {
        for l in lens {
            colptr.push(colptr.last().unwrap() + l as usize);
        }
        rowidx.extend_from_slice(&r);
        vals.extend_from_slice(&v);
    }
    Csc::from_parts(nrows, ncols, colptr, rowidx, vals)
}

/// SpGEMM with the hybrid kernel — the default entry point.
///
/// ```
/// use sa_sparse::semiring::PlusTimes;
/// use sa_sparse::spgemm::spgemm;
/// use sa_sparse::Coo;
///
/// // C = A·A on a 3-cycle: every vertex reaches its 2-hop neighbour
/// let mut coo = Coo::new(3, 3);
/// coo.push(1, 0, 1.0);
/// coo.push(2, 1, 1.0);
/// coo.push(0, 2, 1.0);
/// let a = coo.to_csc_with(|x, _| x);
/// let c = spgemm::<PlusTimes<f64>, _, _>(&a, &a);
/// assert_eq!(c.get(2, 0), Some(1.0)); // 0 → 1 → 2
/// ```
pub fn spgemm<S, A, B>(a: &A, b: &B) -> Csc<S::T>
where
    S: Semiring,
    A: ColSource<S::T> + ?Sized,
    B: ColSource<S::T> + ?Sized,
{
    spgemm_kernel::<S, A, B>(a, b, Kernel::Hybrid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::Dense;
    use crate::semiring::{OrAnd, PlusTimes};
    use rand::{Rng, SeedableRng};

    fn random_csc(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csc<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Coo::new(nrows, ncols);
        for _ in 0..nnz {
            m.push(
                rng.gen_range(0..nrows as u32),
                rng.gen_range(0..ncols as u32),
                rng.gen_range(-4..5) as f64, // integers: exact arithmetic
            );
        }
        m.to_csc().filter(|_, _, v| v != 0.0)
    }

    fn reference(a: &Csc<f64>, b: &Csc<f64>) -> Csc<f64> {
        Dense::from_csc::<PlusTimes<f64>>(a)
            .matmul::<PlusTimes<f64>>(&Dense::from_csc::<PlusTimes<f64>>(b))
            .to_csc::<PlusTimes<f64>>()
    }

    #[test]
    fn all_kernels_match_dense_reference() {
        for seed in 0..6u64 {
            let a = random_csc(40, 30, 150, seed);
            let b = random_csc(30, 25, 120, seed + 100);
            let expect = reference(&a, &b);
            for kernel in [Kernel::Heap, Kernel::Hash, Kernel::Spa, Kernel::Hybrid] {
                let got = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, kernel);
                assert_eq!(got, expect, "kernel {kernel:?} seed {seed}");
            }
        }
    }

    #[test]
    fn dcsc_source_matches_csc_source() {
        let a = random_csc(50, 40, 100, 9);
        let b = random_csc(40, 20, 80, 10);
        let ad = Dcsc::from_csc(&a);
        let via_csc = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        let via_dcsc = spgemm::<PlusTimes<f64>, _, _>(&ad, &b);
        assert_eq!(via_csc, via_dcsc);
    }

    #[test]
    fn boolean_semiring_reachability() {
        // path graph 0->1->2; A² over OrAnd gives 2-hop reachability.
        let mut m = Coo::new(3, 3);
        m.push(1, 0, true);
        m.push(2, 1, true);
        let a = m.to_csc_with(|x, _| x);
        let a2 = spgemm::<OrAnd, _, _>(&a, &a);
        assert_eq!(a2.nnz(), 1);
        assert_eq!(a2.get(2, 0), Some(true));
    }

    #[test]
    fn empty_operands() {
        let a: Csc<f64> = Csc::zeros(5, 4);
        let b: Csc<f64> = Csc::zeros(4, 3);
        let c = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        assert_eq!((c.nrows(), c.ncols(), c.nnz()), (5, 3, 0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_csc(20, 20, 60, 3);
        let i = Csc::diagonal(&[1.0; 20]);
        assert_eq!(spgemm::<PlusTimes<f64>, _, _>(&a, &i), a);
        assert_eq!(spgemm::<PlusTimes<f64>, _, _>(&i, &a), a);
    }

    #[test]
    fn numeric_cancellation_dropped() {
        // A row with +1 and -1 meeting the same output position.
        // A = [1 -1], B = [1; 1]  => C = [0] (stored empty).
        let mut ma = Coo::new(1, 2);
        ma.push(0, 0, 1.0);
        ma.push(0, 1, -1.0);
        let mut mb = Coo::new(2, 1);
        mb.push(0, 0, 1.0);
        mb.push(1, 0, 1.0);
        let c = spgemm::<PlusTimes<f64>, _, _>(&ma.to_csc(), &mb.to_csc());
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn rectangular_chain() {
        // (5x3)(3x7) valid; check shape + reference equality.
        let a = random_csc(5, 3, 10, 11);
        let b = random_csc(3, 7, 12, 12);
        let c = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
        assert_eq!((c.nrows(), c.ncols()), (5, 7));
        assert_eq!(c, reference(&a, &b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let a = random_csc(5, 3, 5, 1);
        let b = random_csc(4, 2, 5, 2);
        let _ = spgemm::<PlusTimes<f64>, _, _>(&a, &b);
    }

    #[test]
    fn larger_random_consistency_across_kernels() {
        let a = random_csc(300, 300, 3000, 21);
        let b = random_csc(300, 300, 3000, 22);
        let h = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Heap);
        let s = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hash);
        let p = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Spa);
        let y = spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid);
        assert_eq!(h, s);
        assert_eq!(s, p);
        assert_eq!(p, y);
    }
}
