//! Reusable allocation arena for the SpGEMM hot path.
//!
//! A [`SpgemmWorkspace`] keeps every scratch structure a multiply needs
//! alive between calls: per-thread accumulator state (`Scratch`), the
//! per-work-item output buffers the parallel loop concatenates columns
//! into, and generic index buffers (the symbolic upper-bound array, work
//! item boundaries, DCSC column pointers). Iterative workloads — the
//! session drivers in `sa_dist`/`sa_apps` call one multiply per iteration
//! for tens of iterations — reach steady state after the first multiply
//! and then allocate nothing on the hot path beyond output growth.
//!
//! All pools are `Mutex`-guarded free lists. Contention is negligible:
//! the kernel takes one scratch per worker thread and one chunk buffer per
//! work item (~4·threads per multiply), so locks are touched O(threads)
//! times per multiply, not O(columns).
//!
//! Every pool miss (a fresh heap allocation) and hit (a reuse) is counted;
//! [`SpgemmWorkspace::counters`] exposes the totals so tests can assert
//! that a steady-state iteration allocates nothing — the acceptance
//! criterion the session integration test pins down.

use super::hash::HashAcc;
use crate::types::Vidx;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-thread scratch reused across columns: a generation-stamped SPA
/// (allocated lazily — only once the hybrid dispatcher actually picks the
/// dense kernel), a growable hash table, and the per-column output
/// staging the chunk loop copies out of.
pub(crate) struct Scratch<T> {
    /// Dense SPA value array; empty until [`Scratch::ensure_spa`] runs.
    pub(crate) spa_vals: Vec<T>,
    /// Generation stamps parallel to `spa_vals`.
    pub(crate) spa_gen: Vec<u32>,
    pub(crate) generation: u32,
    pub(crate) touched: Vec<Vidx>,
    pub(crate) hash: HashAcc<T>,
    /// Current column's rows, copied into the chunk buffer after compute.
    pub(crate) col_rows: Vec<Vidx>,
    /// Current column's values, parallel to `col_rows`.
    pub(crate) col_vals: Vec<T>,
}

impl<T: Copy> Scratch<T> {
    pub(crate) fn new() -> Self {
        Scratch {
            spa_vals: Vec::new(),
            spa_gen: Vec::new(),
            generation: 0,
            touched: Vec::new(),
            hash: HashAcc::new(),
            col_rows: Vec::new(),
            col_vals: Vec::new(),
        }
    }

    /// Make the SPA arrays cover `nrows` rows. The arrays start empty —
    /// `O(nrows)` per thread is only paid when a column actually dispatches
    /// to the dense kernel — and grow monotonically so a workspace shared
    /// across differently-sized multiplies stays valid. Grown slots carry
    /// stamp 0, which can never equal the current generation (the SPA
    /// kernel skips 0 on wrap-around), so stale values cannot leak.
    pub(crate) fn ensure_spa(&mut self, nrows: usize, zero: T) {
        if self.spa_vals.len() < nrows {
            self.spa_vals.resize(nrows, zero);
            self.spa_gen.resize(nrows, 0);
        }
    }
}

/// One work item's output: per-column lengths plus concatenated rows and
/// values, stitched into the final CSC after the parallel loop. The
/// `lens` array doubles as a generic `u32` buffer when the distributed
/// layer borrows a `ChunkBuf` for DCSC assembly (`jc` is also `u32`).
pub struct ChunkBuf<T> {
    pub lens: Vec<u32>,
    pub rows: Vec<Vidx>,
    pub vals: Vec<T>,
}

impl<T> ChunkBuf<T> {
    fn empty() -> Self {
        ChunkBuf {
            lens: Vec::new(),
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.lens.clear();
        self.rows.clear();
        self.vals.clear();
    }
}

/// Pool hit/miss totals of one workspace (monotone counters).
///
/// `*_allocs` count pool misses — takes that had to heap-allocate a fresh
/// structure; `*_reuses` count takes served from the free list. In steady
/// state only the reuse counters move.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceCounters {
    /// Per-thread `Scratch` structures created.
    pub scratch_allocs: u64,
    /// Per-thread scratch takes served from the pool.
    pub scratch_reuses: u64,
    /// Chunk output buffers created.
    pub chunk_allocs: u64,
    /// Chunk buffer takes served from the pool.
    pub chunk_reuses: u64,
    /// `usize` index buffers created.
    pub idx_allocs: u64,
    /// Index buffer takes served from the pool.
    pub idx_reuses: u64,
}

impl WorkspaceCounters {
    /// Total pool misses (fresh allocations) across all pools.
    pub fn total_allocs(&self) -> u64 {
        self.scratch_allocs + self.chunk_allocs + self.idx_allocs
    }
}

/// The arena itself — see the module docs. One workspace per rank (or per
/// [`SpgemmSession`](../../../sa_dist/session/struct.SpgemmSession.html)):
/// it is `Sync` so the rank's compute pool shares it, but it is not meant
/// to be shared across ranks.
pub struct SpgemmWorkspace<T> {
    scratch: Mutex<Vec<Scratch<T>>>,
    chunks: Mutex<Vec<ChunkBuf<T>>>,
    idx: Mutex<Vec<Vec<usize>>>,
    scratch_allocs: AtomicU64,
    scratch_reuses: AtomicU64,
    chunk_allocs: AtomicU64,
    chunk_reuses: AtomicU64,
    idx_allocs: AtomicU64,
    idx_reuses: AtomicU64,
}

impl<T: Copy> Default for SpgemmWorkspace<T> {
    fn default() -> Self {
        SpgemmWorkspace::new()
    }
}

impl<T: Copy> SpgemmWorkspace<T> {
    /// An empty workspace. Nothing is allocated until the first multiply
    /// populates the pools.
    pub fn new() -> Self {
        SpgemmWorkspace {
            scratch: Mutex::new(Vec::new()),
            chunks: Mutex::new(Vec::new()),
            idx: Mutex::new(Vec::new()),
            scratch_allocs: AtomicU64::new(0),
            scratch_reuses: AtomicU64::new(0),
            chunk_allocs: AtomicU64::new(0),
            chunk_reuses: AtomicU64::new(0),
            idx_allocs: AtomicU64::new(0),
            idx_reuses: AtomicU64::new(0),
        }
    }

    /// Snapshot of the pool hit/miss counters.
    pub fn counters(&self) -> WorkspaceCounters {
        WorkspaceCounters {
            scratch_allocs: self.scratch_allocs.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
            chunk_allocs: self.chunk_allocs.load(Ordering::Relaxed),
            chunk_reuses: self.chunk_reuses.load(Ordering::Relaxed),
            idx_allocs: self.idx_allocs.load(Ordering::Relaxed),
            idx_reuses: self.idx_reuses.load(Ordering::Relaxed),
        }
    }

    /// Borrow a per-thread scratch for the duration of one worker's run;
    /// returned to the pool when the guard drops.
    pub(crate) fn scratch_guard(&self) -> ScratchGuard<'_, T> {
        let popped = self.scratch.lock().unwrap().pop();
        let scratch = match popped {
            Some(s) => {
                self.scratch_reuses.fetch_add(1, Ordering::Relaxed);
                s
            }
            None => {
                self.scratch_allocs.fetch_add(1, Ordering::Relaxed);
                Scratch::new()
            }
        };
        ScratchGuard {
            ws: self,
            scratch: Some(scratch),
        }
    }

    /// Take a cleared chunk buffer (capacity retained from earlier use).
    pub fn take_chunk(&self) -> ChunkBuf<T> {
        match self.chunks.lock().unwrap().pop() {
            Some(c) => {
                self.chunk_reuses.fetch_add(1, Ordering::Relaxed);
                c
            }
            None => {
                self.chunk_allocs.fetch_add(1, Ordering::Relaxed);
                ChunkBuf::empty()
            }
        }
    }

    /// Return a chunk buffer to the pool.
    pub fn put_chunk(&self, mut buf: ChunkBuf<T>) {
        buf.clear();
        self.chunks.lock().unwrap().push(buf);
    }

    /// Take a cleared `usize` buffer (capacity retained).
    pub fn take_idx(&self) -> Vec<usize> {
        match self.idx.lock().unwrap().pop() {
            Some(v) => {
                self.idx_reuses.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.idx_allocs.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return a `usize` buffer to the pool.
    pub fn put_idx(&self, mut buf: Vec<usize>) {
        buf.clear();
        self.idx.lock().unwrap().push(buf);
    }
}

/// RAII loan of a `Scratch`; hands the structure back on drop so the
/// next multiply's workers find it in the pool.
pub(crate) struct ScratchGuard<'w, T: Copy> {
    ws: &'w SpgemmWorkspace<T>,
    scratch: Option<Scratch<T>>,
}

impl<T: Copy> ScratchGuard<'_, T> {
    pub(crate) fn get(&mut self) -> &mut Scratch<T> {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl<T: Copy> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.ws.scratch.lock().unwrap().push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_spa_is_lazy_and_monotone() {
        let mut s: Scratch<f64> = Scratch::new();
        assert!(s.spa_vals.is_empty(), "SPA must not be allocated up front");
        s.ensure_spa(100, 0.0);
        assert_eq!(s.spa_vals.len(), 100);
        assert_eq!(s.spa_gen.len(), 100);
        s.ensure_spa(50, 0.0);
        assert_eq!(s.spa_vals.len(), 100, "never shrinks");
        s.ensure_spa(200, 0.0);
        assert_eq!(s.spa_vals.len(), 200);
        assert!(s.spa_gen[100..].iter().all(|&g| g == 0));
    }

    #[test]
    fn pools_reuse_and_count() {
        let ws: SpgemmWorkspace<f64> = SpgemmWorkspace::new();
        let c1 = ws.take_chunk();
        ws.put_chunk(c1);
        let mut c2 = ws.take_chunk();
        c2.rows.push(7);
        ws.put_chunk(c2);
        let c3 = ws.take_chunk();
        assert!(c3.rows.is_empty(), "returned buffers come back cleared");
        ws.put_chunk(c3);
        let c = ws.counters();
        assert_eq!(c.chunk_allocs, 1);
        assert_eq!(c.chunk_reuses, 2);

        let i1 = ws.take_idx();
        ws.put_idx(i1);
        let _i2 = ws.take_idx();
        let c = ws.counters();
        assert_eq!(c.idx_allocs, 1);
        assert_eq!(c.idx_reuses, 1);
    }

    #[test]
    fn scratch_guard_returns_on_drop() {
        let ws: SpgemmWorkspace<f64> = SpgemmWorkspace::new();
        {
            let mut g = ws.scratch_guard();
            g.get().touched.reserve(64);
        }
        {
            let _g = ws.scratch_guard();
        }
        let c = ws.counters();
        assert_eq!(c.scratch_allocs, 1, "second take reuses the first");
        assert_eq!(c.scratch_reuses, 1);
    }
}
