//! Compressed Sparse Column storage — the workhorse local format.
//!
//! Row indices within each column are kept sorted ascending; every kernel in
//! this workspace relies on that invariant (merge-based SpGEMM, binary-search
//! `get`, interval extraction for the block-fetch strategy).

use crate::coo::Coo;
use crate::types::{vidx, Vidx};

/// A CSC sparse matrix over element type `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    /// `colptr[j]..colptr[j+1]` indexes column `j`'s entries. Length `ncols+1`.
    colptr: Vec<usize>,
    /// Row index of each entry, sorted ascending within a column.
    rowidx: Vec<Vidx>,
    /// Numeric value of each entry.
    vals: Vec<T>,
}

impl<T: Copy + Send + Sync> Csc<T> {
    /// Assemble from raw parts, checking invariants in debug builds.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Vidx>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1);
        assert_eq!(rowidx.len(), vals.len());
        assert_eq!(*colptr.last().unwrap(), rowidx.len());
        debug_assert!(colptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(rowidx.iter().all(|&r| (r as usize) < nrows));
        debug_assert!((0..ncols).all(|j| {
            rowidx[colptr[j]..colptr[j + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        Csc {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Identity-like matrix with `diag[i]` at `(i, i)`.
    pub fn diagonal(diag: &[T]) -> Self {
        let n = diag.len();
        Csc {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n).map(vidx).collect(),
            vals: diag.to_vec(),
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    pub fn rowidx(&self) -> &[Vidx] {
        &self.rowidx
    }

    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// The (row indices, values) of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[Vidx], &[T]) {
        let (s, e) = (self.colptr[j], self.colptr[j + 1]);
        (&self.rowidx[s..e], &self.vals[s..e])
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Number of columns holding at least one entry (`nzc` in the paper).
    pub fn n_nonzero_cols(&self) -> usize {
        (0..self.ncols).filter(|&j| self.col_nnz(j) > 0).count()
    }

    /// Value at `(i, j)` if stored (binary search within the column).
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let (rows, vals) = self.col(j);
        rows.binary_search(&vidx(i)).ok().map(|p| vals[p])
    }

    /// Iterate all entries as `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Vidx, Vidx, T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, vidx(j), v))
        })
    }

    /// Convert to COO triples.
    pub fn to_coo(&self) -> Coo<T> {
        Coo::from_entries(self.nrows, self.ncols, self.iter().collect())
    }

    /// Transpose via counting sort — O(nnz + nrows).
    pub fn transpose(&self) -> Csc<T> {
        let mut colptr = vec![0usize; self.nrows + 1];
        for &r in &self.rowidx {
            colptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            colptr[i + 1] += colptr[i];
        }
        if self.nnz() == 0 {
            return Csc {
                nrows: self.ncols,
                ncols: self.nrows,
                colptr,
                rowidx: Vec::new(),
                vals: Vec::new(),
            };
        }
        let mut cursor = colptr.clone();
        let mut rowidx = vec![0 as Vidx; self.nnz()];
        let mut vals = vec![self.vals[0]; self.nnz()];
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            for (&r, &x) in rows.iter().zip(v) {
                let p = cursor[r as usize];
                rowidx[p] = vidx(j);
                vals[p] = x;
                cursor[r as usize] += 1;
            }
        }
        // Column-major traversal of the source emits ascending column ids per
        // target column, so sortedness is preserved by construction.
        Csc {
            nrows: self.ncols,
            ncols: self.nrows,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Extract the column range `[c0, c1)` as a standalone `nrows × (c1-c0)`
    /// matrix. This is how a 1D column slice of a global matrix is formed.
    pub fn extract_cols(&self, c0: usize, c1: usize) -> Csc<T> {
        assert!(c0 <= c1 && c1 <= self.ncols);
        let (s, e) = (self.colptr[c0], self.colptr[c1]);
        let colptr = self.colptr[c0..=c1].iter().map(|&p| p - s).collect();
        Csc {
            nrows: self.nrows,
            ncols: c1 - c0,
            colptr,
            rowidx: self.rowidx[s..e].to_vec(),
            vals: self.vals[s..e].to_vec(),
        }
    }

    /// Extract the row range `[r0, r1)` as a `(r1-r0) × ncols` matrix.
    /// Entries keep column order; O(nnz).
    pub fn extract_rows(&self, r0: usize, r1: usize) -> Csc<T> {
        assert!(r0 <= r1 && r1 <= self.nrows);
        let (lo, hi) = (vidx(r0), vidx(r1));
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::new();
        let mut vals = Vec::new();
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            let a = rows.partition_point(|&r| r < lo);
            let b = rows.partition_point(|&r| r < hi);
            for t in a..b {
                rowidx.push(rows[t] - lo);
                vals.push(v[t]);
            }
            colptr[j + 1] = rowidx.len();
        }
        Csc {
            nrows: r1 - r0,
            ncols: self.ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Extract both a row range and a column range (2D block).
    pub fn extract_block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Csc<T> {
        self.extract_cols(c0, c1).extract_rows(r0, r1)
    }

    /// The sorted set of rows that hold at least one entry — the `⃗H`
    /// vector of Algorithm 1 in index-list form.
    pub fn nonzero_rows(&self) -> Vec<Vidx> {
        let mut seen = vec![false; self.nrows];
        for &r in &self.rowidx {
            seen[r as usize] = true;
        }
        (0..self.nrows).filter(|&i| seen[i]).map(vidx).collect()
    }

    /// Dense boolean hit-vector over rows (`⃗H` of Algorithm 1).
    pub fn row_hit_vector(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nrows];
        for &r in &self.rowidx {
            seen[r as usize] = true;
        }
        seen
    }

    /// nnz of every column (length `ncols`).
    pub fn nnz_per_col(&self) -> Vec<usize> {
        (0..self.ncols).map(|j| self.col_nnz(j)).collect()
    }

    /// nnz of every row (length `nrows`).
    pub fn nnz_per_row(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.rowidx {
            counts[r as usize] += 1;
        }
        counts
    }

    /// Map values, keeping structure.
    pub fn map<U: Copy + Send + Sync>(&self, f: impl Fn(T) -> U) -> Csc<U> {
        Csc {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr: self.colptr.clone(),
            rowidx: self.rowidx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Drop entries failing the predicate (e.g. prune explicit zeros).
    pub fn filter(&self, keep: impl Fn(Vidx, Vidx, T) -> bool) -> Csc<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for j in 0..self.ncols {
            let (rows, v) = self.col(j);
            for (&r, &x) in rows.iter().zip(v) {
                if keep(r, vidx(j), x) {
                    rowidx.push(r);
                    vals.push(x);
                }
            }
            colptr[j + 1] = rowidx.len();
        }
        Csc {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Estimated heap bytes of this matrix (what "memA" means in the paper's
    /// CV/memA criterion: index + value storage of the local A).
    pub fn mem_bytes(&self) -> usize {
        self.colptr.len() * std::mem::size_of::<usize>()
            + self.rowidx.len() * std::mem::size_of::<Vidx>()
            + self.vals.len() * std::mem::size_of::<T>()
    }
}

impl Csc<f64> {
    /// Structural pattern as a boolean matrix.
    pub fn pattern(&self) -> Csc<bool> {
        self.map(|_| true)
    }

    /// Max absolute elementwise difference against `other` on the union of
    /// their patterns (∞ if shapes differ).
    pub fn max_abs_diff(&self, other: &Csc<f64>) -> f64 {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for j in 0..self.ncols {
            let (ra, va) = self.col(j);
            let (rb, vb) = other.col(j);
            let (mut i, mut k) = (0, 0);
            while i < ra.len() || k < rb.len() {
                let (r1, r2) = (
                    ra.get(i).copied().unwrap_or(Vidx::MAX),
                    rb.get(k).copied().unwrap_or(Vidx::MAX),
                );
                if r1 < r2 {
                    worst = worst.max(va[i].abs());
                    i += 1;
                } else if r2 < r1 {
                    worst = worst.max(vb[k].abs());
                    k += 1;
                } else {
                    worst = worst.max((va[i] - vb[k]).abs());
                    i += 1;
                    k += 1;
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csc<f64> {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut m = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 1.0),
            (2, 0, 4.0),
            (1, 1, 3.0),
            (0, 2, 2.0),
            (2, 2, 5.0),
        ] {
            m.push(r, c, v);
        }
        m.to_csc()
    }

    #[test]
    fn get_and_col() {
        let m = sample();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(2, 2), Some(5.0));
        assert_eq!(m.col(1), (&[1][..], &[3.0][..]));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_values() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn extract_cols_slice() {
        let m = sample();
        let s = m.extract_cols(1, 3);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.get(1, 0), Some(3.0));
        assert_eq!(s.get(2, 1), Some(5.0));
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn extract_rows_slice() {
        let m = sample();
        let s = m.extract_rows(1, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 1), Some(3.0)); // old row 1 -> new row 0
        assert_eq!(s.get(1, 2), Some(5.0)); // old row 2 -> new row 1
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn extract_block_corner() {
        let m = sample();
        let b = m.extract_block(0, 2, 0, 2);
        assert_eq!((b.nrows(), b.ncols()), (2, 2));
        assert_eq!(b.get(0, 0), Some(1.0));
        assert_eq!(b.get(1, 1), Some(3.0));
        assert_eq!(b.nnz(), 2);
    }

    #[test]
    fn nonzero_rows_and_hits() {
        let m = sample();
        assert_eq!(m.nonzero_rows(), vec![0, 1, 2]);
        let s = m.extract_cols(1, 2); // only column 1 => row 1
        assert_eq!(s.nonzero_rows(), vec![1]);
        assert_eq!(s.row_hit_vector(), vec![false, true, false]);
    }

    #[test]
    fn per_col_and_row_counts() {
        let m = sample();
        assert_eq!(m.nnz_per_col(), vec![2, 1, 2]);
        assert_eq!(m.nnz_per_row(), vec![2, 1, 2]);
        assert_eq!(m.n_nonzero_cols(), 3);
    }

    #[test]
    fn filter_prunes() {
        let m = sample();
        let f = m.filter(|_, _, v| v > 2.5);
        assert_eq!(f.nnz(), 3);
        assert_eq!(f.get(0, 0), None);
        assert_eq!(f.get(2, 0), Some(4.0));
    }

    #[test]
    fn diagonal_matrix() {
        let d = Csc::diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.nnz(), 3);
        assert_eq!(d.get(1, 1), Some(2.0));
        assert_eq!(d.get(0, 1), None);
    }

    #[test]
    fn max_abs_diff_detects() {
        let a = sample();
        let mut b = sample();
        b.vals_mut()[0] += 0.5;
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn empty_extract() {
        let m = sample();
        let e = m.extract_cols(1, 1);
        assert_eq!(e.ncols(), 0);
        assert_eq!(e.nnz(), 0);
    }
}
