//! Matrix statistics: sparse-flop estimation, load-imbalance metrics, and
//! ASCII spy plots (stand-ins for the paper's Figures 2–3 visualizations).

use crate::csc::Csc;

/// Exact sparse flops of `A·B` — the number of nontrivial scalar products
/// `a_ik · b_kj`. By the outer-product view (§III-B, ref.\[16\] Th 13.1, ref.\[2\] Eq
/// 3.5) this is the inner product of A's per-column nnz with B's per-row
/// nnz.
pub fn spgemm_flops<T: Copy + Send + Sync, U: Copy + Send + Sync>(a: &Csc<T>, b: &Csc<U>) -> u64 {
    assert_eq!(a.ncols(), b.nrows());
    let a_col = a.nnz_per_col();
    let b_row = b.nnz_per_row();
    a_col
        .iter()
        .zip(&b_row)
        .map(|(&x, &y)| x as u64 * y as u64)
        .sum()
}

/// Per-vertex work estimate for partitioning a squaring workload: the square
/// of each column's nnz (§III-B: "the weight value is the square of non-zero
/// elements of the column").
pub fn squaring_vertex_weights<T: Copy + Send + Sync>(a: &Csc<T>) -> Vec<u64> {
    a.nnz_per_col()
        .iter()
        .map(|&c| (c as u64) * (c as u64))
        .collect()
}

/// max/mean ratio of a workload distribution (1.0 = perfectly balanced).
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = *loads.iter().max().unwrap() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// Summary statistics of a per-rank series (used by the per-process
/// breakdown figures).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesSummary {
    pub min: f64,
    pub median: f64,
    pub mean: f64,
    pub max: f64,
}

/// Compute [`SeriesSummary`] of an f64 slice.
pub fn summarize(xs: &[f64]) -> SeriesSummary {
    if xs.is_empty() {
        return SeriesSummary::default();
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    SeriesSummary {
        min: s[0],
        median: s[s.len() / 2],
        mean: s.iter().sum::<f64>() / s.len() as f64,
        max: s[s.len() - 1],
    }
}

/// ASCII "spy" plot of the nonzero pattern, `height × width` character
/// cells, densities rendered ` .:+#@`.
pub fn spy<T: Copy + Send + Sync>(a: &Csc<T>, width: usize, height: usize) -> String {
    let mut counts = vec![0u64; width * height];
    let (rs, cs) = (
        (a.nrows().max(1) as f64) / height as f64,
        (a.ncols().max(1) as f64) / width as f64,
    );
    for (r, c, _) in a.iter() {
        let y = ((r as f64 / rs) as usize).min(height - 1);
        let x = ((c as f64 / cs) as usize).min(width - 1);
        counts[y * width + x] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    let glyphs = [' ', '.', ':', '+', '#', '@'];
    let mut out = String::with_capacity(height * (width + 1));
    for y in 0..height {
        for x in 0..width {
            let c = counts[y * width + x];
            let g = if c == 0 {
                0
            } else {
                1 + ((c as f64 / max) * 4.0).round() as usize
            };
            out.push(glyphs[g.min(5)]);
        }
        out.push('\n');
    }
    out
}

/// Dataset statistics row matching the paper's Table II columns.
#[derive(Clone, Debug)]
pub struct MatrixStats {
    pub name: String,
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    pub symmetric: bool,
    pub avg_nnz_per_row: f64,
}

/// Compute [`MatrixStats`], testing symmetry structurally and numerically.
pub fn matrix_stats(name: &str, a: &Csc<f64>) -> MatrixStats {
    let symmetric = a.nrows() == a.ncols() && {
        let t = a.transpose();
        a.max_abs_diff(&t) < 1e-12
    };
    MatrixStats {
        name: name.to_string(),
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        symmetric,
        avg_nnz_per_row: a.nnz() as f64 / a.nrows().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::dense::Dense;
    use crate::semiring::PlusTimes;

    fn random_small(seed: u64) -> Csc<f64> {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut m = Coo::new(12, 12);
        for _ in 0..30 {
            m.push(rng.gen_range(0..12), rng.gen_range(0..12), 1.0);
        }
        m.to_csc()
    }

    #[test]
    fn flops_matches_brute_force() {
        let a = random_small(1);
        let b = random_small(2);
        // brute force: for every k, count pairs
        let mut expect = 0u64;
        for k in 0..12usize {
            let ak = a.col_nnz(k) as u64;
            let bk = b.nnz_per_row()[k] as u64;
            expect += ak * bk;
        }
        assert_eq!(spgemm_flops(&a, &b), expect);
    }

    #[test]
    fn flops_zero_when_disjoint() {
        // A only uses column 0, B only uses row 1.
        let mut a = Coo::new(4, 4);
        a.push(2, 0, 1.0);
        let mut b = Coo::new(4, 4);
        b.push(1, 3, 1.0);
        assert_eq!(spgemm_flops(&a.to_csc(), &b.to_csc()), 0);
    }

    #[test]
    fn squaring_weights_are_squared_degrees() {
        let a = random_small(3);
        let w = squaring_vertex_weights(&a);
        for (j, &wj) in w.iter().enumerate() {
            let d = a.col_nnz(j) as u64;
            assert_eq!(wj, d * d);
        }
    }

    #[test]
    fn imbalance_bounds() {
        assert_eq!(imbalance(&[5, 5, 5, 5]), 1.0);
        assert_eq!(imbalance(&[0, 0, 0, 12]), 4.0);
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    fn summarize_order() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spy_shape() {
        let a = random_small(4);
        let plot = spy(&a, 10, 5);
        assert_eq!(plot.lines().count(), 5);
        assert!(plot.lines().all(|l| l.chars().count() == 10));
    }

    #[test]
    fn stats_detects_symmetry() {
        let mut m = Coo::new(3, 3);
        m.push(0, 1, 2.0);
        m.push(1, 0, 2.0);
        m.push(2, 2, 1.0);
        let s = matrix_stats("sym", &m.to_csc());
        assert!(s.symmetric);
        let t = matrix_stats("asym", &random_small(5));
        assert!(!t.symmetric);
    }

    #[test]
    fn flops_consistent_with_dense_product_work() {
        // flops >= nnz(C) always (each output entry needs >= 1 product).
        let a = random_small(6);
        let b = random_small(7);
        let da = Dense::from_csc::<PlusTimes<f64>>(&a);
        let db = Dense::from_csc::<PlusTimes<f64>>(&b);
        let c = da.matmul::<PlusTimes<f64>>(&db).to_csc::<PlusTimes<f64>>();
        assert!(spgemm_flops(&a, &b) >= c.nnz() as u64);
    }
}
