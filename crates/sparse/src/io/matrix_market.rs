//! Matrix Market (`.mtx`) coordinate-format reader/writer, so users can run
//! the library on the paper's actual SuiteSparse inputs when they have them.
//!
//! Supports `matrix coordinate (real|integer|pattern) (general|symmetric)`.
//! Parse failures come back as a typed [`MmError`] naming the 1-based line
//! (and, for token-level faults, byte column) where parsing stopped —
//! real-world `.mtx` files are large and hand-edited often enough that
//! "invalid data" without a location is useless.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Why a Matrix Market stream could not be parsed, and where.
#[derive(Debug)]
pub struct MmError {
    /// 1-based line number where parsing stopped; 0 when the stream itself
    /// is at fault (empty input).
    pub line: usize,
    /// 1-based byte column of the offending token; 0 when the whole line
    /// is at fault.
    pub column: usize,
    /// What went wrong there.
    pub kind: MmErrorKind,
}

/// The specific parse failure inside an [`MmError`].
#[derive(Debug)]
pub enum MmErrorKind {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The stream ended before the `%%MatrixMarket` banner.
    EmptyFile,
    /// The banner line is malformed or advertises an unsupported format.
    BadHeader(String),
    /// The `rows cols nnz` size line is malformed or missing.
    BadSizeLine(String),
    /// An entry line ended before the named field.
    MissingField(&'static str),
    /// A field failed to parse as the named kind of token.
    BadToken {
        /// What the token was supposed to be ("row index", "value", ...).
        what: &'static str,
        /// The token as it appeared in the stream.
        token: String,
    },
    /// A coordinate fell outside the declared dimensions (or was 0 in the
    /// 1-based format).
    IndexOutOfBounds {
        i: usize,
        j: usize,
        nrows: usize,
        ncols: usize,
    },
    /// The size line declared `expected` entries but the stream carried
    /// `found`.
    EntryCount { expected: usize, found: usize },
}

impl MmError {
    fn at(line: usize, kind: MmErrorKind) -> MmError {
        MmError {
            line,
            column: 0,
            kind,
        }
    }

    fn at_col(line: usize, column: usize, kind: MmErrorKind) -> MmError {
        MmError { line, column, kind }
    }
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MatrixMarket: ")?;
        if self.line > 0 {
            write!(f, "line {}", self.line)?;
            if self.column > 0 {
                write!(f, ", column {}", self.column)?;
            }
            write!(f, ": ")?;
        }
        match &self.kind {
            MmErrorKind::Io(e) => write!(f, "read failed: {e}"),
            MmErrorKind::EmptyFile => write!(f, "empty file"),
            MmErrorKind::BadHeader(why) => write!(f, "{why}"),
            MmErrorKind::BadSizeLine(why) => write!(f, "{why}"),
            MmErrorKind::MissingField(what) => {
                write!(f, "entry line ends before the {what}")
            }
            MmErrorKind::BadToken { what, token } => {
                write!(f, "'{token}' is not a valid {what}")
            }
            MmErrorKind::IndexOutOfBounds { i, j, nrows, ncols } => write!(
                f,
                "entry ({i}, {j}) outside the declared {nrows}x{ncols} shape \
                 (1-based indices expected)"
            ),
            MmErrorKind::EntryCount { expected, found } => {
                write!(
                    f,
                    "size line declared {expected} entries, stream carried {found}"
                )
            }
        }
    }
}

impl std::error::Error for MmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            MmErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MmError> for std::io::Error {
    fn from(e: MmError) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Parse a Matrix Market stream into CSC (duplicates summed; symmetric
/// storage expanded). Typed-error variant of [`read_matrix_market`].
pub fn try_read_matrix_market<R: Read>(reader: R) -> Result<Csc<f64>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 1usize;

    let header = match lines.next() {
        None => return Err(MmError::at(0, MmErrorKind::EmptyFile)),
        Some(Err(e)) => return Err(MmError::at(1, MmErrorKind::Io(e))),
        Some(Ok(l)) => l.to_lowercase(),
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || !fields[0].starts_with("%%matrixmarket") {
        return Err(MmError::at(
            lineno,
            MmErrorKind::BadHeader("missing %%MatrixMarket header".into()),
        ));
    }
    if fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(MmError::at(
            lineno,
            MmErrorKind::BadHeader("only coordinate matrices supported".into()),
        ));
    }
    let pattern = fields[3] == "pattern";
    if !matches!(fields[3], "real" | "integer" | "pattern") {
        return Err(MmError::at_col(
            lineno,
            col_of(&header, fields[3]),
            MmErrorKind::BadHeader(format!("unsupported value type '{}'", fields[3])),
        ));
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(MmError::at_col(
                lineno,
                col_of(&header, other),
                MmErrorKind::BadHeader(format!("unsupported symmetry '{other}'")),
            ))
        }
    };

    // size line (skipping comments)
    let mut size_line = String::new();
    let mut size_lineno = 0usize;
    for line in lines.by_ref() {
        lineno += 1;
        let line = line.map_err(|e| MmError::at(lineno, MmErrorKind::Io(e)))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = line;
        size_lineno = lineno;
        break;
    }
    if size_lineno == 0 {
        return Err(MmError::at(
            lineno,
            MmErrorKind::BadSizeLine("stream ended before the size line".into()),
        ));
    }
    let mut dims = [0usize; 3];
    let mut ntok = 0usize;
    for tok in size_line.split_whitespace() {
        if ntok == 3 {
            ntok = 4;
            break;
        }
        dims[ntok] = tok.parse().map_err(|_| {
            MmError::at_col(
                size_lineno,
                col_of(&size_line, tok),
                MmErrorKind::BadToken {
                    what: "size",
                    token: tok.into(),
                },
            )
        })?;
        ntok += 1;
    }
    if ntok != 3 {
        return Err(MmError::at(
            size_lineno,
            MmErrorKind::BadSizeLine("size line needs 'rows cols nnz'".into()),
        ));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut m = Coo::new(nrows, ncols);
    m.entries.reserve(if symmetric { nnz * 2 } else { nnz });
    let mut read = 0usize;
    for line in lines {
        lineno += 1;
        let line = line.map_err(|e| MmError::at(lineno, MmErrorKind::Io(e)))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let i = parse_index(&mut it, &line, lineno, "row index")?;
        let j = parse_index(&mut it, &line, lineno, "column index")?;
        let v: f64 = if pattern {
            1.0
        } else {
            let tok = it
                .next()
                .ok_or_else(|| MmError::at(lineno, MmErrorKind::MissingField("value")))?;
            tok.parse().map_err(|_| {
                MmError::at_col(
                    lineno,
                    col_of(&line, tok),
                    MmErrorKind::BadToken {
                        what: "value",
                        token: tok.into(),
                    },
                )
            })?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(MmError::at(
                lineno,
                MmErrorKind::IndexOutOfBounds { i, j, nrows, ncols },
            ));
        }
        m.push(vidx(i - 1), vidx(j - 1), v);
        if symmetric && i != j {
            m.push(vidx(j - 1), vidx(i - 1), v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(MmError::at(
            lineno,
            MmErrorKind::EntryCount {
                expected: nnz,
                found: read,
            },
        ));
    }
    Ok(m.to_csc())
}

/// Parse a Matrix Market stream into CSC (duplicates summed; symmetric
/// storage expanded). The typed [`MmError`] is flattened into an
/// `InvalidData` [`std::io::Error`] whose message carries the line/column.
pub fn read_matrix_market<R: Read>(reader: R) -> std::io::Result<Csc<f64>> {
    try_read_matrix_market(reader).map_err(Into::into)
}

/// Write CSC as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: W, a: &Csc<f64>) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by saspgemm")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()
}

/// 1-based byte column of `tok` inside `line` (`tok` must be a subslice of
/// `line`, as `split_whitespace` yields).
fn col_of(line: &str, tok: &str) -> usize {
    (tok.as_ptr() as usize).saturating_sub(line.as_ptr() as usize) + 1
}

fn parse_index(
    it: &mut std::str::SplitWhitespace<'_>,
    line: &str,
    lineno: usize,
    what: &'static str,
) -> Result<usize, MmError> {
    let tok = it
        .next()
        .ok_or_else(|| MmError::at(lineno, MmErrorKind::MissingField(what)))?;
    tok.parse().map_err(|_| {
        MmError::at_col(
            lineno,
            col_of(line, tok),
            MmErrorKind::BadToken {
                what,
                token: tok.into(),
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = crate::gen::erdos_renyi(40, 30, 3.0, 1);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn reads_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % lower triangle only\n\
                    3 3 3\n\
                    1 1 2.0\n\
                    2 1 5.0\n\
                    3 3 1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 4, "off-diagonal expands to both triangles");
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(1, 0), Some(5.0));
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market("not a matrix".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
        assert!(
            read_matrix_market(short.as_bytes()).is_err(),
            "nnz mismatch"
        );
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let bad_val =
            "%%MatrixMarket matrix coordinate real general\n% c\n2 2 2\n1 1 1.0\n2 2 oops\n";
        let e = try_read_matrix_market(bad_val.as_bytes()).unwrap_err();
        assert_eq!((e.line, e.column), (5, 5));
        assert!(matches!(
            e.kind,
            MmErrorKind::BadToken { what: "value", .. }
        ));
        assert!(e.to_string().contains("line 5, column 5"), "{e}");

        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        let e = try_read_matrix_market(oob.as_bytes()).unwrap_err();
        assert_eq!((e.line, e.column), (3, 0));
        assert!(matches!(
            e.kind,
            MmErrorKind::IndexOutOfBounds { i: 3, j: 1, .. }
        ));

        let short = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
        let e = try_read_matrix_market(short.as_bytes()).unwrap_err();
        assert!(matches!(
            e.kind,
            MmErrorKind::EntryCount {
                expected: 5,
                found: 1
            }
        ));

        let bad_size = "%%MatrixMarket matrix coordinate real general\n3 x 5\n";
        let e = try_read_matrix_market(bad_size.as_bytes()).unwrap_err();
        assert_eq!((e.line, e.column), (2, 3));
    }

    #[test]
    fn typed_errors_flatten_to_io() {
        let e: std::io::Error = try_read_matrix_market("junk".as_bytes())
            .unwrap_err()
            .into();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("MatrixMarket"), "{e}");
    }
}
