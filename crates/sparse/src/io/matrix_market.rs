//! Matrix Market (`.mtx`) coordinate-format reader/writer, so users can run
//! the library on the paper's actual SuiteSparse inputs when they have them.
//!
//! Supports `matrix coordinate (real|integer|pattern) (general|symmetric)`.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parse a Matrix Market stream into CSC (duplicates summed; symmetric
/// storage expanded).
pub fn read_matrix_market<R: Read>(reader: R) -> std::io::Result<Csc<f64>> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| bad("empty file"))??
        .to_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || !fields[0].starts_with("%%matrixmarket") {
        return Err(bad("missing %%MatrixMarket header"));
    }
    if fields[1] != "matrix" || fields[2] != "coordinate" {
        return Err(bad("only coordinate matrices supported"));
    }
    let pattern = fields[3] == "pattern";
    if !matches!(fields[3], "real" | "integer" | "pattern") {
        return Err(bad("unsupported value type"));
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(bad(&format!("unsupported symmetry '{other}'"))),
    };

    // size line (skipping comments)
    let mut size_line = String::new();
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = t.to_string();
        break;
    }
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad("size line needs 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut m = Coo::new(nrows, ncols);
    m.entries.reserve(if symmetric { nnz * 2 } else { nnz });
    let mut read = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| bad("short entry line"))?
            .parse()
            .map_err(|_| bad("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| bad("short entry line"))?
            .parse()
            .map_err(|_| bad("bad col index"))?;
        let v: f64 = if pattern {
            1.0
        } else {
            it.next()
                .ok_or_else(|| bad("missing value"))?
                .parse()
                .map_err(|_| bad("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(bad("index out of bounds (1-based expected)"));
        }
        m.push(vidx(i - 1), vidx(j - 1), v);
        if symmetric && i != j {
            m.push(vidx(j - 1), vidx(i - 1), v);
        }
        read += 1;
    }
    if read != nnz {
        return Err(bad(&format!("expected {nnz} entries, found {read}")));
    }
    Ok(m.to_csc())
}

/// Write CSC as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(writer: W, a: &Csc<f64>) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by saspgemm")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
    }
    w.flush()
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("MatrixMarket: {msg}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = crate::gen::erdos_renyi(40, 30, 3.0, 1);
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn reads_symmetric_storage() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % lower triangle only\n\
                    3 3 3\n\
                    1 1 2.0\n\
                    2 1 5.0\n\
                    3 3 1.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 4, "off-diagonal expands to both triangles");
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(1, 0), Some(5.0));
    }

    #[test]
    fn reads_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market("not a matrix".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n";
        assert!(
            read_matrix_market(short.as_bytes()).is_err(),
            "nnz mismatch"
        );
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
    }
}
