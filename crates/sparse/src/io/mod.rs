//! Matrix I/O.

pub mod matrix_market;

pub use matrix_market::{
    read_matrix_market, try_read_matrix_market, write_matrix_market, MmError, MmErrorKind,
};
