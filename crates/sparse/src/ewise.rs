//! Elementwise operations on CSC matrices: union add (semiring ⊕),
//! intersection multiply, and masking — the building blocks of the 2D/3D
//! partial-result merges and the betweenness-centrality sweeps.

use crate::csc::Csc;
use crate::semiring::Semiring;
use crate::types::Vidx;

/// `C = A ⊕ B` on the union of patterns.
pub fn ewise_add<S: Semiring>(a: &Csc<S::T>, b: &Csc<S::T>) -> Csc<S::T> {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals: Vec<S::T> = Vec::with_capacity(a.nnz() + b.nnz());
    for j in 0..a.ncols() {
        let (ra, va) = a.col(j);
        let (rb, vb) = b.col(j);
        let (mut i, mut k) = (0usize, 0usize);
        while i < ra.len() || k < rb.len() {
            let r1 = ra.get(i).copied().unwrap_or(Vidx::MAX);
            let r2 = rb.get(k).copied().unwrap_or(Vidx::MAX);
            let (r, v) = if r1 < r2 {
                i += 1;
                (r1, va[i - 1])
            } else if r2 < r1 {
                k += 1;
                (r2, vb[k - 1])
            } else {
                i += 1;
                k += 1;
                (r1, S::add(va[i - 1], vb[k - 1]))
            };
            if !S::is_zero(&v) {
                rowidx.push(r);
                vals.push(v);
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vals)
}

/// `C = A ⊗ B` on the intersection of patterns (Hadamard product under the
/// semiring's multiply).
pub fn ewise_mul<S: Semiring>(a: &Csc<S::T>, b: &Csc<S::T>) -> Csc<S::T> {
    assert_eq!(a.nrows(), b.nrows());
    assert_eq!(a.ncols(), b.ncols());
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    for j in 0..a.ncols() {
        let (ra, va) = a.col(j);
        let (rb, vb) = b.col(j);
        let (mut i, mut k) = (0usize, 0usize);
        while i < ra.len() && k < rb.len() {
            if ra[i] < rb[k] {
                i += 1;
            } else if rb[k] < ra[i] {
                k += 1;
            } else {
                let v = S::mul(va[i], vb[k]);
                if !S::is_zero(&v) {
                    rowidx.push(ra[i]);
                    vals.push(v);
                }
                i += 1;
                k += 1;
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vals)
}

/// Keep entries of `a` whose position is *absent* from `mask` — the
/// complement mask (`A .* !M`) used by BFS to remove already-visited
/// vertices from a frontier.
pub fn mask_complement<T: Copy + Send + Sync, U: Copy + Send + Sync>(
    a: &Csc<T>,
    mask: &Csc<U>,
) -> Csc<T> {
    assert_eq!(a.nrows(), mask.nrows());
    assert_eq!(a.ncols(), mask.ncols());
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for j in 0..a.ncols() {
        let (ra, va) = a.col(j);
        let (rm, _) = mask.col(j);
        let mut k = 0usize;
        for (&r, &v) in ra.iter().zip(va) {
            while k < rm.len() && rm[k] < r {
                k += 1;
            }
            if k >= rm.len() || rm[k] != r {
                rowidx.push(r);
                vals.push(v);
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::PlusTimes;

    fn m(entries: &[(Vidx, Vidx, f64)]) -> Csc<f64> {
        let mut c = Coo::new(3, 3);
        for &(r, cc, v) in entries {
            c.push(r, cc, v);
        }
        c.to_csc()
    }

    #[test]
    fn add_union() {
        let a = m(&[(0, 0, 1.0), (1, 1, 2.0)]);
        let b = m(&[(1, 1, 3.0), (2, 2, 4.0)]);
        let c = ewise_add::<PlusTimes<f64>>(&a, &b);
        assert_eq!(c.get(0, 0), Some(1.0));
        assert_eq!(c.get(1, 1), Some(5.0));
        assert_eq!(c.get(2, 2), Some(4.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn add_cancellation_drops_zero() {
        let a = m(&[(0, 0, 1.0)]);
        let b = m(&[(0, 0, -1.0)]);
        let c = ewise_add::<PlusTimes<f64>>(&a, &b);
        assert_eq!(c.nnz(), 0, "exact cancellation leaves no stored entry");
    }

    #[test]
    fn mul_intersection() {
        let a = m(&[(0, 0, 2.0), (1, 1, 2.0)]);
        let b = m(&[(1, 1, 3.0), (2, 2, 4.0)]);
        let c = ewise_mul::<PlusTimes<f64>>(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(1, 1), Some(6.0));
    }

    #[test]
    fn complement_mask_removes_visited() {
        let a = m(&[(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0)]);
        let visited = m(&[(1, 0, 9.0)]);
        let c = mask_complement(&a, &visited);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.get(0, 0), Some(1.0));
    }

    #[test]
    fn add_is_commutative() {
        let a = m(&[(0, 0, 1.0), (2, 1, -3.5), (1, 2, 0.25)]);
        let b = m(&[(0, 0, 4.0), (2, 2, 2.0)]);
        assert_eq!(
            ewise_add::<PlusTimes<f64>>(&a, &b),
            ewise_add::<PlusTimes<f64>>(&b, &a)
        );
    }
}
