//! Coordinate (triplet) format — the assembly / interchange format.
//!
//! All generators produce COO; distributed redistribution (outer-product
//! algorithm, 2D/3D layouts) moves COO triples between ranks.

use crate::csc::Csc;
use crate::types::Vidx;

/// A sparse matrix as a bag of `(row, col, value)` triples.
///
/// Duplicates are permitted until [`Coo::compress`] merges them; `to_csc`
/// compresses implicitly.
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    /// `(row, col, value)` triples in arbitrary order.
    pub entries: Vec<(Vidx, Vidx, T)>,
}

impl<T: Copy + Send + Sync> Coo<T> {
    /// An empty `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Coo {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Build from a triple list, validating indices in debug builds.
    pub fn from_entries(nrows: usize, ncols: usize, entries: Vec<(Vidx, Vidx, T)>) -> Self {
        debug_assert!(entries
            .iter()
            .all(|&(r, c, _)| (r as usize) < nrows && (c as usize) < ncols));
        Coo {
            nrows,
            ncols,
            entries,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triples (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Append one triple.
    #[inline]
    pub fn push(&mut self, row: Vidx, col: Vidx, val: T) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.entries.push((row, col, val));
    }

    /// Sort triples into column-major order (column, then row).
    pub fn sort_col_major(&mut self) {
        self.entries.sort_unstable_by_key(|a| (a.1, a.0));
    }

    /// Merge duplicate coordinates with `combine`, leaving sorted
    /// column-major order.
    pub fn compress(&mut self, combine: impl Fn(T, T) -> T) {
        if self.entries.is_empty() {
            return;
        }
        self.sort_col_major();
        let mut w = 0usize;
        for i in 1..self.entries.len() {
            let (r, c, v) = self.entries[i];
            let last = &mut self.entries[w];
            if last.0 == r && last.1 == c {
                last.2 = combine(last.2, v);
            } else {
                w += 1;
                self.entries[w] = (r, c, v);
            }
        }
        self.entries.truncate(w + 1);
    }

    /// Convert to CSC, merging duplicates with `combine`.
    pub fn to_csc_with(&self, combine: impl Fn(T, T) -> T) -> Csc<T> {
        let mut sorted = self.clone();
        sorted.compress(combine);
        let mut colptr = vec![0usize; self.ncols + 1];
        for &(_, c, _) in &sorted.entries {
            colptr[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        let rowidx: Vec<Vidx> = sorted.entries.iter().map(|e| e.0).collect();
        let vals: Vec<T> = sorted.entries.iter().map(|e| e.2).collect();
        Csc::from_parts(self.nrows, self.ncols, colptr, rowidx, vals)
    }

    /// Transpose by swapping coordinates (O(nnz), no sort).
    pub fn transpose(mut self) -> Self {
        for e in &mut self.entries {
            std::mem::swap(&mut e.0, &mut e.1);
        }
        std::mem::swap(&mut self.nrows, &mut self.ncols);
        self
    }
}

impl Coo<f64> {
    /// Convert to CSC merging duplicates by addition (the common case).
    pub fn to_csc(&self) -> Csc<f64> {
        self.to_csc_with(|a, b| a + b)
    }

    /// Symmetrize: `A ← A ∪ Aᵀ` structurally, keeping the max magnitude on
    /// coincident entries. Used to build undirected graphs for partitioning.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.nrows, self.ncols, "symmetrize requires square");
        let mirrored: Vec<_> = self
            .entries
            .iter()
            .filter(|&&(r, c, _)| r != c)
            .map(|&(r, c, v)| (c, r, v))
            .collect();
        self.entries.extend(mirrored);
        self.compress(|a, b| if a.abs() >= b.abs() { a } else { b });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_merges_duplicates() {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(0, 0, 2.0);
        m.push(2, 1, 5.0);
        m.push(1, 0, 3.0);
        m.compress(|a, b| a + b);
        assert_eq!(
            m.entries,
            vec![(0, 0, 3.0), (1, 0, 3.0), (2, 1, 5.0)],
            "duplicates merged and column-major sorted"
        );
    }

    #[test]
    fn to_csc_structure() {
        let mut m = Coo::new(4, 3);
        m.push(3, 2, 1.0);
        m.push(0, 0, 2.0);
        m.push(2, 0, 4.0);
        let c = m.to_csc();
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 3);
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.col(0), (&[0, 2][..], &[2.0, 4.0][..]));
        assert_eq!(c.col(1).0.len(), 0);
        assert_eq!(c.col(2), (&[3][..], &[1.0][..]));
    }

    #[test]
    fn transpose_swaps() {
        let mut m = Coo::new(2, 5);
        m.push(1, 4, 7.0);
        let t = m.transpose();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.entries, vec![(4, 1, 7.0)]);
    }

    #[test]
    fn symmetrize_mirrors_offdiagonal() {
        let mut m = Coo::new(3, 3);
        m.push(0, 1, 2.0);
        m.push(1, 1, 9.0);
        m.symmetrize();
        let c = m.to_csc();
        assert_eq!(c.get(0, 1), Some(2.0));
        assert_eq!(c.get(1, 0), Some(2.0));
        assert_eq!(c.get(1, 1), Some(9.0));
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn empty_matrix() {
        let m: Coo<f64> = Coo::new(5, 5);
        let c = m.to_csc();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.ncols(), 5);
    }
}
