//! Semiring abstraction for generalized SpGEMM.
//!
//! SpGEMM over a semiring `(⊕, ⊗, 0)` computes
//! `C[i][j] = ⊕_k A[i][k] ⊗ B[k][j]`. The paper's applications need several:
//! plus-times (numeric multiply, AMG Galerkin products), or-and (reachability
//! / symbolic structure), min-plus (shortest paths), and plus-times over path
//! counts (betweenness-centrality forward search).

use std::fmt::Debug;

/// A semiring over element type [`Semiring::T`].
///
/// Implementations are zero-sized tag types so kernels monomorphize to the
/// exact arithmetic with no dynamic dispatch.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// The element type of matrix values.
    type T: Copy + Send + Sync + PartialEq + Debug + 'static;

    /// The additive identity (`⊕`-identity, also the implicit value of
    /// structural zeros).
    fn zero() -> Self::T;

    /// The additive combine `a ⊕ b`.
    fn add(a: Self::T, b: Self::T) -> Self::T;

    /// The multiplicative combine `a ⊗ b`.
    fn mul(a: Self::T, b: Self::T) -> Self::T;

    /// Whether `a` equals the additive identity. Output entries that reduce
    /// to zero are dropped (the convention CombBLAS uses).
    #[inline]
    fn is_zero(a: &Self::T) -> bool {
        *a == Self::zero()
    }
}

/// Ordinary arithmetic `(+, ×, 0)` over a numeric type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlusTimes<T>(std::marker::PhantomData<T>);

macro_rules! impl_plus_times {
    ($($t:ty),*) => {$(
        impl Semiring for PlusTimes<$t> {
            type T = $t;
            #[inline] fn zero() -> $t { 0 as $t }
            #[inline] fn add(a: $t, b: $t) -> $t { a + b }
            #[inline] fn mul(a: $t, b: $t) -> $t { a * b }
        }
    )*};
}
impl_plus_times!(f64, f32, i64, u64, u32);

/// Boolean semiring `(∨, ∧, false)`: structure-only products (reachability,
/// symbolic SpGEMM, MIS-2 distance-2 neighborhoods).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrAnd;

impl Semiring for OrAnd {
    type T = bool;
    #[inline]
    fn zero() -> bool {
        false
    }
    #[inline]
    fn add(a: bool, b: bool) -> bool {
        a | b
    }
    #[inline]
    fn mul(a: bool, b: bool) -> bool {
        a & b
    }
}

/// Tropical semiring `(min, +, ∞)` over `f64`: shortest-path relaxations
/// (the Bellman-Ford-style BC variant of Solomonik et al. cited in §II-C3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = f64;
    #[inline]
    fn zero() -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(vals: &[S::T]) {
        for &a in vals {
            // zero is additive identity
            assert_eq!(S::add(a, S::zero()), a);
            assert_eq!(S::add(S::zero(), a), a);
            for &b in vals {
                // commutative add
                assert_eq!(S::add(a, b), S::add(b, a));
                for &c in vals {
                    // associativity
                    assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
                    assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn plus_times_laws() {
        check_laws::<PlusTimes<i64>>(&[-3, 0, 1, 7, 11]);
    }

    #[test]
    fn or_and_laws() {
        check_laws::<OrAnd>(&[false, true]);
    }

    #[test]
    fn min_plus_laws() {
        check_laws::<MinPlus>(&[0.0, 1.5, 3.0, f64::INFINITY]);
    }

    #[test]
    fn min_plus_annihilator() {
        // ∞ (the zero) annihilates under ⊗ = +
        assert_eq!(MinPlus::mul(f64::INFINITY, 3.0), f64::INFINITY);
        assert!(MinPlus::is_zero(&f64::INFINITY));
    }

    #[test]
    fn zero_detection() {
        assert!(PlusTimes::<f64>::is_zero(&0.0));
        assert!(!PlusTimes::<f64>::is_zero(&1e-300));
        assert!(OrAnd::is_zero(&false));
    }
}
