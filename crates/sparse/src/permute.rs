//! Permutations of sparse matrices.
//!
//! Random symmetric permutation is the load-balancing preprocessing step the
//! 2D/3D sparsity-oblivious algorithms require (§II-B1): instead of
//! `C = A·B` they compute `(P C Pᵀ) = (P A Pᵀ)(P B Pᵀ)`. The sparsity-aware
//! 1D algorithm instead wants to *preserve* structure (or apply a
//! partitioning permutation), which is the paper's central point.

use crate::csc::Csc;
use crate::types::{vidx, Vidx};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A permutation of `0..n`. `perm.apply(i)` is the new label of old index
/// `i`; i.e. `new[perm.apply(i)] = old[i]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Perm {
    /// `forward[old] = new`
    forward: Vec<Vidx>,
}

impl Perm {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Perm {
            forward: (0..n).map(vidx).collect(),
        }
    }

    /// Build from a forward map (`forward[old] = new`); must be a bijection.
    pub fn from_forward(forward: Vec<Vidx>) -> Self {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            assert!((v as usize) < n && !seen[v as usize], "not a permutation");
            seen[v as usize] = true;
        }
        Perm { forward }
    }

    /// A uniformly random permutation (Fisher–Yates).
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut forward: Vec<Vidx> = (0..n).map(vidx).collect();
        forward.shuffle(&mut rng);
        Perm { forward }
    }

    pub fn len(&self) -> usize {
        self.forward.len()
    }

    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// New label of old index `i`.
    #[inline]
    pub fn apply(&self, i: usize) -> Vidx {
        self.forward[i]
    }

    /// The raw forward map.
    pub fn forward(&self) -> &[Vidx] {
        &self.forward
    }

    /// The inverse permutation (`inv.apply(new) = old`).
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0 as Vidx; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = vidx(old);
        }
        Perm { forward: inv }
    }

    /// Composition: `self` then `other` (`(other ∘ self).apply(i) =
    /// other.apply(self.apply(i))`).
    pub fn then(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len());
        Perm {
            forward: self
                .forward
                .iter()
                .map(|&m| other.forward[m as usize])
                .collect(),
        }
    }
}

/// Apply row and column permutations: `B = P_r · A · P_cᵀ`, i.e.
/// `B[pr(i), pc(j)] = A[i, j]`.
pub fn permute<T: Copy + Send + Sync>(a: &Csc<T>, row_perm: &Perm, col_perm: &Perm) -> Csc<T> {
    assert_eq!(row_perm.len(), a.nrows());
    assert_eq!(col_perm.len(), a.ncols());
    let inv_col = col_perm.inverse();
    let mut colptr = vec![0usize; a.ncols() + 1];
    // Column j of the result is old column inv_col(j).
    for (new_j, slot) in colptr.iter_mut().skip(1).enumerate() {
        *slot = a.col_nnz(inv_col.apply(new_j) as usize);
    }
    for j in 0..a.ncols() {
        colptr[j + 1] += colptr[j];
    }
    let mut rowidx = vec![0 as Vidx; a.nnz()];
    let mut vals: Vec<T> = Vec::with_capacity(a.nnz());
    // Fill per new column; rows must be re-sorted after relabeling.
    let mut scratch: Vec<(Vidx, T)> = Vec::new();
    unsafe { vals.set_len(a.nnz()) };
    for (new_j, &base) in colptr[..a.ncols()].iter().enumerate() {
        let old_j = inv_col.apply(new_j) as usize;
        let (rows, v) = a.col(old_j);
        scratch.clear();
        scratch.extend(
            rows.iter()
                .zip(v)
                .map(|(&r, &x)| (row_perm.apply(r as usize), x)),
        );
        scratch.sort_unstable_by_key(|e| e.0);
        for (t, &(r, x)) in scratch.iter().enumerate() {
            rowidx[base + t] = r;
            vals[base + t] = x;
        }
    }
    Csc::from_parts(a.nrows(), a.ncols(), colptr, rowidx, vals)
}

/// Symmetric permutation `P A Pᵀ` — relabels the graph's vertices, the
/// operation both random permutation and graph partitioning apply (§II-B).
pub fn permute_symmetric<T: Copy + Send + Sync>(a: &Csc<T>, p: &Perm) -> Csc<T> {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "symmetric permutation requires square"
    );
    permute(a, p, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csc<f64> {
        let mut m = Coo::new(3, 3);
        m.push(0, 0, 1.0);
        m.push(1, 0, 2.0);
        m.push(2, 2, 3.0);
        m.push(0, 2, 4.0);
        m.to_csc()
    }

    #[test]
    fn identity_is_noop() {
        let a = sample();
        let p = Perm::identity(3);
        assert_eq!(permute_symmetric(&a, &p), a);
    }

    #[test]
    fn inverse_undoes() {
        let a = sample();
        let p = Perm::random(3, 42);
        let b = permute_symmetric(&a, &p);
        let back = permute_symmetric(&b, &p.inverse());
        assert_eq!(back, a);
    }

    #[test]
    fn entries_relocate() {
        let a = sample();
        // cycle 0->1->2->0
        let p = Perm::from_forward(vec![1, 2, 0]);
        let b = permute(&a, &p, &p);
        for (r, c, v) in a.iter() {
            assert_eq!(
                b.get(p.apply(r as usize) as usize, p.apply(c as usize) as usize),
                Some(v)
            );
        }
        assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn rectangular_permute() {
        let mut m = Coo::new(2, 4);
        m.push(0, 3, 5.0);
        m.push(1, 1, 6.0);
        let a = m.to_csc();
        let pr = Perm::from_forward(vec![1, 0]);
        let pc = Perm::from_forward(vec![2, 0, 3, 1]);
        let b = permute(&a, &pr, &pc);
        assert_eq!(b.get(1, 1), Some(5.0)); // (0,3) -> (1,1)
        assert_eq!(b.get(0, 0), Some(6.0)); // (1,1) -> (0,0)
    }

    #[test]
    fn composition() {
        let p1 = Perm::random(10, 1);
        let p2 = Perm::random(10, 2);
        let both = p1.then(&p2);
        for i in 0..10 {
            assert_eq!(both.apply(i), p2.apply(p1.apply(i) as usize));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_bijection() {
        Perm::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn random_perm_is_seeded() {
        assert_eq!(Perm::random(64, 7), Perm::random(64, 7));
        assert_ne!(Perm::random(64, 7), Perm::random(64, 8));
    }
}
