//! Shared index types.
//!
//! Row/column indices are `u32` (the evaluation matrices in the paper have at
//! most 16.2M rows; our scaled analogs are far smaller), which halves index
//! bytes moved over the simulated network relative to `usize` — the same
//! trade-off CombBLAS makes with its 32-bit local indices.

/// Row / column index within a matrix dimension.
pub type Vidx = u32;

/// Convert a `usize` to [`Vidx`], panicking on overflow (debug-friendly,
/// and dimensions beyond `u32::MAX` are out of scope for this library).
#[inline]
pub fn vidx(x: usize) -> Vidx {
    debug_assert!(x <= u32::MAX as usize, "index {x} exceeds u32 range");
    x as Vidx
}

/// Ceiling division for splitting dimensions across ranks.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vidx_roundtrip() {
        assert_eq!(vidx(0), 0);
        assert_eq!(vidx(12345) as usize, 12345);
    }

    #[test]
    fn div_ceil_edges() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
        assert_eq!(div_ceil(8, 4), 2);
    }
}
