//! KKT / saddle-point matrices — the structure class of nlpkkt200
//! (an interior-point KKT system: near-banded Hessian blocks plus global
//! constraint coupling, Figure 2) and of stokes (velocity-pressure saddle
//! point).

use crate::coo::Coo;
use crate::csc::Csc;
use crate::gen::banded::banded;
use crate::types::vidx;
use rand::{Rng, SeedableRng};

/// Symmetric KKT arrow matrix
/// `[[H, Jᵀ], [J, -δI]]` where `H` is `n1 × n1` banded (half-bandwidth
/// `band`) and `J` is `n2 × n1` with `per_row` entries per constraint row
/// spread across H's column space (the global coupling that produces the
/// "arrow" borders in Figure 2).
pub fn kkt_arrow(n1: usize, n2: usize, band: usize, per_row: usize, seed: u64) -> Csc<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let h = banded(n1, band, 0.5, true, seed.wrapping_add(17));
    let n = n1 + n2;
    let mut m = Coo::new(n, n);
    // H block
    for (r, c, v) in h.iter() {
        m.push(r, c, v);
    }
    // J and Jᵀ blocks: each constraint touches per_row spread-out columns,
    // with mild locality (a window around a random anchor) like real
    // constraint Jacobians.
    for i in 0..n2 {
        let anchor = rng.gen_range(0..n1);
        for _ in 0..per_row {
            let span = (n1 / 50).max(4);
            let off = rng.gen_range(0..span * 2) as i64 - span as i64;
            let jcol = (anchor as i64 + off).rem_euclid(n1 as i64) as usize;
            let v = rng.gen_range(0.1..1.0f64);
            m.push(vidx(n1 + i), vidx(jcol), v);
            m.push(vidx(jcol), vidx(n1 + i), v);
        }
        // regularization diagonal
        m.push(vidx(n1 + i), vidx(n1 + i), -1e-2);
    }
    // Repeated draws of the same (row, col) are summed; addition is
    // commutative so mirrored duplicates stay exactly symmetric.
    m.to_csc_with(|a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_symmetry() {
        let a = kkt_arrow(800, 100, 12, 6, 1);
        assert_eq!(a.nrows(), 900);
        assert_eq!(a.max_abs_diff(&a.transpose()), 0.0);
    }

    #[test]
    fn arrow_rows_are_global() {
        // constraint rows reach across most of the Hessian's column space
        let (n1, n2) = (1000, 80);
        let a = kkt_arrow(n1, n2, 10, 8, 2);
        let t = a.transpose(); // rows as columns
        let mut spread_found = false;
        for i in 0..n2 {
            let (cols, _) = t.col(n1 + i);
            if cols.len() >= 2 {
                let span = cols[cols.len() - 2] as i64 - cols[0] as i64;
                if span > (n1 / 2) as i64 {
                    spread_found = true;
                }
            }
        }
        assert!(spread_found, "some constraints should couple globally");
    }

    #[test]
    fn hessian_block_banded() {
        let (n1, band) = (500, 10);
        let a = kkt_arrow(n1, 40, band, 4, 3);
        for (r, c, _) in a.iter() {
            if (r as usize) < n1 && (c as usize) < n1 {
                assert!((r as i64 - c as i64).unsigned_abs() as usize <= band + 1);
            }
        }
    }
}
