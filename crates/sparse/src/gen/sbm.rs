//! Stochastic block model — the structure class of eukarya (protein
//! similarity network): strong community structure, but vertex labels carry
//! no locality, so in natural order the matrix *looks* unstructured
//! (CV/memA ≈ 1.0 in Fig. 5b) and only graph partitioning recovers the
//! clusters (the paper's 2.05× METIS speedup).

use crate::coo::Coo;
use crate::csc::Csc;
use crate::permute::{permute_symmetric, Perm};
use crate::types::vidx;
use rand::{Rng, SeedableRng};

/// Symmetric SBM graph: `n` vertices in `k` equal communities; expected
/// within-community degree `deg_in` and across-community degree `deg_out`
/// per vertex. When `relabel` is set the vertex ids are randomly shuffled,
/// hiding the block structure from natural-order layouts.
pub fn sbm(n: usize, k: usize, deg_in: f64, deg_out: f64, relabel: bool, seed: u64) -> Csc<f64> {
    assert!(k >= 1 && n >= k);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let block = n / k;
    let mut m = Coo::new(n, n);
    let within = (n as f64 * deg_in / 2.0) as usize;
    let across = (n as f64 * deg_out / 2.0) as usize;
    for _ in 0..within {
        let b = rng.gen_range(0..k);
        let lo = b * block;
        let hi = if b == k - 1 { n } else { lo + block };
        let (i, j) = (rng.gen_range(lo..hi), rng.gen_range(lo..hi));
        if i != j {
            m.push(vidx(i), vidx(j), 1.0);
        }
    }
    for _ in 0..across {
        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if i != j {
            m.push(vidx(i), vidx(j), 1.0);
        }
    }
    m.symmetrize();
    let a = m.to_csc_with(|x, _| x);
    if relabel {
        let p = Perm::random(n, seed.wrapping_add(0x5B));
        permute_symmetric(&a, &p)
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_of(i: usize, n: usize, k: usize) -> usize {
        (i / (n / k)).min(k - 1)
    }

    #[test]
    fn unlabeled_sbm_is_block_concentrated() {
        let (n, k) = (1000, 10);
        let a = sbm(n, k, 12.0, 1.0, false, 1);
        let mut inside = 0usize;
        let mut total = 0usize;
        for (r, c, _) in a.iter() {
            total += 1;
            if block_of(r as usize, n, k) == block_of(c as usize, n, k) {
                inside += 1;
            }
        }
        assert!(
            inside as f64 > 0.8 * total as f64,
            "within-block fraction {inside}/{total}"
        );
    }

    #[test]
    fn relabeling_hides_structure() {
        let (n, k) = (1000, 10);
        let a = sbm(n, k, 12.0, 1.0, true, 2);
        let mut inside = 0usize;
        let mut total = 0usize;
        for (r, c, _) in a.iter() {
            total += 1;
            if block_of(r as usize, n, k) == block_of(c as usize, n, k) {
                inside += 1;
            }
        }
        // After a random relabeling the apparent block share is ~1/k.
        assert!(
            (inside as f64) < 0.3 * total as f64,
            "relabeled block share {inside}/{total} should look uniform"
        );
    }

    #[test]
    fn symmetric_and_loopless() {
        let a = sbm(400, 4, 8.0, 2.0, true, 3);
        assert_eq!(a.max_abs_diff(&a.transpose()), 0.0);
        for j in 0..a.ncols() {
            assert_eq!(a.get(j, j), None);
        }
    }
}
