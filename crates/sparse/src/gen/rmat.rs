//! R-MAT (recursive matrix) power-law graph generator — the standard
//! Graph500-style scale-free model; used in BC experiments and as a skewed
//! stress input for load-balance tests.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;
use rand::{Rng, SeedableRng};

/// `2^scale` vertices, `edge_factor · 2^scale` edges, quadrant probabilities
/// `(a, b, c, d)` (Graph500 defaults: 0.57, 0.19, 0.19, 0.05). Returns the
/// symmetrized adjacency with unit weights.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> Csc<f64> {
    let (a, b, c, _d) = probs;
    assert!((probs.0 + probs.1 + probs.2 + probs.3 - 1.0).abs() < 1e-9);
    let n = 1usize << scale;
    let nedges = edge_factor * n;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Coo::new(n, n);
    m.entries.reserve(nedges * 2);
    for _ in 0..nedges {
        let (mut lo_r, mut hi_r) = (0usize, n);
        let (mut lo_c, mut hi_c) = (0usize, n);
        while hi_r - lo_r > 1 {
            let mid_r = (lo_r + hi_r) / 2;
            let mid_c = (lo_c + hi_c) / 2;
            let p: f64 = rng.gen();
            // Slight per-level noise keeps degree tails realistic.
            let noise = 1.0 + rng.gen_range(-0.05..0.05);
            if p < a * noise {
                hi_r = mid_r;
                hi_c = mid_c;
            } else if p < (a + b) * noise {
                hi_r = mid_r;
                lo_c = mid_c;
            } else if p < (a + b + c) * noise {
                lo_r = mid_r;
                hi_c = mid_c;
            } else {
                lo_r = mid_r;
                lo_c = mid_c;
            }
        }
        if lo_r != lo_c {
            m.push(vidx(lo_r), vidx(lo_c), 1.0);
        }
    }
    m.symmetrize();
    m.to_csc_with(|x, _| x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_symmetry() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 1);
        assert_eq!(g.nrows(), 256);
        assert_eq!(g.max_abs_diff(&g.transpose()), 0.0);
        assert!(g.nnz() > 256, "should be reasonably dense");
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = rmat(10, 8, (0.57, 0.19, 0.19, 0.05), 2);
        let counts = g.nnz_per_col();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "R-MAT should have heavy-tail degrees: max {max} mean {mean}"
        );
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(7, 4, (0.57, 0.19, 0.19, 0.05), 3);
        for j in 0..g.ncols() {
            assert_eq!(g.get(j, j), None);
        }
    }
}
