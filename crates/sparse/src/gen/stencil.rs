//! Finite-difference / finite-element stencil matrices — naturally
//! block-banded, the structure class of queen_4147 (3D FEM) where the
//! sparsity-aware 1D algorithm wins without any permutation.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;

/// 27-point Laplacian-like stencil on an `nx × ny × nz` grid (3D FEM
/// analog). `symmetric_values` gives an SPD-style (-1 off-diagonal, 26
/// diagonal) matrix; otherwise mild asymmetric perturbations are applied.
pub fn stencil3d(nx: usize, ny: usize, nz: usize, symmetric_values: bool) -> Csc<f64> {
    let n = nx * ny * nz;
    let id = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    let mut m = Coo::new(n, n);
    m.entries.reserve(n * 27);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = id(x, y, z);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let j = id(xx as usize, yy as usize, zz as usize);
                            let v = if i == j {
                                26.0
                            } else if symmetric_values {
                                -1.0
                            } else {
                                // deterministic asymmetry from index parity
                                -1.0 - 0.25 * ((i + 2 * j) % 3) as f64
                            };
                            m.push(vidx(i), vidx(j), v);
                        }
                    }
                }
            }
        }
    }
    m.to_csc_with(|a, _| a)
}

/// 9-point 2D stencil with an upwind convection term (asymmetric), the
/// velocity block of a CFD discretization. `peclet` controls asymmetry
/// strength.
pub fn stencil2d_convection(nx: usize, ny: usize, peclet: f64) -> Csc<f64> {
    let n = nx * ny;
    let id = |x: usize, y: usize| x + nx * y;
    let mut m = Coo::new(n, n);
    m.entries.reserve(n * 9);
    for y in 0..ny {
        for x in 0..nx {
            let i = id(x, y);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    let j = id(xx as usize, yy as usize);
                    let v = if i == j {
                        8.0
                    } else {
                        // upwind bias: west/south neighbors weighted extra
                        let bias = if dx < 0 || dy < 0 { peclet } else { 0.0 };
                        -1.0 - bias
                    };
                    m.push(vidx(i), vidx(j), v);
                }
            }
        }
    }
    m.to_csc_with(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil3d_shape_and_band() {
        let a = stencil3d(4, 4, 4, true);
        assert_eq!(a.nrows(), 64);
        // interior points have 27 neighbors; corners have 8
        let max_col = a.nnz_per_col().into_iter().max().unwrap();
        let min_col = a.nnz_per_col().into_iter().min().unwrap();
        assert_eq!(max_col, 27);
        assert_eq!(min_col, 8);
    }

    #[test]
    fn stencil3d_symmetric() {
        let a = stencil3d(3, 4, 5, true);
        assert_eq!(a.max_abs_diff(&a.transpose()), 0.0);
    }

    #[test]
    fn stencil3d_banded_locality() {
        // every entry within |i-j| <= nx*ny + nx + 1 band
        let (nx, ny, nz) = (5, 5, 5);
        let a = stencil3d(nx, ny, nz, true);
        let band = (nx * ny + nx + 1) as i64;
        for (r, c, _) in a.iter() {
            assert!((r as i64 - c as i64).abs() <= band);
        }
        let _ = nz;
    }

    #[test]
    fn convection_is_asymmetric() {
        let a = stencil2d_convection(8, 8, 0.6);
        assert!(a.max_abs_diff(&a.transpose()) > 0.1);
        assert_eq!(a.nrows(), 64);
    }

    #[test]
    fn diagonal_dominance() {
        let a = stencil3d(3, 3, 3, true);
        for j in 0..a.ncols() {
            let (rows, vals) = a.col(j);
            let diag = rows
                .iter()
                .zip(vals)
                .find(|(&r, _)| r as usize == j)
                .map(|(_, &v)| v)
                .unwrap();
            let off: f64 = rows
                .iter()
                .zip(vals)
                .filter(|(&r, _)| r as usize != j)
                .map(|(_, &v)| v.abs())
                .sum();
            assert!(diag >= off, "column {j}: diag {diag} off {off}");
        }
    }
}
