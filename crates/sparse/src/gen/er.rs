//! Erdős–Rényi random sparse matrices — the model Ballard et al.'s 1D/2D/3D
//! communication analysis (§II-A) is stated over, and the paper's "worst
//! case" for sparsity-aware 1D (no structure to exploit).

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;
use rand::{Rng, SeedableRng};

/// `nrows × ncols` matrix with ~`d` expected nonzeros per column, uniform
/// positions, values in `(0, 1]`.
pub fn erdos_renyi(nrows: usize, ncols: usize, d: f64, seed: u64) -> Csc<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let total = (d * ncols as f64).round() as usize;
    let mut m = Coo::new(nrows, ncols);
    m.entries.reserve(total);
    for _ in 0..total {
        m.push(
            vidx(rng.gen_range(0..nrows)),
            vidx(rng.gen_range(0..ncols)),
            rng.gen_range(0.0..1.0f64) + f64::MIN_POSITIVE,
        );
    }
    m.to_csc_with(|a, _| a)
}

/// Square symmetric ER graph adjacency with ~`d` expected nonzeros per
/// column after symmetrization.
pub fn erdos_renyi_square(n: usize, d: f64, seed: u64) -> Csc<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let total = (d * n as f64 / 2.0).round() as usize;
    let mut m = Coo::new(n, n);
    m.entries.reserve(total * 2);
    for _ in 0..total {
        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
        let v = rng.gen_range(0.0..1.0f64) + f64::MIN_POSITIVE;
        m.push(vidx(i), vidx(j), v);
    }
    m.symmetrize();
    m.to_csc_with(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_close_to_requested() {
        let a = erdos_renyi(2000, 2000, 8.0, 1);
        let d = a.nnz() as f64 / 2000.0;
        assert!(
            (7.0..=8.1).contains(&d),
            "density {d} (duplicates shrink it slightly)"
        );
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let a = erdos_renyi_square(500, 6.0, 2);
        assert!(a.max_abs_diff(&a.transpose()) == 0.0);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(erdos_renyi(100, 100, 4.0, 7), erdos_renyi(100, 100, 4.0, 7));
        assert_ne!(erdos_renyi(100, 100, 4.0, 7).nnz(), 0);
    }

    #[test]
    fn rectangular_shapes() {
        let a = erdos_renyi(50, 200, 3.0, 3);
        assert_eq!(a.nrows(), 50);
        assert_eq!(a.ncols(), 200);
    }
}
