//! Synthetic matrix generators.
//!
//! Stand-ins for the paper's SuiteSparse evaluation set (Table II) that
//! preserve each matrix's *structure class* — the property the sparsity-aware
//! algorithm's behavior depends on — at a laptop-tractable scale. See
//! [`catalog`] for the per-dataset mapping and DESIGN.md for the
//! substitution rationale.

mod banded;
mod er;
mod kkt;
mod rmat;
mod sbm;
mod stencil;

pub mod catalog;

pub use banded::banded;
pub use catalog::{Dataset, Scale};
pub use er::{erdos_renyi, erdos_renyi_square};
pub use kkt::kkt_arrow;
pub use rmat::rmat;
pub use sbm::sbm;
pub use stencil::{stencil2d_convection, stencil3d};
