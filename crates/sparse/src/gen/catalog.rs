//! Dataset catalog: scaled analogs of the paper's Table II evaluation set.
//!
//! | Paper matrix | rows | nnz  | class                     | analog here |
//! |--------------|------|------|---------------------------|-------------|
//! | queen_4147   | 4M   | 330M | 3D FEM, symmetric         | 27-pt 3D stencil |
//! | stokes       | 11M  | 350M | CFD saddle point, nonsym  | 2D convection + constraint coupling |
//! | eukarya      | 3M   | 360M | protein network, hidden clusters | relabeled SBM |
//! | hv15r        | 2M   | 283M | CFD, nonsym, banded       | variable-band matrix |
//! | nlpkkt200    | 16M  | 448M | KKT optimization, symmetric | banded Hessian + arrow |
//!
//! Sizes are controlled by [`Scale`]; nnz/row ratios track the originals.

use crate::csc::Csc;
use crate::gen::{banded, kkt_arrow, sbm, stencil2d_convection, stencil3d};
use crate::stats::{matrix_stats, MatrixStats};

/// Problem-size knob shared by tests (`Tiny`) and benches (`Small`
/// default; `Medium` via `SA_SCALE=medium`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~2–6k rows: unit/integration tests.
    Tiny,
    /// ~30–60k rows, 0.5–2M nnz: default benchmark scale.
    Small,
    /// ~100–250k rows: slower, better-separated measurements.
    Medium,
}

impl Scale {
    /// Read from the `SA_SCALE` environment variable (default Small).
    pub fn from_env() -> Scale {
        match std::env::var("SA_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("medium") => Scale::Medium,
            _ => Scale::Small,
        }
    }
}

/// The five Table II analogs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    QueenLike,
    StokesLike,
    EukaryaLike,
    Hv15rLike,
    NlpkktLike,
}

impl Dataset {
    /// All five, in the paper's Table II order.
    pub const ALL: [Dataset; 5] = [
        Dataset::QueenLike,
        Dataset::StokesLike,
        Dataset::EukaryaLike,
        Dataset::Hv15rLike,
        Dataset::NlpkktLike,
    ];

    /// The four used in the squaring strong-scaling study (Fig. 9) —
    /// the paper shows queen, stokes, hv15r, nlpkkt200 there.
    pub const SCALING_SET: [Dataset; 4] = [
        Dataset::QueenLike,
        Dataset::StokesLike,
        Dataset::Hv15rLike,
        Dataset::NlpkktLike,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Dataset::QueenLike => "queen_like",
            Dataset::StokesLike => "stokes_like",
            Dataset::EukaryaLike => "eukarya_like",
            Dataset::Hv15rLike => "hv15r_like",
            Dataset::NlpkktLike => "nlpkkt_like",
        }
    }

    /// Whether the paper's original has useful *natural-order* locality
    /// (hv15r, queen, stokes, nlpkkt do; eukarya does not — §IV-A1).
    pub fn naturally_structured(&self) -> bool {
        !matches!(self, Dataset::EukaryaLike)
    }

    /// Generate the matrix at `scale`.
    pub fn build(&self, scale: Scale) -> Csc<f64> {
        match (self, scale) {
            (Dataset::QueenLike, Scale::Tiny) => stencil3d(10, 10, 10, true),
            (Dataset::QueenLike, Scale::Small) => stencil3d(34, 34, 34, true),
            (Dataset::QueenLike, Scale::Medium) => stencil3d(54, 54, 54, true),

            (Dataset::StokesLike, Scale::Tiny) => stokes_like(16, 1),
            (Dataset::StokesLike, Scale::Small) => stokes_like(190, 1),
            (Dataset::StokesLike, Scale::Medium) => stokes_like(320, 1),

            (Dataset::EukaryaLike, Scale::Tiny) => sbm(2_000, 20, 14.0, 1.5, true, 11),
            (Dataset::EukaryaLike, Scale::Small) => sbm(40_000, 128, 26.0, 2.5, true, 11),
            (Dataset::EukaryaLike, Scale::Medium) => sbm(120_000, 256, 28.0, 2.5, true, 11),

            (Dataset::Hv15rLike, Scale::Tiny) => banded(3_000, 40, 0.35, false, 7),
            (Dataset::Hv15rLike, Scale::Small) => banded(40_000, 90, 0.35, false, 7),
            (Dataset::Hv15rLike, Scale::Medium) => banded(120_000, 130, 0.4, false, 7),

            (Dataset::NlpkktLike, Scale::Tiny) => kkt_arrow(2_500, 300, 20, 6, 5),
            (Dataset::NlpkktLike, Scale::Small) => kkt_arrow(44_000, 5_000, 45, 8, 5),
            (Dataset::NlpkktLike, Scale::Medium) => kkt_arrow(140_000, 16_000, 60, 8, 5),
        }
    }

    /// Generate and describe (Table II row).
    pub fn build_with_stats(&self, scale: Scale) -> (Csc<f64>, MatrixStats) {
        let a = self.build(scale);
        let s = matrix_stats(self.name(), &a);
        (a, s)
    }
}

/// Stokes-like saddle point: convection-diffusion velocity block on an
/// `m × m` grid coupled to an `m²/4` pressure space; nonsymmetric like the
/// original.
fn stokes_like(m: usize, seed: u64) -> Csc<f64> {
    use crate::coo::Coo;
    use crate::types::vidx;
    use rand::{Rng, SeedableRng};
    let nv = m * m;
    let np = (m / 2) * (m / 2);
    let n = nv + np;
    let vel = stencil2d_convection(m, m, 0.5);
    let mut out = Coo::new(n, n);
    for (r, c, v) in vel.iter() {
        out.push(r, c, v);
    }
    // divergence/gradient coupling: each pressure cell couples to the 4
    // velocity nodes of its coarse cell; B and -Bᵀ blocks (nonsymmetric).
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let half = m / 2;
    for py in 0..half {
        for px in 0..half {
            let p = nv + px + half * py;
            for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                let vx = (2 * px + dx).min(m - 1);
                let vy = (2 * py + dy).min(m - 1);
                let v = vx + m * vy;
                let w = rng.gen_range(0.2..1.0f64);
                out.push(vidx(p), vidx(v), w);
                out.push(vidx(v), vidx(p), -w);
            }
            out.push(vidx(p), vidx(p), 1e-2);
        }
    }
    out.to_csc_with(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_catalog_builds_and_matches_classes() {
        for d in Dataset::ALL {
            let (a, s) = d.build_with_stats(Scale::Tiny);
            assert!(a.nnz() > 0, "{}", d.name());
            assert_eq!(a.nrows(), a.ncols(), "{} square", d.name());
            assert!(s.avg_nnz_per_row > 3.0, "{} too sparse", d.name());
        }
    }

    #[test]
    fn symmetry_flags_match_table2() {
        // Table II: queen/eukarya/nlpkkt symmetric, stokes/hv15r not.
        let expect = [
            (Dataset::QueenLike, true),
            (Dataset::StokesLike, false),
            (Dataset::EukaryaLike, true),
            (Dataset::Hv15rLike, false),
            (Dataset::NlpkktLike, true),
        ];
        for (d, sym) in expect {
            let (_, s) = d.build_with_stats(Scale::Tiny);
            assert_eq!(s.symmetric, sym, "{}", d.name());
        }
    }

    #[test]
    fn scale_ordering() {
        for d in [Dataset::QueenLike, Dataset::Hv15rLike] {
            let t = d.build(Scale::Tiny).nnz();
            let s = d.build(Scale::Small).nnz();
            assert!(s > 5 * t, "{}: small {s} should dwarf tiny {t}", d.name());
        }
    }

    #[test]
    fn deterministic() {
        let a = Dataset::EukaryaLike.build(Scale::Tiny);
        let b = Dataset::EukaryaLike.build(Scale::Tiny);
        assert_eq!(a, b);
    }
}
