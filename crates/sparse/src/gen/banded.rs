//! Variable-bandwidth banded matrices — the structure class of hv15r
//! (2M×2M CFD matrix whose nonzeros cluster near the diagonal in natural
//! order, Figure 3). The 1D algorithm fetches almost nothing remote on
//! these without any permutation.

use crate::coo::Coo;
use crate::csc::Csc;
use crate::types::vidx;
use rand::{Rng, SeedableRng};

/// `n × n` banded matrix. The half-bandwidth varies sinusoidally between
/// `band/3` and `band` along the diagonal (real CFD matrices have variable
/// block sizes), and each column holds ~`fill` of its band positions.
/// `symmetric` mirrors entries.
pub fn banded(n: usize, band: usize, fill: f64, symmetric: bool, seed: u64) -> Csc<f64> {
    assert!(band >= 1 && fill > 0.0 && fill <= 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut m = Coo::new(n, n);
    for j in 0..n {
        // local half-bandwidth
        let phase = (j as f64 / n as f64) * std::f64::consts::TAU * 3.0;
        let local = ((band as f64) * (0.66 + 0.33 * phase.sin())).max(2.0) as usize;
        let lo = j.saturating_sub(local);
        let hi = (j + local + 1).min(n);
        // strong diagonal
        m.push(vidx(j), vidx(j), (local + 1) as f64);
        // In symmetric mode sample only the lower triangle (i > j) and
        // mirror, so each unordered pair is drawn exactly once.
        let lo = if symmetric { j + 1 } else { lo };
        for i in lo..hi {
            if i == j {
                continue;
            }
            if rng.gen_bool(fill) {
                let v = -rng.gen_range(0.1..1.0f64);
                m.push(vidx(i), vidx(j), v);
                if symmetric {
                    m.push(vidx(j), vidx(i), v);
                }
            }
        }
    }
    m.to_csc_with(|a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_band() {
        let n = 500;
        let band = 20;
        let a = banded(n, band, 0.5, false, 1);
        for (r, c, _) in a.iter() {
            assert!((r as i64 - c as i64).unsigned_abs() as usize <= band + 1);
        }
    }

    #[test]
    fn symmetric_option() {
        let a = banded(300, 10, 0.4, true, 2);
        assert_eq!(a.max_abs_diff(&a.transpose()), 0.0);
    }

    #[test]
    fn fill_scales_nnz() {
        let lo = banded(400, 16, 0.2, false, 3).nnz();
        let hi = banded(400, 16, 0.8, false, 3).nnz();
        assert!(
            hi > 2 * lo,
            "fill 0.8 ({hi}) should far exceed fill 0.2 ({lo})"
        );
    }

    #[test]
    fn full_diagonal() {
        let a = banded(100, 8, 0.3, false, 4);
        for j in 0..100 {
            assert!(a.get(j, j).is_some());
        }
    }
}
