//! Compressed Sparse Row storage.
//!
//! Needed where row access is the natural pattern: the outer-product 1D
//! algorithm (Algorithm 3) redistributes B by *rows*, and the row-wise local
//! outer product then streams B's rows.

use crate::csc::Csc;
use crate::types::Vidx;

/// A CSR sparse matrix over element type `T`. Column indices are sorted
/// ascending within each row.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<Vidx>,
    vals: Vec<T>,
}

impl<T: Copy + Send + Sync> Csr<T> {
    /// Assemble from raw parts, checking invariants in debug builds.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Vidx>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(rowptr.len(), nrows + 1);
        assert_eq!(colidx.len(), vals.len());
        assert_eq!(*rowptr.last().unwrap(), colidx.len());
        debug_assert!((0..nrows).all(|i| {
            colidx[rowptr[i]..rowptr[i + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Reinterpret a CSC matrix's storage as the CSR of its transpose
    /// (zero-copy: `(Aᵀ) in CSR` has identical arrays to `A in CSC`).
    pub fn transpose_of_csc(m: &Csc<T>) -> Csr<T> {
        Csr {
            nrows: m.ncols(),
            ncols: m.nrows(),
            rowptr: m.colptr().to_vec(),
            colidx: m.rowidx().to_vec(),
            vals: m.vals().to_vec(),
        }
    }

    /// Convert a CSC matrix to CSR of the *same* matrix (one transpose pass).
    pub fn from_csc(m: &Csc<T>) -> Csr<T> {
        Csr::transpose_of_csc(&m.transpose())
    }

    /// Convert to CSC of the same matrix.
    pub fn to_csc(&self) -> Csc<T> {
        // Our storage equals CSC of the transpose; transposing that yields
        // CSC of the original.
        Csc::from_parts(
            self.ncols,
            self.nrows,
            self.rowptr.clone(),
            self.colidx.clone(),
            self.vals.clone(),
        )
        .transpose()
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The (column indices, values) of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Vidx], &[T]) {
        let (s, e) = (self.rowptr[i], self.rowptr[i + 1]);
        (&self.colidx[s..e], &self.vals[s..e])
    }

    /// nnz of row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// Extract row range `[r0, r1)` as a standalone CSR.
    pub fn extract_rows(&self, r0: usize, r1: usize) -> Csr<T> {
        assert!(r0 <= r1 && r1 <= self.nrows);
        let (s, e) = (self.rowptr[r0], self.rowptr[r1]);
        let rowptr = self.rowptr[r0..=r1].iter().map(|&p| p - s).collect();
        Csr {
            nrows: r1 - r0,
            ncols: self.ncols,
            rowptr,
            colidx: self.colidx[s..e].to_vec(),
            vals: self.vals[s..e].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csc<f64> {
        let mut m = Coo::new(3, 4);
        m.push(0, 0, 1.0);
        m.push(0, 3, 2.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.to_csc()
    }

    #[test]
    fn csc_csr_roundtrip() {
        let c = sample();
        let r = Csr::from_csc(&c);
        assert_eq!(r.to_csc(), c);
    }

    #[test]
    fn row_access() {
        let r = Csr::from_csc(&sample());
        assert_eq!(r.row(0), (&[0, 3][..], &[1.0, 2.0][..]));
        assert_eq!(r.row(1), (&[1][..], &[3.0][..]));
        assert_eq!(r.row(2), (&[0][..], &[4.0][..]));
        assert_eq!(r.row_nnz(0), 2);
    }

    #[test]
    fn transpose_of_csc_is_zero_cost_alias() {
        let c = sample();
        let t = Csr::transpose_of_csc(&c);
        // t represents Aᵀ in CSR: row j of t = column j of A.
        assert_eq!(t.nrows(), c.ncols());
        assert_eq!(t.row(0), c.col(0));
        assert_eq!(t.row(3), c.col(3));
    }

    #[test]
    fn extract_rows_subset() {
        let r = Csr::from_csc(&sample());
        let s = r.extract_rows(1, 3);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row(0), (&[1][..], &[3.0][..]));
        assert_eq!(s.row(1), (&[0][..], &[4.0][..]));
    }
}
