//! The 3D split algorithm (§II-B2) — the memory-hungry baseline.
//!
//! `P = q² · c` ranks form `c` layers of `q × q` grids. `A` is split by
//! *columns* across layers and `B` by *rows*, so layer `l` owns the `k`
//! slice `layer_offsets[l]..layer_offsets[l+1]` of the inner dimension and
//! can form its full partial product `C_l = A(:,k_l) · B(k_l,:)`
//! independently with a per-layer SUMMA. A fiber reduce-scatter then sums
//! the `c` partials and leaves every rank owning a disjoint block of `C`.

use crate::spgemm1d::FetchMode;
use crate::summa2d::{spgemm_summa_2d_ws, DistMat2D, SummaReport};
use crate::summa2d_sa::{spgemm_summa_2d_sa_ws_cfg, SaSummaReport};
use sa_mpisim::{Breakdown, Comm, CommStats, Grid3D, PrefetchConfig};
use sa_sparse::semiring::{PlusTimes, Semiring};
use sa_sparse::spgemm::SpgemmWorkspace;
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::{Coo, Csc};
use std::sync::Arc;
use std::time::Instant;

/// Which dimension the layer split cuts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerSplit {
    /// Rows split across layers (the `B` operand).
    Rows,
    /// Columns split across layers (the `A` operand).
    Cols,
}

/// A 3D-distributed sparse matrix: a layer split of one dimension, then a
/// 2D block distribution of the layer slice.
#[derive(Clone)]
pub struct DistMat3D {
    nrows: usize,
    ncols: usize,
    split: LayerSplit,
    layer_offsets: Arc<Vec<usize>>,
    within: DistMat2D,
}

impl DistMat3D {
    /// Split one dimension of `m` across layers (`Cols` for the `A`
    /// operand, `Rows` for `B`), then 2D-distribute the slice on this
    /// rank's layer grid — the single cut-then-distribute path behind both
    /// public constructors.
    pub fn from_global_split<C: Comm>(
        grid: &Grid3D<C>,
        m: &Csc<f64>,
        split: LayerSplit,
    ) -> DistMat3D {
        let dim = match split {
            LayerSplit::Cols => m.ncols(),
            LayerSplit::Rows => m.nrows(),
        };
        let layer_offsets = Arc::new(crate::uniform_offsets(dim, grid.layers));
        let (lo, hi) = (layer_offsets[grid.mylayer], layer_offsets[grid.mylayer + 1]);
        let slice = match split {
            LayerSplit::Cols => m.extract_cols(lo, hi),
            LayerSplit::Rows => m.extract_rows(lo, hi),
        };
        DistMat3D {
            nrows: m.nrows(),
            ncols: m.ncols(),
            split,
            layer_offsets,
            within: DistMat2D::from_global(&grid.layer_grid, &slice),
        }
    }

    /// Split `a`'s columns across layers, then 2D-distribute the slice on
    /// this rank's layer grid.
    pub fn from_global_split_cols<C: Comm>(grid: &Grid3D<C>, a: &Csc<f64>) -> DistMat3D {
        DistMat3D::from_global_split(grid, a, LayerSplit::Cols)
    }

    /// Split `b`'s rows across layers, then 2D-distribute the slice.
    pub fn from_global_split_rows<C: Comm>(grid: &Grid3D<C>, b: &Csc<f64>) -> DistMat3D {
        DistMat3D::from_global_split(grid, b, LayerSplit::Rows)
    }

    /// Wrap an already-distributed layer slice (`within` must be this
    /// rank's 2D view of its layer's slice).
    pub fn from_local_parts(
        nrows: usize,
        ncols: usize,
        split: LayerSplit,
        layer_offsets: Arc<Vec<usize>>,
        within: DistMat2D,
    ) -> DistMat3D {
        DistMat3D {
            nrows,
            ncols,
            split,
            layer_offsets,
            within,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn split(&self) -> LayerSplit {
        self.split
    }

    pub fn layer_offsets(&self) -> &Arc<Vec<usize>> {
        &self.layer_offsets
    }

    pub fn within(&self) -> &DistMat2D {
        &self.within
    }
}

/// One rank's disjoint block of the 3D product.
#[derive(Clone, Debug)]
pub struct Owned3DBlock {
    /// Global shape of `C`.
    pub nrows: usize,
    pub ncols: usize,
    /// Global position of `local`'s (0, 0).
    pub row0: usize,
    pub col0: usize,
    pub local: Csc<f64>,
}

impl Owned3DBlock {
    /// Reassemble the global product at world rank 0. Collective.
    pub fn gather<C: Comm>(&self, comm: &C) -> Option<Csc<f64>> {
        let triples: Vec<(Vidx, Vidx, f64)> = self
            .local
            .iter()
            .map(|(r, c, v)| {
                (
                    vidx(self.row0 + r as usize),
                    vidx(self.col0 + c as usize),
                    v,
                )
            })
            .collect();
        let parts = comm.gatherv(0, triples)?;
        let mut coo = Coo::new(self.nrows, self.ncols);
        for part in parts {
            for (r, c, v) in part {
                coo.push(r, c, v);
            }
        }
        Some(coo.to_csc_with(|x, y| x + y))
    }
}

/// What one rank observed during [`spgemm_split_3d`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Split3DReport {
    /// Per-layer SUMMA peak plus this rank's full partial block — the
    /// replication cost that makes 3D memory-hungry (Fig. 14).
    pub peak_local_bytes: u64,
    /// The per-layer SUMMA's own report.
    pub summa: SummaReport,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    pub breakdown: Breakdown,
}

fn assert_conformal_3d(a: &DistMat3D, b: &DistMat3D) {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols,
    );
    assert_eq!(a.split, LayerSplit::Cols, "A must be column-split");
    assert_eq!(b.split, LayerSplit::Rows, "B must be row-split");
    assert_eq!(
        a.layer_offsets[..],
        b.layer_offsets[..],
        "layer splits of the inner dimension must align"
    );
}

/// Fiber reduce-scatter of the per-layer partial product: the partial
/// block's rows are split among the `c` layers, combined across the fiber
/// with the semiring's `⊕`. Returns this rank's owned `C` block (global
/// position included) and the seconds spent — the step shared by the
/// oblivious and sparsity-aware 3D paths.
fn fiber_reduce_scatter<C: Comm, S: Semiring<T = f64>>(
    grid: &Grid3D<C>,
    nrows: usize,
    ncols: usize,
    partial: &DistMat2D,
) -> (Owned3DBlock, f64) {
    let t0 = Instant::now();
    let row0 = partial.row_offsets()[grid.myrow];
    let col0 = partial.col_offsets()[grid.mycol];
    let block_h = partial.row_offsets()[grid.myrow + 1] - row0;
    let sub = crate::uniform_offsets(block_h, grid.layers);
    let mut sends: Vec<Vec<(Vidx, Vidx, f64)>> = vec![Vec::new(); grid.layers];
    for (r, c, v) in partial.local().iter() {
        let l = sub.partition_point(|&o| o <= r as usize) - 1;
        sends[l].push((r - vidx(sub[l]), c, v));
    }
    let recvd = grid.fiber_comm.alltoallv(sends);
    let my_h = sub[grid.mylayer + 1] - sub[grid.mylayer];
    let my_w = partial.col_offsets()[grid.mycol + 1] - col0;
    let mut coo = Coo::new(my_h, my_w);
    for part in recvd {
        for (r, c, v) in part {
            coo.push(r, c, v);
        }
    }
    let local = coo.to_csc_with(S::add);
    let block = Owned3DBlock {
        nrows,
        ncols,
        row0: row0 + sub[grid.mylayer],
        col0,
        local,
    };
    (block, t0.elapsed().as_secs_f64())
}

/// 3D split SpGEMM `C = A·B` with `A` column-split and `B` row-split
/// across layers. Collective over `comm` (the communicator `grid` was
/// built from).
pub fn spgemm_split_3d<C: Comm>(
    comm: &C,
    grid: &Grid3D<C>,
    a: &DistMat3D,
    b: &DistMat3D,
) -> (Owned3DBlock, Split3DReport) {
    spgemm_split_3d_ws(comm, grid, a, b, &SpgemmWorkspace::new())
}

/// [`spgemm_split_3d`] with a caller-held [`SpgemmWorkspace`] threaded
/// through the per-layer SUMMA's stage multiplies, so iterative drivers
/// keep the oblivious baseline's compute path allocation-free too.
pub fn spgemm_split_3d_ws<C: Comm>(
    comm: &C,
    grid: &Grid3D<C>,
    a: &DistMat3D,
    b: &DistMat3D,
    ws: &SpgemmWorkspace<f64>,
) -> (Owned3DBlock, Split3DReport) {
    assert_conformal_3d(a, b);
    let stats0 = comm.stats();
    let t_call = Instant::now();

    // --- per-layer partial product (independent SUMMAs) ---
    let (partial, summa_rep) =
        spgemm_summa_2d_ws(&grid.layer_comm, &grid.layer_grid, &a.within, &b.within, ws);
    let peak = summa_rep.peak_local_bytes + partial.local().mem_bytes() as u64;

    // --- fiber reduce-scatter: block rows split among the c layers ---
    let (block, reduce_s) =
        fiber_reduce_scatter::<_, PlusTimes<f64>>(grid, a.nrows, b.ncols, &partial);

    let comm_delta = comm.stats() - stats0;
    let total_s = t_call.elapsed().as_secs_f64();
    let report = Split3DReport {
        peak_local_bytes: peak,
        summa: summa_rep,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s: summa_rep.breakdown.comm_s + reduce_s,
            comp_s: summa_rep.breakdown.comp_s,
            other_s: (total_s - summa_rep.breakdown.total_s() - reduce_s).max(0.0),
        },
    };
    (block, report)
}

/// What one rank observed during [`spgemm_split_3d_sa`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SaSplit3DReport {
    /// The per-layer sparsity-aware SUMMA's own report.
    pub summa: SaSummaReport,
    /// Bytes this rank sent in the fiber reduce-scatter.
    pub reduce_bytes: u64,
    /// Per-layer peak plus this rank's full partial block.
    pub peak_local_bytes: u64,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    pub breakdown: Breakdown,
}

/// Sparsity-aware 3D split SpGEMM: each layer runs the needed-set 2D
/// SUMMA ([`spgemm_summa_2d_sa`](crate::summa2d_sa::spgemm_summa_2d_sa))
/// on its slice, then the partials are summed with the same fiber
/// reduce-scatter the oblivious path uses. Collective.
pub fn spgemm_split_3d_sa<C: Comm>(
    comm: &C,
    grid: &Grid3D<C>,
    a: &DistMat3D,
    b: &DistMat3D,
    mode: FetchMode,
) -> (Owned3DBlock, SaSplit3DReport) {
    spgemm_split_3d_sa_ws::<_, PlusTimes<f64>>(comm, grid, a, b, mode, &SpgemmWorkspace::new())
}

/// [`spgemm_split_3d_sa`] generic over the semiring, with a caller-held
/// [`SpgemmWorkspace`] (zero steady-state allocations on the compute and
/// assembly paths). Overlap follows the `SA_PREFETCH` environment knob.
pub fn spgemm_split_3d_sa_ws<C: Comm, S: Semiring<T = f64>>(
    comm: &C,
    grid: &Grid3D<C>,
    a: &DistMat3D,
    b: &DistMat3D,
    mode: FetchMode,
    ws: &SpgemmWorkspace<f64>,
) -> (Owned3DBlock, SaSplit3DReport) {
    spgemm_split_3d_sa_ws_cfg::<C, S>(comm, grid, a, b, mode, PrefetchConfig::from_env(), ws)
}

/// [`spgemm_split_3d_sa_ws`] with an explicit [`PrefetchConfig`]: each
/// layer's sparsity-aware SUMMA prefetches its A-side gets behind the B
/// exchange under `cfg`. Result and traffic are byte-identical with
/// overlap on or off — the knob only moves wall-clock.
pub fn spgemm_split_3d_sa_ws_cfg<C: Comm, S: Semiring<T = f64>>(
    comm: &C,
    grid: &Grid3D<C>,
    a: &DistMat3D,
    b: &DistMat3D,
    mode: FetchMode,
    cfg: PrefetchConfig,
    ws: &SpgemmWorkspace<f64>,
) -> (Owned3DBlock, SaSplit3DReport) {
    assert_conformal_3d(a, b);
    let stats0 = comm.stats();
    let t_call = Instant::now();

    let (partial, summa_rep) = spgemm_summa_2d_sa_ws_cfg::<_, S>(
        &grid.layer_comm,
        &grid.layer_grid,
        &a.within,
        &b.within,
        mode,
        cfg,
        ws,
    );
    let peak = summa_rep.peak_local_bytes + partial.local().mem_bytes() as u64;

    let reduce0 = comm.stats();
    let (block, reduce_s) = fiber_reduce_scatter::<_, S>(grid, a.nrows, b.ncols, &partial);
    let reduce_bytes = (comm.stats() - reduce0).sent_bytes;

    let comm_delta = comm.stats() - stats0;
    let total_s = t_call.elapsed().as_secs_f64();
    let comm_s = summa_rep.breakdown.comm_s + reduce_s;
    let report = SaSplit3DReport {
        summa: summa_rep,
        reduce_bytes,
        peak_local_bytes: peak,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s,
            comp_s: summa_rep.breakdown.comp_s,
            other_s: (total_s - comm_s - summa_rep.breakdown.comp_s).max(0.0),
        },
    };
    (block, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi, stencil3d};

    fn check(a: &Csc<f64>, b: &Csc<f64>, q: usize, layers: usize) {
        let expect = serial_spgemm(a, b);
        let u = Universe::new(q * q * layers);
        let got = u.run(|comm| {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, a);
            let db = DistMat3D::from_global_split_rows(&grid, b);
            let (c, _rep) = spgemm_split_3d(comm, &grid, &da, &db);
            c.gather(comm)
        });
        let got = got[0].as_ref().unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-10,
            "{q}x{q}x{layers}: diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn matches_serial_across_geometries() {
        let a = erdos_renyi(48, 48, 4.0, 1);
        check(&a, &a, 1, 1);
        check(&a, &a, 2, 1);
        check(&a, &a, 2, 2);
        check(&a, &a, 1, 4);
    }

    #[test]
    fn rectangular_operands() {
        let a = erdos_renyi(40, 26, 3.0, 2);
        let b = erdos_renyi(26, 44, 3.0, 3);
        check(&a, &b, 2, 2);
    }

    #[test]
    fn owned_blocks_are_disjoint_and_cover() {
        let a = stencil3d(4, 4, 3, true);
        let u = Universe::new(8);
        let blocks = u.run(|comm| {
            let grid = Grid3D::new(comm, 2, 2);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &a);
            let (c, rep) = spgemm_split_3d(comm, &grid, &da, &db);
            assert!(rep.peak_local_bytes > 0);
            (c.row0, c.col0, c.local.nrows(), c.local.ncols())
        });
        // every (row, col) of C belongs to exactly one block
        let n = a.nrows();
        let mut owners = vec![0u32; n * n];
        for &(r0, c0, h, w) in &blocks {
            for r in r0..r0 + h {
                for c in c0..c0 + w {
                    owners[r * n + c] += 1;
                }
            }
        }
        assert!(owners.iter().all(|&x| x == 1), "blocks must tile C exactly");
    }
}
