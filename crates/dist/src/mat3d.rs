//! The 3D split algorithm (§II-B2) — the memory-hungry baseline.
//!
//! `P = q² · c` ranks form `c` layers of `q × q` grids. `A` is split by
//! *columns* across layers and `B` by *rows*, so layer `l` owns the `k`
//! slice `layer_offsets[l]..layer_offsets[l+1]` of the inner dimension and
//! can form its full partial product `C_l = A(:,k_l) · B(k_l,:)`
//! independently with a per-layer SUMMA. A fiber reduce-scatter then sums
//! the `c` partials and leaves every rank owning a disjoint block of `C`.

use crate::summa2d::{spgemm_summa_2d, DistMat2D, SummaReport};
use sa_mpisim::{Breakdown, Comm, CommStats, Grid3D};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::{Coo, Csc};
use std::sync::Arc;
use std::time::Instant;

/// Which dimension the layer split cuts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerSplit {
    /// Rows split across layers (the `B` operand).
    Rows,
    /// Columns split across layers (the `A` operand).
    Cols,
}

/// A 3D-distributed sparse matrix: a layer split of one dimension, then a
/// 2D block distribution of the layer slice.
#[derive(Clone)]
pub struct DistMat3D {
    nrows: usize,
    ncols: usize,
    split: LayerSplit,
    layer_offsets: Arc<Vec<usize>>,
    within: DistMat2D,
}

impl DistMat3D {
    /// Split `a`'s columns across layers, then 2D-distribute the slice on
    /// this rank's layer grid.
    pub fn from_global_split_cols(grid: &Grid3D, a: &Csc<f64>) -> DistMat3D {
        let layer_offsets = Arc::new(crate::uniform_offsets(a.ncols(), grid.layers));
        let slice = a.extract_cols(layer_offsets[grid.mylayer], layer_offsets[grid.mylayer + 1]);
        DistMat3D {
            nrows: a.nrows(),
            ncols: a.ncols(),
            split: LayerSplit::Cols,
            layer_offsets,
            within: DistMat2D::from_global(&grid.layer_grid, &slice),
        }
    }

    /// Split `b`'s rows across layers, then 2D-distribute the slice.
    pub fn from_global_split_rows(grid: &Grid3D, b: &Csc<f64>) -> DistMat3D {
        let layer_offsets = Arc::new(crate::uniform_offsets(b.nrows(), grid.layers));
        let slice = b.extract_rows(layer_offsets[grid.mylayer], layer_offsets[grid.mylayer + 1]);
        DistMat3D {
            nrows: b.nrows(),
            ncols: b.ncols(),
            split: LayerSplit::Rows,
            layer_offsets,
            within: DistMat2D::from_global(&grid.layer_grid, &slice),
        }
    }

    /// Wrap an already-distributed layer slice (`within` must be this
    /// rank's 2D view of its layer's slice).
    pub fn from_local_parts(
        nrows: usize,
        ncols: usize,
        split: LayerSplit,
        layer_offsets: Arc<Vec<usize>>,
        within: DistMat2D,
    ) -> DistMat3D {
        DistMat3D {
            nrows,
            ncols,
            split,
            layer_offsets,
            within,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn split(&self) -> LayerSplit {
        self.split
    }

    pub fn layer_offsets(&self) -> &Arc<Vec<usize>> {
        &self.layer_offsets
    }

    pub fn within(&self) -> &DistMat2D {
        &self.within
    }
}

/// One rank's disjoint block of the 3D product.
#[derive(Clone, Debug)]
pub struct Owned3DBlock {
    /// Global shape of `C`.
    pub nrows: usize,
    pub ncols: usize,
    /// Global position of `local`'s (0, 0).
    pub row0: usize,
    pub col0: usize,
    pub local: Csc<f64>,
}

impl Owned3DBlock {
    /// Reassemble the global product at world rank 0. Collective.
    pub fn gather(&self, comm: &Comm) -> Option<Csc<f64>> {
        let triples: Vec<(Vidx, Vidx, f64)> = self
            .local
            .iter()
            .map(|(r, c, v)| {
                (
                    vidx(self.row0 + r as usize),
                    vidx(self.col0 + c as usize),
                    v,
                )
            })
            .collect();
        let parts = comm.gatherv(0, triples)?;
        let mut coo = Coo::new(self.nrows, self.ncols);
        for part in parts {
            for (r, c, v) in part {
                coo.push(r, c, v);
            }
        }
        Some(coo.to_csc_with(|x, y| x + y))
    }
}

/// What one rank observed during [`spgemm_split_3d`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Split3DReport {
    /// Per-layer SUMMA peak plus this rank's full partial block — the
    /// replication cost that makes 3D memory-hungry (Fig. 14).
    pub peak_local_bytes: u64,
    /// The per-layer SUMMA's own report.
    pub summa: SummaReport,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    pub breakdown: Breakdown,
}

/// 3D split SpGEMM `C = A·B` with `A` column-split and `B` row-split
/// across layers. Collective over `comm` (the communicator `grid` was
/// built from).
pub fn spgemm_split_3d(
    comm: &Comm,
    grid: &Grid3D,
    a: &DistMat3D,
    b: &DistMat3D,
) -> (Owned3DBlock, Split3DReport) {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols,
    );
    assert_eq!(a.split, LayerSplit::Cols, "A must be column-split");
    assert_eq!(b.split, LayerSplit::Rows, "B must be row-split");
    assert_eq!(
        a.layer_offsets[..],
        b.layer_offsets[..],
        "layer splits of the inner dimension must align"
    );
    let stats0 = comm.stats();
    let t_call = Instant::now();

    // --- per-layer partial product (independent SUMMAs) ---
    let (partial, summa_rep) =
        spgemm_summa_2d(&grid.layer_comm, &grid.layer_grid, &a.within, &b.within);

    // my partial block's global position
    let row0 = partial.row_offsets()[grid.myrow];
    let col0 = partial.col_offsets()[grid.mycol];
    let block_h = partial.row_offsets()[grid.myrow + 1] - row0;
    let peak = summa_rep.peak_local_bytes + partial.local().mem_bytes() as u64;

    // --- fiber reduce-scatter: block rows split among the c layers ---
    let t0 = Instant::now();
    let sub = crate::uniform_offsets(block_h, grid.layers);
    let mut sends: Vec<Vec<(Vidx, Vidx, f64)>> = vec![Vec::new(); grid.layers];
    for (r, c, v) in partial.local().iter() {
        let l = sub.partition_point(|&o| o <= r as usize) - 1;
        sends[l].push((r - vidx(sub[l]), c, v));
    }
    let recvd = grid.fiber_comm.alltoallv(sends);
    let my_h = sub[grid.mylayer + 1] - sub[grid.mylayer];
    let my_w = partial.col_offsets()[grid.mycol + 1] - col0;
    let mut coo = Coo::new(my_h, my_w);
    for part in recvd {
        for (r, c, v) in part {
            coo.push(r, c, v);
        }
    }
    let local = coo.to_csc_with(|x, y| x + y);
    let reduce_s = t0.elapsed().as_secs_f64();

    let comm_delta = comm.stats() - stats0;
    let total_s = t_call.elapsed().as_secs_f64();
    let block = Owned3DBlock {
        nrows: a.nrows,
        ncols: b.ncols,
        row0: row0 + sub[grid.mylayer],
        col0,
        local,
    };
    let report = Split3DReport {
        peak_local_bytes: peak,
        summa: summa_rep,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s: summa_rep.breakdown.comm_s + reduce_s,
            comp_s: summa_rep.breakdown.comp_s,
            other_s: (total_s - summa_rep.breakdown.total_s() - reduce_s).max(0.0),
        },
    };
    (block, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi, stencil3d};

    fn check(a: &Csc<f64>, b: &Csc<f64>, q: usize, layers: usize) {
        let expect = serial_spgemm(a, b);
        let u = Universe::new(q * q * layers);
        let got = u.run(|comm| {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, a);
            let db = DistMat3D::from_global_split_rows(&grid, b);
            let (c, _rep) = spgemm_split_3d(comm, &grid, &da, &db);
            c.gather(comm)
        });
        let got = got[0].as_ref().unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-10,
            "{q}x{q}x{layers}: diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn matches_serial_across_geometries() {
        let a = erdos_renyi(48, 48, 4.0, 1);
        check(&a, &a, 1, 1);
        check(&a, &a, 2, 1);
        check(&a, &a, 2, 2);
        check(&a, &a, 1, 4);
    }

    #[test]
    fn rectangular_operands() {
        let a = erdos_renyi(40, 26, 3.0, 2);
        let b = erdos_renyi(26, 44, 3.0, 3);
        check(&a, &b, 2, 2);
    }

    #[test]
    fn owned_blocks_are_disjoint_and_cover() {
        let a = stencil3d(4, 4, 3, true);
        let u = Universe::new(8);
        let blocks = u.run(|comm| {
            let grid = Grid3D::new(comm, 2, 2);
            let da = DistMat3D::from_global_split_cols(&grid, &a);
            let db = DistMat3D::from_global_split_rows(&grid, &a);
            let (c, rep) = spgemm_split_3d(comm, &grid, &da, &db);
            assert!(rep.peak_local_bytes > 0);
            (c.row0, c.col0, c.local.nrows(), c.local.ncols())
        });
        // every (row, col) of C belongs to exactly one block
        let n = a.nrows();
        let mut owners = vec![0u32; n * n];
        for &(r0, c0, h, w) in &blocks {
            for r in r0..r0 + h {
                for c in c0..c0 + w {
                    owners[r * n + c] += 1;
                }
            }
        }
        assert!(owners.iter().all(|&x| x == 1), "blocks must tile C exactly");
    }
}
