//! Algorithm 1 — the sparsity-aware 1D SpGEMM.
//!
//! `C = A·B` with `A`, `B`, `C` all 1D column-distributed. `B` and `C`
//! never move. Each rank:
//!
//! 1. replicates every rank's nonzero-column metadata (one allgather —
//!    Algorithm 1's `⃗D` and prefix-sum arrays),
//! 2. computes from its local `B` slice's row support exactly which remote
//!    `A` columns the multiply touches,
//! 3. coalesces them into ranged one-sided fetches per [`FetchMode`]
//!    (§III-A block fetching), pulling row ids and values through a single
//!    [`PairedWindow`] — two RDMA messages per interval, appended straight
//!    into the compacted `Ã` arrays with no per-column allocation,
//! 4. multiplies `Ã · B_loc` with the local hybrid kernel on the rank's
//!    compute pool.
//!
//! [`analyze_1d`] runs steps 1–2 (plus the pricing of step 3) without
//! moving numeric data — the §V `CV/memA` criterion is available *before*
//! committing to a layout. [`spgemm_1d_overlap`] additionally overlaps the
//! local partial product with the remote fetches (§III-A notes the paper's
//! implementation leaves this on the table).

use crate::dist1d::DistMat1D;
use crate::fetch::{exchange_meta, plan_fetch, FetchPlan, RankMeta, ENTRY_BYTES};
use crate::shape::ShapeError;
use sa_mpisim::{
    Breakdown, Comm, CommStats, PairedWindow, PhaseTimes, PrefetchConfig, Prefetcher, Wire,
    WireError,
};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{spgemm_with, Kernel, Schedule, SpgemmWorkspace};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::Dcsc;
use std::time::Instant;

/// How needed remote columns are coalesced into window fetches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchMode {
    /// Sparsity-oblivious baseline: fetch every remote rank's whole slice.
    FullMatrix,
    /// §III-A block fetching: each remote slice's nonzero-column list is
    /// cut into `K` blocks, fetched whole when any of their columns is
    /// needed. Bounded messages, bounded over-fetch.
    Block(usize),
    /// Merge needed columns that are adjacent in the owner's storage:
    /// byte-minimal like [`FetchMode::ColumnExact`], fewer messages.
    ContiguousRuns,
    /// One fetch pair per needed column — byte-minimal, message-maximal.
    ColumnExact,
}

impl Default for FetchMode {
    /// The benches' default granularity (the paper's K = 2048 scaled to
    /// these dataset sizes; see `sa_bench::plan`).
    fn default() -> FetchMode {
        FetchMode::Block(256)
    }
}

/// Execution plan for one 1D multiply.
///
/// ```
/// use sa_dist::{FetchMode, Plan1D};
/// use sa_sparse::spgemm::Kernel;
///
/// // defaults: block fetching, hybrid kernel, global volume metrics on
/// let plan = Plan1D::default();
/// assert_eq!(plan.fetch_mode, FetchMode::Block(256));
///
/// // a per-level inner-loop plan: byte-minimal fetches, local stats only
/// let inner = Plan1D {
///     fetch_mode: FetchMode::ColumnExact,
///     kernel: Kernel::Heap,
///     global_stats: false,
///     ..Default::default()
/// };
/// assert!(!inner.global_stats);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Plan1D {
    pub fetch_mode: FetchMode,
    /// Local kernel for `Ã · B_loc`.
    pub kernel: Kernel,
    /// How the local kernel's column loop is split into parallel work
    /// items (flop-balanced by default; `Schedule::Fixed(256)` is the
    /// pre-scheduling behaviour, kept for A/B comparison).
    pub schedule: Schedule,
    /// Compute the global-volume fields of [`SpgemmReport`] (two extra
    /// allreduces). Disable in per-level inner loops (BC) where only local
    /// counters matter.
    pub global_stats: bool,
}

impl Default for Plan1D {
    /// Block fetching at the benches' granularity, hybrid kernel,
    /// flop-balanced scheduling, global volume metrics on (written out
    /// because `bool::default()` would silently turn them off).
    fn default() -> Plan1D {
        Plan1D {
            fetch_mode: FetchMode::default(),
            kernel: Kernel::Hybrid,
            schedule: Schedule::default(),
            global_stats: true,
        }
    }
}

/// What one rank observed during [`spgemm_1d`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpgemmReport {
    /// Bytes this rank pulled through the windows (index + value arrays).
    pub fetched_bytes: u64,
    /// Bytes that actually crossed the wire in this call — always equal to
    /// `fetched_bytes`; named for symmetry with
    /// [`Self::cache_hit_bytes`] so session callers can split a multiply's
    /// column demand into fresh traffic vs cache reuse.
    pub fresh_bytes: u64,
    /// Bytes of needed columns served out of a
    /// [`SpgemmSession`](crate::session::SpgemmSession) fetch cache instead
    /// of the wire. Always 0 for sessionless calls.
    pub cache_hit_bytes: u64,
    /// Bytes the sparsity strictly required (`fetched_bytes` minus block
    /// over-fetch; in session multiplies this includes bytes served from
    /// cache).
    pub needed_bytes: u64,
    /// Σ `fetched_bytes` over all ranks (0 unless `global_stats`).
    pub fetched_bytes_global: u64,
    /// One-sided messages this rank issued (2 per fetch interval).
    pub rdma_msgs: u64,
    /// The §V criterion: max per-rank fetch volume over the global memory
    /// footprint of `A`'s entries. ≈ `(P-1)/P` when every rank fetches
    /// everything; ~0 when slices are self-contained.
    pub cv_over_mem: f64,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    /// Wall-clock split into the paper's comm/comp/other categories.
    pub breakdown: Breakdown,
    /// Finer split of the same call: symbolic / fetch / compute /
    /// assemble seconds (see [`PhaseTimes`] for the stage definitions).
    pub phases: PhaseTimes,
}

/// Wire encoding so per-rank reports can cross a process boundary — the
/// `procs` backend returns each rank's result over a socket. Field order is
/// declaration order; floats travel bit-exact (`f64::to_bits`), so an
/// encoded report round-trips to an `==`-identical struct.
impl Wire for SpgemmReport {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.fetched_bytes,
            self.fresh_bytes,
            self.cache_hit_bytes,
            self.needed_bytes,
            self.fetched_bytes_global,
            self.rdma_msgs,
        ] {
            v.put(out);
        }
        self.cv_over_mem.put(out);
        self.comm.put(out);
        self.breakdown.put(out);
        self.phases.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SpgemmReport {
            fetched_bytes: u64::get(buf)?,
            fresh_bytes: u64::get(buf)?,
            cache_hit_bytes: u64::get(buf)?,
            needed_bytes: u64::get(buf)?,
            fetched_bytes_global: u64::get(buf)?,
            rdma_msgs: u64::get(buf)?,
            cv_over_mem: f64::get(buf)?,
            comm: CommStats::get(buf)?,
            // `<_ as Wire>` sidesteps Breakdown's inherent `get(&self, Phase)`
            breakdown: <Breakdown as Wire>::get(buf)?,
            phases: PhaseTimes::get(buf)?,
        })
    }
}

/// Pre-communication analysis of a 1D multiply (Algorithm 1 lines 1–6
/// without any window traffic).
#[derive(Clone, Copy, Debug)]
pub struct Analysis1D {
    /// Bytes the plan will fetch on this rank.
    pub planned_fetch_bytes: u64,
    /// Ranged fetches the plan will issue on this rank.
    pub planned_intervals: u64,
    /// Bytes the sparsity strictly requires on this rank.
    pub needed_bytes: u64,
    /// Σ planned fetch bytes over all ranks.
    pub planned_fetch_bytes_global: u64,
    /// The §V `CV/memA` criterion (identical to the value the execution
    /// reports).
    pub cv_over_mem: f64,
}

/// Typed conformality check shared by the `try_*` entry points.
pub(crate) fn check_conformal(a: &DistMat1D, b: &DistMat1D) -> Result<(), ShapeError> {
    crate::shape::conformal((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))
}

pub(crate) fn assert_conformal(a: &DistMat1D, b: &DistMat1D) {
    if let Err(e) = check_conformal(a, b) {
        panic!("{e}");
    }
}

/// Global columns of `A` the local multiply touches: the row support of
/// the local `B` slice (Algorithm 1's `⃗H` vector).
fn needed_columns(b: &DistMat1D) -> Vec<bool> {
    b.local().row_hit_vector()
}

/// Global-volume reduction shared by execution and analysis: total volume,
/// per-rank max volume, and the global byte footprint of `A`'s entries.
pub(crate) fn global_volume<C: Comm>(
    comm: &C,
    local_fetch_bytes: u64,
    a: &DistMat1D,
) -> (u64, u64, u64) {
    let mem_local = a.local().nnz() as u64 * ENTRY_BYTES;
    comm.allreduce((local_fetch_bytes, local_fetch_bytes, mem_local), |x, y| {
        (x.0 + y.0, x.1.max(y.1), x.2 + y.2)
    })
}

pub(crate) fn cv_of(max_fetched: u64, mem_global: u64) -> f64 {
    if mem_global == 0 {
        0.0
    } else {
        max_fetched as f64 / mem_global as f64
    }
}

/// Price a 1D multiply before communicating: exactly the fetch schedule
/// [`spgemm_1d`] would execute, as byte/message counts. Collective (one
/// metadata allgather + one allreduce).
///
/// ```
/// use sa_dist::{analyze_1d, spgemm_1d, uniform_offsets, DistMat1D, FetchMode, Plan1D};
/// use sa_mpisim::Universe;
/// use sa_sparse::gen::banded;
///
/// let a = banded(120, 4, 0.9, true, 1);
/// let pairs = Universe::new(4).run(|comm| {
///     let da = DistMat1D::from_global(comm, &a, &uniform_offsets(120, 4));
///     let db = da.clone();
///     let pre = analyze_1d(comm, &da, &db, FetchMode::ColumnExact);
///     let plan = Plan1D { fetch_mode: FetchMode::ColumnExact, ..Default::default() };
///     let (_c, rep) = spgemm_1d(comm, &da, &db, &plan);
///     (pre, rep)
/// });
/// for (pre, rep) in pairs {
///     // the analysis is exact: what it prices is what execution meters
///     assert_eq!(pre.planned_fetch_bytes, rep.fetched_bytes);
///     assert_eq!(pre.planned_intervals * 2, rep.rdma_msgs);
/// }
/// ```
pub fn analyze_1d<C: Comm>(comm: &C, a: &DistMat1D, b: &DistMat1D, mode: FetchMode) -> Analysis1D {
    assert_conformal(a, b);
    let metas = exchange_meta(comm, a.local());
    let needed = needed_columns(b);
    let plan = plan_fetch(mode, &metas, a.offsets(), &needed, comm.rank());
    let (total, max_fetched, mem_global) = global_volume(comm, plan.fetch_bytes(), a);
    Analysis1D {
        planned_fetch_bytes: plan.fetch_bytes(),
        planned_intervals: plan.intervals.len() as u64,
        needed_bytes: plan.needed_bytes(),
        planned_fetch_bytes_global: total,
        cv_over_mem: cv_of(max_fetched, mem_global),
    }
}

/// [`analyze_1d`] for several fetch modes at once: the metadata exchange
/// and the needed-column scan are mode-independent and run once, each
/// candidate is then priced locally, and one pair of combined reductions
/// fills the global fields — a mode sweep costs one collective round
/// instead of one per mode. Collective.
pub fn analyze_1d_modes<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    modes: &[FetchMode],
) -> Vec<Analysis1D> {
    assert_conformal(a, b);
    let metas = exchange_meta(comm, a.local());
    let needed = needed_columns(b);
    let plans: Vec<FetchPlan> = modes
        .iter()
        .map(|&m| plan_fetch(m, &metas, a.offsets(), &needed, comm.rank()))
        .collect();
    let mem_local = a.local().nnz() as u64 * ENTRY_BYTES;
    let mut sums: Vec<u64> = vec![mem_local];
    sums.extend(plans.iter().map(|p| p.fetch_bytes()));
    let sums = comm.allreduce_vec(sums, |x, y| x + y);
    let maxes = comm.allreduce_vec(plans.iter().map(|p| p.fetch_bytes()).collect(), |x, y| {
        (*x).max(*y)
    });
    plans
        .iter()
        .enumerate()
        .map(|(i, plan)| Analysis1D {
            planned_fetch_bytes: plan.fetch_bytes(),
            planned_intervals: plan.intervals.len() as u64,
            needed_bytes: plan.needed_bytes(),
            planned_fetch_bytes_global: sums[i + 1],
            cv_over_mem: cv_of(maxes[i], sums[0]),
        })
        .collect()
}

/// Fetch every planned interval through `win`, appending into `ir`/`num`,
/// and splice the local slice in at its owner position so the buffers come
/// out in ascending global column order. `jc`/`cp` are filled alongside
/// (cleared first — pass recycled buffers to keep their capacity). Returns
/// the seconds spent inside window gets.
///
/// `offsets[r]` is the global base column of rank `r`'s slice and `local`
/// this rank's slice — the 1D layout directly, or one process row of a 2D
/// grid (the sparsity-aware SUMMA assembles its `Ã` through the same path,
/// with `comm` being the row communicator and `offsets` the stage cuts).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_atilde<C: Comm>(
    comm: &C,
    win: &PairedWindow<Vidx, f64>,
    plan: &FetchPlan,
    metas: &[RankMeta],
    offsets: &[usize],
    local: &Dcsc<f64>,
    include_local: bool,
    jc: &mut Vec<Vidx>,
    cp: &mut Vec<usize>,
    ir: &mut Vec<Vidx>,
    num: &mut Vec<f64>,
) -> f64 {
    let me = comm.rank();
    let nzc_estimate = plan.intervals.iter().map(|iv| iv.pos.len()).sum::<usize>()
        + if include_local { local.nzc() } else { 0 };
    jc.clear();
    jc.reserve(nzc_estimate);
    cp.clear();
    cp.reserve(nzc_estimate + 1);
    cp.push(0);
    ir.reserve(plan.fetch_entries as usize + if include_local { local.nnz() } else { 0 });
    num.reserve(plan.fetch_entries as usize + if include_local { local.nnz() } else { 0 });
    let mut comm_s = 0.0f64;
    let mut iv_iter = plan.intervals.iter().peekable();
    for owner in 0..comm.size() {
        if owner == me {
            if include_local {
                let base = offsets[me];
                for q in 0..local.nzc() {
                    jc.push(vidx(base + local.jc()[q] as usize));
                    cp.push(cp.last().unwrap() + (local.cp()[q + 1] - local.cp()[q]));
                }
                ir.extend_from_slice(local.ir());
                num.extend_from_slice(local.num());
            }
            continue;
        }
        let base = offsets[owner];
        let meta = &metas[owner];
        while let Some(iv) = iv_iter.peek() {
            if iv.owner != owner {
                break;
            }
            let iv = iv_iter.next().unwrap();
            let t0 = Instant::now();
            win.get_both_into(
                comm,
                owner,
                iv.entries.start as usize..iv.entries.end as usize,
                ir,
                num,
            )
            .expect("fetch interval within exposed window");
            comm_s += t0.elapsed().as_secs_f64();
            for q in iv.pos.clone() {
                jc.push(vidx(base + meta.jc[q] as usize));
                cp.push(cp.last().unwrap() + meta.col_entries(q) as usize);
            }
        }
    }
    comm_s
}

/// The sparsity-aware 1D SpGEMM (Algorithm 1). Returns `C` in `B`'s column
/// layout plus this rank's [`SpgemmReport`]. Collective.
///
/// ```
/// use sa_dist::{spgemm_1d, uniform_offsets, DistMat1D, Plan1D};
/// use sa_dist::reference::serial_spgemm;
/// use sa_mpisim::Universe;
/// use sa_sparse::gen::erdos_renyi;
///
/// let a = erdos_renyi(64, 64, 3.0, 5);
/// let expect = serial_spgemm(&a, &a);
/// let got = Universe::new(4).run(|comm| {
///     let da = DistMat1D::from_global(comm, &a, &uniform_offsets(64, comm.size()));
///     let db = da.clone();
///     let (c, report) = spgemm_1d(comm, &da, &db, &Plan1D::default());
///     assert!(report.fetched_bytes >= report.needed_bytes);
///     c.gather(comm) // Some(..) on rank 0 only
/// });
/// assert_eq!(got[0].as_ref().unwrap(), &expect);
/// ```
pub fn spgemm_1d<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
) -> (DistMat1D, SpgemmReport) {
    run_1d(comm, a, b, plan, None, &SpgemmWorkspace::new())
}

/// [`spgemm_1d`] with typed shape validation: non-conformal operands come
/// back as `Err(`[`ShapeError`]`)` on every rank (the check runs before any
/// communication, on globally-replicated dimensions, so ranks always
/// agree) instead of an index panic deep in a kernel.
pub fn try_spgemm_1d<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
) -> Result<(DistMat1D, SpgemmReport), ShapeError> {
    check_conformal(a, b)?;
    Ok(run_1d(comm, a, b, plan, None, &SpgemmWorkspace::new()))
}

/// [`spgemm_1d`] with a caller-held [`SpgemmWorkspace`]: per-thread kernel
/// scratch, the `Ã` assembly buffers, and the symbolic arrays are borrowed
/// from (and returned to) `ws`, so a loop of multiplies reuses the
/// compute-side allocations. The per-call metadata exchange and window
/// exposure (which copies the local `A` arrays) still happen every call —
/// they depend on the fetched operand, which changes between calls for
/// the drivers this entry point serves (per-batch BC frontiers, the
/// Galerkin `Rᵀ·(AR)` step). When the fetched operand is stationary, use
/// a [`SpgemmSession`] instead: it pins those too, and its owned
/// workspace gets steady-state iterations to zero hot-path allocations.
///
/// [`SpgemmSession`]: crate::session::SpgemmSession
pub fn spgemm_1d_ws<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat1D, SpgemmReport) {
    run_1d(comm, a, b, plan, None, ws)
}

/// [`spgemm_1d`] with communication/computation overlap: every planned get
/// is issued (and metered) up front, then a [`Prefetcher`] streams the
/// fetches behind the local partial product `Ã_loc·B`; the remote partial
/// product is merged in at the rendezvous. Identical traffic to
/// [`spgemm_1d`]; the win is bounded by min(comm, local comp). Honors
/// `SA_PREFETCH_BYTES` as the per-stage in-flight budget; on backends
/// without asynchronous gets the prefetcher degrades to in-order inline
/// issue (same bytes, same order).
pub fn spgemm_1d_overlap<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
) -> (DistMat1D, SpgemmReport) {
    let cfg = PrefetchConfig {
        enabled: true,
        ..PrefetchConfig::from_env()
    };
    run_1d(comm, a, b, plan, Some(cfg), &SpgemmWorkspace::new())
}

/// [`spgemm_1d_overlap`] with an explicit [`PrefetchConfig`] and a
/// caller-held workspace: the staging buffers the fetched `Ã` lands in are
/// borrowed from (and returned to) `ws`, so looped overlap multiplies
/// allocate nothing on the fetch path once warm.
pub fn spgemm_1d_overlap_ws<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
    cfg: PrefetchConfig,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat1D, SpgemmReport) {
    run_1d(comm, a, b, plan, Some(cfg), ws)
}

fn run_1d<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
    plan: &Plan1D,
    overlap: Option<PrefetchConfig>,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat1D, SpgemmReport) {
    assert_conformal(a, b);
    let stats0 = comm.stats();
    let t_call = Instant::now();

    // --- symbolic phase: metadata replication, needed-column scan, fetch
    // planning, window exposure ---
    let t_sym = Instant::now();
    let metas = exchange_meta(comm, a.local());
    let needed = needed_columns(b);
    let fplan = plan_fetch(plan.fetch_mode, &metas, a.offsets(), &needed, comm.rank());
    let win = PairedWindow::create(comm, a.local().ir().to_vec(), a.local().num().to_vec());
    let symbolic_s = t_sym.elapsed().as_secs_f64();

    let k = a.ncols();
    let nrows = a.nrows();
    let (c_local, comm_s, comp_s, assemble_s) = if let Some(cfg) = overlap {
        // Overlap path: every planned get is issued — validated and
        // metered — up front on this thread, so the traffic counters
        // cannot differ from the staged path below. The prefetcher then
        // streams the transport half into arena staging buffers behind
        // the local partial product `Ã_loc·B`; backends without
        // asynchronous gets degrade to the same fetches, in the same
        // plan order, inline after the local product.
        let t_asm = Instant::now();
        let local_only = {
            let mut buf = ws.take_chunk();
            let mut cp = ws.take_idx();
            let empty = FetchPlan {
                intervals: Vec::new(),
                fetch_entries: 0,
                needed_entries: 0,
            };
            assemble_atilde(
                comm,
                &win,
                &empty,
                &metas,
                a.offsets(),
                a.local(),
                true,
                &mut buf.lens,
                &mut cp,
                &mut buf.rows,
                &mut buf.vals,
            );
            Dcsc::from_parts(nrows, k, buf.lens, cp, buf.rows, buf.vals)
        };
        let mut assemble = t_asm.elapsed().as_secs_f64();

        let gets: Vec<_> = fplan
            .intervals
            .iter()
            .map(|iv| {
                win.start_get_both(
                    comm,
                    iv.owner,
                    iv.entries.start as usize..iv.entries.end as usize,
                )
                .expect("fetch interval within exposed window")
            })
            .collect();
        let sizes: Vec<u64> = gets.iter().map(|g| g.bytes()).collect();

        // the chunk's rows/vals become the prefetch staging; its lens and
        // an index buffer hold the remote jc/cp, built in the foreground
        // (the metadata walk needs no fetched bytes)
        let remote_buf = ws.take_chunk();
        let mut remote_jc = remote_buf.lens;
        let mut remote_cp = ws.take_idx();
        remote_cp.push(0);
        let mut staging = (remote_buf.rows, remote_buf.vals, 0.0f64);

        let kernel = plan.kernel;
        let schedule = plan.schedule;
        let mut pf = Prefetcher::new(comm, cfg);
        let (c_loc, t_loc, meta_s) = pf.stage(
            &sizes,
            &mut staging,
            |range, st: &mut (Vec<Vidx>, Vec<f64>, f64)| {
                let t0 = Instant::now();
                for g in &gets[range] {
                    g.fetch_into(&mut st.0, &mut st.1);
                }
                st.2 += t0.elapsed().as_secs_f64();
            },
            || {
                let t0 = Instant::now();
                for iv in &fplan.intervals {
                    let base = a.offsets()[iv.owner];
                    let meta = &metas[iv.owner];
                    for q in iv.pos.clone() {
                        remote_jc.push(vidx(base + meta.jc[q] as usize));
                        remote_cp.push(remote_cp.last().unwrap() + meta.col_entries(q) as usize);
                    }
                }
                let meta_s = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let c = comm.install(|| {
                    spgemm_with::<PlusTimes<f64>, _, _>(
                        &local_only,
                        b.local(),
                        kernel,
                        schedule,
                        ws,
                    )
                });
                (c, t0.elapsed().as_secs_f64(), meta_s)
            },
        );
        let (remote_ir, remote_num, fetch_s) = staging;
        assemble += meta_s;
        let remote = Dcsc::from_parts(nrows, k, remote_jc, remote_cp, remote_ir, remote_num);
        let t0 = Instant::now();
        let c_rem = comm.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(&remote, b.local(), kernel, schedule, ws)
        });
        let merged = sa_sparse::ewise::ewise_add::<PlusTimes<f64>>(&c_loc, &c_rem);
        let comp = t_loc + t0.elapsed().as_secs_f64();
        // hand both Ã halves' buffers back to the arena
        for half in [remote, local_only] {
            let (jc, cp, ir, num) = half.into_parts();
            ws.put_chunk(sa_sparse::spgemm::ChunkBuf {
                lens: jc,
                rows: ir,
                vals: num,
            });
            ws.put_idx(cp);
        }
        (merged, fetch_s, comp, assemble)
    } else {
        // Ã assembly into workspace buffers (a ChunkBuf supplies the
        // jc/ir/num triple — jc and the chunk `lens` share the u32 layout —
        // and an index buffer supplies cp).
        let t_asm = Instant::now();
        let mut buf = ws.take_chunk();
        let mut cp = ws.take_idx();
        let comm_s = assemble_atilde(
            comm,
            &win,
            &fplan,
            &metas,
            a.offsets(),
            a.local(),
            true,
            &mut buf.lens,
            &mut cp,
            &mut buf.rows,
            &mut buf.vals,
        );
        let atilde = Dcsc::from_parts(nrows, k, buf.lens, cp, buf.rows, buf.vals);
        let assemble = (t_asm.elapsed().as_secs_f64() - comm_s).max(0.0);
        let t0 = Instant::now();
        let c = comm.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(&atilde, b.local(), plan.kernel, plan.schedule, ws)
        });
        let comp_s = t0.elapsed().as_secs_f64();
        // hand Ã's buffers back for the next multiply
        let (jc, cp, ir, num) = atilde.into_parts();
        ws.put_chunk(sa_sparse::spgemm::ChunkBuf {
            lens: jc,
            rows: ir,
            vals: num,
        });
        ws.put_idx(cp);
        (c, comm_s, comp_s, assemble)
    };

    // --- wrap the output in B's layout ---
    let t_wrap = Instant::now();
    let c = DistMat1D::from_local(
        nrows,
        b.ncols(),
        b.offsets().clone(),
        Dcsc::from_csc(&c_local),
    );
    let assemble_s = assemble_s + t_wrap.elapsed().as_secs_f64();

    let comm_delta = comm.stats() - stats0;
    let fetched = fplan.fetch_bytes();
    debug_assert_eq!(comm_delta.rdma_get_bytes, fetched, "metered == planned");
    let (fetched_global, cv) = if plan.global_stats {
        let (total, max_fetched, mem_global) = global_volume(comm, fetched, a);
        (total, cv_of(max_fetched, mem_global))
    } else {
        // local-only variant of the criterion: this rank's volume over its
        // own slice footprint
        let mem_local = a.local().nnz() as u64 * ENTRY_BYTES;
        (fetched, cv_of(fetched, mem_local))
    };
    let total_s = t_call.elapsed().as_secs_f64();
    let report = SpgemmReport {
        fetched_bytes: fetched,
        fresh_bytes: fetched,
        cache_hit_bytes: 0,
        needed_bytes: fplan.needed_bytes(),
        fetched_bytes_global: fetched_global,
        rdma_msgs: fplan.rdma_msgs(),
        cv_over_mem: cv,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s,
            comp_s,
            other_s: (total_s - comm_s - comp_s).max(0.0),
        },
        phases: PhaseTimes {
            symbolic_s,
            fetch_s: comm_s,
            compute_s: comp_s,
            assemble_s,
        },
    };
    (c, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist1d::uniform_offsets;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{banded, erdos_renyi};
    use sa_sparse::Csc;

    fn square_both_ways(a: &Csc<f64>, p: usize, mode: FetchMode) {
        let expect = serial_spgemm(a, a);
        let u = Universe::new(p);
        let got = u.run(|comm| {
            let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), p));
            let plan = Plan1D {
                fetch_mode: mode,
                ..Default::default()
            };
            let (c1, r1) = spgemm_1d(comm, &da, &da.clone(), &plan);
            let (c2, r2) = spgemm_1d_overlap(comm, &da, &da.clone(), &plan);
            (
                c1.gather(comm),
                c2.gather(comm),
                r1.fetched_bytes,
                r2.fetched_bytes,
                r1.rdma_msgs,
                r2.rdma_msgs,
            )
        });
        let (c1, c2, f1, f2, m1, m2) = &got[0];
        assert_eq!(c1.as_ref().unwrap(), &expect, "{mode:?}: serial equality");
        assert!(
            c2.as_ref().unwrap().max_abs_diff(&expect) < 1e-12,
            "{mode:?}: overlap"
        );
        // overlap must not change the traffic
        assert_eq!(f1, f2, "{mode:?}");
        assert_eq!(m1, m2, "{mode:?}");
    }

    #[test]
    fn all_fetch_modes_match_serial_and_overlap_preserves_traffic() {
        let a = erdos_renyi(48, 48, 3.0, 11);
        for mode in [
            FetchMode::FullMatrix,
            FetchMode::Block(3),
            FetchMode::ContiguousRuns,
            FetchMode::ColumnExact,
        ] {
            square_both_ways(&a, 3, mode);
        }
    }

    #[test]
    fn default_plan_has_global_stats() {
        let plan = Plan1D::default();
        assert!(plan.global_stats);
        assert_eq!(plan.fetch_mode, FetchMode::Block(256));
        assert_eq!(plan.kernel, Kernel::Hybrid);
    }

    #[test]
    fn banded_natural_order_fetches_little() {
        let a = banded(240, 5, 0.8, true, 3);
        let u = Universe::new(4);
        let reps = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &a, &uniform_offsets(240, 4));
            let (_c, rep) = spgemm_1d(comm, &da, &da.clone(), &Plan1D::default());
            rep
        });
        // each rank needs only the band-overlap columns of its neighbours
        assert!(reps[0].cv_over_mem < 0.25, "cv = {}", reps[0].cv_over_mem);
        let full = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &a, &uniform_offsets(240, 4));
            let plan = Plan1D {
                fetch_mode: FetchMode::FullMatrix,
                ..Default::default()
            };
            let (_c, rep) = spgemm_1d(comm, &da, &da.clone(), &plan);
            rep.fetched_bytes_global
        });
        assert!(
            reps[0].fetched_bytes_global * 4 < full[0],
            "sparsity-aware {} vs oblivious {}",
            reps[0].fetched_bytes_global,
            full[0]
        );
    }

    #[test]
    fn analysis_matches_execution_across_modes() {
        let a = erdos_renyi(120, 120, 4.0, 5);
        for mode in [
            FetchMode::FullMatrix,
            FetchMode::Block(8),
            FetchMode::ContiguousRuns,
            FetchMode::ColumnExact,
        ] {
            let u = Universe::new(4);
            let pairs = u.run(|comm| {
                let da = DistMat1D::from_global(comm, &a, &uniform_offsets(120, 4));
                let pre = analyze_1d(comm, &da, &da.clone(), mode);
                let plan = Plan1D {
                    fetch_mode: mode,
                    ..Default::default()
                };
                let (_c, rep) = spgemm_1d(comm, &da, &da.clone(), &plan);
                (pre, rep)
            });
            for (pre, rep) in pairs {
                assert_eq!(pre.planned_fetch_bytes, rep.fetched_bytes, "{mode:?}");
                assert_eq!(pre.planned_intervals * 2, rep.rdma_msgs, "{mode:?}");
                assert_eq!(pre.needed_bytes, rep.needed_bytes, "{mode:?}");
                assert_eq!(pre.planned_fetch_bytes_global, rep.fetched_bytes_global);
            }
        }
    }

    #[test]
    fn rectangular_from_local_operand() {
        // A built via from_local (the BC frontier path): 4x30 times 30x30
        let f = erdos_renyi(4, 30, 2.0, 9);
        let g = erdos_renyi(30, 30, 3.0, 10);
        let expect = serial_spgemm(&f, &g);
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let offsets = std::sync::Arc::new(uniform_offsets(30, 3));
            let dg = DistMat1D::from_global(comm, &g, &offsets[..]);
            let (c0, c1) = (offsets[comm.rank()], offsets[comm.rank() + 1]);
            let df = DistMat1D::from_local(
                4,
                30,
                offsets.clone(),
                Dcsc::from_csc(&f.extract_cols(c0, c1)),
            );
            let (c, _) = spgemm_1d(comm, &df, &dg, &Plan1D::default());
            c.gather(comm)
        });
        assert_eq!(got[0].as_ref().unwrap(), &expect);
    }
}
