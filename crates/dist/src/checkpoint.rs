//! Per-rank checkpoint stores for recoverable jobs.
//!
//! [`Universe::run_recoverable`](sa_mpisim::Universe) restarts a whole job
//! when any rank fails; this module supplies the durability layer that lets
//! a restarted attempt *resume* instead of recomputing from scratch. The
//! model is deliberately minimal:
//!
//! * [`CheckpointStore`] — an object-safe blob store keyed by
//!   `(rank, key)`. Every rank reads and writes only its own slots, so a
//!   store needs no cross-rank coordination of its own.
//! * [`MemStore`] — shared-memory map for the `Sim`/`Threads` backends
//!   (clones share one map, and restarted rank *threads* see what the
//!   previous attempt saved).
//! * [`FileStore`] — one file per `(rank, key)` for the `Procs` backend:
//!   forked children inherit the directory path, and a write is
//!   tmp-then-rename so a rank SIGKILLed mid-checkpoint leaves the previous
//!   complete checkpoint intact, never a torn one. Every slot is framed
//!   with a versioned header (magic, version, operand fingerprint, payload
//!   CRC32); damage loads as a typed [`CkptError`] and the file is
//!   quarantined (`.quarantine`) for forensics.
//! * [`save_wire`] / [`load_wire`] — typed helpers over the repo's
//!   [`Wire`] encoding (bit-exact `f64`, so restored operands are
//!   bit-identical to what was saved).
//! * [`MatSnapshot`] — a wire-encodable image of a [`DistMat1D`] local
//!   slice, the operand state the iterative drivers checkpoint.
//! * [`agreed_step`] — collective agreement on the resume point: restart
//!   only from a step *every* rank has durably completed, else start fresh.
//!
//! Checkpoints give at-least-once execution per iteration: a rank can die
//! after computing step `k` but before (or while) saving it, in which case
//! the next attempt re-runs step `k`. Drivers therefore checkpoint only
//! states that are safe to re-enter (iteration boundaries), and
//! [`agreed_step`] collapses ragged per-rank progress to the last step all
//! ranks completed.

use crate::dist1d::DistMat1D;
use sa_mpisim::{crc32, Comm, Wire, WireError};
use sa_sparse::types::Vidx;
use sa_sparse::Dcsc;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Why a checkpoint slot could not be saved or loaded. Integrity failures
/// ([`Torn`](CkptError::Torn), [`Corrupt`](CkptError::Corrupt),
/// [`VersionMismatch`](CkptError::VersionMismatch),
/// [`Decode`](CkptError::Decode)) mean the slot's *contents* are unusable —
/// [`FileStore`] quarantines the file and [`load_wire_or_fresh`] maps them
/// to "absent" so recovery falls back to a fresh start instead of resuming
/// from damaged state. [`Io`](CkptError::Io) means the store itself is
/// unreachable, which no fresh start can fix.
#[derive(Debug)]
pub enum CkptError {
    /// The underlying storage failed (missing directory, permissions, …).
    Io(io::Error),
    /// The slot is shorter than its header claims: `have` bytes present,
    /// `needed` required. Atomic tmp-then-rename saves make this possible
    /// only through outside interference, which is exactly why it is typed.
    Torn { needed: u64, have: u64 },
    /// The payload (or the header magic) failed its CRC32 / magic check.
    /// `expected` is the stored value, `got` what the bytes hash to.
    Corrupt { expected: u32, got: u32 },
    /// The slot was written by an incompatible format version.
    VersionMismatch { found: u32, supported: u32 },
    /// The payload passed its integrity checks but is not a valid [`Wire`]
    /// encoding of the requested type (wrong type under a reused key).
    Decode(WireError),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::Torn { needed, have } => {
                write!(f, "torn checkpoint: need {needed} bytes, have {have}")
            }
            CkptError::Corrupt { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: expected {expected:#010x}, got {got:#010x}"
            ),
            CkptError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint format v{found} unsupported (this build reads v{supported})"
            ),
            CkptError::Decode(e) => write!(f, "checkpoint payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            CkptError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

impl From<WireError> for CkptError {
    fn from(e: WireError) -> CkptError {
        CkptError::Decode(e)
    }
}

impl CkptError {
    /// Whether this error indicts the slot's *contents* (recoverable by
    /// starting fresh) rather than the store itself.
    pub fn is_integrity(&self) -> bool {
        !matches!(self, CkptError::Io(_))
    }
}

/// An object-safe per-rank blob store: the durability backend of a
/// recoverable job. Implementations must tolerate concurrent access from
/// different ranks (distinct `(rank, key)` slots never alias).
pub trait CheckpointStore: Send + Sync {
    /// Durably store `bytes` under `(rank, key)`, replacing any previous
    /// value. A save must be atomic: a reader (including a restarted rank)
    /// sees either the old complete value or the new one, never a torn mix.
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> Result<(), CkptError>;

    /// Load the blob under `(rank, key)`, or `None` if never saved.
    /// Implementations that frame their slots ([`FileStore`]) verify
    /// integrity here and return the typed failure — never damaged bytes.
    fn load(&self, rank: usize, key: &str) -> Result<Option<Vec<u8>>, CkptError>;

    /// Drop the blob under `(rank, key)` (no-op if absent).
    fn remove(&self, rank: usize, key: &str) -> Result<(), CkptError>;
}

/// Save a [`Wire`]-encodable value under `(rank, key)`.
pub fn save_wire<S, T>(store: &S, rank: usize, key: &str, value: &T) -> Result<(), CkptError>
where
    S: CheckpointStore + ?Sized,
    T: Wire,
{
    store.save(rank, key, value.to_bytes())
}

/// Load and decode a [`Wire`]-encodable value from `(rank, key)`. Strict:
/// a present but damaged or undecodable slot is a typed [`CkptError`], not
/// a silent fresh start — a corrupt checkpoint should be loud. Recovery
/// paths that *want* corrupt-as-absent semantics use
/// [`load_wire_or_fresh`].
pub fn load_wire<S, T>(store: &S, rank: usize, key: &str) -> Result<Option<T>, CkptError>
where
    S: CheckpointStore + ?Sized,
    T: Wire,
{
    match store.load(rank, key)? {
        None => Ok(None),
        Some(bytes) => Ok(Some(T::from_bytes(&bytes)?)),
    }
}

/// Recovery-path loader: like [`load_wire`], but an *integrity* failure
/// (torn, corrupt, version-mismatched, or undecodable slot) is logged and
/// mapped to `Ok(None)` — the caller's [`agreed_step`] then sees "nothing
/// durably saved" and every rank starts fresh together, which is exactly
/// the fallback a damaged checkpoint demands. [`FileStore`] has already
/// quarantined the damaged file by the time this returns, so the fresh
/// attempt will not trip over it again. I/O errors still surface: a store
/// that cannot be read at all is not a fresh-start situation.
pub fn load_wire_or_fresh<S, T>(store: &S, rank: usize, key: &str) -> Result<Option<T>, CkptError>
where
    S: CheckpointStore + ?Sized,
    T: Wire,
{
    match load_wire(store, rank, key) {
        Err(e) if e.is_integrity() => {
            eprintln!(
                "[sa_dist] rank {rank}: checkpoint slot {key:?} unusable ({e}); \
                 treating as absent — recovery will start fresh"
            );
            Ok(None)
        }
        other => other,
    }
}

/// One `(rank, key)` slot map, shared by every clone of a [`MemStore`].
type SlotMap = HashMap<(usize, String), Vec<u8>>;

/// In-memory [`CheckpointStore`] for the `Sim` and `Threads` backends.
/// Clones share one map, so the store handed to a job closure survives
/// restarts of the rank threads that write through it.
#[derive(Clone, Default)]
pub struct MemStore {
    slots: Arc<Mutex<SlotMap>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of stored blobs (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> Result<(), CkptError> {
        self.slots
            .lock()
            .unwrap()
            .insert((rank, key.to_string()), bytes);
        Ok(())
    }

    fn load(&self, rank: usize, key: &str) -> Result<Option<Vec<u8>>, CkptError> {
        Ok(self
            .slots
            .lock()
            .unwrap()
            .get(&(rank, key.to_string()))
            .cloned())
    }

    fn remove(&self, rank: usize, key: &str) -> Result<(), CkptError> {
        self.slots.lock().unwrap().remove(&(rank, key.to_string()));
        Ok(())
    }
}

/// Slot-file magic: `"SACK"` little-endian, so a hexdump of a good slot
/// starts with `4b 43 41 53`.
const CKPT_MAGIC: u32 = 0x5341_434B;
/// Current slot-file format version.
const CKPT_VERSION: u32 = 1;
/// Header layout: `[magic u32][version u32][fingerprint u64][payload_len
/// u64][payload_crc u32]`, all little-endian.
const CKPT_HEADER_LEN: usize = 28;

/// Parse and verify a framed slot file: returns the operand fingerprint and
/// the borrowed payload, or the typed reason the slot is unusable.
fn parse_slot(raw: &[u8]) -> Result<(u64, &[u8]), CkptError> {
    if raw.len() < CKPT_HEADER_LEN {
        return Err(CkptError::Torn {
            needed: CKPT_HEADER_LEN as u64,
            have: raw.len() as u64,
        });
    }
    let word32 = |at: usize| u32::from_le_bytes(raw[at..at + 4].try_into().expect("4 bytes"));
    let word64 = |at: usize| u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
    let magic = word32(0);
    if magic != CKPT_MAGIC {
        return Err(CkptError::Corrupt {
            expected: CKPT_MAGIC,
            got: magic,
        });
    }
    let version = word32(4);
    if version != CKPT_VERSION {
        return Err(CkptError::VersionMismatch {
            found: version,
            supported: CKPT_VERSION,
        });
    }
    let fingerprint = word64(8);
    let payload_len = word64(16);
    let stored_crc = word32(24);
    let payload = &raw[CKPT_HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(CkptError::Torn {
            needed: CKPT_HEADER_LEN as u64 + payload_len,
            have: raw.len() as u64,
        });
    }
    let got = crc32(payload);
    if got != stored_crc {
        return Err(CkptError::Corrupt {
            expected: stored_crc,
            got,
        });
    }
    Ok((fingerprint, payload))
}

/// File-backed [`CheckpointStore`] for the `Procs` backend: one file per
/// `(rank, key)` under a directory created in the parent *before* forking,
/// so every child (including re-forked ones of a later attempt) inherits
/// the same path. Writes go to a temporary file first and are renamed into
/// place — rename is atomic on POSIX, so a SIGKILL mid-save leaves the
/// previous complete checkpoint, never a torn one.
///
/// Every slot is framed with a versioned header (magic, format version,
/// operand fingerprint, payload length, payload CRC32). `load` verifies the
/// frame and returns typed [`CkptError`]s for damage; a damaged file is
/// renamed to `.quarantine` for forensics so the next attempt does not trip
/// over it. The fingerprint keys slots to one operand/configuration:
/// [`FileStore::keyed`] stores see foreign-fingerprint slots as absent, and
/// [`FileStore::gc_stale`] reclaims them.
///
/// `key` becomes part of the file name and must be file-name safe (the
/// drivers use short alphanumeric keys like `"mcl.state"`).
#[derive(Clone, Debug)]
pub struct FileStore {
    dir: PathBuf,
    fingerprint: u64,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`, with the default
    /// (zero) operand fingerprint.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<FileStore> {
        FileStore::keyed(dir, 0)
    }

    /// Open (creating if needed) a store rooted at `dir` whose slots are
    /// keyed to operand `fingerprint` — slots written under a different
    /// fingerprint (an earlier run's different operand, a failed attempt of
    /// another configuration) load as absent and are reclaimable via
    /// [`FileStore::gc_stale`].
    pub fn keyed(dir: impl Into<PathBuf>, fingerprint: u64) -> io::Result<FileStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir, fingerprint })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The operand fingerprint this store's slots are keyed to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn slot_path(&self, rank: usize, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.r{rank}.ckpt"))
    }

    /// Rename a damaged slot aside (`.quarantine`) so the evidence survives
    /// for forensics while the recovery path sees the slot as absent.
    fn quarantine(path: &Path, why: &CkptError) {
        let aside = path.with_extension("quarantine");
        match std::fs::rename(path, &aside) {
            Ok(()) => eprintln!(
                "[sa_dist] quarantined damaged checkpoint {} -> {} ({why})",
                path.display(),
                aside.display()
            ),
            Err(e) => eprintln!(
                "[sa_dist] failed to quarantine damaged checkpoint {} ({why}): {e}",
                path.display()
            ),
        }
    }

    /// Garbage-collect stale slots: checkpoint files whose fingerprint does
    /// not match this store's (failed attempts of other operands /
    /// configurations sharing the directory) and leftover `.tmp` files from
    /// saves cut down mid-write. Returns how many files were removed.
    /// Damaged files are left for `load` to quarantine — GC only reclaims
    /// what it can positively identify as foreign.
    pub fn gc_stale(&self) -> io::Result<usize> {
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let stale = if name.ends_with(".tmp") {
                true
            } else if name.ends_with(".ckpt") {
                match std::fs::read(&path) {
                    Ok(raw) => matches!(parse_slot(&raw), Ok((fp, _)) if fp != self.fingerprint),
                    Err(_) => false,
                }
            } else {
                false
            };
            if stale {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

impl CheckpointStore for FileStore {
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> Result<(), CkptError> {
        let path = self.slot_path(rank, key);
        let tmp = self.dir.join(format!("{key}.r{rank}.tmp"));
        let mut framed = Vec::with_capacity(CKPT_HEADER_LEN + bytes.len());
        framed.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
        framed.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        framed.extend_from_slice(&self.fingerprint.to_le_bytes());
        framed.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        framed.extend_from_slice(&crc32(&bytes).to_le_bytes());
        framed.extend_from_slice(&bytes);
        std::fs::write(&tmp, &framed)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn load(&self, rank: usize, key: &str) -> Result<Option<Vec<u8>>, CkptError> {
        let path = self.slot_path(rank, key);
        let raw = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match parse_slot(&raw) {
            Ok((fp, _)) if fp != self.fingerprint => Ok(None), // foreign slot
            Ok((_, payload)) => Ok(Some(payload.to_vec())),
            Err(why) => {
                FileStore::quarantine(&path, &why);
                Err(why)
            }
        }
    }

    fn remove(&self, rank: usize, key: &str) -> Result<(), CkptError> {
        match std::fs::remove_file(self.slot_path(rank, key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Wire-encodable image of one rank's [`DistMat1D`] slice: global shape,
/// column offsets, and the local DCSC arrays verbatim. Restoration is
/// bit-identical (`f64` travels as raw bits).
#[derive(Clone, Debug, PartialEq)]
pub struct MatSnapshot {
    nrows: u64,
    ncols: u64,
    local_ncols: u64,
    offsets: Vec<u64>,
    jc: Vec<Vidx>,
    cp: Vec<u64>,
    ir: Vec<Vidx>,
    num: Vec<f64>,
}

impl MatSnapshot {
    /// Capture this rank's slice of `m`.
    pub fn of(m: &DistMat1D) -> MatSnapshot {
        let l = m.local();
        MatSnapshot {
            nrows: m.nrows() as u64,
            ncols: m.ncols() as u64,
            local_ncols: l.ncols() as u64,
            offsets: m.offsets().iter().map(|&o| o as u64).collect(),
            jc: l.jc().to_vec(),
            cp: l.cp().iter().map(|&p| p as u64).collect(),
            ir: l.ir().to_vec(),
            num: l.num().to_vec(),
        }
    }

    /// Rebuild the distributed slice this snapshot captured.
    pub fn restore(&self) -> DistMat1D {
        let offsets: Vec<usize> = self.offsets.iter().map(|&o| o as usize).collect();
        let local = Dcsc::from_parts(
            self.nrows as usize,
            self.local_ncols as usize,
            self.jc.clone(),
            self.cp.iter().map(|&p| p as usize).collect(),
            self.ir.clone(),
            self.num.clone(),
        );
        DistMat1D::from_local(
            self.nrows as usize,
            self.ncols as usize,
            Arc::new(offsets),
            local,
        )
    }
}

impl Wire for MatSnapshot {
    fn put(&self, out: &mut Vec<u8>) {
        self.nrows.put(out);
        self.ncols.put(out);
        self.local_ncols.put(out);
        self.offsets.put(out);
        self.jc.put(out);
        self.cp.put(out);
        self.ir.put(out);
        self.num.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(MatSnapshot {
            nrows: Wire::get(buf)?,
            ncols: Wire::get(buf)?,
            local_ncols: Wire::get(buf)?,
            offsets: Wire::get(buf)?,
            jc: Wire::get(buf)?,
            cp: Wire::get(buf)?,
            ir: Wire::get(buf)?,
            num: Wire::get(buf)?,
        })
    }
}

/// Collective agreement on the resume point. Each rank passes the last
/// step it finds durably checkpointed (`None` if nothing); the result is
/// `Some(k)` only when **every** rank reports exactly `k` — any
/// disagreement (a rank died before saving, a stale or missing file) makes
/// all ranks start fresh together, so no rank resumes ahead of another.
pub fn agreed_step<C: Comm>(comm: &C, mine: Option<u64>) -> Option<u64> {
    let enc = mine.map_or(-1i64, |k| k as i64);
    let min = comm.allreduce(enc, |a, b| a.min(b));
    let max = comm.allreduce(enc, |a, b| a.max(b));
    (min == max && min >= 0).then_some(min as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::erdos_renyi;

    #[test]
    fn mem_store_round_trips_and_removes() {
        let s = MemStore::new();
        assert!(s.is_empty());
        save_wire(&s, 1, "x", &42u64).unwrap();
        assert_eq!(load_wire::<_, u64>(&s, 1, "x").unwrap(), Some(42));
        assert_eq!(load_wire::<_, u64>(&s, 0, "x").unwrap(), None);
        let clone = s.clone();
        assert_eq!(load_wire::<_, u64>(&clone, 1, "x").unwrap(), Some(42));
        s.remove(1, "x").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn file_store_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("sa_ckpt_test_{}", std::process::id()));
        let s = FileStore::new(&dir).unwrap();
        save_wire(&s, 2, "state", &vec![1.5f64, -0.0, f64::NAN]).unwrap();
        let back: Vec<f64> = load_wire(&s, 2, "state").unwrap().unwrap();
        assert_eq!(back[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(back[1].to_bits(), (-0.0f64).to_bits());
        assert!(back[2].is_nan());
        // overwrite replaces, remove clears, absent loads are None
        save_wire(&s, 2, "state", &7u64).unwrap();
        assert_eq!(load_wire::<_, u64>(&s, 2, "state").unwrap(), Some(7));
        s.remove(2, "state").unwrap();
        assert_eq!(s.load(2, "state").unwrap(), None);
        // no stray tmp files linger after a completed save
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_loud() {
        let s = MemStore::new();
        s.save(0, "k", vec![1, 2, 3]).unwrap();
        let err = load_wire::<_, u64>(&s, 0, "k").unwrap_err();
        assert!(matches!(err, CkptError::Decode(_)), "{err}");
        assert!(err.is_integrity());
        // the recovery-path loader maps the same damage to "absent"
        assert_eq!(load_wire_or_fresh::<_, u64>(&s, 0, "k").unwrap(), None);
    }

    #[test]
    fn file_store_detects_damage_and_quarantines() {
        let dir = std::env::temp_dir().join(format!("sa_ckpt_quar_{}", std::process::id()));
        let s = FileStore::new(&dir).unwrap();
        save_wire(&s, 0, "state", &0xDEAD_BEEFu64).unwrap();
        let path = dir.join("state.r0.ckpt");

        // flip one payload bit on disk → typed Corrupt, file quarantined
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let err = s.load(0, "state").unwrap_err();
        assert!(matches!(err, CkptError::Corrupt { .. }), "{err}");
        assert!(!path.exists(), "damaged file renamed aside");
        assert!(dir.join("state.r0.quarantine").exists());
        // after quarantine the slot is absent: recovery starts fresh
        assert_eq!(s.load(0, "state").unwrap(), None);
        assert_eq!(load_wire_or_fresh::<_, u64>(&s, 0, "state").unwrap(), None);

        // truncated below its header's claim → Torn
        save_wire(&s, 0, "state", &1u64).unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        assert!(matches!(
            s.load(0, "state").unwrap_err(),
            CkptError::Torn { .. }
        ));

        // future format version → VersionMismatch
        save_wire(&s, 0, "state", &2u64).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            s.load(0, "state").unwrap_err(),
            CkptError::VersionMismatch {
                found: 99,
                supported: 1
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_slots_are_gc_keyed_by_fingerprint() {
        let dir = std::env::temp_dir().join(format!("sa_ckpt_gc_{}", std::process::id()));
        let old = FileStore::keyed(&dir, 0xA1).unwrap();
        save_wire(&old, 0, "state", &1u64).unwrap();
        save_wire(&old, 1, "state", &2u64).unwrap();
        let new = FileStore::keyed(&dir, 0xB2).unwrap();
        save_wire(&new, 0, "state", &3u64).unwrap();
        // a save cut down mid-write leaves a .tmp behind
        std::fs::write(dir.join("state.r9.tmp"), b"partial").unwrap();

        // foreign-fingerprint slots read as absent, own slots verify
        assert_eq!(load_wire::<_, u64>(&new, 1, "state").unwrap(), None);
        assert_eq!(load_wire::<_, u64>(&new, 0, "state").unwrap(), Some(3));

        // GC reclaims the surviving stale slot (r0's was overwritten by the
        // new store's save) and the tmp, and keeps the live slot
        assert_eq!(new.gc_stale().unwrap(), 2);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        assert_eq!(load_wire::<_, u64>(&new, 0, "state").unwrap(), Some(3));
        // idempotent
        assert_eq!(new.gc_stale().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mat_snapshot_is_bit_identical() {
        let a = erdos_renyi(40, 40, 3.0, 11);
        let got = sa_mpisim::Universe::new(3).run(|comm| {
            let offsets = crate::dist1d::uniform_offsets(40, comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let snap = MatSnapshot::of(&da);
            let back = MatSnapshot::from_bytes(&snap.to_bytes()).unwrap().restore();
            (
                da.local().num() == back.local().num()
                    && da.local().ir() == back.local().ir()
                    && da.local().jc() == back.local().jc()
                    && da.offsets() == back.offsets(),
                back.gather(comm),
            )
        });
        for (same, gathered) in got {
            assert!(same);
            if let Some(g) = gathered {
                assert_eq!(g, a);
            }
        }
    }

    #[test]
    fn agreed_step_requires_unanimity() {
        let u = sa_mpisim::Universe::new(3);
        // unanimous
        let got = u.run(|comm| {
            let _ = comm;
            agreed_step(comm, Some(4))
        });
        assert!(got.into_iter().all(|s| s == Some(4)));
        // one rank behind → everyone starts fresh
        let got = u.run(|comm| {
            let mine = if comm.rank() == 1 { Some(3) } else { Some(4) };
            agreed_step(comm, mine)
        });
        assert!(got.into_iter().all(|s| s.is_none()));
        // one rank has nothing → fresh
        let got = u.run(|comm| {
            let mine = if comm.rank() == 2 { None } else { Some(9) };
            agreed_step(comm, mine)
        });
        assert!(got.into_iter().all(|s| s.is_none()));
    }
}
