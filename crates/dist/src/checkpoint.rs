//! Per-rank checkpoint stores for recoverable jobs.
//!
//! [`Universe::run_recoverable`](sa_mpisim::Universe) restarts a whole job
//! when any rank fails; this module supplies the durability layer that lets
//! a restarted attempt *resume* instead of recomputing from scratch. The
//! model is deliberately minimal:
//!
//! * [`CheckpointStore`] — an object-safe blob store keyed by
//!   `(rank, key)`. Every rank reads and writes only its own slots, so a
//!   store needs no cross-rank coordination of its own.
//! * [`MemStore`] — shared-memory map for the `Sim`/`Threads` backends
//!   (clones share one map, and restarted rank *threads* see what the
//!   previous attempt saved).
//! * [`FileStore`] — one file per `(rank, key)` for the `Procs` backend:
//!   forked children inherit the directory path, and a write is
//!   tmp-then-rename so a rank SIGKILLed mid-checkpoint leaves the previous
//!   complete checkpoint intact, never a torn one.
//! * [`save_wire`] / [`load_wire`] — typed helpers over the repo's
//!   [`Wire`] encoding (bit-exact `f64`, so restored operands are
//!   bit-identical to what was saved).
//! * [`MatSnapshot`] — a wire-encodable image of a [`DistMat1D`] local
//!   slice, the operand state the iterative drivers checkpoint.
//! * [`agreed_step`] — collective agreement on the resume point: restart
//!   only from a step *every* rank has durably completed, else start fresh.
//!
//! Checkpoints give at-least-once execution per iteration: a rank can die
//! after computing step `k` but before (or while) saving it, in which case
//! the next attempt re-runs step `k`. Drivers therefore checkpoint only
//! states that are safe to re-enter (iteration boundaries), and
//! [`agreed_step`] collapses ragged per-rank progress to the last step all
//! ranks completed.

use crate::dist1d::DistMat1D;
use sa_mpisim::{Comm, Wire, WireError};
use sa_sparse::types::Vidx;
use sa_sparse::Dcsc;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An object-safe per-rank blob store: the durability backend of a
/// recoverable job. Implementations must tolerate concurrent access from
/// different ranks (distinct `(rank, key)` slots never alias).
pub trait CheckpointStore: Send + Sync {
    /// Durably store `bytes` under `(rank, key)`, replacing any previous
    /// value. A save must be atomic: a reader (including a restarted rank)
    /// sees either the old complete value or the new one, never a torn mix.
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> io::Result<()>;

    /// Load the blob under `(rank, key)`, or `None` if never saved.
    fn load(&self, rank: usize, key: &str) -> io::Result<Option<Vec<u8>>>;

    /// Drop the blob under `(rank, key)` (no-op if absent).
    fn remove(&self, rank: usize, key: &str) -> io::Result<()>;
}

/// Save a [`Wire`]-encodable value under `(rank, key)`.
pub fn save_wire<S, T>(store: &S, rank: usize, key: &str, value: &T) -> io::Result<()>
where
    S: CheckpointStore + ?Sized,
    T: Wire,
{
    store.save(rank, key, value.to_bytes())
}

/// Load and decode a [`Wire`]-encodable value from `(rank, key)`. A present
/// but undecodable blob is an error (`InvalidData`), not a silent fresh
/// start — a corrupt checkpoint should be loud.
pub fn load_wire<S, T>(store: &S, rank: usize, key: &str) -> io::Result<Option<T>>
where
    S: CheckpointStore + ?Sized,
    T: Wire,
{
    match store.load(rank, key)? {
        None => Ok(None),
        Some(bytes) => T::from_bytes(&bytes)
            .map(Some)
            .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}"))),
    }
}

/// One `(rank, key)` slot map, shared by every clone of a [`MemStore`].
type SlotMap = HashMap<(usize, String), Vec<u8>>;

/// In-memory [`CheckpointStore`] for the `Sim` and `Threads` backends.
/// Clones share one map, so the store handed to a job closure survives
/// restarts of the rank threads that write through it.
#[derive(Clone, Default)]
pub struct MemStore {
    slots: Arc<Mutex<SlotMap>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of stored blobs (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> io::Result<()> {
        self.slots
            .lock()
            .unwrap()
            .insert((rank, key.to_string()), bytes);
        Ok(())
    }

    fn load(&self, rank: usize, key: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .slots
            .lock()
            .unwrap()
            .get(&(rank, key.to_string()))
            .cloned())
    }

    fn remove(&self, rank: usize, key: &str) -> io::Result<()> {
        self.slots.lock().unwrap().remove(&(rank, key.to_string()));
        Ok(())
    }
}

/// File-backed [`CheckpointStore`] for the `Procs` backend: one file per
/// `(rank, key)` under a directory created in the parent *before* forking,
/// so every child (including re-forked ones of a later attempt) inherits
/// the same path. Writes go to a temporary file first and are renamed into
/// place — rename is atomic on POSIX, so a SIGKILL mid-save leaves the
/// previous complete checkpoint, never a torn one.
///
/// `key` becomes part of the file name and must be file-name safe (the
/// drivers use short alphanumeric keys like `"mcl.state"`).
#[derive(Clone, Debug)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<FileStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn slot_path(&self, rank: usize, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.r{rank}.ckpt"))
    }
}

impl CheckpointStore for FileStore {
    fn save(&self, rank: usize, key: &str, bytes: Vec<u8>) -> io::Result<()> {
        let path = self.slot_path(rank, key);
        let tmp = self.dir.join(format!("{key}.r{rank}.tmp"));
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)
    }

    fn load(&self, rank: usize, key: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.slot_path(rank, key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, rank: usize, key: &str) -> io::Result<()> {
        match std::fs::remove_file(self.slot_path(rank, key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Wire-encodable image of one rank's [`DistMat1D`] slice: global shape,
/// column offsets, and the local DCSC arrays verbatim. Restoration is
/// bit-identical (`f64` travels as raw bits).
#[derive(Clone, Debug, PartialEq)]
pub struct MatSnapshot {
    nrows: u64,
    ncols: u64,
    local_ncols: u64,
    offsets: Vec<u64>,
    jc: Vec<Vidx>,
    cp: Vec<u64>,
    ir: Vec<Vidx>,
    num: Vec<f64>,
}

impl MatSnapshot {
    /// Capture this rank's slice of `m`.
    pub fn of(m: &DistMat1D) -> MatSnapshot {
        let l = m.local();
        MatSnapshot {
            nrows: m.nrows() as u64,
            ncols: m.ncols() as u64,
            local_ncols: l.ncols() as u64,
            offsets: m.offsets().iter().map(|&o| o as u64).collect(),
            jc: l.jc().to_vec(),
            cp: l.cp().iter().map(|&p| p as u64).collect(),
            ir: l.ir().to_vec(),
            num: l.num().to_vec(),
        }
    }

    /// Rebuild the distributed slice this snapshot captured.
    pub fn restore(&self) -> DistMat1D {
        let offsets: Vec<usize> = self.offsets.iter().map(|&o| o as usize).collect();
        let local = Dcsc::from_parts(
            self.nrows as usize,
            self.local_ncols as usize,
            self.jc.clone(),
            self.cp.iter().map(|&p| p as usize).collect(),
            self.ir.clone(),
            self.num.clone(),
        );
        DistMat1D::from_local(
            self.nrows as usize,
            self.ncols as usize,
            Arc::new(offsets),
            local,
        )
    }
}

impl Wire for MatSnapshot {
    fn put(&self, out: &mut Vec<u8>) {
        self.nrows.put(out);
        self.ncols.put(out);
        self.local_ncols.put(out);
        self.offsets.put(out);
        self.jc.put(out);
        self.cp.put(out);
        self.ir.put(out);
        self.num.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(MatSnapshot {
            nrows: Wire::get(buf)?,
            ncols: Wire::get(buf)?,
            local_ncols: Wire::get(buf)?,
            offsets: Wire::get(buf)?,
            jc: Wire::get(buf)?,
            cp: Wire::get(buf)?,
            ir: Wire::get(buf)?,
            num: Wire::get(buf)?,
        })
    }
}

/// Collective agreement on the resume point. Each rank passes the last
/// step it finds durably checkpointed (`None` if nothing); the result is
/// `Some(k)` only when **every** rank reports exactly `k` — any
/// disagreement (a rank died before saving, a stale or missing file) makes
/// all ranks start fresh together, so no rank resumes ahead of another.
pub fn agreed_step<C: Comm>(comm: &C, mine: Option<u64>) -> Option<u64> {
    let enc = mine.map_or(-1i64, |k| k as i64);
    let min = comm.allreduce(enc, |a, b| a.min(b));
    let max = comm.allreduce(enc, |a, b| a.max(b));
    (min == max && min >= 0).then_some(min as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::erdos_renyi;

    #[test]
    fn mem_store_round_trips_and_removes() {
        let s = MemStore::new();
        assert!(s.is_empty());
        save_wire(&s, 1, "x", &42u64).unwrap();
        assert_eq!(load_wire::<_, u64>(&s, 1, "x").unwrap(), Some(42));
        assert_eq!(load_wire::<_, u64>(&s, 0, "x").unwrap(), None);
        let clone = s.clone();
        assert_eq!(load_wire::<_, u64>(&clone, 1, "x").unwrap(), Some(42));
        s.remove(1, "x").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn file_store_round_trips_atomically() {
        let dir = std::env::temp_dir().join(format!("sa_ckpt_test_{}", std::process::id()));
        let s = FileStore::new(&dir).unwrap();
        save_wire(&s, 2, "state", &vec![1.5f64, -0.0, f64::NAN]).unwrap();
        let back: Vec<f64> = load_wire(&s, 2, "state").unwrap().unwrap();
        assert_eq!(back[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(back[1].to_bits(), (-0.0f64).to_bits());
        assert!(back[2].is_nan());
        // overwrite replaces, remove clears, absent loads are None
        save_wire(&s, 2, "state", &7u64).unwrap();
        assert_eq!(load_wire::<_, u64>(&s, 2, "state").unwrap(), Some(7));
        s.remove(2, "state").unwrap();
        assert_eq!(s.load(2, "state").unwrap(), None);
        // no stray tmp files linger after a completed save
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_loud() {
        let s = MemStore::new();
        s.save(0, "k", vec![1, 2, 3]).unwrap();
        let err = load_wire::<_, u64>(&s, 0, "k").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn mat_snapshot_is_bit_identical() {
        let a = erdos_renyi(40, 40, 3.0, 11);
        let got = sa_mpisim::Universe::new(3).run(|comm| {
            let offsets = crate::dist1d::uniform_offsets(40, comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let snap = MatSnapshot::of(&da);
            let back = MatSnapshot::from_bytes(&snap.to_bytes()).unwrap().restore();
            (
                da.local().num() == back.local().num()
                    && da.local().ir() == back.local().ir()
                    && da.local().jc() == back.local().jc()
                    && da.offsets() == back.offsets(),
                back.gather(comm),
            )
        });
        for (same, gathered) in got {
            assert!(same);
            if let Some(g) = gathered {
                assert_eq!(g, a);
            }
        }
    }

    #[test]
    fn agreed_step_requires_unanimity() {
        let u = sa_mpisim::Universe::new(3);
        // unanimous
        let got = u.run(|comm| {
            let _ = comm;
            agreed_step(comm, Some(4))
        });
        assert!(got.into_iter().all(|s| s == Some(4)));
        // one rank behind → everyone starts fresh
        let got = u.run(|comm| {
            let mine = if comm.rank() == 1 { Some(3) } else { Some(4) };
            agreed_step(comm, mine)
        });
        assert!(got.into_iter().all(|s| s.is_none()));
        // one rank has nothing → fresh
        let got = u.run(|comm| {
            let mine = if comm.rank() == 2 { None } else { Some(9) };
            agreed_step(comm, mine)
        });
        assert!(got.into_iter().all(|s| s.is_none()));
    }
}
