//! Cross-iteration fetch caching for iterative SpGEMM workloads.
//!
//! The paper's headline applications (batched betweenness centrality §IV-C,
//! Markov clustering §II-C1, AMG Galerkin products §IV-B) all call
//! [`spgemm_1d`](crate::spgemm1d::spgemm_1d) in a loop against a stationary
//! (or slowly changing) fetched operand, yet each sessionless call re-runs
//! the symbolic pass, re-exposes the windows, and re-fetches every remote
//! `A` column from scratch. This module makes the needed-column set of
//! Algorithm 1 a *persistent* object:
//!
//! * [`FetchCache`] — a per-rank cache of remote `A` columns, keyed by
//!   `(owner rank, global column)`, stored as mergeable DCSC column
//!   segments under a configurable byte budget ([`CacheConfig`]) with
//!   LRU-ish eviction.
//! * [`SpgemmSession`] — pins the fetched operand: the metadata allgather
//!   and the [`PairedWindow`] exposure happen **once** at
//!   [`SpgemmSession::create`], and every [`SpgemmSession::multiply`] runs
//!   an *incremental* symbolic pass that diffs the current needed-column
//!   set against cache contents and issues coalesced gets only for the
//!   misses. [`SpgemmSession::update_a`] re-anchors the session on a
//!   changed operand, invalidating exactly the columns whose content
//!   changed — iterative solvers that converge (MCL) communicate only the
//!   per-iteration delta.
//!
//! Metering stays exact: a session multiply's
//! [`SpgemmReport::fresh_bytes`](crate::spgemm1d::SpgemmReport::fresh_bytes)
//! equals the metered window traffic to the byte (the integration tests
//! assert this across iterations and eviction), while
//! [`SpgemmReport::cache_hit_bytes`](crate::spgemm1d::SpgemmReport::cache_hit_bytes)
//! accounts for the needed bytes the cache served instead of the wire.

use crate::dist1d::DistMat1D;
use crate::fetch::{exchange_meta, plan_fetch, FetchPlan, Interval, RankMeta, ENTRY_BYTES};
use crate::spgemm1d::{assert_conformal, cv_of, global_volume, FetchMode, Plan1D, SpgemmReport};
use sa_mpisim::{
    Breakdown, Comm, PairedGet, PairedWindow, PhaseTimes, PrefetchConfig, Prefetcher, Wire,
    WireError,
};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{spgemm_with, ChunkBuf, SpgemmWorkspace};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::{Dcsc, DcscBuilder};
use std::collections::HashMap;
use std::time::Instant;

/// Byte budget for a session's [`FetchCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident bytes of cached column segments (index + value
    /// arrays, 12 B per stored entry — the same `u32` + `f64` wire cost the
    /// reports meter). `0` disables caching entirely; `u64::MAX` (the
    /// default) never evicts.
    pub budget_bytes: u64,
}

impl CacheConfig {
    /// Cache every fetched column, never evict.
    pub fn unlimited() -> CacheConfig {
        CacheConfig {
            budget_bytes: u64::MAX,
        }
    }

    /// Cache under a byte budget with LRU-ish eviction.
    pub fn budget(budget_bytes: u64) -> CacheConfig {
        CacheConfig { budget_bytes }
    }

    /// No caching: every multiply fetches its full needed set fresh. For
    /// the sparsity-aware modes this is byte-for-byte the traffic of
    /// repeated sessionless calls — the baseline the bench compares
    /// against. (Under [`FetchMode::FullMatrix`] a session still skips
    /// remote slices the multiply needs *nothing* from, where the
    /// sessionless baseline replicates them unconditionally — see
    /// [`SpgemmSession`]'s planner note.)
    pub fn disabled() -> CacheConfig {
        CacheConfig { budget_bytes: 0 }
    }
}

impl Default for CacheConfig {
    /// Unlimited — callers opt *into* a budget, not out of caching.
    fn default() -> CacheConfig {
        CacheConfig::unlimited()
    }
}

/// One cached remote column: a DCSC segment (parallel row-id / value
/// arrays) plus its LRU stamp.
struct CachedCol {
    ir: Vec<Vidx>,
    num: Vec<f64>,
    last_used: u64,
}

impl CachedCol {
    fn bytes(&self) -> u64 {
        self.ir.len() as u64 * ENTRY_BYTES
    }
}

/// Per-rank persistent cache of remote `A` columns (see the module docs).
///
/// Eviction is LRU-ish: when an insert would exceed the byte budget,
/// columns not touched by the current multiply are dropped oldest-first
/// (ties broken by key for determinism). Columns the current multiply
/// touched are never evicted mid-iteration, so an assembly can always read
/// the hits its symbolic pass promised.
pub struct FetchCache {
    budget: u64,
    cols: HashMap<(u32, Vidx), CachedCol>,
    resident_bytes: u64,
    /// Monotone multiply counter; entries stamped with the current value
    /// are immune to eviction.
    clock: u64,
    /// Eviction candidates of the current multiply, oldest first, built
    /// lazily on the first over-budget insert and drained by `cursor` —
    /// one sort per multiply instead of one per inserted column.
    victims: Vec<(u64, u32, Vidx)>,
    victims_clock: u64,
    victims_cursor: usize,
    evicted_cols: u64,
    evicted_bytes: u64,
    skipped_inserts: u64,
}

impl FetchCache {
    fn new(cfg: CacheConfig) -> FetchCache {
        FetchCache {
            budget: cfg.budget_bytes,
            cols: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            victims: Vec::new(),
            victims_clock: 0,
            victims_cursor: 0,
            evicted_cols: 0,
            evicted_bytes: 0,
            skipped_inserts: 0,
        }
    }

    /// Bytes of column segments currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Columns currently resident.
    pub fn resident_cols(&self) -> usize {
        self.cols.len()
    }

    /// Columns evicted over the cache's lifetime.
    pub fn evicted_cols(&self) -> u64 {
        self.evicted_cols
    }

    /// Bytes evicted over the cache's lifetime.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Inserts skipped because the budget could not accommodate them even
    /// after evicting every stale entry.
    pub fn skipped_inserts(&self) -> u64 {
        self.skipped_inserts
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    fn tick(&mut self) {
        self.clock += 1;
    }

    fn contains(&self, owner: usize, col: Vidx) -> bool {
        self.cols.contains_key(&(owner as u32, col))
    }

    /// Refresh the LRU stamp of a resident column.
    fn touch(&mut self, owner: usize, col: Vidx) {
        if let Some(c) = self.cols.get_mut(&(owner as u32, col)) {
            c.last_used = self.clock;
        }
    }

    /// Borrow a resident column's segment without touching its stamp.
    fn peek(&self, owner: usize, col: Vidx) -> Option<(&[Vidx], &[f64])> {
        self.cols
            .get(&(owner as u32, col))
            .map(|c| (c.ir.as_slice(), c.num.as_slice()))
    }

    /// Insert a freshly fetched column, evicting stale entries if the
    /// budget demands it. No-op if the column is already resident (block
    /// over-fetch can re-deliver cached columns) or can never fit.
    fn insert(&mut self, owner: usize, col: Vidx, rows: &[Vidx], vals: &[f64]) {
        let key = (owner as u32, col);
        if self.cols.contains_key(&key) {
            return;
        }
        let sz = rows.len() as u64 * ENTRY_BYTES;
        if sz > self.budget {
            self.skipped_inserts += 1;
            return;
        }
        if self.resident_bytes + sz > self.budget {
            // LRU-ish eviction: everything not touched this multiply is a
            // candidate, oldest (then smallest key) first. The sorted
            // candidate list is built once per multiply and drained across
            // inserts; columns inserted this multiply carry the current
            // stamp and never enter it.
            if self.victims_clock != self.clock {
                self.victims = self
                    .cols
                    .iter()
                    .filter(|(_, c)| c.last_used < self.clock)
                    .map(|(&(o, j), c)| (c.last_used, o, j))
                    .collect();
                self.victims.sort_unstable();
                self.victims_clock = self.clock;
                self.victims_cursor = 0;
            }
            while self.resident_bytes + sz > self.budget {
                let Some(&(_, o, j)) = self.victims.get(self.victims_cursor) else {
                    break;
                };
                self.victims_cursor += 1;
                // an entry may have been touched (pinned) after the list
                // was built; re-check before dropping it
                if self
                    .cols
                    .get(&(o, j))
                    .is_some_and(|c| c.last_used < self.clock)
                {
                    let c = self.cols.remove(&(o, j)).unwrap();
                    self.resident_bytes -= c.bytes();
                    self.evicted_cols += 1;
                    self.evicted_bytes += c.bytes();
                }
            }
            if self.resident_bytes + sz > self.budget {
                self.skipped_inserts += 1;
                return;
            }
        }
        self.resident_bytes += sz;
        self.cols.insert(
            key,
            CachedCol {
                ir: rows.to_vec(),
                num: vals.to_vec(),
                last_used: self.clock,
            },
        );
    }

    /// Drop a column (its owner's content changed). Returns whether it was
    /// resident.
    fn invalidate(&mut self, owner: usize, col: Vidx) -> bool {
        match self.cols.remove(&(owner as u32, col)) {
            Some(c) => {
                self.resident_bytes -= c.bytes();
                true
            }
            None => false,
        }
    }
}

/// Cumulative counters of a session (sums over all its multiplies).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Multiplies executed through the session.
    pub multiplies: u64,
    /// Σ wire bytes ([`SpgemmReport::fresh_bytes`]).
    pub fresh_bytes: u64,
    /// Σ needed bytes served from cache
    /// ([`SpgemmReport::cache_hit_bytes`]).
    pub cache_hit_bytes: u64,
    /// Σ one-sided messages issued.
    pub rdma_msgs: u64,
    /// [`SpgemmSession::update_a`] calls.
    pub a_updates: u64,
    /// Cached columns invalidated by those updates.
    pub invalidated_cols: u64,
}

impl Wire for SessionStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.multiplies.put(out);
        self.fresh_bytes.put(out);
        self.cache_hit_bytes.put(out);
        self.rdma_msgs.put(out);
        self.a_updates.put(out);
        self.invalidated_cols.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SessionStats {
            multiplies: Wire::get(buf)?,
            fresh_bytes: Wire::get(buf)?,
            cache_hit_bytes: Wire::get(buf)?,
            rdma_msgs: Wire::get(buf)?,
            a_updates: Wire::get(buf)?,
            invalidated_cols: Wire::get(buf)?,
        })
    }
}

/// Wire-encodable image of one rank's session state, for checkpointing
/// iterative jobs run under
/// [`run_recoverable`](sa_mpisim::Universe::run_recoverable): an operand
/// fingerprint, the cumulative [`SessionStats`], and the [`FetchCache`]
/// contents. Taken with [`SpgemmSession::snapshot`] and re-applied with
/// [`SpgemmSession::restore`] after a fresh collective
/// [`SpgemmSession::create`] on the same operand (a restarted process must
/// re-expose its windows — only the cache and counters carry over).
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSnapshot {
    /// Pinned operand fingerprint: global shape + this rank's local nnz.
    nrows: u64,
    ncols: u64,
    local_nnz: u64,
    stats: SessionStats,
    /// Cached column segments, ascending by `(owner, global column)` so
    /// snapshot bytes are deterministic (the cache map itself iterates in
    /// arbitrary order).
    cols: Vec<(u32, Vidx, Vec<Vidx>, Vec<f64>)>,
}

impl SessionSnapshot {
    /// Cached columns captured in this snapshot.
    pub fn cached_cols(&self) -> usize {
        self.cols.len()
    }

    /// Cumulative session counters at snapshot time.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }
}

impl Wire for SessionSnapshot {
    fn put(&self, out: &mut Vec<u8>) {
        self.nrows.put(out);
        self.ncols.put(out);
        self.local_nnz.put(out);
        self.stats.put(out);
        self.cols.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(SessionSnapshot {
            nrows: Wire::get(buf)?,
            ncols: Wire::get(buf)?,
            local_nnz: Wire::get(buf)?,
            stats: Wire::get(buf)?,
            cols: Wire::get(buf)?,
        })
    }
}

/// What the *next* [`SpgemmSession::multiply`] with this operand would do —
/// the incremental counterpart of [`analyze_1d`](crate::spgemm1d::analyze_1d).
///
/// Computed purely from replicated metadata and local cache state: unlike
/// `analyze_1d` this is **not** collective and moves no data at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionAnalysis {
    /// Bytes the multiply will fetch over the wire (the planned misses,
    /// including block over-fetch).
    pub planned_fresh_bytes: u64,
    /// Ranged fetches it will issue.
    pub planned_intervals: u64,
    /// Needed bytes the cache will serve without traffic.
    pub cache_hit_bytes: u64,
    /// Bytes the sparsity strictly requires (hits + needed part of the
    /// misses).
    pub needed_bytes: u64,
}

/// Outcome of the incremental symbolic pass: which needed columns the cache
/// already holds, and the mask of those that must travel.
struct Survey {
    /// Global-column mask of needed-but-uncached columns.
    miss: Vec<bool>,
    /// Resident needed columns: (owner, global column, owner-storage
    /// position, entry bytes), ascending by (owner, position).
    hits: Vec<(usize, Vidx, usize, u64)>,
    /// Σ entry bytes of `hits`.
    hit_bytes: u64,
}

/// Σ bytes of surveyed hits that the miss plan does *not* re-deliver:
/// block/full-matrix over-fetch can pull a cached column back over the wire
/// anyway (the assembly then reads the fresh copy), and such columns must
/// not be reported as traffic the cache avoided. Both lists are ascending
/// by (owner, position), so one merge walk suffices.
fn served_hit_bytes(survey: &Survey, fplan: &FetchPlan) -> u64 {
    let mut iv_iter = fplan.intervals.iter().peekable();
    let mut served = 0u64;
    for &(owner, _g, q, bytes) in &survey.hits {
        // skip intervals entirely before position q (pos.end is exclusive:
        // an interval with pos.end == q + 1 still covers q)
        while iv_iter
            .peek()
            .is_some_and(|iv| (iv.owner, iv.pos.end) <= (owner, q))
        {
            iv_iter.next();
        }
        let covered = iv_iter
            .peek()
            .is_some_and(|iv| iv.owner == owner && iv.pos.contains(&q));
        if !covered {
            served += bytes;
        }
    }
    served
}

/// A pinned fetched operand for repeated [`spgemm_1d`]-style multiplies.
///
/// Created collectively once; afterwards each [`multiply`] fetches only the
/// columns the cache is missing. See the module docs for the design, and
/// [`spgemm_1d`] for the sessionless baseline semantics this preserves.
///
/// [`spgemm_1d`]: crate::spgemm1d::spgemm_1d
/// [`multiply`]: SpgemmSession::multiply
///
/// ```
/// use sa_dist::{uniform_offsets, CacheConfig, DistMat1D, Plan1D, SpgemmSession};
/// use sa_mpisim::Universe;
/// use sa_sparse::gen::erdos_renyi;
///
/// let a = erdos_renyi(60, 60, 3.0, 7);
/// let reports = Universe::new(3).run(|comm| {
///     let offsets = uniform_offsets(60, comm.size());
///     let da = DistMat1D::from_global(comm, &a, &offsets);
///     let db = da.clone();
///     let mut session =
///         SpgemmSession::create(comm, da, Plan1D::default(), CacheConfig::unlimited());
///     let (_c1, first) = session.multiply(comm, &db);
///     let (_c2, second) = session.multiply(comm, &db);
///     (first, second)
/// });
/// for (first, second) in reports {
///     // iteration 2 reuses every column iteration 1 fetched
///     assert_eq!(second.fresh_bytes, 0);
///     assert_eq!(second.cache_hit_bytes, first.needed_bytes);
/// }
/// ```
pub struct SpgemmSession {
    a: DistMat1D,
    metas: Vec<RankMeta>,
    win: PairedWindow<Vidx, f64>,
    plan: Plan1D,
    cache: FetchCache,
    stats: SessionStats,
    /// Overlap knob: when enabled, each multiply issues its miss-fetches
    /// up front and streams them behind the cache-hit portion of the
    /// kernel (see [`SpgemmSession::multiply`]).
    prefetch: PrefetchConfig,
    /// Allocation arena shared by every multiply of this session: kernel
    /// scratch, fetch staging, and the `Ã` builder's buffers all live
    /// here, so steady-state iterations allocate nothing on the hot path
    /// beyond output growth.
    ws: SpgemmWorkspace<f64>,
}

impl SpgemmSession {
    /// Pin `a` as the session's fetched operand: replicate its nonzero-column
    /// metadata and expose its entry arrays through a paired window, both
    /// kept for the session's lifetime. Collective.
    pub fn create<C: Comm>(
        comm: &C,
        a: DistMat1D,
        plan: Plan1D,
        cache: CacheConfig,
    ) -> SpgemmSession {
        let metas = exchange_meta(comm, a.local());
        let win = PairedWindow::create(comm, a.local().ir().to_vec(), a.local().num().to_vec());
        SpgemmSession {
            a,
            metas,
            win,
            plan,
            cache: FetchCache::new(cache),
            stats: SessionStats::default(),
            prefetch: PrefetchConfig::from_env(),
            ws: SpgemmWorkspace::new(),
        }
    }

    /// Set the overlap knob for subsequent multiplies (the constructor
    /// seeds it from `SA_PREFETCH`/`SA_PREFETCH_BYTES`). Purely local —
    /// results and traffic counters are byte-identical either way, so
    /// ranks need not agree on it.
    pub fn set_prefetch(&mut self, cfg: PrefetchConfig) {
        self.prefetch = cfg;
    }

    /// The session's current overlap knob.
    pub fn prefetch(&self) -> PrefetchConfig {
        self.prefetch
    }

    /// The pinned operand.
    pub fn a(&self) -> &DistMat1D {
        &self.a
    }

    /// The session's execution plan.
    pub fn plan(&self) -> &Plan1D {
        &self.plan
    }

    /// Cumulative counters over the session's multiplies.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The cache (resident/evicted byte counters).
    pub fn cache(&self) -> &FetchCache {
        &self.cache
    }

    /// The session's allocation arena (pool hit/miss counters — the
    /// steady-state zero-allocation property is asserted through these).
    pub fn workspace(&self) -> &SpgemmWorkspace<f64> {
        &self.ws
    }

    /// Incremental symbolic pass: classify every needed remote column as a
    /// cache hit or a miss.
    fn survey(&self, me: usize, needed: &[bool]) -> Survey {
        let offsets = self.a.offsets();
        let mut miss = vec![false; self.a.ncols()];
        let mut hits = Vec::new();
        let mut hit_bytes = 0u64;
        for (owner, meta) in self.metas.iter().enumerate() {
            if owner == me {
                continue;
            }
            let base = offsets[owner];
            for q in 0..meta.nzc() {
                let g = base + meta.jc[q] as usize;
                if !needed[g] {
                    continue;
                }
                if self.cache.contains(owner, vidx(g)) {
                    let bytes = meta.col_entries(q) * ENTRY_BYTES;
                    hits.push((owner, vidx(g), q, bytes));
                    hit_bytes += bytes;
                } else {
                    miss[g] = true;
                }
            }
        }
        Survey {
            miss,
            hits,
            hit_bytes,
        }
    }

    /// Coalesce the missed columns into ranged fetches. All modes reuse the
    /// sessionless planner; [`FetchMode::FullMatrix`] keeps its
    /// all-or-nothing-per-owner semantics but skips owners whose slice the
    /// cache fully covers (otherwise a cache could never help it).
    fn plan_misses(&self, me: usize, miss: &[bool]) -> FetchPlan {
        let offsets = self.a.offsets();
        if self.plan.fetch_mode != FetchMode::FullMatrix {
            return plan_fetch(self.plan.fetch_mode, &self.metas, offsets, miss, me);
        }
        let mut intervals = Vec::new();
        let mut fetch_entries = 0u64;
        let mut needed_entries = 0u64;
        for (owner, meta) in self.metas.iter().enumerate() {
            if owner == me || meta.nzc() == 0 {
                continue;
            }
            let base = offsets[owner];
            let mut any = false;
            for q in 0..meta.nzc() {
                if miss[base + meta.jc[q] as usize] {
                    needed_entries += meta.col_entries(q);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            fetch_entries += meta.cp[meta.nzc()];
            intervals.push(Interval {
                owner,
                pos: 0..meta.nzc(),
                entries: 0..meta.cp[meta.nzc()],
            });
        }
        FetchPlan {
            intervals,
            fetch_entries,
            needed_entries,
        }
    }

    /// Price the next [`multiply`](SpgemmSession::multiply) with `b` without
    /// moving any data. Purely local (the metadata is replicated and the
    /// cache is per-rank): **not** collective, unlike
    /// [`analyze_1d`](crate::spgemm1d::analyze_1d).
    ///
    /// The prediction is exact: an immediately following `multiply` with the
    /// same `b` meters `planned_fresh_bytes` on the wire and serves
    /// `cache_hit_bytes` from cache, to the byte.
    pub fn analyze<C: Comm>(&self, comm: &C, b: &DistMat1D) -> SessionAnalysis {
        assert_conformal(&self.a, b);
        let needed = b.local().row_hit_vector();
        let survey = self.survey(comm.rank(), &needed);
        let fplan = self.plan_misses(comm.rank(), &survey.miss);
        SessionAnalysis {
            planned_fresh_bytes: fplan.fetch_bytes(),
            planned_intervals: fplan.intervals.len() as u64,
            cache_hit_bytes: served_hit_bytes(&survey, &fplan),
            needed_bytes: survey.hit_bytes + fplan.needed_bytes(),
        }
    }

    /// One session multiply: `C = Ã·B_loc` where `Ã` is assembled from the
    /// local slice, cache hits, and coalesced fetches of the misses (which
    /// are inserted into the cache for later iterations). Returns `C` in
    /// `B`'s column layout plus this rank's report. Collective only through
    /// the window fetches (plus two allreduces when
    /// [`Plan1D::global_stats`] is set).
    pub fn multiply<C: Comm>(&mut self, comm: &C, b: &DistMat1D) -> (DistMat1D, SpgemmReport) {
        assert_conformal(&self.a, b);
        let stats0 = comm.stats();
        let t_call = Instant::now();
        let me = comm.rank();

        // --- incremental symbolic pass ---
        let t_sym = Instant::now();
        self.cache.tick();
        let needed = b.local().row_hit_vector();
        let survey = self.survey(me, &needed);
        // Pin the hits: entries touched at the current clock are immune to
        // eviction, so inserting fresh columns below cannot drop a column
        // the assembly is about to read.
        for &(owner, g, _q, _bytes) in &survey.hits {
            self.cache.touch(owner, g);
        }
        let fplan = self.plan_misses(me, &survey.miss);
        let symbolic_s = t_sym.elapsed().as_secs_f64();

        let (c_local, comm_s, comp_s, mut assemble_s) = if self.prefetch.enabled {
            // --- overlap: stream the miss-fetches behind the cache-hit
            // portion of the kernel (see `multiply_overlapped`) ---
            self.multiply_overlapped(comm, b, &survey, &fplan)
        } else {
            // --- fetch misses + merge with cache into Ã ---
            let t_asm = Instant::now();
            let (atilde, comm_s) = self.assemble(comm, &needed, &survey, &fplan);
            let assemble_s = (t_asm.elapsed().as_secs_f64() - comm_s).max(0.0);

            // --- local kernel ---
            let t0 = Instant::now();
            let (kernel, schedule, ws) = (self.plan.kernel, self.plan.schedule, &self.ws);
            let c_local = comm.install(|| {
                spgemm_with::<PlusTimes<f64>, _, _>(&atilde, b.local(), kernel, schedule, ws)
            });
            let comp_s = t0.elapsed().as_secs_f64();
            // recycle Ã's buffers for the next iteration's assembly
            let (jc, cp, ir, num) = atilde.into_parts();
            self.ws.put_chunk(ChunkBuf {
                lens: jc,
                rows: ir,
                vals: num,
            });
            self.ws.put_idx(cp);
            (c_local, comm_s, comp_s, assemble_s)
        };
        let t_wrap = Instant::now();
        let c = DistMat1D::from_local(
            self.a.nrows(),
            b.ncols(),
            b.offsets().clone(),
            Dcsc::from_csc(&c_local),
        );
        assemble_s += t_wrap.elapsed().as_secs_f64();

        // --- exact accounting ---
        let comm_delta = comm.stats() - stats0;
        let fetched = fplan.fetch_bytes();
        debug_assert_eq!(comm_delta.rdma_get_bytes, fetched, "metered == planned");
        let (fetched_global, cv) = if self.plan.global_stats {
            let (total, max_fetched, mem_global) = global_volume(comm, fetched, &self.a);
            (total, cv_of(max_fetched, mem_global))
        } else {
            let mem_local = self.a.local().nnz() as u64 * ENTRY_BYTES;
            (fetched, cv_of(fetched, mem_local))
        };
        let total_s = t_call.elapsed().as_secs_f64();
        let report = SpgemmReport {
            fetched_bytes: fetched,
            fresh_bytes: fetched,
            cache_hit_bytes: served_hit_bytes(&survey, &fplan),
            needed_bytes: survey.hit_bytes + fplan.needed_bytes(),
            fetched_bytes_global: fetched_global,
            rdma_msgs: fplan.rdma_msgs(),
            cv_over_mem: cv,
            comm: comm_delta,
            breakdown: Breakdown {
                comm_s,
                comp_s,
                other_s: (total_s - comm_s - comp_s).max(0.0),
            },
            phases: PhaseTimes {
                symbolic_s,
                fetch_s: comm_s,
                compute_s: comp_s,
                assemble_s,
            },
        };
        self.stats.multiplies += 1;
        self.stats.fresh_bytes += report.fresh_bytes;
        self.stats.cache_hit_bytes += report.cache_hit_bytes;
        self.stats.rdma_msgs += report.rdma_msgs;
        (c, report)
    }

    /// The overlap form of the fetch + kernel phase, as a kernel split:
    /// `Ã` is partitioned into the *resident* part (the local slice plus
    /// every cache hit the miss plan does not re-deliver) and the *fresh*
    /// part (exactly the planned miss intervals). Every planned get is
    /// issued — validated and metered — up front on this thread, then a
    /// [`Prefetcher`] streams the fetches into an arena staging buffer
    /// while the resident partial product `Ã_res·B` runs in the
    /// foreground. At the rendezvous the fresh columns are assembled
    /// (and inserted into the cache, over-fetched ones included, exactly
    /// like the inline path), multiplied, and merged with `⊕`.
    ///
    /// Identical traffic and cache transcript to the inline path; the
    /// result differs only by the `⊕`-order of the two partial products
    /// (exact on integer data, ≤ ulp-level otherwise — the same split the
    /// 1D overlap entry point has always made). Returns
    /// `(C, fetch_s, compute_s, assemble_s)`.
    fn multiply_overlapped<C: Comm>(
        &mut self,
        comm: &C,
        b: &DistMat1D,
        survey: &Survey,
        fplan: &FetchPlan,
    ) -> (sa_sparse::Csc<f64>, f64, f64, f64) {
        let me = comm.rank();
        let offsets = self.a.offsets().clone();
        // issue the planned gets now: metering happens here, in plan
        // order, so CommStats cannot differ from the inline path; each
        // handle carries its interval's base offset into the staging
        let mut entry_base = 0usize;
        let gets: Vec<(PairedGet<Vidx, f64>, usize)> = fplan
            .intervals
            .iter()
            .map(|iv| {
                let g = self
                    .win
                    .start_get_both(
                        comm,
                        iv.owner,
                        iv.entries.start as usize..iv.entries.end as usize,
                    )
                    .expect("fetch interval within exposed window");
                let b0 = entry_base;
                entry_base += (iv.entries.end - iv.entries.start) as usize;
                (g, b0)
            })
            .collect();
        let sizes: Vec<u64> = gets.iter().map(|(g, _)| g.bytes()).collect();

        let stage = self.ws.take_chunk();
        let stage_lens = stage.lens;
        let mut staging = (stage.rows, stage.vals, 0.0f64);
        let resbuf = self.ws.take_chunk();
        let rescp = self.ws.take_idx();

        let local = self.a.local();
        let cache = &self.cache;
        let (kernel, schedule, ws) = (self.plan.kernel, self.plan.schedule, &self.ws);
        let (nrows, ncols) = (self.a.nrows(), self.a.ncols());
        let mut pf = Prefetcher::new(comm, self.prefetch);
        let (c_res, atilde_res, comp_res_s, asm_res_s) = pf.stage(
            &sizes,
            &mut staging,
            |range, st: &mut (Vec<Vidx>, Vec<f64>, f64)| {
                let t0 = Instant::now();
                for (g, _) in &gets[range] {
                    g.fetch_into(&mut st.0, &mut st.1);
                }
                st.2 += t0.elapsed().as_secs_f64();
            },
            || {
                // Ã_res: local slice spliced at its owner position, plus
                // every surveyed hit the miss plan does not re-deliver
                // (re-delivered hits arrive fresh below — including them
                // here too would double-count their contribution)
                let t0 = Instant::now();
                let mut builder = DcscBuilder::from_buffers(
                    nrows,
                    ncols,
                    resbuf.lens,
                    rescp,
                    resbuf.rows,
                    resbuf.vals,
                );
                let mut iv_iter = fplan.intervals.iter().peekable();
                let mut hit_iter = survey.hits.iter().peekable();
                for owner in 0..comm.size() {
                    if owner == me {
                        let base = offsets[me];
                        for q in 0..local.nzc() {
                            let (rows, vals) = local.col_by_pos(q);
                            builder.push_col(vidx(base + local.jc()[q] as usize), rows, vals);
                        }
                        continue;
                    }
                    while let Some(&&(o, g, q, _bytes)) = hit_iter.peek() {
                        if o != owner {
                            break;
                        }
                        hit_iter.next();
                        while iv_iter
                            .peek()
                            .is_some_and(|iv| (iv.owner, iv.pos.end) <= (o, q))
                        {
                            iv_iter.next();
                        }
                        let covered = iv_iter
                            .peek()
                            .is_some_and(|iv| iv.owner == o && iv.pos.contains(&q));
                        if !covered {
                            let (rows, vals) = cache
                                .peek(o, g)
                                .expect("surveyed hit still resident (pinned at current clock)");
                            builder.push_col(g, rows, vals);
                        }
                    }
                }
                let atilde_res = builder.finish();
                let asm = t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                let c = comm.install(|| {
                    spgemm_with::<PlusTimes<f64>, _, _>(
                        &atilde_res,
                        b.local(),
                        kernel,
                        schedule,
                        ws,
                    )
                });
                (c, atilde_res, t1.elapsed().as_secs_f64(), asm)
            },
        );
        let (stage_rows, stage_vals, fetch_s) = staging;

        // --- rendezvous: assemble Ã_fresh from the plan-order staged
        // bytes, inserting every delivered column into the cache ---
        let t0 = Instant::now();
        let freshbuf = self.ws.take_chunk();
        let freshcp = self.ws.take_idx();
        let mut builder = DcscBuilder::from_buffers(
            nrows,
            ncols,
            freshbuf.lens,
            freshcp,
            freshbuf.rows,
            freshbuf.vals,
        );
        for (iv, &(_, stage_base)) in fplan.intervals.iter().zip(&gets) {
            let meta = &self.metas[iv.owner];
            let base = offsets[iv.owner];
            for q in iv.pos.clone() {
                let off = stage_base + (meta.cp[q] - iv.entries.start) as usize;
                let len = meta.col_entries(q) as usize;
                let (rows, vals) = (&stage_rows[off..off + len], &stage_vals[off..off + len]);
                let g = vidx(base + meta.jc[q] as usize);
                builder.push_col(g, rows, vals);
                self.cache.insert(iv.owner, g, rows, vals);
            }
        }
        let atilde_fresh = builder.finish();
        let asm_fresh_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (kernel, schedule, ws) = (self.plan.kernel, self.plan.schedule, &self.ws);
        let c_fresh = comm.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(&atilde_fresh, b.local(), kernel, schedule, ws)
        });
        let merged = sa_sparse::ewise::ewise_add::<PlusTimes<f64>>(&c_res, &c_fresh);
        let comp_s = comp_res_s + t1.elapsed().as_secs_f64();

        // recycle the staging and both Ã halves' buffers
        self.ws.put_chunk(ChunkBuf {
            lens: stage_lens,
            rows: stage_rows,
            vals: stage_vals,
        });
        for half in [atilde_res, atilde_fresh] {
            let (jc, cp, ir, num) = half.into_parts();
            self.ws.put_chunk(ChunkBuf {
                lens: jc,
                rows: ir,
                vals: num,
            });
            self.ws.put_idx(cp);
        }
        (merged, fetch_s, comp_s, asm_res_s + asm_fresh_s)
    }

    /// Assemble `Ã` in ascending global-column order: the local slice
    /// spliced at its owner position, cache hits read in place, and each
    /// owner's planned intervals fetched into a staging buffer then merged
    /// column-by-column (fresh columns — over-fetched ones included, like
    /// the sessionless path — are inserted into the cache as they pass).
    /// The builder's arrays and the staging buffers are recycled through
    /// the session workspace, so steady-state assemblies allocate nothing.
    fn assemble<C: Comm>(
        &mut self,
        comm: &C,
        needed: &[bool],
        survey: &Survey,
        fplan: &FetchPlan,
    ) -> (Dcsc<f64>, f64) {
        let me = comm.rank();
        let local = self.a.local();
        let offsets = self.a.offsets().clone();
        let nzc_est = local.nzc()
            + survey.hits.len()
            + fplan.intervals.iter().map(|iv| iv.pos.len()).sum::<usize>();
        let nnz_est = local.nnz() + (survey.hit_bytes / ENTRY_BYTES + fplan.fetch_entries) as usize;
        let bbuf = self.ws.take_chunk();
        let bcp = self.ws.take_idx();
        let mut builder = DcscBuilder::from_buffers(
            self.a.nrows(),
            self.a.ncols(),
            bbuf.lens,
            bcp,
            bbuf.rows,
            bbuf.vals,
        );
        builder.reserve(nzc_est, nnz_est);
        let mut comm_s = 0.0f64;
        let mut iv_iter = fplan.intervals.iter().peekable();
        let mut stage = self.ws.take_chunk();
        let stage_ir = &mut stage.rows;
        let stage_num = &mut stage.vals;
        let mut fresh: Vec<(&Interval, usize)> = Vec::new();
        for owner in 0..comm.size() {
            if owner == me {
                let base = offsets[me];
                for q in 0..local.nzc() {
                    let (rows, vals) = local.col_by_pos(q);
                    builder.push_col(vidx(base + local.jc()[q] as usize), rows, vals);
                }
                continue;
            }
            let meta = &self.metas[owner];
            let base = offsets[owner];
            // fetch this owner's intervals into the staging buffers
            stage_ir.clear();
            stage_num.clear();
            fresh.clear();
            while let Some(iv) = iv_iter.peek() {
                if iv.owner != owner {
                    break;
                }
                let iv = iv_iter.next().unwrap();
                let stage_base = stage_ir.len();
                let t0 = Instant::now();
                self.win
                    .get_both_into(
                        comm,
                        owner,
                        iv.entries.start as usize..iv.entries.end as usize,
                        stage_ir,
                        stage_num,
                    )
                    .expect("fetch interval within exposed window");
                comm_s += t0.elapsed().as_secs_f64();
                fresh.push((iv, stage_base));
            }
            if fresh.is_empty() && survey.hits.is_empty() {
                continue;
            }
            // merge fresh intervals and cache hits in position order
            let mut k = 0usize;
            for q in 0..meta.nzc() {
                let g = base + meta.jc[q] as usize;
                while k < fresh.len() && fresh[k].0.pos.end <= q {
                    k += 1;
                }
                if k < fresh.len() && fresh[k].0.pos.contains(&q) {
                    let (iv, stage_base) = fresh[k];
                    let off = stage_base + (meta.cp[q] - iv.entries.start) as usize;
                    let len = meta.col_entries(q) as usize;
                    let (rows, vals) = (&stage_ir[off..off + len], &stage_num[off..off + len]);
                    builder.push_col(vidx(g), rows, vals);
                    self.cache.insert(owner, vidx(g), rows, vals);
                } else if needed[g] {
                    let (rows, vals) = self
                        .cache
                        .peek(owner, vidx(g))
                        .expect("surveyed hit still resident (pinned at current clock)");
                    builder.push_col(vidx(g), rows, vals);
                }
            }
        }
        self.ws.put_chunk(stage);
        (builder.finish(), comm_s)
    }

    /// Re-anchor the session on a changed operand without discarding the
    /// cache: each rank diffs its new slice against the old one column by
    /// column, the changed global-column lists are allgathered (metadata
    /// traffic, like the symbolic pass), and exactly those columns are
    /// invalidated everywhere. The metadata and window exposure are
    /// refreshed. Layout (dimensions and offsets) must be unchanged.
    /// Collective. Returns the number of globally changed columns.
    pub fn update_a<C: Comm>(&mut self, comm: &C, new_a: DistMat1D) -> u64 {
        assert_eq!(self.a.nrows(), new_a.nrows(), "update_a cannot resize");
        assert_eq!(self.a.ncols(), new_a.ncols(), "update_a cannot resize");
        assert_eq!(
            self.a.offsets(),
            new_a.offsets(),
            "update_a cannot relayout"
        );
        let me = comm.rank();
        let changed = changed_columns(self.a.local(), new_a.local());
        let all_changed = comm.allgatherv(changed);
        let mut total = 0u64;
        let mut invalidated = 0u64;
        for (owner, list) in all_changed.iter().enumerate() {
            total += list.len() as u64;
            if owner == me {
                continue;
            }
            let base = self.a.offsets()[owner];
            for &lc in list {
                if self.cache.invalidate(owner, vidx(base + lc as usize)) {
                    invalidated += 1;
                }
            }
        }
        self.metas = exchange_meta(comm, new_a.local());
        self.win = PairedWindow::create(
            comm,
            new_a.local().ir().to_vec(),
            new_a.local().num().to_vec(),
        );
        self.a = new_a;
        self.stats.a_updates += 1;
        self.stats.invalidated_cols += invalidated;
        total
    }

    /// Capture this rank's session state for a checkpoint: operand
    /// fingerprint, cumulative [`SessionStats`], and every cached column
    /// segment (in deterministic `(owner, column)` order). Purely local —
    /// no communication.
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut cols: Vec<(u32, Vidx, Vec<Vidx>, Vec<f64>)> = self
            .cache
            .cols
            .iter()
            .map(|(&(o, j), c)| (o, j, c.ir.clone(), c.num.clone()))
            .collect();
        cols.sort_unstable_by_key(|t| (t.0, t.1));
        SessionSnapshot {
            nrows: self.a.nrows() as u64,
            ncols: self.a.ncols() as u64,
            local_nnz: self.a.local().nnz() as u64,
            stats: self.stats,
            cols,
        }
    }

    /// Re-apply a snapshot to a freshly [`create`](SpgemmSession::create)d
    /// session on the *same* operand: restores the cumulative counters and
    /// re-seeds the cache with the snapshotted columns, so the first
    /// post-restart multiply fetches only what the checkpoint had not yet
    /// seen. Purely local.
    ///
    /// The snapshot's operand fingerprint must match the session's pinned
    /// operand (panics otherwise — restoring cached columns of a different
    /// `A` would silently corrupt results). Restored columns carry a fresh
    /// LRU stamp, so a *budgeted* cache may subsequently evict in a
    /// different order than the uninterrupted run would have; byte-identity
    /// guarantees therefore assume an unlimited (or disabled) budget.
    pub fn restore(&mut self, snap: &SessionSnapshot) {
        assert_eq!(snap.nrows, self.a.nrows() as u64, "restore: operand nrows");
        assert_eq!(snap.ncols, self.a.ncols() as u64, "restore: operand ncols");
        assert_eq!(
            snap.local_nnz,
            self.a.local().nnz() as u64,
            "restore: operand local nnz"
        );
        self.stats = snap.stats;
        for (owner, col, ir, num) in &snap.cols {
            self.cache.insert(*owner as usize, *col, ir, num);
        }
    }
}

/// Local column ids whose content differs between two slices of the same
/// width (rows or values; columns present in only one count as changed).
fn changed_columns(old: &Dcsc<f64>, new: &Dcsc<f64>) -> Vec<Vidx> {
    let mut changed = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.nzc() || j < new.nzc() {
        let oc = old.jc().get(i).copied();
        let nc = new.jc().get(j).copied();
        match (oc, nc) {
            (Some(a), Some(b)) if a == b => {
                if old.col_by_pos(i) != new.col_by_pos(j) {
                    changed.push(a);
                }
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                changed.push(a);
                i += 1;
            }
            (Some(_), Some(b)) => {
                changed.push(b);
                j += 1;
            }
            (Some(a), None) => {
                changed.push(a);
                i += 1;
            }
            (None, Some(b)) => {
                changed.push(b);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist1d::uniform_offsets;
    use crate::spgemm1d::spgemm_1d;
    use sa_sparse::gen::{banded, erdos_renyi};
    use sa_sparse::Csc;

    fn dist<C: Comm>(comm: &C, a: &Csc<f64>) -> DistMat1D {
        DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), comm.size()))
    }

    #[test]
    fn session_matches_sessionless_across_modes_and_iterations() {
        let a = erdos_renyi(72, 72, 3.0, 21);
        for mode in [
            FetchMode::FullMatrix,
            FetchMode::Block(4),
            FetchMode::ContiguousRuns,
            FetchMode::ColumnExact,
        ] {
            let u = sa_mpisim::Universe::new(3);
            let got = u.run(|comm| {
                let da = dist(comm, &a);
                let db = da.clone();
                let plan = Plan1D {
                    fetch_mode: mode,
                    ..Default::default()
                };
                let (c_ref, rep_ref) = spgemm_1d(comm, &da, &db, &plan);
                let mut s = SpgemmSession::create(comm, da.clone(), plan, CacheConfig::unlimited());
                let (c1, r1) = s.multiply(comm, &db);
                let (c2, r2) = s.multiply(comm, &db);
                (
                    c_ref.gather(comm),
                    c1.gather(comm),
                    c2.gather(comm),
                    rep_ref,
                    r1,
                    r2,
                )
            });
            let (c_ref, c1, c2, rep_ref, r1, r2) = &got[0];
            assert_eq!(c1, c_ref, "{mode:?}: first session multiply");
            assert_eq!(c2, c_ref, "{mode:?}: repeated session multiply");
            assert_eq!(r1.fresh_bytes, rep_ref.fetched_bytes, "{mode:?}");
            assert_eq!(r1.cache_hit_bytes, 0, "{mode:?}: cold cache has no hits");
            assert_eq!(r2.fresh_bytes, 0, "{mode:?}: warm cache refetches nothing");
            assert_eq!(r2.rdma_msgs, 0, "{mode:?}");
            assert_eq!(
                r2.cache_hit_bytes, r2.needed_bytes,
                "{mode:?}: warm iteration fully served from cache"
            );
        }
    }

    #[test]
    fn analysis_predicts_each_iteration_exactly() {
        let a = banded(96, 6, 0.9, true, 3);
        let u = sa_mpisim::Universe::new(4);
        let ok = u.run(|comm| {
            let da = dist(comm, &a);
            let db = da.clone();
            let mut s = SpgemmSession::create(
                comm,
                da,
                Plan1D {
                    global_stats: false,
                    ..Default::default()
                },
                CacheConfig::unlimited(),
            );
            for _ in 0..3 {
                let pre = s.analyze(comm, &db);
                let before = comm.stats();
                let (_c, rep) = s.multiply(comm, &db);
                let metered = comm.stats() - before;
                assert_eq!(pre.planned_fresh_bytes, rep.fresh_bytes);
                assert_eq!(pre.planned_fresh_bytes, metered.rdma_get_bytes);
                assert_eq!(pre.planned_intervals * 2, rep.rdma_msgs);
                assert_eq!(pre.cache_hit_bytes, rep.cache_hit_bytes);
                assert_eq!(pre.needed_bytes, rep.needed_bytes);
            }
            true
        });
        assert!(ok.into_iter().all(|x| x));
    }

    #[test]
    fn budget_forces_eviction_and_refetch() {
        // Alternate two operands with disjoint row supports (lower vs upper
        // half): a budget that holds only one working set must evict the
        // other's columns and refetch them when they come back.
        let a = erdos_renyi(80, 80, 4.0, 5);
        // supports interleave across rank boundaries (even vs odd rows) so
        // each rank's remote working set really alternates
        let half = |parity: u32| {
            let mut coo = sa_sparse::Coo::new(80, 80);
            for j in 0..80u32 {
                coo.push(2 * (j % 40) + parity, j, 1.0);
            }
            coo.to_csc_with(|x: f64, _| x)
        };
        let (b_low, b_high) = (half(0), half(1));
        let u = sa_mpisim::Universe::new(2);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let db_low = dist(comm, &b_low);
            let db_high = dist(comm, &b_high);
            let plan = Plan1D {
                fetch_mode: FetchMode::ColumnExact,
                global_stats: false,
                ..Default::default()
            };
            let (_c, cold) = {
                let mut probe =
                    SpgemmSession::create(comm, da.clone(), plan, CacheConfig::disabled());
                probe.multiply(comm, &db_low)
            };
            // room for roughly one working set, not two
            let mut s = SpgemmSession::create(
                comm,
                da.clone(),
                plan,
                CacheConfig::budget(cold.needed_bytes.max(ENTRY_BYTES)),
            );
            let mut capped = Vec::new();
            for b in [&db_low, &db_high, &db_low] {
                capped.push(s.multiply(comm, b).1.fresh_bytes);
            }
            // same schedule, unlimited budget: the third iteration is free
            let mut u = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
            let mut unlimited = Vec::new();
            for b in [&db_low, &db_high, &db_low] {
                unlimited.push(u.multiply(comm, b).1.fresh_bytes);
            }
            (
                cold.needed_bytes,
                capped,
                unlimited,
                s.cache().evicted_cols(),
            )
        });
        for (needed, capped, unlimited, evicted) in got {
            if needed == 0 {
                continue; // a rank with a self-contained slice
            }
            assert_eq!(capped[0], needed, "cold start fetches everything");
            assert_eq!(unlimited[2], 0, "unlimited cache keeps both working sets");
            assert!(evicted > 0, "undersized budget must evict");
            assert!(
                capped[2] > 0,
                "evicted columns must be refetched when they return: {capped:?}"
            );
        }
    }

    #[test]
    fn disabled_cache_equals_sessionless_traffic_every_iteration() {
        let a = erdos_renyi(64, 64, 3.0, 9);
        let u = sa_mpisim::Universe::new(4);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let db = da.clone();
            let plan = Plan1D::default();
            let (_c, rep_ref) = spgemm_1d(comm, &da, &db, &plan);
            let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::disabled());
            let reps: Vec<u64> = (0..3)
                .map(|_| s.multiply(comm, &db).1.fresh_bytes)
                .collect();
            (rep_ref.fetched_bytes, reps, s.cache().resident_cols())
        });
        for (reference, reps, resident) in got {
            assert!(reps.iter().all(|&f| f == reference), "{reps:?}");
            assert_eq!(resident, 0, "disabled cache stores nothing");
        }
    }

    #[test]
    fn update_a_invalidates_only_changed_columns() {
        let a = erdos_renyi(60, 60, 3.0, 13);
        // change a handful of columns' values
        let a2 = {
            let mut m = a.clone();
            let colptr = m.colptr().to_vec();
            let vals = m.vals_mut();
            for j in [3usize, 17, 40, 55] {
                for v in &mut vals[colptr[j]..colptr[j + 1]] {
                    *v *= 2.0;
                }
            }
            m
        };
        let b = erdos_renyi(60, 60, 2.0, 14);
        let u = sa_mpisim::Universe::new(3);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let da2 = dist(comm, &a2);
            let db = dist(comm, &b);
            let plan = Plan1D {
                fetch_mode: FetchMode::ColumnExact,
                global_stats: false,
                ..Default::default()
            };
            let expect = spgemm_1d(comm, &da2, &db, &plan).0.gather(comm);
            let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
            let (_c, warm) = s.multiply(comm, &db);
            let changed = s.update_a(comm, da2);
            let (c, delta) = s.multiply(comm, &db);
            (expect, c.gather(comm), warm, delta, changed)
        });
        let touched = [3usize, 17, 40, 55]
            .iter()
            .filter(|&&j| a.col_nnz(j) > 0)
            .count() as u64;
        let (expect, c, warm, delta, changed) = &got[0];
        assert_eq!(c, expect, "post-update multiply uses the new operand");
        assert_eq!(*changed, touched, "exactly the touched columns are dirty");
        assert!(
            delta.fresh_bytes < warm.fresh_bytes,
            "delta fetch {} must be below the cold fetch {}",
            delta.fresh_bytes,
            warm.fresh_bytes
        );
        assert!(
            delta.fresh_bytes <= 4 * ENTRY_BYTES * 60,
            "delta fetch bounded by the changed columns"
        );
    }

    #[test]
    fn overfetched_cached_columns_are_not_double_counted() {
        // every column holds 2 entries (24 B); rank 1 owns cols 20..40
        let a = {
            let mut coo = sa_sparse::Coo::new(40, 40);
            for j in 0..40u32 {
                coo.push(j, j, 1.0);
                coo.push((j + 1) % 40, j, 0.5);
            }
            coo.to_csc_with(|x: f64, _| x)
        };
        // same structure, col 21's values changed (invalidates its cache entry)
        let a2 = {
            let mut m = a.clone();
            let colptr = m.colptr().to_vec();
            let vals = m.vals_mut();
            for v in &mut vals[colptr[21]..colptr[22]] {
                *v *= 2.0;
            }
            m
        };
        // rank 0's B slice needs A-cols {20, 21}; rank 1's needs nothing
        let b = {
            let mut coo = sa_sparse::Coo::new(40, 40);
            for j in 0..20u32 {
                coo.push(20 + (j % 2), j, 1.0);
            }
            coo.to_csc_with(|x: f64, _| x)
        };
        for (mode, want_fresh, want_hit) in [
            // Block(1): the miss on col 21 re-fetches the whole slice, so
            // the cached col 20 arrives fresh anyway — it must NOT also be
            // reported as a cache hit (the double-count regression)
            (FetchMode::Block(1), 20 * 2 * ENTRY_BYTES, 0),
            // ColumnExact: only col 21 travels; col 20 is truly served
            // from cache
            (FetchMode::ColumnExact, 2 * ENTRY_BYTES, 2 * ENTRY_BYTES),
        ] {
            let u = sa_mpisim::Universe::new(2);
            let got = u.run(|comm| {
                let da = dist(comm, &a);
                let da2 = dist(comm, &a2);
                let db = dist(comm, &b);
                let plan = Plan1D {
                    fetch_mode: mode,
                    global_stats: false,
                    ..Default::default()
                };
                let expect = spgemm_1d(comm, &da2, &db, &plan).0.gather(comm);
                let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
                let (_c, _warm) = s.multiply(comm, &db);
                let changed = s.update_a(comm, da2);
                let pre = s.analyze(comm, &db);
                let (c, rep) = s.multiply(comm, &db);
                (expect, c.gather(comm), changed, pre, rep)
            });
            let (expect, c, changed, pre, rep) = &got[0];
            assert_eq!(c, expect, "{mode:?}: correctness");
            assert_eq!(*changed, 1, "{mode:?}: only col 21 dirty");
            assert_eq!(rep.fresh_bytes, want_fresh, "{mode:?}");
            assert_eq!(rep.cache_hit_bytes, want_hit, "{mode:?}");
            // needed is hits + needed misses regardless of over-fetch
            assert_eq!(rep.needed_bytes, 2 * 2 * ENTRY_BYTES, "{mode:?}");
            assert_eq!(pre.planned_fresh_bytes, rep.fresh_bytes, "{mode:?}");
            assert_eq!(pre.cache_hit_bytes, rep.cache_hit_bytes, "{mode:?}");
            assert_eq!(pre.needed_bytes, rep.needed_bytes, "{mode:?}");
        }

        // a hit at the *last* storage position of a re-fetched interval
        // (col 39 = position 19 of the full-slice interval 0..20) must also
        // count as covered — the merge walk's boundary case
        let b_last = {
            let mut coo = sa_sparse::Coo::new(40, 40);
            for j in 0..20u32 {
                coo.push(21 + 18 * (j % 2), j, 1.0); // rows 21 and 39
            }
            coo.to_csc_with(|x: f64, _| x)
        };
        let u = sa_mpisim::Universe::new(2);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let da2 = dist(comm, &a2);
            let db = dist(comm, &b_last);
            let plan = Plan1D {
                fetch_mode: FetchMode::FullMatrix,
                global_stats: false,
                ..Default::default()
            };
            let expect = spgemm_1d(comm, &da2, &db, &plan).0.gather(comm);
            let mut s = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
            let (_c, _warm) = s.multiply(comm, &db);
            s.update_a(comm, da2); // dirties col 21; col 39 stays cached
            let pre = s.analyze(comm, &db);
            let (c, rep) = s.multiply(comm, &db);
            (expect, c.gather(comm), pre, rep)
        });
        let (expect, c, pre, rep) = &got[0];
        assert_eq!(c, expect, "last-position: correctness");
        assert_eq!(rep.fresh_bytes, 20 * 2 * ENTRY_BYTES, "last-position");
        assert_eq!(
            rep.cache_hit_bytes, 0,
            "hit at interval end is re-delivered fresh, not cache-served"
        );
        assert_eq!(pre.cache_hit_bytes, rep.cache_hit_bytes);
    }

    #[test]
    fn snapshot_restore_round_trips_cache_and_stats() {
        let a = erdos_renyi(64, 64, 3.0, 17);
        let u = sa_mpisim::Universe::new(3);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let db = da.clone();
            let plan = Plan1D {
                global_stats: false,
                ..Default::default()
            };
            let mut s = SpgemmSession::create(comm, da.clone(), plan, CacheConfig::unlimited());
            let (c1, r1) = s.multiply(comm, &db);
            let snap = s.snapshot();
            // wire round-trip is lossless
            let snap = SessionSnapshot::from_bytes(&snap.to_bytes()).unwrap();
            assert_eq!(snap, s.snapshot());
            // a fresh session (as after a process restart) + restore:
            // warm from the first multiply onward
            let mut s2 = SpgemmSession::create(comm, da, plan, CacheConfig::unlimited());
            s2.restore(&snap);
            assert_eq!(s2.stats(), snap.stats());
            let (c2, r2) = s2.multiply(comm, &db);
            (
                c1.gather(comm),
                c2.gather(comm),
                r1.needed_bytes,
                r2.fresh_bytes,
                r2.cache_hit_bytes,
            )
        });
        for (c1, c2, needed, fresh, hit) in got {
            assert_eq!(c1, c2, "restored session multiplies identically");
            assert_eq!(fresh, 0, "restored cache refetches nothing");
            assert_eq!(hit, needed, "restored cache serves the full needed set");
        }
    }

    #[test]
    fn session_stats_accumulate() {
        let a = erdos_renyi(50, 50, 2.0, 31);
        let u = sa_mpisim::Universe::new(2);
        let got = u.run(|comm| {
            let da = dist(comm, &a);
            let db = da.clone();
            let mut s = SpgemmSession::create(
                comm,
                da,
                Plan1D {
                    global_stats: false,
                    ..Default::default()
                },
                CacheConfig::unlimited(),
            );
            let mut fresh = 0u64;
            let mut hits = 0u64;
            for _ in 0..3 {
                let (_c, rep) = s.multiply(comm, &db);
                fresh += rep.fresh_bytes;
                hits += rep.cache_hit_bytes;
            }
            let st = *s.stats();
            (st, fresh, hits)
        });
        for (st, fresh, hits) in got {
            assert_eq!(st.multiplies, 3);
            assert_eq!(st.fresh_bytes, fresh);
            assert_eq!(st.cache_hit_bytes, hits);
        }
    }
}
