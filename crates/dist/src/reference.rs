//! Serial oracles the distributed algorithms are tested against.

use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::spgemm;
use sa_sparse::Csc;

/// Single-process SpGEMM over the arithmetic semiring — the ground truth
/// every distributed algorithm must reproduce exactly.
pub fn serial_spgemm(a: &Csc<f64>, b: &Csc<f64>) -> Csc<f64> {
    spgemm::<PlusTimes<f64>, _, _>(a, b)
}

/// Serial Galerkin triple product `RᵀAR` (the AMG coarse operator).
pub fn serial_galerkin(r: &Csc<f64>, a: &Csc<f64>) -> Csc<f64> {
    let rt = r.transpose();
    let rta = serial_spgemm(&rt, a);
    serial_spgemm(&rta, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::Coo;

    #[test]
    fn galerkin_of_identity_restriction_is_a() {
        let mut coo = Coo::new(4, 4);
        for (i, j, v) in [(0, 1, 2.0), (1, 2, 3.0), (3, 0, 4.0)] {
            coo.push(i, j, v);
        }
        let a = coo.to_csc_with(|x, _| x);
        let r = Csc::diagonal(&[1.0; 4]);
        assert_eq!(serial_galerkin(&r, &a), a);
    }

    #[test]
    fn galerkin_aggregates_columns() {
        // R maps both fine points to one coarse point: RᵀAR sums all of A
        let mut coo = Coo::new(2, 1);
        coo.push(0, 0, 1.0);
        coo.push(1, 0, 1.0);
        let r = coo.to_csc_with(|x, _| x);
        let mut am = Coo::new(2, 2);
        for (i, j, v) in [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)] {
            am.push(i, j, v);
        }
        let a = am.to_csc_with(|x, _| x);
        let coarse = serial_galerkin(&r, &a);
        assert_eq!(coarse.get(0, 0), Some(10.0));
    }
}
