//! Distributed SpGEMM algorithms — the paper's contribution and its
//! baselines (Hong & Buluç, SC 2024, arXiv:2408.14558).
//!
//! * [`spgemm1d`] — **Algorithm 1**, the sparsity-aware 1D algorithm:
//!   `B` and `C` stay put in a 1D column layout while only the columns of
//!   `A` that the local `B` slice's sparsity *requires* are fetched over
//!   one-sided windows, coalesced per [`FetchMode`] into ranged
//!   `get`s (§III-A's block fetch strategy). [`analyze_1d`] prices the
//!   communication exactly *before* any data moves — the §V `CV/memA`
//!   criterion.
//! * [`outer1d`] — **Algorithm 3**, the outer-product 1D baseline
//!   (expand–multiply–reduce), the better 1D algorithm for the Galerkin
//!   right multiplication (Fig. 12).
//! * [`summa2d`] — 2D sparse SUMMA (CombBLAS' default), the
//!   sparsity-oblivious baseline of Figs. 4/5/9.
//! * [`summa2d_sa`] — Algorithm 1's needed-set communication on the 2D
//!   grid: windowed fetches of the needed `A` columns per process row,
//!   owner-filtered `B` shipping per process column, any `pr × pc` shape
//!   (`1 × P` degenerates to Algorithm 1 exactly).
//! * [`mat3d`] — the 3D split algorithm: per-layer SUMMA over a column/row
//!   split of the operands, with a fiber reduce-scatter of the partials —
//!   in oblivious ([`spgemm_split_3d`]) and sparsity-aware
//!   ([`spgemm_split_3d_sa`]) flavours.
//! * [`autotune`] — the §V selection criterion generalized: collective-free
//!   analyses replay every algorithm's symbolic machinery on the global
//!   operands (predicted == metered, byte for byte) and
//!   [`AutoTuner::pick`] returns the cheapest `(algorithm, fetch mode,
//!   grid shape)` under the α–β [`CostModel`](sa_mpisim::CostModel);
//!   [`spgemm_auto`] runs the winner.
//! * [`session`] — cross-iteration extension of Algorithm 1: a persistent
//!   [`SpgemmSession`] pins the fetched operand (metadata + window exposure
//!   once), and its [`FetchCache`] keeps remote columns across multiplies so
//!   iterative workloads (§II-C batched BC / MCL / Galerkin) fetch only the
//!   per-iteration miss set. [`SessionAnalysis`] is the incremental,
//!   collective-free counterpart of [`analyze_1d`].
//! * [`checkpoint`] — per-rank checkpoint stores ([`MemStore`] for
//!   threads, [`FileStore`] for processes) and [`SessionSnapshot`]
//!   capture/restore, the durability layer under
//!   [`run_recoverable`](sa_mpisim::Universe::run_recoverable): restarted
//!   iterative jobs resume at the last agreed iteration with their fetch
//!   caches intact.
//! * [`prepare`](crate::prepare::prepare) — the permutation strategies the
//!   paper compares (natural order, random symmetric, METIS-style
//!   partitioning) packaged as a preprocessing step.
//! * [`mod@reference`] — serial oracles the integration tests compare
//!   against.

pub mod autotune;
pub mod checkpoint;
pub mod dist1d;
mod fetch;
pub mod mat3d;
pub mod outer1d;
pub mod prepare;
pub mod reference;
pub mod session;
pub mod shape;
pub mod spgemm1d;
pub mod summa2d;
pub mod summa2d_sa;

pub use autotune::{
    analyze_1d_offline, analyze_2d, analyze_3d, spgemm_auto, try_spgemm_auto, AlgoChoice,
    Analysis2D, Analysis3D, AutoReport, AutoTuner, PhaseCost, Prediction,
};
pub use checkpoint::{
    agreed_step, load_wire, load_wire_or_fresh, save_wire, CheckpointStore, CkptError, FileStore,
    MatSnapshot, MemStore,
};
pub use dist1d::{uniform_offsets, DistMat1D};
pub use mat3d::{
    spgemm_split_3d, spgemm_split_3d_sa, spgemm_split_3d_sa_ws, spgemm_split_3d_sa_ws_cfg,
    spgemm_split_3d_ws, DistMat3D, LayerSplit, Owned3DBlock, SaSplit3DReport, Split3DReport,
};
pub use outer1d::{spgemm_outer_1d, OuterReport};
pub use prepare::{prepare, PrepResult, Strategy};
pub use session::{
    CacheConfig, FetchCache, SessionAnalysis, SessionSnapshot, SessionStats, SpgemmSession,
};
pub use shape::ShapeError;
pub use spgemm1d::{
    analyze_1d, analyze_1d_modes, spgemm_1d, spgemm_1d_overlap, spgemm_1d_overlap_ws, spgemm_1d_ws,
    try_spgemm_1d, Analysis1D, FetchMode, Plan1D, SpgemmReport,
};
pub use summa2d::{spgemm_summa_2d, spgemm_summa_2d_ws, DistMat2D, SummaReport};
pub use summa2d_sa::{
    grid_shapes, spgemm_summa_2d_sa, spgemm_summa_2d_sa_ws, spgemm_summa_2d_sa_ws_cfg,
    try_spgemm_summa_2d_sa, SaSummaReport,
};
