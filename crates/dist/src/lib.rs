//! Distributed SpGEMM algorithms — the paper's contribution and its
//! baselines (Hong & Buluç, SC 2024, arXiv:2408.14558).
//!
//! * [`spgemm1d`] — **Algorithm 1**, the sparsity-aware 1D algorithm:
//!   `B` and `C` stay put in a 1D column layout while only the columns of
//!   `A` that the local `B` slice's sparsity *requires* are fetched over
//!   one-sided windows, coalesced per [`FetchMode`] into ranged
//!   `get`s (§III-A's block fetch strategy). [`analyze_1d`] prices the
//!   communication exactly *before* any data moves — the §V `CV/memA`
//!   criterion.
//! * [`outer1d`] — **Algorithm 3**, the outer-product 1D baseline
//!   (expand–multiply–reduce), the better 1D algorithm for the Galerkin
//!   right multiplication (Fig. 12).
//! * [`summa2d`] — 2D sparse SUMMA (CombBLAS' default), the
//!   sparsity-oblivious baseline of Figs. 4/5/9.
//! * [`mat3d`] — the 3D split algorithm: per-layer SUMMA over a column/row
//!   split of the operands, with a fiber reduce-scatter of the partials.
//! * [`session`] — cross-iteration extension of Algorithm 1: a persistent
//!   [`SpgemmSession`] pins the fetched operand (metadata + window exposure
//!   once), and its [`FetchCache`] keeps remote columns across multiplies so
//!   iterative workloads (§II-C batched BC / MCL / Galerkin) fetch only the
//!   per-iteration miss set. [`SessionAnalysis`] is the incremental,
//!   collective-free counterpart of [`analyze_1d`].
//! * [`prepare`](crate::prepare::prepare) — the permutation strategies the
//!   paper compares (natural order, random symmetric, METIS-style
//!   partitioning) packaged as a preprocessing step.
//! * [`mod@reference`] — serial oracles the integration tests compare
//!   against.

pub mod dist1d;
mod fetch;
pub mod mat3d;
pub mod outer1d;
pub mod prepare;
pub mod reference;
pub mod session;
pub mod spgemm1d;
pub mod summa2d;

pub use dist1d::{uniform_offsets, DistMat1D};
pub use mat3d::{spgemm_split_3d, DistMat3D, LayerSplit, Owned3DBlock, Split3DReport};
pub use outer1d::{spgemm_outer_1d, OuterReport};
pub use prepare::{prepare, PrepResult, Strategy};
pub use session::{CacheConfig, FetchCache, SessionAnalysis, SessionStats, SpgemmSession};
pub use spgemm1d::{
    analyze_1d, spgemm_1d, spgemm_1d_overlap, spgemm_1d_ws, Analysis1D, FetchMode, Plan1D,
    SpgemmReport,
};
pub use summa2d::{spgemm_summa_2d, DistMat2D, SummaReport};
