//! The 1D column-distributed matrix Algorithm 1 operates on.
//!
//! Rank `r` owns the contiguous column range `offsets[r]..offsets[r+1]` of
//! the global matrix, stored as a [`Dcsc`] with *local* column ids — after a
//! 1D split local slices are hypersparse, which is DCSC's reason to exist.
//! The offsets may be non-uniform (the partitioner's layouts are), and
//! slices may be empty.

use sa_mpisim::Comm;
use sa_sparse::types::Vidx;
use sa_sparse::{Csc, Dcsc};
use std::sync::Arc;

/// The uniform 1D layout: rank `r` gets columns `r·n/p .. (r+1)·n/p`.
pub fn uniform_offsets(n: usize, p: usize) -> Vec<usize> {
    (0..=p).map(|r| r * n / p).collect()
}

/// Uniform 2D block layout of `m` over a `pr × pc` grid plus the block at
/// grid position `(myrow, mycol)` — the offsets-then-extract step shared by
/// the 2D distribution constructor, the 3D layer splits, and the prepared
/// layouts, so the cut convention lives in exactly one place.
pub(crate) fn uniform_block_dist(
    m: &Csc<f64>,
    pr: usize,
    pc: usize,
    myrow: usize,
    mycol: usize,
) -> (Arc<Vec<usize>>, Arc<Vec<usize>>, Csc<f64>) {
    let row_offsets = Arc::new(uniform_offsets(m.nrows(), pr));
    let col_offsets = Arc::new(uniform_offsets(m.ncols(), pc));
    let local = m.extract_block(
        row_offsets[myrow],
        row_offsets[myrow + 1],
        col_offsets[mycol],
        col_offsets[mycol + 1],
    );
    (row_offsets, col_offsets, local)
}

/// A 1D column-distributed sparse matrix (one rank's view).
#[derive(Clone)]
pub struct DistMat1D {
    nrows: usize,
    ncols: usize,
    offsets: Arc<Vec<usize>>,
    /// This rank's column slice, local column ids `0..width`.
    local: Dcsc<f64>,
}

impl DistMat1D {
    /// Distribute `a` by columns: every rank extracts its own slice from the
    /// (replicated) global matrix. Panics if `offsets` is not a monotone
    /// cover of `a`'s columns with one range per rank.
    pub fn from_global<C: Comm>(comm: &C, a: &Csc<f64>, offsets: &[usize]) -> DistMat1D {
        assert!(
            offsets.len() == comm.size() + 1
                && offsets.first() == Some(&0)
                && offsets.last() == Some(&a.ncols())
                && offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets {:?} must cover all {} columns with one contiguous range per rank ({} ranks)",
            offsets,
            a.ncols(),
            comm.size()
        );
        let (c0, c1) = (offsets[comm.rank()], offsets[comm.rank() + 1]);
        DistMat1D {
            nrows: a.nrows(),
            ncols: a.ncols(),
            offsets: Arc::new(offsets.to_vec()),
            local: Dcsc::from_csc(&a.extract_cols(c0, c1)),
        }
    }

    /// Wrap an already-local slice (e.g. a frontier block the caller built
    /// in place). `local` must be this rank's slice under `offsets`, with
    /// local column ids.
    pub fn from_local(
        nrows: usize,
        ncols: usize,
        offsets: Arc<Vec<usize>>,
        local: Dcsc<f64>,
    ) -> DistMat1D {
        debug_assert_eq!(*offsets.last().unwrap(), ncols, "offsets must cover ncols");
        DistMat1D {
            nrows,
            ncols,
            offsets,
            local,
        }
    }

    /// Global row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The 1D layout (length `P + 1`).
    pub fn offsets(&self) -> &Arc<Vec<usize>> {
        &self.offsets
    }

    /// This rank's slice.
    pub fn local(&self) -> &Dcsc<f64> {
        &self.local
    }

    /// Stored entries in this rank's slice.
    pub fn local_nnz(&self) -> usize {
        self.local.nnz()
    }

    /// This rank's slice as CSC (width = owned columns).
    pub fn into_local_csc(self) -> Csc<f64> {
        self.local.to_csc()
    }

    /// Total stored entries across ranks. Collective.
    pub fn global_nnz<C: Comm>(&self, comm: &C) -> u64 {
        comm.allreduce(self.local.nnz() as u64, |x, y| x + y)
    }

    /// Reassemble the global matrix at rank 0 (`None` elsewhere),
    /// preserving each column's stored entry order exactly. Collective.
    pub fn gather<C: Comm>(&self, comm: &C) -> Option<Csc<f64>> {
        let me = comm.rank();
        let width = self.offsets[me + 1] - self.offsets[me];
        // per-column lengths, expanded from the compressed index
        let mut lens = vec![0u32; width];
        for q in 0..self.local.nzc() {
            lens[self.local.jc()[q] as usize] =
                (self.local.cp()[q + 1] - self.local.cp()[q]) as u32;
        }
        let lens_all = comm.gatherv(0, lens);
        let rows_all = comm.gatherv(0, self.local.ir().to_vec());
        let vals_all = comm.gatherv(0, self.local.num().to_vec());
        let (lens_all, rows_all, vals_all) = match (lens_all, rows_all, vals_all) {
            (Some(l), Some(r), Some(v)) => (l, r, v),
            _ => return None,
        };
        let mut colptr = Vec::with_capacity(self.ncols + 1);
        colptr.push(0usize);
        for lens in &lens_all {
            for &l in lens {
                colptr.push(colptr.last().unwrap() + l as usize);
            }
        }
        let nnz = *colptr.last().unwrap();
        let mut rowidx: Vec<Vidx> = Vec::with_capacity(nnz);
        let mut vals: Vec<f64> = Vec::with_capacity(nnz);
        for (r, v) in rows_all.into_iter().zip(vals_all) {
            rowidx.extend_from_slice(&r);
            vals.extend(v);
        }
        Some(Csc::from_parts(
            self.nrows, self.ncols, colptr, rowidx, vals,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mpisim::Universe;
    use sa_sparse::gen::erdos_renyi;

    #[test]
    fn uniform_offsets_cover() {
        assert_eq!(uniform_offsets(10, 4), vec![0, 2, 5, 7, 10]);
        assert_eq!(uniform_offsets(3, 5), vec![0, 0, 1, 1, 2, 3]);
        assert_eq!(uniform_offsets(0, 2), vec![0, 0, 0]);
    }

    #[test]
    fn distribute_and_gather_roundtrip() {
        let a = erdos_renyi(40, 50, 3.0, 1);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let d = DistMat1D::from_global(comm, &a, &uniform_offsets(50, 4));
            (d.local().nnz(), d.gather(comm))
        });
        let total: usize = got.iter().map(|(n, _)| n).sum();
        assert_eq!(total, a.nnz());
        assert_eq!(got[0].1.as_ref().unwrap(), &a, "gather must be exact");
        assert!(got[1].1.is_none());
    }

    #[test]
    fn global_nnz_sums_ranks() {
        let a = erdos_renyi(30, 30, 2.0, 2);
        let u = Universe::new(3);
        let got = u
            .run(|comm| DistMat1D::from_global(comm, &a, &uniform_offsets(30, 3)).global_nnz(comm));
        assert!(got.iter().all(|&n| n == a.nnz() as u64));
    }

    #[test]
    #[should_panic(expected = "offsets")]
    fn bad_offsets_rejected() {
        let a = erdos_renyi(8, 8, 1.0, 3);
        let u = Universe::new(2);
        u.run(move |comm| {
            let _ = DistMat1D::from_global(comm, &a, &[0, 9, 8]);
        });
    }
}
