//! Algorithm 3 — the outer-product 1D baseline (expand–multiply–reduce).
//!
//! `C = Σ_k A(:,k) ⊗ B(k,:)`: rank `r` owns `A`'s column slice (the same
//! layout Algorithm 1 uses) and needs the matching *row* slice of `B`, so
//! the expand step redistributes `B` from its column layout to a conformal
//! row layout with one all-to-all. Each rank then forms its full-size
//! partial product locally and the reduce step scatters partial columns to
//! their owners under `B`'s column layout, where they are summed. Ballard
//! et al. (and Fig. 12) show this beats Algorithm 1 for the Galerkin right
//! multiplication, where `B = R` is tall-skinny.

use crate::dist1d::DistMat1D;
use sa_mpisim::{Breakdown, Comm, CommStats};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{spgemm_kernel, Kernel};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::{Coo, Csc, Dcsc};
use std::time::Instant;

/// What one rank observed during [`spgemm_outer_1d`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OuterReport {
    /// Bytes this rank sent redistributing `B` to the row layout.
    pub expand_bytes: u64,
    /// Bytes this rank sent scattering partial-product columns.
    pub reduce_bytes: u64,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    /// Wall-clock split (expand/reduce are `comm_s`, the local outer
    /// product is `comp_s`).
    pub breakdown: Breakdown,
}

/// Outer-product 1D SpGEMM. Returns `C` in `B`'s column layout plus this
/// rank's [`OuterReport`]. Collective.
pub fn spgemm_outer_1d<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    b: &DistMat1D,
) -> (DistMat1D, OuterReport) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows(),
        a.ncols(),
        b.nrows(),
        b.ncols(),
    );
    let stats0 = comm.stats();
    let t_call = Instant::now();
    let p = comm.size();
    let me = comm.rank();
    let ao = a.offsets();
    let bo = b.offsets();
    let (k0, k1) = (ao[me], ao[me + 1]);

    // --- expand: B's local columns, cut by row into A's k-layout ---
    let t0 = Instant::now();
    let my_col0 = bo[me];
    let mut sends: Vec<Vec<(Vidx, Vidx, f64)>> = vec![Vec::new(); p];
    for (jl, rows, vals) in b.local().iter_cols() {
        let gj = vidx(my_col0 + jl as usize);
        for (&r, &v) in rows.iter().zip(vals) {
            // owner of k-row r under A's offsets
            let t = ao.partition_point(|&o| o <= r as usize) - 1;
            sends[t].push((r, gj, v));
        }
    }
    let recvd = comm.alltoallv(sends);
    let mut coo = Coo::new(k1 - k0, b.ncols());
    for part in recvd {
        for (r, c, v) in part {
            coo.push(r - vidx(k0), c, v);
        }
    }
    let b_rows: Csc<f64> = coo.to_csc_with(|x, _| x);
    let stats_expand = comm.stats() - stats0;
    let expand_s = t0.elapsed().as_secs_f64();

    // --- multiply: full-width partial product from the local slices ---
    let t0 = Instant::now();
    let partial =
        comm.install(|| spgemm_kernel::<PlusTimes<f64>, _, _>(a.local(), &b_rows, Kernel::Hybrid));
    let comp_s = t0.elapsed().as_secs_f64();

    // --- reduce: scatter partial columns to their owners and sum ---
    let t0 = Instant::now();
    let mut sends: Vec<Vec<(Vidx, Vidx, f64)>> = vec![Vec::new(); p];
    for t in 0..p {
        let (c0, c1) = (bo[t], bo[t + 1]);
        for j in c0..c1 {
            let (rows, vals) = partial.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                sends[t].push((r, vidx(j - c0), v));
            }
        }
    }
    let recvd = comm.alltoallv(sends);
    let my_width = bo[me + 1] - bo[me];
    let mut coo = Coo::new(a.nrows(), my_width);
    for part in recvd {
        for (r, c, v) in part {
            coo.push(r, c, v);
        }
    }
    let c_local = coo.to_csc_with(|x, y| x + y);
    let stats_all = comm.stats() - stats0;
    let reduce_s = t0.elapsed().as_secs_f64();

    let c = DistMat1D::from_local(a.nrows(), b.ncols(), bo.clone(), Dcsc::from_csc(&c_local));
    let total_s = t_call.elapsed().as_secs_f64();
    let report = OuterReport {
        expand_bytes: stats_expand.sent_bytes,
        reduce_bytes: stats_all.sent_bytes - stats_expand.sent_bytes,
        comm: stats_all,
        breakdown: Breakdown {
            comm_s: expand_s + reduce_s,
            comp_s,
            other_s: (total_s - expand_s - reduce_s - comp_s).max(0.0),
        },
    };
    (c, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist1d::uniform_offsets;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi, stencil3d};

    fn check(a: &Csc<f64>, b: &Csc<f64>, p: usize) {
        let expect = serial_spgemm(a, b);
        let u = Universe::new(p);
        let got = u.run(|comm| {
            let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), p));
            let db = DistMat1D::from_global(comm, b, &uniform_offsets(b.ncols(), p));
            let (c, _rep) = spgemm_outer_1d(comm, &da, &db);
            c.gather(comm)
        });
        let got = got[0].as_ref().unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-10,
            "P={p}: diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn squares_match_serial() {
        let a = erdos_renyi(60, 60, 4.0, 1);
        for p in [1, 2, 5] {
            check(&a, &a, p);
        }
    }

    #[test]
    fn rectangular_chain_matches_serial() {
        let a = erdos_renyi(40, 28, 3.0, 2);
        let b = erdos_renyi(28, 50, 3.0, 3);
        check(&a, &b, 4);
    }

    #[test]
    fn structured_input() {
        let a = stencil3d(4, 4, 4, true);
        check(&a, &a, 4);
    }

    #[test]
    fn report_meters_both_phases() {
        let a = erdos_renyi(100, 100, 5.0, 4);
        let u = Universe::new(4);
        let reps = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &a, &uniform_offsets(100, 4));
            let (_c, rep) = spgemm_outer_1d(comm, &da, &da.clone());
            rep
        });
        for rep in &reps {
            assert_eq!(rep.comm.rdma_gets, 0, "outer product is all two-sided");
            assert_eq!(rep.expand_bytes + rep.reduce_bytes, rep.comm.sent_bytes);
        }
        assert!(reps.iter().any(|r| r.expand_bytes > 0));
    }
}
