//! Preprocessing strategies (§III-B): how the input is permuted and cut
//! into the 1D layout before Algorithm 1 runs.

use crate::dist1d::uniform_offsets;
use sa_partition::{partition_kway, partition_to_perm, Graph, PartitionConfig};
use sa_sparse::permute::permute_symmetric;
use sa_sparse::{Csc, Perm};
use std::time::Instant;

/// The paper's three layout strategies (Figs. 4, 5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// Keep the natural ordering — free, and the winner whenever the input
    /// has natural-order locality (hv15r, queen, stokes, nlpkkt).
    Original,
    /// Random symmetric permutation — the sparsity-oblivious algorithms'
    /// load-balancing preprocessing, which destroys locality.
    RandomPerm { seed: u64 },
    /// METIS-class multilevel partitioning with squared-degree vertex
    /// weights, converted to a (permutation, offsets) layout.
    Partition { seed: u64, epsilon: f64 },
}

impl Strategy {
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Original => "original",
            Strategy::RandomPerm { .. } => "random",
            Strategy::Partition { .. } => "metis",
        }
    }
}

/// A prepared input: the (possibly permuted) matrix, its 1D layout, the
/// permutation to undo, and the preprocessing cost the paper charges
/// against partitioned runs (Fig. 4's "including partitioning time").
#[derive(Clone, Debug)]
pub struct PrepResult {
    pub a: Csc<f64>,
    pub offsets: Vec<usize>,
    pub perm: Option<Perm>,
    pub prep_seconds: f64,
}

/// Apply `strategy` for a `p`-rank 1D run. Permutation strategies require a
/// square matrix (they permute rows and columns symmetrically).
pub fn prepare(a: &Csc<f64>, p: usize, strategy: Strategy) -> PrepResult {
    let t0 = Instant::now();
    // Each arm yields (permuted matrix, partitioner offsets, permutation);
    // the layout fallback and the result assembly happen exactly once below.
    let (pa, offsets, perm) = match strategy {
        Strategy::Original => (a.clone(), None, None),
        Strategy::RandomPerm { seed } => {
            assert_eq!(a.nrows(), a.ncols(), "symmetric permutation needs square A");
            let perm = sa_partition::random_symmetric_perm(a.ncols(), seed);
            (permute_symmetric(a, &perm), None, Some(perm))
        }
        Strategy::Partition { seed, epsilon } => {
            assert_eq!(a.nrows(), a.ncols(), "partitioning needs square A");
            let g = Graph::from_matrix(a);
            let cfg = PartitionConfig {
                epsilon,
                seed,
                ..PartitionConfig::new(p)
            };
            let parts = partition_kway(&g, &cfg);
            let layout = partition_to_perm(&parts, p);
            (
                permute_symmetric(a, &layout.perm),
                Some(layout.offsets),
                Some(layout.perm),
            )
        }
    };
    PrepResult {
        offsets: offsets.unwrap_or_else(|| uniform_offsets(pa.ncols(), p)),
        a: pa,
        perm,
        // the natural order costs nothing to "prepare" (the clone above is a
        // simulation artifact, not preprocessing the paper would charge)
        prep_seconds: match strategy {
            Strategy::Original => 0.0,
            _ => t0.elapsed().as_secs_f64(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::sbm;

    #[test]
    fn original_is_free_and_identity() {
        let a = sbm(60, 3, 5.0, 1.0, true, 1);
        let prep = prepare(&a, 4, Strategy::Original);
        assert_eq!(prep.a, a);
        assert_eq!(prep.prep_seconds, 0.0);
        assert!(prep.perm.is_none());
        assert_eq!(prep.offsets, uniform_offsets(60, 4));
    }

    #[test]
    fn random_perm_is_invertible() {
        let a = sbm(80, 4, 5.0, 1.0, true, 2);
        let prep = prepare(&a, 4, Strategy::RandomPerm { seed: 7 });
        let undone = permute_symmetric(&prep.a, &prep.perm.as_ref().unwrap().inverse());
        assert_eq!(undone, a);
        assert_eq!(prep.a.nnz(), a.nnz());
    }

    #[test]
    fn partition_offsets_cover_and_balance() {
        let a = sbm(200, 4, 8.0, 1.0, true, 3);
        let prep = prepare(
            &a,
            4,
            Strategy::Partition {
                seed: 1,
                epsilon: 0.05,
            },
        );
        assert_eq!(prep.offsets.len(), 5);
        assert_eq!(prep.offsets[0], 0);
        assert_eq!(*prep.offsets.last().unwrap(), 200);
        assert!(prep.offsets.windows(2).all(|w| w[0] <= w[1]));
        assert!(prep.prep_seconds > 0.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Strategy::Original.name(), "original");
        assert_eq!(Strategy::RandomPerm { seed: 1 }.name(), "random");
        assert_eq!(
            Strategy::Partition {
                seed: 1,
                epsilon: 0.1
            }
            .name(),
            "metis"
        );
    }
}
