//! Cost-model-driven algorithm selection — the §V "which algorithm when"
//! question answered before any rank is spawned.
//!
//! The paper's criterion (`CV/memA`, Fig. 15) decides between the
//! sparsity-aware 1D algorithm and the 2D/3D baselines from communication
//! volume alone. This module generalizes that into an [`AutoTuner`]:
//! collective-free analyses replay each algorithm's exact symbolic
//! machinery on the (replicated) global operands —
//!
//! * [`analyze_1d_offline`] replays Algorithm 1's per-rank
//!   `plan_fetch` schedule (the serial counterpart of the collective
//!   [`analyze_1d`](crate::spgemm1d::analyze_1d)),
//! * [`analyze_2d`] replays the sparsity-aware SUMMA's A-window plans and
//!   B request/ship filtering per grid rank, alongside the oblivious
//!   broadcast volume,
//! * [`analyze_3d`] recurses per layer and prices the fiber
//!   reduce-scatter from the per-layer partial products —
//!
//! and produce [`Prediction`]s whose data-phase bytes/messages equal what
//! the distributed execution meters, byte for byte (asserted in
//! `tests/sparsity_aware_2d3d.rs`). [`AutoTuner::pick`] then applies the
//! Hockney α–β [`CostModel`] plus a flop-rate term to the per-rank maxima
//! and returns the cheapest `(algorithm, fetch mode, grid shape)`;
//! [`spgemm_auto`] runs the winner.

use crate::dist1d::{uniform_offsets, DistMat1D};
use crate::fetch::{plan_fetch, RankMeta};
use crate::mat3d::{spgemm_split_3d, spgemm_split_3d_sa, DistMat3D};
use crate::shape::ShapeError;
use crate::spgemm1d::{spgemm_1d, FetchMode, Plan1D};
use crate::summa2d::{spgemm_summa_2d, DistMat2D};
use crate::summa2d_sa::spgemm_summa_2d_sa;
use sa_mpisim::{Comm, CommStats, CostModel, Grid2D, Grid3D};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::spgemm;
use sa_sparse::types::Vidx;
use sa_sparse::Csc;

/// Bytes + messages of one communication phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    pub bytes: u64,
    pub msgs: u64,
}

impl std::ops::Add for PhaseCost {
    type Output = PhaseCost;
    fn add(self, o: PhaseCost) -> PhaseCost {
        PhaseCost {
            bytes: self.bytes + o.bytes,
            msgs: self.msgs + o.msgs,
        }
    }
}

impl std::ops::AddAssign for PhaseCost {
    fn add_assign(&mut self, o: PhaseCost) {
        *self = *self + o;
    }
}

/// One algorithm configuration the tuner can run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlgoChoice {
    /// Sparsity-aware 1D (Algorithm 1) under the given fetch coalescing.
    OneD { mode: FetchMode },
    /// Sparsity-aware 2D SUMMA on a `pr × pc` grid.
    TwoDSa {
        pr: usize,
        pc: usize,
        mode: FetchMode,
    },
    /// Sparsity-oblivious 2D SUMMA on a square `s × s` grid.
    TwoDOblivious { s: usize },
    /// Sparsity-aware 3D split: `layers` layers of `q × q` grids.
    ThreeDSa {
        q: usize,
        layers: usize,
        mode: FetchMode,
    },
    /// Sparsity-oblivious 3D split.
    ThreeDOblivious { q: usize, layers: usize },
}

fn encode_mode(m: FetchMode) -> (u64, u64) {
    match m {
        FetchMode::FullMatrix => (0, 0),
        FetchMode::Block(k) => (1, k as u64),
        FetchMode::ContiguousRuns => (2, 0),
        FetchMode::ColumnExact => (3, 0),
    }
}

fn decode_mode(tag: u64, k: u64) -> FetchMode {
    match tag {
        0 => FetchMode::FullMatrix,
        1 => FetchMode::Block(k as usize),
        2 => FetchMode::ContiguousRuns,
        3 => FetchMode::ColumnExact,
        _ => unreachable!("unknown fetch-mode tag {tag}"),
    }
}

impl AlgoChoice {
    /// Short stable label for bench tables.
    pub fn name(&self) -> String {
        match self {
            AlgoChoice::OneD { mode } => format!("1d/{mode:?}"),
            AlgoChoice::TwoDSa { pr, pc, mode } => format!("2d-sa/{pr}x{pc}/{mode:?}"),
            AlgoChoice::TwoDOblivious { s } => format!("2d-obl/{s}x{s}"),
            AlgoChoice::ThreeDSa { q, layers, mode } => format!("3d-sa/{q}x{q}x{layers}/{mode:?}"),
            AlgoChoice::ThreeDOblivious { q, layers } => format!("3d-obl/{q}x{q}x{layers}"),
        }
    }

    /// Fixed-width wire encoding, so one rank can run the (deterministic
    /// but expensive) analysis and broadcast its pick instead of every
    /// rank replicating it — see [`spgemm_auto`].
    pub fn encode(&self) -> [u64; 5] {
        match *self {
            AlgoChoice::OneD { mode } => {
                let (t, k) = encode_mode(mode);
                [0, 0, 0, t, k]
            }
            AlgoChoice::TwoDSa { pr, pc, mode } => {
                let (t, k) = encode_mode(mode);
                [1, pr as u64, pc as u64, t, k]
            }
            AlgoChoice::TwoDOblivious { s } => [2, s as u64, s as u64, 0, 0],
            AlgoChoice::ThreeDSa { q, layers, mode } => {
                let (t, k) = encode_mode(mode);
                [3, q as u64, layers as u64, t, k]
            }
            AlgoChoice::ThreeDOblivious { q, layers } => [4, q as u64, layers as u64, 0, 0],
        }
    }

    /// Inverse of [`AlgoChoice::encode`].
    pub fn decode(w: &[u64; 5]) -> AlgoChoice {
        match w[0] {
            0 => AlgoChoice::OneD {
                mode: decode_mode(w[3], w[4]),
            },
            1 => AlgoChoice::TwoDSa {
                pr: w[1] as usize,
                pc: w[2] as usize,
                mode: decode_mode(w[3], w[4]),
            },
            2 => AlgoChoice::TwoDOblivious { s: w[1] as usize },
            3 => AlgoChoice::ThreeDSa {
                q: w[1] as usize,
                layers: w[2] as usize,
                mode: decode_mode(w[3], w[4]),
            },
            4 => AlgoChoice::ThreeDOblivious {
                q: w[1] as usize,
                layers: w[2] as usize,
            },
            t => unreachable!("unknown algo tag {t}"),
        }
    }
}

/// Predicted cost of one [`AlgoChoice`] on one input.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    pub algo: AlgoChoice,
    /// Symbolic-exchange traffic summed over ranks (metadata allgathers,
    /// support lists).
    pub meta: PhaseCost,
    /// Numeric data movement summed over ranks (window fetches, B
    /// request/ship legs, broadcasts, reduce-scatter triples).
    pub data: PhaseCost,
    /// Largest per-rank injected volume (meta + data) — the critical-path
    /// input of the α–β model.
    pub max_rank_bytes: u64,
    pub max_rank_msgs: u64,
    /// Largest per-rank upper-bound flop count of the local multiplies.
    pub max_rank_flops: u64,
    pub total_flops: u64,
}

impl Prediction {
    /// Hockney α–β network time on the per-rank maxima plus a flop term —
    /// the quantity [`AutoTuner::pick`] minimizes.
    pub fn modeled_time_s(&self, model: &CostModel, flops_per_s: f64) -> f64 {
        model.time_s(self.max_rank_msgs, self.max_rank_bytes)
            + self.max_rank_flops as f64 / flops_per_s
    }
}

/// Combine per-rank phase costs into a [`Prediction`].
fn combine(
    algo: AlgoChoice,
    rank_meta: &[PhaseCost],
    rank_data: &[PhaseCost],
    rank_flops: &[u64],
) -> Prediction {
    let mut meta = PhaseCost::default();
    let mut data = PhaseCost::default();
    let (mut max_b, mut max_m, mut max_f) = (0u64, 0u64, 0u64);
    for r in 0..rank_meta.len() {
        meta += rank_meta[r];
        data += rank_data[r];
        max_b = max_b.max(rank_meta[r].bytes + rank_data[r].bytes);
        max_m = max_m.max(rank_meta[r].msgs + rank_data[r].msgs);
        max_f = max_f.max(rank_flops[r]);
    }
    Prediction {
        algo,
        meta,
        data,
        max_rank_bytes: max_b,
        max_rank_msgs: max_m,
        max_rank_flops: max_f,
        total_flops: rank_flops.iter().sum(),
    }
}

/// Block index of `x` under monotone `offsets`.
fn block_of(offsets: &[usize], x: usize) -> usize {
    offsets.partition_point(|&o| o <= x) - 1
}

/// Per-rank injected traffic of one `allgatherv` round, replaying the
/// linear collectives exactly: every non-root sends its vector to rank 0,
/// then rank 0 broadcasts the length table (`p` × 8 B) and the flattened
/// data to the other `p − 1` ranks.
fn allgatherv_injected(lens: &[usize], elem: usize) -> Vec<PhaseCost> {
    let p = lens.len();
    let mut out = vec![PhaseCost::default(); p];
    if p <= 1 {
        return out;
    }
    let total: usize = lens.iter().sum();
    for (r, &l) in lens.iter().enumerate().skip(1) {
        out[r] = PhaseCost {
            bytes: (l * elem) as u64,
            msgs: 1,
        };
    }
    out[0].bytes += ((p - 1) * (p * 8 + total * elem)) as u64;
    out[0].msgs += 2 * (p - 1) as u64;
    out
}

/// Nonzero-column metadata of the column range `c0..c1` of `m`, exactly as
/// `Dcsc::from_csc(m.extract_cols(c0, c1))` would expose it.
fn meta_of_cols(m: &Csc<f64>, c0: usize, c1: usize) -> RankMeta {
    let mut jc = Vec::new();
    let mut cp = vec![0u64];
    for c in c0..c1 {
        let n = m.col_nnz(c);
        if n > 0 {
            jc.push((c - c0) as Vidx);
            cp.push(cp.last().unwrap() + n as u64);
        }
    }
    RankMeta { jc, cp }
}

/// Serial replay of the collective
/// [`analyze_1d`](crate::spgemm1d::analyze_1d) for a uniform 1D layout of
/// the *global* operands: per rank, the exact `plan_fetch` schedule
/// `spgemm_1d` would execute, plus the metadata-allgather volume. The
/// data phase equals what a `global_stats: false` execution meters.
pub fn analyze_1d_offline(a: &Csc<f64>, b: &Csc<f64>, p: usize, mode: FetchMode) -> Prediction {
    assert_eq!(a.ncols(), b.nrows(), "A and B must be conformal");
    let offsets = uniform_offsets(a.ncols(), p);
    let b_offsets = uniform_offsets(b.ncols(), p);
    let metas: Vec<RankMeta> = (0..p)
        .map(|r| meta_of_cols(a, offsets[r], offsets[r + 1]))
        .collect();
    // symbolic: the jc + u32-lens allgathers of exchange_meta
    let jc_lens: Vec<usize> = metas.iter().map(|m| m.jc.len()).collect();
    let mut rank_meta = allgatherv_injected(&jc_lens, 4);
    for (rc, extra) in rank_meta.iter_mut().zip(allgatherv_injected(&jc_lens, 4)) {
        *rc += extra;
    }
    // data + flops: per rank, needed columns from its B slice's row support
    let mut rank_data = vec![PhaseCost::default(); p];
    let mut rank_flops = vec![0u64; p];
    let mut needed = vec![false; b.nrows()];
    for r in 0..p {
        needed.fill(false);
        for c in b_offsets[r]..b_offsets[r + 1] {
            let (rows, _) = b.col(c);
            for &k in rows {
                needed[k as usize] = true;
                rank_flops[r] += a.col_nnz(k as usize) as u64;
            }
        }
        let plan = plan_fetch(mode, &metas, &offsets, &needed, r);
        rank_data[r] = PhaseCost {
            bytes: plan.fetch_bytes(),
            msgs: plan.rdma_msgs(),
        };
    }
    combine(
        AlgoChoice::OneD { mode },
        &rank_meta,
        &rank_data,
        &rank_flops,
    )
}

/// One grid rank's predicted sparsity-aware 2D traffic, field-for-field
/// comparable with [`SaSummaReport`](crate::summa2d_sa::SaSummaReport).
#[derive(Clone, Copy, Debug, Default)]
pub struct RankCost2D {
    pub a_fetch_bytes: u64,
    pub a_rdma_msgs: u64,
    pub b_request_bytes: u64,
    pub b_served_bytes: u64,
    pub b_shipped_bytes: u64,
    pub meta_bytes: u64,
    pub meta_msgs: u64,
    pub flops: u64,
}

/// Collective-free analysis of one 2D multiply on a uniform `pr × pc`
/// layout of the global operands.
#[derive(Clone, Debug)]
pub struct Analysis2D {
    /// The sparsity-aware variant — data phase exact against
    /// [`spgemm_summa_2d_sa`].
    pub aware: Prediction,
    /// The oblivious broadcast variant (requires the stage alignment
    /// `A` col blocks == `B` row blocks; `None` otherwise) — exact against
    /// [`spgemm_summa_2d`].
    pub oblivious: Option<Prediction>,
    /// Per-grid-rank aware costs, row-major (`rank = i·pc + j`).
    pub per_rank: Vec<RankCost2D>,
    /// Per-grid-rank aware data-phase cost (A fetch + B request/ship legs,
    /// message counts included) — exactly what [`Analysis2D::aware`]
    /// combines, exposed so the 3D analysis splices it instead of
    /// re-deriving the wire format.
    pub per_rank_data: Vec<PhaseCost>,
    /// Per-grid-rank oblivious broadcast volume (roots only), when defined.
    pub per_rank_oblivious: Option<Vec<PhaseCost>>,
}

/// Predict a sparsity-aware (and, when stages align, oblivious) 2D SUMMA
/// of the global operands on a `pr × pc` grid, without spawning ranks.
pub fn analyze_2d(a: &Csc<f64>, b: &Csc<f64>, pr: usize, pc: usize, mode: FetchMode) -> Analysis2D {
    assert_eq!(a.ncols(), b.nrows(), "A and B must be conformal");
    let p = pr * pc;
    let a_rows = uniform_offsets(a.nrows(), pr);
    let a_cols = uniform_offsets(a.ncols(), pc);
    let b_rows = uniform_offsets(b.nrows(), pr);
    let b_cols = uniform_offsets(b.ncols(), pc);

    // nnz of A's block row i per global column — the one pass that feeds
    // block metadata, A-side supports, and the flop model
    let mut cnt = vec![vec![0u32; a.ncols()]; pr];
    for (r, c, _v) in a.iter() {
        cnt[block_of(&a_rows, r as usize)][c as usize] += 1;
    }
    // per-block nonzero-column metadata of A, exactly as each rank exposes
    let a_metas: Vec<Vec<RankMeta>> = (0..pr)
        .map(|i| {
            (0..pc)
                .map(|s| {
                    let mut jc = Vec::new();
                    let mut cp = vec![0u64];
                    for (off, &n) in cnt[i][a_cols[s]..a_cols[s + 1]].iter().enumerate() {
                        if n > 0 {
                            jc.push(off as Vidx);
                            cp.push(cp.last().unwrap() + n as u64);
                        }
                    }
                    RankMeta { jc, cp }
                })
                .collect()
        })
        .collect();
    let b_blocks: Vec<Vec<Csc<f64>>> = (0..pr)
        .map(|t| {
            (0..pc)
                .map(|j| b.extract_block(b_rows[t], b_rows[t + 1], b_cols[j], b_cols[j + 1]))
                .collect()
        })
        .collect();

    // B-side filtering sizes: ship[t][j][i] = (columns, entries) of block
    // (t, j) that survive requester row i's A support — entry-level, like
    // the owner's row filter
    let mut ship = vec![vec![vec![(0u64, 0u64); pr]; pc]; pr];
    for t in 0..pr {
        for j in 0..pc {
            let blk = &b_blocks[t][j];
            for c in 0..blk.ncols() {
                let (rows, _) = blk.col(c);
                if rows.is_empty() {
                    continue;
                }
                for (i, cnt_i) in cnt.iter().enumerate() {
                    if i == t {
                        continue;
                    }
                    let kept = rows
                        .iter()
                        .filter(|&&r| cnt_i[b_rows[t] + r as usize] > 0)
                        .count() as u64;
                    if kept > 0 {
                        ship[t][j][i].0 += 1;
                        ship[t][j][i].1 += kept;
                    }
                }
            }
        }
    }

    // needed inner indices per column block of B (Algorithm 1's H)
    let needed_j: Vec<Vec<bool>> = (0..pc)
        .map(|j| {
            let mut needed = vec![false; b.nrows()];
            for c in b_cols[j]..b_cols[j + 1] {
                let (rows, _) = b.col(c);
                for &r in rows {
                    needed[r as usize] = true;
                }
            }
            needed
        })
        .collect();

    // per-rank flops: one B entry (k, c) costs nnz(A block-row i, col k)
    let mut rank_flops = vec![0u64; p];
    for j in 0..pc {
        for c in b_cols[j]..b_cols[j + 1] {
            let (rows, _) = b.col(c);
            for &k in rows {
                for i in 0..pr {
                    rank_flops[i * pc + j] += cnt[i][k as usize] as u64;
                }
            }
        }
    }

    // symbolic exchange: jc + u32-lens allgathers along each process row,
    // fixed-size support bitmaps down each process column
    let mut rank_meta = vec![PhaseCost::default(); p];
    for (i, metas_i) in a_metas.iter().enumerate() {
        let jc_lens: Vec<usize> = metas_i.iter().map(|m| m.jc.len()).collect();
        let jc_cost = allgatherv_injected(&jc_lens, 4);
        let len_cost = allgatherv_injected(&jc_lens, 4);
        for s in 0..pc {
            rank_meta[i * pc + s] += jc_cost[s] + len_cost[s];
        }
    }
    let words_of = |height: usize| height.div_ceil(64);
    for j in 0..pc {
        let sup_lens: Vec<usize> = (0..pr)
            .map(|t| words_of(b_rows[t + 1] - b_rows[t]))
            .collect();
        let sup_cost = allgatherv_injected(&sup_lens, 8);
        for (t, c) in sup_cost.into_iter().enumerate() {
            rank_meta[t * pc + j] += c;
        }
    }

    // per-rank aware data phase
    let mut per_rank = vec![RankCost2D::default(); p];
    let mut rank_data = vec![PhaseCost::default(); p];
    for i in 0..pr {
        for j in 0..pc {
            let rank = i * pc + j;
            let rc = &mut per_rank[rank];
            // A side: ranged window fetches of the needed columns
            let plan = plan_fetch(mode, &a_metas[i], &a_cols, &needed_j[j], j);
            rc.a_fetch_bytes = plan.fetch_bytes();
            rc.a_rdma_msgs = plan.rdma_msgs();
            // B side: support requests out, filtered sub-blocks in/out
            let mut data = PhaseCost {
                bytes: rc.a_fetch_bytes,
                msgs: rc.a_rdma_msgs,
            };
            for t in 0..pr {
                if t == i {
                    continue;
                }
                let req_bytes = words_of(b_rows[t + 1] - b_rows[t]) as u64 * 8;
                rc.b_request_bytes += req_bytes;
                data.bytes += req_bytes;
                data.msgs += 1;
                let (cols_in, ents_in) = ship[t][j][i];
                rc.b_shipped_bytes += cols_in * 8 + ents_in * 12;
                let (cols_out, ents_out) = ship[i][j][t];
                rc.b_served_bytes += cols_out * 8 + ents_out * 12;
                data.bytes += cols_out * 8 + ents_out * 12;
                data.msgs += 4;
            }
            rc.meta_bytes = rank_meta[rank].bytes;
            rc.meta_msgs = rank_meta[rank].msgs;
            rc.flops = rank_flops[rank];
            rank_data[rank] = data;
        }
    }
    let aware = combine(
        AlgoChoice::TwoDSa { pr, pc, mode },
        &rank_meta,
        &rank_data,
        &rank_flops,
    );

    // oblivious broadcasts, when the stage blockings align
    let per_rank_oblivious = (a_cols == b_rows).then(|| {
        let mut obl_data = vec![PhaseCost::default(); p];
        for i in 0..pr {
            for j in 0..pc {
                let rank = i * pc + j;
                // as the A-block root of stage s == j, along my process row
                if pc > 1 {
                    let w = a_cols[j + 1] - a_cols[j];
                    let n: u64 = (a_cols[j]..a_cols[j + 1]).map(|k| cnt[i][k] as u64).sum();
                    obl_data[rank].bytes += (pc as u64 - 1) * (16 + (w as u64 + 1) * 8 + n * 12);
                    obl_data[rank].msgs += (pc as u64 - 1) * 4;
                }
                // as the B-block root of stage s == i, down my process column
                if pr > 1 {
                    let w = b_cols[j + 1] - b_cols[j];
                    let n = b_blocks[i][j].nnz() as u64;
                    obl_data[rank].bytes += (pr as u64 - 1) * (16 + (w as u64 + 1) * 8 + n * 12);
                    obl_data[rank].msgs += (pr as u64 - 1) * 4;
                }
            }
        }
        obl_data
    });
    let oblivious = per_rank_oblivious.as_ref().map(|obl_data| {
        combine(
            AlgoChoice::TwoDOblivious { s: pr },
            &vec![PhaseCost::default(); p],
            obl_data,
            &rank_flops,
        )
    });

    Analysis2D {
        aware,
        oblivious,
        per_rank,
        per_rank_data: rank_data,
        per_rank_oblivious,
    }
}

/// Collective-free analysis of one 3D split multiply (`layers` layers of
/// `q × q` grids) of the global operands.
#[derive(Clone, Debug)]
pub struct Analysis3D {
    /// Per-layer SA SUMMA + fiber reduce-scatter.
    pub aware: Prediction,
    /// Per-layer oblivious SUMMA + the same reduce-scatter.
    pub oblivious: Option<Prediction>,
    /// The per-layer 2D analyses (layer-major; world rank `l·q² + i·q + j`).
    pub per_layer: Vec<Analysis2D>,
    /// Per-world-rank fiber reduce-scatter cost.
    pub per_rank_reduce: Vec<PhaseCost>,
}

/// Per-world-rank fiber reduce-scatter cost of the 3D split, priced from
/// the serial per-layer partial products. This is the expensive half of
/// the 3D analysis and is independent of the fetch mode, so the tuner
/// computes it once per `(q, layers)` shape and reuses it across modes.
pub fn fiber_reduce_costs(a: &Csc<f64>, b: &Csc<f64>, q: usize, layers: usize) -> Vec<PhaseCost> {
    let p = q * q * layers;
    let layer_off = uniform_offsets(a.ncols(), layers);
    let triple_bytes = std::mem::size_of::<(Vidx, Vidx, f64)>() as u64; // 16
    let mut per_rank_reduce = vec![PhaseCost::default(); p];
    let c_rows = uniform_offsets(a.nrows(), q);
    let c_cols = uniform_offsets(b.ncols(), q);
    // fiber sub-split of each block row, precomputed once (not per entry)
    let subs: Vec<Vec<usize>> = (0..q)
        .map(|i| uniform_offsets(c_rows[i + 1] - c_rows[i], layers))
        .collect();
    for l in 0..layers {
        let a_l = a.extract_cols(layer_off[l], layer_off[l + 1]);
        let b_l = b.extract_rows(layer_off[l], layer_off[l + 1]);
        // the layer's partial C: block (i, j)'s rows are re-split among
        // layers; everything outside the own sub-range travels as triples
        let c_l = spgemm::<PlusTimes<f64>, _, _>(&a_l, &b_l);
        for (r, c, _v) in c_l.iter() {
            let i = block_of(&c_rows, r as usize);
            let j = block_of(&c_cols, c as usize);
            let dest = block_of(&subs[i], r as usize - c_rows[i]);
            if dest != l {
                per_rank_reduce[l * q * q + i * q + j].bytes += triple_bytes;
            }
        }
    }
    // alltoallv sends to every other layer, empty or not
    if layers > 1 {
        for rc in per_rank_reduce.iter_mut() {
            rc.msgs += layers as u64 - 1;
        }
    }
    per_rank_reduce
}

/// Predict the 3D split algorithm: `A` column-split and `B` row-split
/// across `layers`, a 2D multiply per layer, partials reduce-scattered
/// along the fiber as `(row, col, value)` triples.
pub fn analyze_3d(
    a: &Csc<f64>,
    b: &Csc<f64>,
    q: usize,
    layers: usize,
    mode: FetchMode,
) -> Analysis3D {
    analyze_3d_with_reduce(a, b, q, layers, mode, fiber_reduce_costs(a, b, q, layers))
}

/// [`analyze_3d`] with a pre-computed [`fiber_reduce_costs`] vector, so a
/// mode sweep prices the serial per-layer products once.
pub fn analyze_3d_with_reduce(
    a: &Csc<f64>,
    b: &Csc<f64>,
    q: usize,
    layers: usize,
    mode: FetchMode,
    per_rank_reduce: Vec<PhaseCost>,
) -> Analysis3D {
    assert_eq!(a.ncols(), b.nrows(), "A and B must be conformal");
    let p = q * q * layers;
    assert_eq!(per_rank_reduce.len(), p, "reduce costs vs grid shape");
    let layer_off = uniform_offsets(a.ncols(), layers);
    let mut per_layer = Vec::with_capacity(layers);
    let mut rank_meta = vec![PhaseCost::default(); p];
    let mut rank_data_aware = vec![PhaseCost::default(); p];
    let mut rank_data_obl = vec![PhaseCost::default(); p];
    let mut rank_flops = vec![0u64; p];
    let mut oblivious_ok = true;
    for l in 0..layers {
        let (lo, hi) = (layer_off[l], layer_off[l + 1]);
        let a_l = a.extract_cols(lo, hi);
        let b_l = b.extract_rows(lo, hi);
        let a2 = analyze_2d(&a_l, &b_l, q, q, mode);
        // splice the layer's 2D costs into the world-rank arrays
        for i in 0..q {
            for j in 0..q {
                let lr = i * q + j;
                let wr = l * q * q + lr;
                let rc = &a2.per_rank[lr];
                rank_meta[wr] = PhaseCost {
                    bytes: rc.meta_bytes,
                    msgs: rc.meta_msgs,
                };
                rank_data_aware[wr] = a2.per_rank_data[lr];
                rank_flops[wr] = rc.flops;
            }
        }
        match &a2.per_rank_oblivious {
            Some(obl) => {
                for (lr, cost) in obl.iter().enumerate() {
                    rank_data_obl[l * q * q + lr] = *cost;
                }
            }
            None => oblivious_ok = false,
        }
        per_layer.push(a2);
    }
    let mut aware_data = rank_data_aware.clone();
    for (d, r) in aware_data.iter_mut().zip(&per_rank_reduce) {
        *d += *r;
    }
    let aware = combine(
        AlgoChoice::ThreeDSa { q, layers, mode },
        &rank_meta,
        &aware_data,
        &rank_flops,
    );
    let oblivious = oblivious_ok.then(|| {
        let zero_meta = vec![PhaseCost::default(); p];
        let mut obl_data = rank_data_obl;
        for (d, r) in obl_data.iter_mut().zip(&per_rank_reduce) {
            *d += *r;
        }
        combine(
            AlgoChoice::ThreeDOblivious { q, layers },
            &zero_meta,
            &obl_data,
            &rank_flops,
        )
    });
    Analysis3D {
        aware,
        oblivious,
        per_layer,
        per_rank_reduce,
    }
}

/// The tuner: every runnable `(algorithm, fetch mode, grid shape)` for a
/// rank count, priced by the collective-free analyses.
pub struct AutoTuner {
    pub p: usize,
    /// Local compute rate for the flop term of the modeled time.
    pub flops_per_s: f64,
    pub candidates: Vec<Prediction>,
}

impl AutoTuner {
    /// Default flop rate: a conservative per-core SpGEMM throughput.
    pub const DEFAULT_FLOPS_PER_S: f64 = 2e9;

    /// Analyze every candidate configuration of a `p`-rank multiply of the
    /// global operands: 1D per fetch mode, every 2D
    /// [`grid_shape`](crate::summa2d_sa::grid_shapes) (aware per mode, the
    /// oblivious broadcast variant where stages align), and every valid 3D
    /// layer count. Serial and collective-free — callable before any rank
    /// exists.
    pub fn analyze(a: &Csc<f64>, b: &Csc<f64>, p: usize, modes: &[FetchMode]) -> AutoTuner {
        assert!(!modes.is_empty(), "at least one fetch mode to consider");
        let mut candidates = Vec::new();
        for &mode in modes {
            candidates.push(analyze_1d_offline(a, b, p, mode));
        }
        for (pr, pc) in crate::summa2d_sa::grid_shapes(p) {
            for (mi, &mode) in modes.iter().enumerate() {
                let a2 = analyze_2d(a, b, pr, pc, mode);
                candidates.push(a2.aware);
                if mi == 0 && pr == pc {
                    candidates.extend(a2.oblivious);
                }
            }
        }
        for layers in sa_mpisim::valid_layer_counts(p) {
            if layers == 1 {
                continue; // covered by the 2D candidates
            }
            let q = ((p / layers) as f64).sqrt().round() as usize;
            // the reduce-scatter pricing runs full serial per-layer
            // products — mode-independent, so computed once per shape
            let reduce = fiber_reduce_costs(a, b, q, layers);
            for (mi, &mode) in modes.iter().enumerate() {
                let a3 = analyze_3d_with_reduce(a, b, q, layers, mode, reduce.clone());
                candidates.push(a3.aware);
                if mi == 0 {
                    candidates.extend(a3.oblivious);
                }
            }
        }
        AutoTuner {
            p,
            flops_per_s: AutoTuner::DEFAULT_FLOPS_PER_S,
            candidates,
        }
    }

    /// The cheapest candidate under the α–β model — the paper's §V
    /// selection criterion generalized to the full algorithm family.
    pub fn pick(&self, model: &CostModel) -> &Prediction {
        self.candidates
            .iter()
            .min_by(|x, y| {
                x.modeled_time_s(model, self.flops_per_s)
                    .total_cmp(&y.modeled_time_s(model, self.flops_per_s))
            })
            .expect("at least one candidate")
    }
}

/// What [`spgemm_auto`] decided and observed.
#[derive(Clone, Copy, Debug)]
pub struct AutoReport {
    /// The tuner's pick.
    pub choice: AlgoChoice,
    /// Its predicted modeled time.
    pub modeled_s: f64,
    /// This rank's exact communication delta of the executed multiply.
    pub comm: CommStats,
}

/// Autotuned distributed SpGEMM: analyze the global operands, pick the
/// cheapest algorithm under `model`, distribute accordingly, run it, and
/// gather `C` at world rank 0 (`None` elsewhere). Collective. The
/// analysis is deterministic but not free (the 3D pricing multiplies the
/// per-layer slices serially), so rank 0 runs it once and broadcasts the
/// 48-byte pick instead of every rank replicating the work.
pub fn spgemm_auto<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    b: &Csc<f64>,
    model: &CostModel,
) -> (Option<Csc<f64>>, AutoReport) {
    if let Err(e) = check_conformal_auto(a, b) {
        panic!("{e}");
    }
    let payload = (comm.rank() == 0).then(|| {
        let tuner = AutoTuner::analyze(
            a,
            b,
            comm.size(),
            &[FetchMode::default(), FetchMode::ContiguousRuns],
        );
        let pick = tuner.pick(model);
        let mut wire = pick.algo.encode().to_vec();
        wire.push(pick.modeled_time_s(model, tuner.flops_per_s).to_bits());
        wire
    });
    let wire = comm.bcast_vec(0, payload);
    let words: [u64; 5] = wire[..5].try_into().expect("5-word choice");
    let algo = AlgoChoice::decode(&words);
    let modeled_s = f64::from_bits(wire[5]);
    let stats0 = comm.stats();
    let c = match algo {
        AlgoChoice::OneD { mode } => {
            let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), comm.size()));
            let db = DistMat1D::from_global(comm, b, &uniform_offsets(b.ncols(), comm.size()));
            let plan = Plan1D {
                fetch_mode: mode,
                global_stats: false,
                ..Default::default()
            };
            let (c, _) = spgemm_1d(comm, &da, &db, &plan);
            c.gather(comm)
        }
        AlgoChoice::TwoDSa { pr, pc, mode } => {
            let grid = Grid2D::new(comm, pr, pc);
            let da = DistMat2D::from_global(&grid, a);
            let db = DistMat2D::from_global(&grid, b);
            let (c, _) = spgemm_summa_2d_sa(comm, &grid, &da, &db, mode);
            c.gather(comm, &grid)
        }
        AlgoChoice::TwoDOblivious { s } => {
            let grid = Grid2D::new(comm, s, s);
            let da = DistMat2D::from_global(&grid, a);
            let db = DistMat2D::from_global(&grid, b);
            let (c, _) = spgemm_summa_2d(comm, &grid, &da, &db);
            c.gather(comm, &grid)
        }
        AlgoChoice::ThreeDSa { q, layers, mode } => {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, a);
            let db = DistMat3D::from_global_split_rows(&grid, b);
            let (c, _) = spgemm_split_3d_sa(comm, &grid, &da, &db, mode);
            c.gather(comm)
        }
        AlgoChoice::ThreeDOblivious { q, layers } => {
            let grid = Grid3D::new(comm, q, layers);
            let da = DistMat3D::from_global_split_cols(&grid, a);
            let db = DistMat3D::from_global_split_rows(&grid, b);
            let (c, _) = spgemm_split_3d(comm, &grid, &da, &db);
            c.gather(comm)
        }
    };
    let report = AutoReport {
        choice: algo,
        modeled_s,
        comm: comm.stats() - stats0,
    };
    (c, report)
}

/// [`spgemm_auto`] with typed shape validation: non-conformal operands
/// come back as `Err(`[`ShapeError`]`)` on every rank — the operands are
/// globally replicated, so the check runs before the analysis broadcast
/// and every rank agrees without communicating.
pub fn try_spgemm_auto<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    b: &Csc<f64>,
    model: &CostModel,
) -> Result<(Option<Csc<f64>>, AutoReport), ShapeError> {
    check_conformal_auto(a, b)?;
    Ok(spgemm_auto(comm, a, b, model))
}

fn check_conformal_auto(a: &Csc<f64>, b: &Csc<f64>) -> Result<(), ShapeError> {
    crate::shape::conformal((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{banded, erdos_renyi};

    #[test]
    fn offline_1d_matches_collective_analysis() {
        let a = erdos_renyi(90, 90, 4.0, 2);
        for mode in [
            FetchMode::FullMatrix,
            FetchMode::Block(8),
            FetchMode::ContiguousRuns,
            FetchMode::ColumnExact,
        ] {
            let offline = analyze_1d_offline(&a, &a, 3, mode);
            let u = Universe::new(3);
            let collective = u.run(|comm| {
                let da = DistMat1D::from_global(comm, &a, &uniform_offsets(90, 3));
                crate::spgemm1d::analyze_1d(comm, &da, &da.clone(), mode)
            });
            let total: u64 = collective.iter().map(|x| x.planned_fetch_bytes).sum();
            let msgs: u64 = collective.iter().map(|x| x.planned_intervals * 2).sum();
            assert_eq!(offline.data.bytes, total, "{mode:?}");
            assert_eq!(offline.data.msgs, msgs, "{mode:?}");
        }
    }

    #[test]
    fn tuner_enumerates_and_picks_minimum() {
        let a = banded(128, 6, 0.9, true, 3);
        let tuner = AutoTuner::analyze(&a, &a, 4, &[FetchMode::Block(64)]);
        // 1D, 2D-SA, 2D-obl, 3D(c=4)-SA, 3D(c=4)-obl at least
        assert!(tuner.candidates.len() >= 5, "{}", tuner.candidates.len());
        let model = CostModel::default();
        let best = tuner.pick(&model);
        for c in &tuner.candidates {
            assert!(
                best.modeled_time_s(&model, tuner.flops_per_s)
                    <= c.modeled_time_s(&model, tuner.flops_per_s) + 1e-15
            );
        }
    }

    #[test]
    fn auto_runs_the_pick_and_matches_serial() {
        let a = erdos_renyi(64, 64, 3.0, 7);
        let expect = serial_spgemm(&a, &a);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let (c, rep) = spgemm_auto(comm, &a, &a, &CostModel::default());
            (c, rep.choice)
        });
        let (c0, choice0) = &got[0];
        assert!(
            c0.as_ref().unwrap().max_abs_diff(&expect) < 1e-10,
            "{choice0:?}"
        );
        for (_, choice) in &got {
            assert_eq!(choice, choice0, "all ranks agree on the pick");
        }
    }
}
