//! Sparsity-aware 2D SUMMA — Algorithm 1's needed-set communication on the
//! process-grid layout the paper's Figs. 4/5 baselines use.
//!
//! Where [`spgemm_summa_2d`](crate::summa2d::spgemm_summa_2d) broadcasts
//! every `A_is`/`B_sj` block whole, this variant moves only the sub-blocks
//! the receiving rank's multiply touches:
//!
//! * **A side (one-sided, windowed).** Every rank exposes its local `A`
//!   block as a [`PairedWindow`] over its process *row* and replicates the
//!   block's nonzero-column metadata (the same `⃗D`/prefix arrays Algorithm 1
//!   allgathers in 1D). Each rank learns which global inner indices its
//!   block *column* of `B` touches from a compact nonzero-row exchange down
//!   its process column, coalesces the needed columns per
//!   [`FetchMode`] with the 1D planner, and pulls them with ranged
//!   `MPI_Get`s — the 2D analogue of `spgemm1d`'s symbolic pass.
//! * **B side (request/ship).** A column of `B_sj` contributes to
//!   `C_ij` only if it intersects the column support of the receiver's
//!   block row of `A`. That test needs the owner's row ids, so the receiver
//!   sends its support as a compact id run-list up the process column and
//!   the owner ships back exactly the intersecting columns.
//!
//! Stages are fused: the fetched `Ã` (my block row of `A`, needed columns
//! only) multiplies the assembled `B̃` (my block column of `B`, filtered
//! rows) in a single flop-balanced kernel call, which moves byte-for-byte
//! the same data as a stage-by-stage schedule while letting one
//! [`SpgemmWorkspace`] serve the whole multiply. Because the stage cut no
//! longer has to align `A`'s column blocks with `B`'s row blocks, any
//! `pr × pc` grid is valid: on `1 × P` grids `B` never moves and the
//! algorithm degenerates to exactly Algorithm 1; on `P × 1` grids `A`
//! stays put and only filtered `B` columns travel.
//!
//! Every byte is metered: [`SaSummaReport`] splits the traffic into the
//! symbolic exchange, the A-window fetch, and the B request/ship legs, and
//! [`analyze_2d`](crate::autotune::analyze_2d) predicts each leg exactly
//! before any rank is spawned.

use crate::fetch::{exchange_meta, pack_support, plan_fetch, support_bit};
use crate::shape::ShapeError;
use crate::spgemm1d::FetchMode;
use crate::summa2d::DistMat2D;
use sa_mpisim::{
    Breakdown, Comm, CommStats, Grid2D, PairedGet, PairedWindow, PhaseTimes, PrefetchConfig,
    Prefetcher,
};
use sa_sparse::semiring::{PlusTimes, Semiring};
use sa_sparse::spgemm::{spgemm_with, ChunkBuf, Kernel, Schedule, SpgemmWorkspace};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::Dcsc;
use std::time::Instant;

/// One owner's filtered B sub-block as it crosses the wire:
/// `(jc, per-column lengths, rows, values)`.
type BPart = (Vec<Vidx>, Vec<u32>, Vec<Vidx>, Vec<f64>);

/// One segment of the staged `Ã` entry buffers, in assembly order: either
/// an issued (already metered) remote interval get, or the local block's
/// splice point. Walking the segments in order reproduces byte-for-byte
/// the layout the sequential `assemble_atilde` loop produces.
enum ASeg {
    Local,
    Get(PairedGet<Vidx, f64>),
}
/// Borrowed view of one B̃ merge source: the same four arrays plus the
/// owner's global row base.
type BSrc<'a> = (&'a [Vidx], &'a [u32], &'a [Vidx], &'a [f64], usize);

/// Tag of the B-side support request (receiver → owner, up the process
/// column). User tags must stay below 2^48.
const TAG_B_REQ: u64 = 0x2d5a01;
/// Tag of the B-side filtered sub-block shipment (owner → receiver); four
/// FIFO sends per pair (jc, lens, rows, vals).
const TAG_B_SHIP: u64 = 0x2d5a02;

/// What one rank observed during [`spgemm_summa_2d_sa`] — the oblivious
/// [`SummaReport`](crate::summa2d::SummaReport)'s sparsity-aware
/// counterpart, with the traffic split by leg so oblivious-vs-aware
/// comparisons (Figs. 4/5 style) fall out of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SaSummaReport {
    /// Bytes this rank pulled through the A window (needed columns of its
    /// block row, plus any [`FetchMode`] over-fetch).
    pub a_fetched_bytes: u64,
    /// Bytes the sparsity strictly required on the A side.
    pub a_needed_bytes: u64,
    /// One-sided messages this rank issued (2 per fetch interval).
    pub a_rdma_msgs: u64,
    /// Bytes of support run-lists this rank sent requesting B columns.
    pub b_request_bytes: u64,
    /// Bytes of filtered B sub-blocks this rank received.
    pub b_shipped_bytes: u64,
    /// Bytes of filtered B sub-blocks this rank served to its peers.
    pub b_served_bytes: u64,
    /// Bytes this rank injected during the symbolic exchange (nonzero-column
    /// metadata along the row, nonzero-row lists down the column).
    pub meta_bytes: u64,
    /// Largest simultaneous footprint of (`Ã`, `B̃`, `C` block) — the
    /// aware working set comparable with the oblivious peak.
    pub peak_local_bytes: u64,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    pub breakdown: Breakdown,
    /// Symbolic / fetch / compute / assemble wall-clock split.
    pub phases: PhaseTimes,
}

/// Sparsity-aware 2D SUMMA `C = A·B` over the arithmetic semiring.
/// Returns `C` blocked by (`A` rows, `B` cols) plus this rank's report.
/// Collective over `comm` (the communicator `grid` was built from).
pub fn spgemm_summa_2d_sa<C: Comm>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
    mode: FetchMode,
) -> (DistMat2D, SaSummaReport) {
    spgemm_summa_2d_sa_ws::<_, PlusTimes<f64>>(comm, grid, a, b, mode, &SpgemmWorkspace::new())
}

/// [`spgemm_summa_2d_sa`] with typed shape validation: non-conformal
/// operands or operand blocking that disagrees with the grid come back as
/// `Err(`[`ShapeError`]`)` on every rank (the check runs before any
/// communication, on globally-replicated dimensions, so ranks always
/// agree) instead of an index panic deep in a kernel.
pub fn try_spgemm_summa_2d_sa<C: Comm>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
    mode: FetchMode,
) -> Result<(DistMat2D, SaSummaReport), ShapeError> {
    check_shapes(grid, a, b)?;
    Ok(spgemm_summa_2d_sa(comm, grid, a, b, mode))
}

/// Typed validation of the 2D entry-point preconditions.
fn check_shapes<C: Comm>(grid: &Grid2D<C>, a: &DistMat2D, b: &DistMat2D) -> Result<(), ShapeError> {
    crate::shape::conformal((a.nrows(), a.ncols()), (b.nrows(), b.ncols()))?;
    crate::shape::blocking("A", "row", a.row_offsets().len() - 1, grid.pr)?;
    crate::shape::blocking("A", "col", a.col_offsets().len() - 1, grid.pc)?;
    crate::shape::blocking("B", "row", b.row_offsets().len() - 1, grid.pr)?;
    crate::shape::blocking("B", "col", b.col_offsets().len() - 1, grid.pc)
}

/// [`spgemm_summa_2d_sa`] generic over the semiring, with a caller-held
/// [`SpgemmWorkspace`]: the `Ã`/`B̃` assembly buffers and all kernel
/// scratch are borrowed from `ws`, so iterative drivers reach a
/// zero-allocation steady state on the compute path. Overlap follows the
/// `SA_PREFETCH` environment knob (off by default); the result and the
/// traffic counters are byte-identical either way.
pub fn spgemm_summa_2d_sa_ws<C: Comm, S: Semiring<T = f64>>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
    mode: FetchMode,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat2D, SaSummaReport) {
    spgemm_summa_2d_sa_ws_cfg::<C, S>(comm, grid, a, b, mode, PrefetchConfig::from_env(), ws)
}

/// [`spgemm_summa_2d_sa_ws`] with an explicit [`PrefetchConfig`].
///
/// The A-side gets are *issued* — validated and metered — up front on the
/// calling thread in assembly order; a [`Prefetcher`] then either streams
/// their transport half on a background thread while the B request/ship
/// exchange and the `Ã`/`B̃` metadata walks run in the foreground
/// (`cfg.enabled` on an overlap-capable backend), or performs the same
/// fetches inline afterwards in the same order. Both interleavings write
/// the same bytes to the same places, so `C`, the report counters, and the
/// per-rank [`CommStats`] are identical with overlap on or off.
pub fn spgemm_summa_2d_sa_ws_cfg<C: Comm, S: Semiring<T = f64>>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
    mode: FetchMode,
    cfg: PrefetchConfig,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat2D, SaSummaReport) {
    if let Err(e) = check_shapes(grid, a, b) {
        panic!("{e}");
    }
    let stats0 = comm.stats();
    let t_call = Instant::now();

    // --- symbolic: metadata exchange, needed-set scan, fetch planning ---
    let t_sym = Instant::now();
    let a_loc = Dcsc::from_csc(a.local());
    let b_loc = Dcsc::from_csc(b.local());
    // nonzero-column metadata of every A block in my process row
    let metas = exchange_meta(&grid.row_comm, &a_loc);
    // my B block's row support as a fixed-size bitmap, replicated down my
    // process column (⌈height/64⌉ words however dense the block is)
    let my_rows = pack_support(b_loc.row_hit_vector().into_iter(), b_loc.nrows());
    let supports = grid.col_comm.allgatherv(my_rows);
    // Algorithm 1's H vector on the grid: global inner indices my block
    // column of B touches, assembled from the per-owner supports
    let mut needed = vec![false; a.ncols()];
    for (t, sup) in supports.iter().enumerate() {
        let base = b.row_offsets()[t];
        let height = b.row_offsets()[t + 1] - base;
        for r in 0..height {
            if support_bit(sup, r) {
                needed[base + r] = true;
            }
        }
    }
    let fplan = plan_fetch(mode, &metas, a.col_offsets(), &needed, grid.mycol);
    let win = PairedWindow::create(&grid.row_comm, a_loc.ir().to_vec(), a_loc.num().to_vec());
    let meta_delta = comm.stats() - stats0;
    let symbolic_s = t_sym.elapsed().as_secs_f64();

    // --- issue the A-side gets: validation and metering happen here, on
    // the calling thread, before any byte moves — the prefetcher's two
    // interleavings below cannot differ in what they meter ---
    let mut segs: Vec<ASeg> = Vec::with_capacity(fplan.intervals.len() + 1);
    {
        let mut iv_iter = fplan.intervals.iter().peekable();
        for owner in 0..grid.pc {
            if owner == grid.mycol {
                segs.push(ASeg::Local);
            }
            while let Some(iv) = iv_iter.peek() {
                if iv.owner != owner {
                    break;
                }
                let iv = iv_iter.next().unwrap();
                segs.push(ASeg::Get(
                    win.start_get_both(
                        &grid.row_comm,
                        owner,
                        iv.entries.start as usize..iv.entries.end as usize,
                    )
                    .expect("fetch interval within exposed window"),
                ));
            }
        }
    }
    let sizes: Vec<u64> = segs
        .iter()
        .map(|s| match s {
            ASeg::Local => 0,
            ASeg::Get(g) => g.bytes(),
        })
        .collect();
    let abuf = ws.take_chunk();
    let mut a_jc = abuf.lens;
    let mut acp = ws.take_idx();
    acp.push(0);
    // rows/vals are the prefetch staging; jc/cp are built comm-free in the
    // foreground from the replicated metadata
    let mut staging = (abuf.rows, abuf.vals, 0.0f64);

    let mut pf = Prefetcher::new(comm, cfg);
    let (b_legs, btilde, assemble_s) = pf.stage(
        &sizes,
        &mut staging,
        |range, st: &mut (Vec<Vidx>, Vec<f64>, f64)| {
            let t0 = Instant::now();
            for seg in &segs[range] {
                match seg {
                    ASeg::Local => {
                        st.0.extend_from_slice(a_loc.ir());
                        st.1.extend_from_slice(a_loc.num());
                    }
                    ASeg::Get(g) => g.fetch_into(&mut st.0, &mut st.1),
                }
            }
            st.2 += t0.elapsed().as_secs_f64();
        },
        || {
            // --- B exchange: request exactly the columns that intersect my
            // A support; owners ship the filtered sub-blocks ---
            let t_b = Instant::now();
            // column support of my whole block row of A, as a global inner
            // bitmap
            let mut a_support = vec![false; a.ncols()];
            for (s, meta) in metas.iter().enumerate() {
                let base = a.col_offsets()[s];
                for &k in &meta.jc {
                    a_support[base + k as usize] = true;
                }
            }
            let col = &grid.col_comm; // my rank within it is `grid.myrow`
            let me_r = grid.myrow;
            let pr = grid.pr;
            let mut b_request_bytes = 0u64;
            for t in 0..pr {
                if t == me_r {
                    continue;
                }
                let (lo, hi) = (b.row_offsets()[t], b.row_offsets()[t + 1]);
                let req = pack_support((lo..hi).map(|r| a_support[r]), hi - lo);
                b_request_bytes += req.len() as u64 * 8;
                col.send_vec(t, TAG_B_REQ, req);
            }
            // serve: ship only the entries whose row is in the requester's
            // support (the owner-side half of the symbolic test — receivers
            // only know my column ids, not my row ids); a column drops out
            // entirely when none of its rows survive
            let mut b_served_bytes = 0u64;
            for i in 0..pr {
                if i == me_r {
                    continue;
                }
                let req = col.recv_vec::<u64>(i, TAG_B_REQ);
                let (mut jc, mut lens) = (Vec::new(), Vec::new());
                let (mut rows, mut vals) = (Vec::new(), Vec::new());
                for (c, rs, vs) in b_loc.iter_cols() {
                    let before = rows.len();
                    for (&r, &v) in rs.iter().zip(vs) {
                        if support_bit(&req, r as usize) {
                            rows.push(r);
                            vals.push(v);
                        }
                    }
                    if rows.len() > before {
                        jc.push(c);
                        lens.push((rows.len() - before) as u32);
                    }
                }
                b_served_bytes +=
                    (jc.len() + lens.len() + rows.len()) as u64 * 4 + vals.len() as u64 * 8;
                col.send_vec(i, TAG_B_SHIP, jc);
                col.send_vec(i, TAG_B_SHIP, lens);
                col.send_vec(i, TAG_B_SHIP, rows);
                col.send_vec(i, TAG_B_SHIP, vals);
            }
            // collect the filtered sub-blocks, keyed by owner row
            let mut b_parts: Vec<Option<BPart>> = (0..pr).map(|_| None).collect();
            let mut b_shipped_bytes = 0u64;
            for (t, part) in b_parts.iter_mut().enumerate() {
                if t == me_r {
                    continue;
                }
                let jc = col.recv_vec::<Vidx>(t, TAG_B_SHIP);
                let lens = col.recv_vec::<u32>(t, TAG_B_SHIP);
                let rows = col.recv_vec::<Vidx>(t, TAG_B_SHIP);
                let vals = col.recv_vec::<f64>(t, TAG_B_SHIP);
                b_shipped_bytes +=
                    (jc.len() + lens.len() + rows.len()) as u64 * 4 + vals.len() as u64 * 8;
                *part = Some((jc, lens, rows, vals));
            }
            let b_exchange_s = t_b.elapsed().as_secs_f64();

            // --- Ã metadata: the jc/cp walk needs only the replicated
            // metadata, never the fetched bytes — same segment order as the
            // entry staging above ---
            let t_asm = Instant::now();
            let mut iv_iter = fplan.intervals.iter().peekable();
            for (owner, meta) in metas.iter().enumerate() {
                let base = a.col_offsets()[owner];
                if owner == grid.mycol {
                    for q in 0..a_loc.nzc() {
                        a_jc.push(vidx(base + a_loc.jc()[q] as usize));
                        acp.push(acp.last().unwrap() + (a_loc.cp()[q + 1] - a_loc.cp()[q]));
                    }
                }
                while let Some(iv) = iv_iter.peek() {
                    if iv.owner != owner {
                        break;
                    }
                    let iv = iv_iter.next().unwrap();
                    for q in iv.pos.clone() {
                        a_jc.push(vidx(base + meta.jc[q] as usize));
                        acp.push(acp.last().unwrap() + meta.col_entries(q) as usize);
                    }
                }
            }

            // --- assemble B̃: my block column of B, filtered rows, owners
            // stacked in row order so each column's global rows come out
            // ascending ---
            let mut bbuf = ws.take_chunk();
            let mut bcp = ws.take_idx();
            bcp.push(0);
            let local_lens: Vec<u32> = (0..b_loc.nzc())
                .map(|q| (b_loc.cp()[q + 1] - b_loc.cp()[q]) as u32)
                .collect();
            let mut srcs: Vec<BSrc<'_>> = Vec::with_capacity(pr);
            for (t, part) in b_parts.iter().enumerate() {
                let base = b.row_offsets()[t];
                if t == me_r {
                    srcs.push((b_loc.jc(), &local_lens, b_loc.ir(), b_loc.num(), base));
                } else {
                    let (jc, lens, rows, vals) = part.as_ref().expect("shipped part");
                    srcs.push((jc, lens, rows, vals, base));
                }
            }
            let mut cur = vec![(0usize, 0usize); pr]; // (column pos, entry offset)
            loop {
                let mut next: Option<Vidx> = None;
                for (t, (jc, ..)) in srcs.iter().enumerate() {
                    if cur[t].0 < jc.len() {
                        let c = jc[cur[t].0];
                        next = Some(match next {
                            Some(n) => n.min(c),
                            None => c,
                        });
                    }
                }
                let Some(cnext) = next else { break };
                for (t, (jc, lens, rows, vals, base)) in srcs.iter().enumerate() {
                    let (q, e) = cur[t];
                    if q < jc.len() && jc[q] == cnext {
                        let len = lens[q] as usize;
                        for &r in &rows[e..e + len] {
                            bbuf.rows.push(vidx(*base + r as usize));
                        }
                        bbuf.vals.extend_from_slice(&vals[e..e + len]);
                        cur[t] = (q + 1, e + len);
                    }
                }
                bbuf.lens.push(cnext);
                bcp.push(bbuf.rows.len());
            }
            let block_w = b.col_offsets()[grid.mycol + 1] - b.col_offsets()[grid.mycol];
            let btilde = Dcsc::from_parts(b.nrows(), block_w, bbuf.lens, bcp, bbuf.rows, bbuf.vals);
            let assemble_s = t_asm.elapsed().as_secs_f64();
            (
                (
                    b_request_bytes,
                    b_shipped_bytes,
                    b_served_bytes,
                    b_exchange_s,
                ),
                btilde,
                assemble_s,
            )
        },
    );
    let (b_request_bytes, b_shipped_bytes, b_served_bytes, b_exchange_s) = b_legs;
    let (a_rows, a_vals, fetch_s) = staging;
    let block_h = a.row_offsets()[grid.myrow + 1] - a.row_offsets()[grid.myrow];
    let atilde = Dcsc::from_parts(block_h, a.ncols(), a_jc, acp, a_rows, a_vals);

    // --- fused multiply: C_ij = Ã · B̃ over the full inner dimension ---
    let t_comp = Instant::now();
    let c_local = comm.install(|| {
        spgemm_with::<S, _, _>(&atilde, &btilde, Kernel::Hybrid, Schedule::FlopBalanced, ws)
    });
    let comp_s = t_comp.elapsed().as_secs_f64();
    let peak = (atilde.mem_bytes() + btilde.mem_bytes() + c_local.mem_bytes()) as u64;
    // hand the assembly buffers back for the next multiply
    for m in [atilde, btilde] {
        let (jc, cp, ir, num) = m.into_parts();
        ws.put_chunk(ChunkBuf {
            lens: jc,
            rows: ir,
            vals: num,
        });
        ws.put_idx(cp);
    }

    let comm_delta = comm.stats() - stats0;
    let fetched = fplan.fetch_bytes();
    debug_assert_eq!(
        comm_delta.rdma_get_bytes, fetched,
        "metered A fetch == planned"
    );
    let total_s = t_call.elapsed().as_secs_f64();
    let comm_s = fetch_s + b_exchange_s;
    let c = DistMat2D::from_parts(
        a.nrows(),
        b.ncols(),
        a.row_offsets().clone(),
        b.col_offsets().clone(),
        c_local,
    );
    let report = SaSummaReport {
        a_fetched_bytes: fetched,
        a_needed_bytes: fplan.needed_bytes(),
        a_rdma_msgs: fplan.rdma_msgs(),
        b_request_bytes,
        b_shipped_bytes,
        b_served_bytes,
        meta_bytes: meta_delta.injected_bytes(),
        peak_local_bytes: peak,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s,
            comp_s,
            other_s: (total_s - comm_s - comp_s).max(0.0),
        },
        phases: PhaseTimes {
            symbolic_s,
            fetch_s: comm_s,
            compute_s: comp_s,
            assemble_s,
        },
    };
    (c, report)
}

/// Grid-shape helper for tests and the autotuner: the `(pr, pc)` pairs a
/// rank count supports, square first (the CombBLAS convention), then the
/// degenerate `1 × P` / `P × 1` shapes that reduce to the 1D algorithms.
pub fn grid_shapes(p: usize) -> Vec<(usize, usize)> {
    let mut shapes = Vec::new();
    let s = (p as f64).sqrt().round() as usize;
    if s * s == p && s > 1 {
        shapes.push((s, s));
    }
    shapes.push((1, p));
    if p > 1 {
        shapes.push((p, 1));
    }
    shapes
}
