//! Typed operand-shape validation at the distributed entry points.
//!
//! The multiply kernels index unchecked once data starts moving, so a
//! dimension disagreement caught late surfaces as an opaque index panic
//! deep inside a rank. The entry points therefore validate up front —
//! *before any communication* — so either every rank proceeds or every
//! rank reports the same [`ShapeError`] (the operands' global shapes are
//! replicated, so the check is collective-free and agrees by construction).
//!
//! The `try_*` entry points ([`try_spgemm_1d`](crate::try_spgemm_1d),
//! [`try_spgemm_summa_2d_sa`](crate::try_spgemm_summa_2d_sa),
//! [`try_spgemm_auto`](crate::try_spgemm_auto)) return the error; the
//! classic panicking entry points unwrap it with the same message they
//! always had.

/// Why a distributed multiply's operands cannot be multiplied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// `A`'s column count does not match `B`'s row count.
    NotConformal {
        a_rows: usize,
        a_cols: usize,
        b_rows: usize,
        b_cols: usize,
    },
    /// A 2D operand's blocking does not match the process grid it is
    /// being multiplied on.
    BlockingMismatch {
        /// Which operand ("A" or "B").
        matrix: &'static str,
        /// Which axis ("row" or "col").
        axis: &'static str,
        /// Blocks the operand actually has along that axis.
        blocks: usize,
        /// Blocks the grid requires along that axis.
        grid: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::NotConformal {
                a_rows,
                a_cols,
                b_rows,
                b_cols,
            } => write!(
                f,
                "dimension mismatch: A is {a_rows}x{a_cols}, B is {b_rows}x{b_cols}"
            ),
            ShapeError::BlockingMismatch {
                matrix,
                axis,
                blocks,
                grid,
            } => write!(
                f,
                "blocking mismatch: {matrix} has {blocks} {axis} block(s), grid needs {grid}"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Validate `A (a_rows x a_cols) · B (b_rows x b_cols)`.
pub(crate) fn conformal(
    (a_rows, a_cols): (usize, usize),
    (b_rows, b_cols): (usize, usize),
) -> Result<(), ShapeError> {
    if a_cols == b_rows {
        Ok(())
    } else {
        Err(ShapeError::NotConformal {
            a_rows,
            a_cols,
            b_rows,
            b_cols,
        })
    }
}

/// Validate one operand's block count along one axis against the grid's.
pub(crate) fn blocking(
    matrix: &'static str,
    axis: &'static str,
    blocks: usize,
    grid: usize,
) -> Result<(), ShapeError> {
    if blocks == grid {
        Ok(())
    } else {
        Err(ShapeError::BlockingMismatch {
            matrix,
            axis,
            blocks,
            grid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformal_accepts_and_rejects() {
        assert!(conformal((3, 4), (4, 5)).is_ok());
        let err = conformal((10, 12), (10, 12)).unwrap_err();
        assert_eq!(
            err.to_string(),
            "dimension mismatch: A is 10x12, B is 10x12"
        );
    }

    #[test]
    fn blocking_reports_coordinates() {
        assert!(blocking("A", "row", 2, 2).is_ok());
        let err = blocking("B", "col", 3, 2).unwrap_err();
        assert_eq!(
            err.to_string(),
            "blocking mismatch: B has 3 col block(s), grid needs 2"
        );
    }
}
