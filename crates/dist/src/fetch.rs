//! Symbolic fetch planning for Algorithm 1 — the sparsity-aware core.
//!
//! Before any numeric data moves, every rank learns *which* remote columns
//! of `A` its local `B` slice requires (the `⃗H` row-support test of
//! Algorithm 1 line 5) and coalesces those columns into ranged window
//! fetches according to the [`FetchMode`](crate::spgemm1d::FetchMode). The
//! plan is exact: executing it fetches precisely `fetch_entries` entries in
//! `intervals.len()` ranged gets, which is what lets
//! [`analyze_1d`](crate::spgemm1d::analyze_1d) price communication ahead of
//! time and the tests assert metered == planned to the byte.

use crate::spgemm1d::FetchMode;
use sa_mpisim::Comm;
use sa_sparse::types::Vidx;
use sa_sparse::Dcsc;

/// Bytes one stored entry moves over the wire: a `u32` row id from the
/// index window plus an `f64` from the value window.
pub(crate) const ENTRY_BYTES: u64 = 4 + 8;

/// One rank's replicated slice metadata: nonzero-column ids (local) and the
/// entry-range prefix — Algorithm 1's allgathered `⃗D` and prefix-sum arrays.
pub(crate) struct RankMeta {
    pub jc: Vec<Vidx>,
    pub cp: Vec<u64>,
}

impl RankMeta {
    #[inline]
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    #[inline]
    pub fn col_entries(&self, q: usize) -> u64 {
        self.cp[q + 1] - self.cp[q]
    }
}

/// Replicate every rank's (jc, cp) metadata. Collective; metered as
/// two-sided traffic (it is metadata exchange, not the RDMA fetch path).
/// Column *lengths* travel as `u32` and the `u64` entry-range prefix is
/// rebuilt locally — two thirds the wire bytes of shipping the prefix
/// array itself, which matters once every process row of a 2D grid
/// replicates its hypersparse block metadata per multiply.
pub(crate) fn exchange_meta<C: Comm>(comm: &C, local: &Dcsc<f64>) -> Vec<RankMeta> {
    let jcs = comm.allgatherv(local.jc().to_vec());
    let lens: Vec<u32> = (0..local.nzc())
        .map(|q| (local.cp()[q + 1] - local.cp()[q]) as u32)
        .collect();
    let lens_all = comm.allgatherv(lens);
    jcs.into_iter()
        .zip(lens_all)
        .map(|(jc, lens)| {
            let mut cp = Vec::with_capacity(lens.len() + 1);
            cp.push(0u64);
            for l in lens {
                cp.push(cp.last().unwrap() + l as u64);
            }
            RankMeta { jc, cp }
        })
        .collect()
}

/// Pack a boolean support over `0..len` into `u64` bitmap words — the
/// fixed-size "compact request bitmap" the 2D exchanges ship instead of
/// id lists (⌈len/64⌉·8 bytes regardless of support density).
pub(crate) fn pack_support(bits: impl Iterator<Item = bool>, len: usize) -> Vec<u64> {
    let mut words = vec![0u64; len.div_ceil(64)];
    for (i, hit) in bits.enumerate() {
        if hit {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    words
}

/// Test bit `i` of a packed support.
#[inline]
pub(crate) fn support_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

/// One ranged fetch: positions `pos` of `owner`'s nonzero-column list,
/// entries `entries` of its exposed ir/num windows.
pub(crate) struct Interval {
    pub owner: usize,
    pub pos: std::ops::Range<usize>,
    pub entries: std::ops::Range<u64>,
}

/// The full fetch schedule of one multiply, plus its exact cost.
pub(crate) struct FetchPlan {
    /// Ranged fetches, ordered by owner rank then position — ascending
    /// global column order, which lets the fetched buffers concatenate
    /// directly into a DCSC.
    pub intervals: Vec<Interval>,
    /// Entries the plan moves (≥ `needed_entries` when blocks over-fetch).
    pub fetch_entries: u64,
    /// Entries the sparsity actually requires.
    pub needed_entries: u64,
}

impl FetchPlan {
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch_entries * ENTRY_BYTES
    }

    pub fn needed_bytes(&self) -> u64 {
        self.needed_entries * ENTRY_BYTES
    }

    /// Two one-sided messages per interval (row-id window + value window).
    pub fn rdma_msgs(&self) -> u64 {
        2 * self.intervals.len() as u64
    }
}

/// Build the fetch schedule. `needed[k]` marks global A-columns the local
/// multiply requires (the row support of the local B slice); `offsets` is
/// A's 1D layout; `me` fetches from every other owner.
pub(crate) fn plan_fetch(
    mode: FetchMode,
    metas: &[RankMeta],
    offsets: &[usize],
    needed: &[bool],
    me: usize,
) -> FetchPlan {
    let mut intervals = Vec::new();
    let mut fetch_entries = 0u64;
    let mut needed_entries = 0u64;
    for (owner, meta) in metas.iter().enumerate() {
        if owner == me || meta.nzc() == 0 {
            continue;
        }
        let base = offsets[owner];
        if mode == FetchMode::FullMatrix {
            // sparsity-oblivious baseline: replicate the whole slice
            needed_entries += needed_entries_of(meta, base, needed);
            fetch_entries += meta.cp[meta.nzc()];
            intervals.push(Interval {
                owner,
                pos: 0..meta.nzc(),
                entries: 0..meta.cp[meta.nzc()],
            });
            continue;
        }
        // positions of needed columns, ascending
        let mut pos_runs: Vec<std::ops::Range<usize>> = Vec::new();
        match mode {
            FetchMode::ColumnExact => {
                for q in 0..meta.nzc() {
                    if needed[base + meta.jc[q] as usize] {
                        needed_entries += meta.col_entries(q);
                        pos_runs.push(q..q + 1);
                    }
                }
            }
            FetchMode::ContiguousRuns => {
                // merge columns adjacent in the owner's storage: same bytes
                // as exact, far fewer messages on clustered sparsity
                for q in 0..meta.nzc() {
                    if needed[base + meta.jc[q] as usize] {
                        needed_entries += meta.col_entries(q);
                        match pos_runs.last_mut() {
                            Some(run) if run.end == q => run.end = q + 1,
                            _ => pos_runs.push(q..q + 1),
                        }
                    }
                }
            }
            FetchMode::Block(k) => {
                // §III-A block fetching: the owner's nonzero-column list is
                // cut into K blocks; a block is fetched whole if any of its
                // columns is needed, trading bounded over-fetch for an
                // O(K)-bounded message count per remote rank.
                let k = k.max(1);
                let nzc = meta.nzc();
                let bound = |b: usize| b * nzc / k;
                let mut b = 0usize; // monotone block cursor (positions ascend)
                for q in 0..nzc {
                    if !needed[base + meta.jc[q] as usize] {
                        continue;
                    }
                    needed_entries += meta.col_entries(q);
                    while bound(b + 1) <= q {
                        b += 1;
                    }
                    // Merge on *position* adjacency of the selected blocks'
                    // ranges, not block-id adjacency: when K > nzc many
                    // block ids are empty (bound(b) == bound(b+1)) and
                    // id-based merging would split storage-contiguous
                    // columns into per-column messages.
                    let (s, e) = (bound(b), bound(b + 1));
                    match pos_runs.last_mut() {
                        Some(run) if s <= run.end => run.end = run.end.max(e),
                        _ => pos_runs.push(s..e),
                    }
                }
            }
            FetchMode::FullMatrix => unreachable!("handled above"),
        }
        for pos in pos_runs {
            let entries = meta.cp[pos.start]..meta.cp[pos.end];
            fetch_entries += entries.end - entries.start;
            intervals.push(Interval {
                owner,
                pos,
                entries,
            });
        }
    }
    FetchPlan {
        intervals,
        fetch_entries,
        needed_entries,
    }
}

fn needed_entries_of(meta: &RankMeta, base: usize, needed: &[bool]) -> u64 {
    (0..meta.nzc())
        .filter(|&q| needed[base + meta.jc[q] as usize])
        .map(|q| meta.col_entries(q))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(cols: &[(u32, u64)]) -> RankMeta {
        let mut cp = vec![0u64];
        for &(_, n) in cols {
            cp.push(cp.last().unwrap() + n);
        }
        RankMeta {
            jc: cols.iter().map(|&(j, _)| j).collect(),
            cp,
        }
    }

    fn needed(n: usize, which: &[usize]) -> Vec<bool> {
        let mut v = vec![false; n];
        for &k in which {
            v[k] = true;
        }
        v
    }

    #[test]
    fn exact_fetches_only_needed_columns() {
        // owner 1 holds global cols 10..20, nonzero at 10,12,13,17
        let metas = vec![meta(&[]), meta(&[(0, 3), (2, 1), (3, 2), (7, 5)])];
        let offsets = [0, 10, 20];
        let plan = plan_fetch(
            FetchMode::ColumnExact,
            &metas,
            &offsets,
            &needed(20, &[12, 13, 19]),
            0,
        );
        assert_eq!(plan.needed_entries, 3); // cols 12 (1) + 13 (2); 19 empty
        assert_eq!(plan.fetch_entries, 3);
        assert_eq!(plan.intervals.len(), 2);
        assert_eq!(plan.rdma_msgs(), 4);
    }

    #[test]
    fn runs_merge_storage_adjacent_columns_without_overfetch() {
        let metas = vec![meta(&[]), meta(&[(0, 3), (2, 1), (3, 2), (7, 5)])];
        let offsets = [0, 10, 20];
        // cols 12, 13, 17 sit at storage positions 1, 2, 3: one single run
        // even though the column *ids* have gaps — adjacency is in the
        // owner's storage, which is what a ranged get needs
        let plan = plan_fetch(
            FetchMode::ContiguousRuns,
            &metas,
            &offsets,
            &needed(20, &[12, 13, 17]),
            0,
        );
        assert_eq!(plan.intervals.len(), 1);
        assert_eq!(plan.fetch_entries, plan.needed_entries);
        assert_eq!(plan.fetch_entries, 1 + 2 + 5);
        // a real storage gap (position 0 unneeded between runs) splits them
        let plan = plan_fetch(
            FetchMode::ContiguousRuns,
            &metas,
            &offsets,
            &needed(20, &[10, 13, 17]),
            0,
        );
        assert_eq!(plan.intervals.len(), 2);
        assert_eq!(plan.fetch_entries, 3 + 2 + 5);
    }

    #[test]
    fn block_mode_bounds_intervals_and_overfetches() {
        // 8 nonzero columns of 1 entry each, K = 2 blocks of 4 positions
        let cols: Vec<(u32, u64)> = (0..8).map(|j| (j, 1)).collect();
        let metas = vec![meta(&[]), meta(&cols)];
        let offsets = [0, 0, 8]; // owner 1 holds all 8 columns
        let plan = plan_fetch(
            FetchMode::Block(2),
            &metas,
            &offsets,
            &needed(8, &[1, 6]),
            0,
        );
        // each needed column pulls its whole 4-column block
        assert_eq!(plan.needed_entries, 2);
        assert_eq!(plan.fetch_entries, 8);
        assert!(plan.intervals.len() <= 2);
    }

    #[test]
    fn block_mode_merges_adjacent_blocks() {
        let cols: Vec<(u32, u64)> = (0..8).map(|j| (j, 1)).collect();
        let metas = vec![meta(&[]), meta(&cols)];
        let offsets = [0, 0, 8];
        // K=4 blocks of 2 positions; needs at 1, 2, 5 select blocks 0, 1, 2
        // which are adjacent and coalesce into ONE ranged get of [0, 6)
        let plan = plan_fetch(
            FetchMode::Block(4),
            &metas,
            &offsets,
            &needed(8, &[1, 2, 5]),
            0,
        );
        assert_eq!(plan.intervals.len(), 1);
        assert_eq!(plan.fetch_entries, 6);
        // needs at 1 and 7 select blocks 0 and 3: a gap, two intervals
        let plan = plan_fetch(
            FetchMode::Block(4),
            &metas,
            &offsets,
            &needed(8, &[1, 7]),
            0,
        );
        assert_eq!(plan.intervals.len(), 2);
        assert_eq!(plan.fetch_entries, 4);
        assert_eq!(plan.needed_entries, 2);
    }

    #[test]
    fn block_mode_with_more_blocks_than_columns_stays_coalesced() {
        // K far above nzc leaves most block ids empty; storage-adjacent
        // needs must still coalesce into one ranged get rather than
        // degenerating to per-column messages
        let cols: Vec<(u32, u64)> = (0..4).map(|j| (j, 2)).collect();
        let metas = vec![meta(&[]), meta(&cols)];
        let offsets = [0, 0, 4];
        let plan = plan_fetch(
            FetchMode::Block(256),
            &metas,
            &offsets,
            &needed(4, &[0, 1, 2, 3]),
            0,
        );
        assert_eq!(plan.intervals.len(), 1);
        assert_eq!(plan.fetch_entries, 8);
        assert_eq!(plan.fetch_entries, plan.needed_entries);
    }

    #[test]
    fn full_matrix_ignores_sparsity() {
        let metas = vec![meta(&[]), meta(&[(0, 3), (5, 2)])];
        let offsets = [0, 10, 20];
        let plan = plan_fetch(FetchMode::FullMatrix, &metas, &offsets, &needed(20, &[]), 0);
        assert_eq!(plan.fetch_entries, 5);
        assert_eq!(plan.needed_entries, 0);
        assert_eq!(plan.intervals.len(), 1);
    }

    #[test]
    fn own_slice_never_fetched() {
        let metas = vec![meta(&[(0, 4)]), meta(&[(0, 4)])];
        let offsets = [0, 10, 20];
        let plan = plan_fetch(
            FetchMode::ColumnExact,
            &metas,
            &offsets,
            &needed(20, &[0, 10]),
            1,
        );
        assert_eq!(plan.intervals.len(), 1);
        assert_eq!(plan.intervals[0].owner, 0);
    }
}
