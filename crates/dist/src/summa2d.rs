//! 2D sparse SUMMA — the sparsity-oblivious CombBLAS baseline (§II-B1).
//!
//! Operands live on a `pr × pc` grid in block form. Stage `s` broadcasts
//! `A`'s column-block `s` along each process row and `B`'s row-block `s`
//! along each process column, and every rank accumulates
//! `C_ij ⊕= A_is · B_sj`. Communication is oblivious to sparsity: every
//! block travels whether or not the receiving rank's multiply touches it —
//! exactly what Figs. 4/5 compare Algorithm 1 against.

use sa_mpisim::{Breakdown, Comm, CommStats, Grid2D};
use sa_sparse::ewise::ewise_add;
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{spgemm_with, Kernel, Schedule, SpgemmWorkspace};
use sa_sparse::types::{vidx, Vidx};
use sa_sparse::{Coo, Csc};
use std::sync::Arc;
use std::time::Instant;

/// A 2D block-distributed sparse matrix (one rank's block).
#[derive(Clone)]
pub struct DistMat2D {
    nrows: usize,
    ncols: usize,
    row_offsets: Arc<Vec<usize>>,
    col_offsets: Arc<Vec<usize>>,
    /// My `(myrow, mycol)` block, local indices.
    local: Csc<f64>,
}

impl DistMat2D {
    /// Distribute `a` over `grid` with uniform block boundaries.
    pub fn from_global<C: Comm>(grid: &Grid2D<C>, a: &Csc<f64>) -> DistMat2D {
        let (row_offsets, col_offsets, local) =
            crate::dist1d::uniform_block_dist(a, grid.pr, grid.pc, grid.myrow, grid.mycol);
        DistMat2D {
            nrows: a.nrows(),
            ncols: a.ncols(),
            row_offsets,
            col_offsets,
            local,
        }
    }

    /// Wrap an already-local block under explicit offsets (`local` must be
    /// this rank's block).
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_offsets: Arc<Vec<usize>>,
        col_offsets: Arc<Vec<usize>>,
        local: Csc<f64>,
    ) -> DistMat2D {
        DistMat2D {
            nrows,
            ncols,
            row_offsets,
            col_offsets,
            local,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    pub fn row_offsets(&self) -> &Arc<Vec<usize>> {
        &self.row_offsets
    }

    pub fn col_offsets(&self) -> &Arc<Vec<usize>> {
        &self.col_offsets
    }

    /// This rank's block.
    pub fn local(&self) -> &Csc<f64> {
        &self.local
    }

    /// Reassemble the global matrix at world rank 0. Collective.
    pub fn gather<C: Comm>(&self, comm: &C, grid: &Grid2D<C>) -> Option<Csc<f64>> {
        let r0 = self.row_offsets[grid.myrow];
        let c0 = self.col_offsets[grid.mycol];
        let triples: Vec<(Vidx, Vidx, f64)> = self
            .local
            .iter()
            .map(|(r, c, v)| (vidx(r0 + r as usize), vidx(c0 + c as usize), v))
            .collect();
        let parts = comm.gatherv(0, triples)?;
        let mut coo = Coo::new(self.nrows, self.ncols);
        for part in parts {
            for (r, c, v) in part {
                coo.push(r, c, v);
            }
        }
        Some(coo.to_csc_with(|x, _| x))
    }
}

/// What one rank observed during [`spgemm_summa_2d`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SummaReport {
    /// Largest simultaneous footprint of (received A block, received B
    /// block, accumulated C) across stages — the Fig. 14 OOM metric.
    pub peak_local_bytes: u64,
    /// Bytes this rank sent broadcasting its blocks.
    pub bcast_bytes: u64,
    /// Exact communication-counter delta of this call on this rank.
    pub comm: CommStats,
    pub breakdown: Breakdown,
}

/// Broadcast a CSC block from `root` (sub-communicator rank) to the whole
/// sub-communicator.
fn bcast_block<C: Comm>(comm: &C, root: usize, mine: Option<&Csc<f64>>) -> Csc<f64> {
    let dims = comm.bcast_vec(root, mine.map(|m| vec![m.nrows() as u64, m.ncols() as u64]));
    let colptr = comm.bcast_vec(
        root,
        mine.map(|m| m.colptr().iter().map(|&x| x as u64).collect::<Vec<u64>>()),
    );
    let rowidx = comm.bcast_vec(root, mine.map(|m| m.rowidx().to_vec()));
    let vals = comm.bcast_vec(root, mine.map(|m| m.vals().to_vec()));
    Csc::from_parts(
        dims[0] as usize,
        dims[1] as usize,
        colptr.into_iter().map(|x| x as usize).collect(),
        rowidx,
        vals,
    )
}

/// 2D sparse SUMMA `C = A·B`. `A`'s column blocking must equal `B`'s row
/// blocking (square grids with uniform offsets satisfy this). Returns `C`
/// blocked by (`A` rows, `B` cols) plus this rank's report. Collective
/// over `comm` (which must be the communicator `grid` was built from).
pub fn spgemm_summa_2d<C: Comm>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
) -> (DistMat2D, SummaReport) {
    spgemm_summa_2d_ws(comm, grid, a, b, &SpgemmWorkspace::new())
}

/// [`spgemm_summa_2d`] with a caller-held [`SpgemmWorkspace`]: every stage
/// multiply borrows its kernel scratch and output buffers from `ws` under
/// flop-balanced scheduling, so an iterative driver (one SUMMA per BFS
/// level, per MCL iteration, …) allocates nothing on the compute path once
/// the pools are warm — the same steady state the sparsity-aware variants
/// reach, keeping the oblivious baseline's timings free of alloc noise.
pub fn spgemm_summa_2d_ws<C: Comm>(
    comm: &C,
    grid: &Grid2D<C>,
    a: &DistMat2D,
    b: &DistMat2D,
    ws: &SpgemmWorkspace<f64>,
) -> (DistMat2D, SummaReport) {
    assert_eq!(
        a.ncols, b.nrows,
        "dimension mismatch: A is {}x{}, B is {}x{}",
        a.nrows, a.ncols, b.nrows, b.ncols,
    );
    assert_eq!(
        a.col_offsets[..],
        b.row_offsets[..],
        "A column blocks and B row blocks must align for SUMMA stages"
    );
    let stats0 = comm.stats();
    let t_call = Instant::now();
    let my_rows = a.row_offsets[grid.myrow + 1] - a.row_offsets[grid.myrow];
    let my_cols = b.col_offsets[grid.mycol + 1] - b.col_offsets[grid.mycol];
    let mut acc: Csc<f64> = Csc::zeros(my_rows, my_cols);
    let mut comm_s = 0.0f64;
    let mut comp_s = 0.0f64;
    let mut peak = 0u64;
    let stages = a.col_offsets.len() - 1;
    for s in 0..stages {
        let t0 = Instant::now();
        // A_is travels along my process row (row_comm ranks keyed by mycol)
        let a_blk = bcast_block(&grid.row_comm, s, (grid.mycol == s).then_some(&a.local));
        // B_sj travels along my process column (col_comm keyed by myrow)
        let b_blk = bcast_block(&grid.col_comm, s, (grid.myrow == s).then_some(&b.local));
        comm_s += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let partial = comm.install(|| {
            spgemm_with::<PlusTimes<f64>, _, _>(
                &a_blk,
                &b_blk,
                Kernel::Hybrid,
                Schedule::FlopBalanced,
                ws,
            )
        });
        acc = ewise_add::<PlusTimes<f64>>(&acc, &partial);
        comp_s += t0.elapsed().as_secs_f64();
        peak = peak.max((a_blk.mem_bytes() + b_blk.mem_bytes() + acc.mem_bytes()) as u64);
    }
    let comm_delta = comm.stats() - stats0;
    let total_s = t_call.elapsed().as_secs_f64();
    let c = DistMat2D {
        nrows: a.nrows,
        ncols: b.ncols,
        row_offsets: a.row_offsets.clone(),
        col_offsets: b.col_offsets.clone(),
        local: acc,
    };
    let report = SummaReport {
        peak_local_bytes: peak,
        bcast_bytes: comm_delta.sent_bytes,
        comm: comm_delta,
        breakdown: Breakdown {
            comm_s,
            comp_s,
            other_s: (total_s - comm_s - comp_s).max(0.0),
        },
    };
    (c, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::serial_spgemm;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi, stencil3d};

    fn check(a: &Csc<f64>, b: &Csc<f64>, p: usize) {
        let expect = serial_spgemm(a, b);
        let u = Universe::new(p);
        let got = u.run(|comm| {
            let grid = Grid2D::square(comm);
            let da = DistMat2D::from_global(&grid, a);
            let db = DistMat2D::from_global(&grid, b);
            let (c, _rep) = spgemm_summa_2d(comm, &grid, &da, &db);
            c.gather(comm, &grid)
        });
        let got = got[0].as_ref().unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-10,
            "P={p}: diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn matches_serial_on_grids() {
        let a = erdos_renyi(50, 50, 4.0, 1);
        check(&a, &a, 1);
        check(&a, &a, 4);
        check(&a, &a, 9);
    }

    #[test]
    fn rectangular_operands() {
        let a = erdos_renyi(45, 30, 3.0, 2);
        let b = erdos_renyi(30, 61, 3.0, 3);
        check(&a, &b, 4);
    }

    #[test]
    fn structured_operand_and_peak_metric() {
        let a = stencil3d(4, 4, 3, true);
        let u = Universe::new(4);
        let reps = u.run(|comm| {
            let grid = Grid2D::square(comm);
            let da = DistMat2D::from_global(&grid, &a);
            let db = da.clone();
            let (_c, rep) = spgemm_summa_2d(comm, &grid, &da, &db);
            rep
        });
        for rep in &reps {
            assert!(rep.peak_local_bytes > 0);
            assert_eq!(rep.comm.rdma_gets, 0, "SUMMA uses no one-sided traffic");
        }
        check(&a, &a, 4);
    }
}
