//! Shared harness for the figure/table regeneration benches.
//!
//! Every `cargo bench --bench figN_*` target prints the same series the
//! paper's figure plots, as a CSV-ish table plus a "paper claim vs measured"
//! summary line that EXPERIMENTS.md records. Beyond the paper's figures,
//! `--bench session_cache` plots the cross-iteration fetch-cache curves
//! (cumulative fetched volume flattening for BC batches / Galerkin resetup /
//! MCL — the `SpgemmSession` subsystem's claim).
//!
//! Environment knobs:
//! * `SA_SCALE` = `tiny` | `small` (default) | `medium` — dataset sizes;
//! * `SA_QUICK=1` — fewer rank counts / iterations for smoke runs;
//! * `SA_REPS=n` — repetitions per measurement (best kept);
//! * `SA_BACKEND` = `sim` (default) | `threads` | `procs`, or the
//!   `--backend <name>` bench argument — which communicator backend
//!   executes the simulated ranks ([`SimComm`](sa_mpisim::SimComm) serial
//!   rank-loop, [`ThreadComm`](sa_mpisim::ThreadComm) truly-parallel
//!   threads, or [`ProcComm`](sa_mpisim::ProcComm) one OS process per rank
//!   over localhost sockets). Metered traffic is byte-identical across all
//!   three; only wall-clock changes. `--bench backends` compares them
//!   directly.
//!
//! Harness map: [`plan`]/[`scale`]/[`load`] configure a run,
//! [`square_1d`] executes the canonical squaring workload,
//! [`banner`]/[`row`]/[`mb`]/[`ms`] format the output, and
//! [`model`]/[`modeled_total`]/[`modeled_critical_path`] apply the α–β
//! network model to the exact metered traffic.

use sa_dist::{
    prepare, spgemm_1d, DistMat1D, FetchMode, Plan1D, PrepResult, SpgemmReport, Strategy,
};
use sa_mpisim::{Backend, Breakdown, Comm, CostModel, Universe};
use sa_sparse::gen::{Dataset, Scale};
use sa_sparse::spgemm::Kernel;
use sa_sparse::stats::summarize;
use sa_sparse::Csc;

pub use sa_dist::Strategy as Strat;

/// Dataset scale from the environment.
pub fn scale() -> Scale {
    Scale::from_env()
}

/// The 1D plan used by the benches. The paper's K = 2048 assumes millions
/// of nonzero columns per rank; our scaled datasets have thousands, so the
/// same ~15-columns-per-block granularity lands at K = 256.
pub fn plan() -> Plan1D {
    Plan1D {
        fetch_mode: FetchMode::Block(256),
        kernel: Kernel::Hybrid,
        global_stats: true,
        ..Default::default()
    }
}

/// The communicator backend the benches run on: `--backend <name>` in the
/// bench arguments wins, then `SA_BACKEND`, then the serial simulator.
/// Benches that call [`run_square_prepared`] (directly or through
/// [`square_1d`]) honor both spellings on all three backends (the procs
/// leg dispatches through `Universe::run_procs`). Benches that spin up a
/// [`Universe`] themselves and call `Universe::run` honor `SA_BACKEND`
/// only, and only for the *in-process* schedulers — under
/// `SA_BACKEND=procs` those entry points fail fast with a typed panic
/// naming `run_procs` (an in-process closure cannot cross a process
/// boundary), rather than silently falling back to the simulator.
pub fn backend() -> Backend {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--backend" {
            let v = args.next().expect("--backend requires a value");
            return Backend::parse(&v)
                .unwrap_or_else(|| panic!("--backend {v}: expected 'sim', 'threads', or 'procs'"));
        }
    }
    Backend::from_env()
}

/// The `SA_THREADS` knob, if set to a positive integer.
fn sa_threads() -> Option<usize> {
    std::env::var("SA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
}

/// Compute threads per simulated rank (`SA_THREADS`, default 1 — the
/// paper's rank-dominant end of the `c = p·t` space). Honored by every
/// bench that spins up a [`Universe`].
pub fn threads_per_rank() -> usize {
    sa_threads().unwrap_or(1)
}

/// The [`Universe`] the benches run on: like `Universe::with_threads`,
/// but with the stall watchdog ON by default (10 minutes), so a deadlocked
/// or wedged configuration fails typed instead of hanging a sweep
/// overnight. `SA_WATCHDOG_SECS` still wins when set — including `0` to
/// disable the deadline.
pub fn universe_with_threads(p: usize, t: usize) -> Universe {
    let u = Universe::with_threads(p, t);
    if u.watchdog().is_some() || std::env::var("SA_WATCHDOG_SECS").is_ok() {
        u
    } else {
        u.with_watchdog(Some(std::time::Duration::from_secs(600)))
    }
}

/// [`universe_with_threads`] at the `SA_THREADS` thread count.
pub fn universe(p: usize) -> Universe {
    universe_with_threads(p, threads_per_rank())
}

/// Thread counts for the local-kernel scheduling sweep (`sched_compare`):
/// `SA_THREADS` pins a single count, `SA_QUICK` trims the sweep.
pub fn thread_sweep() -> Vec<usize> {
    if let Some(n) = sa_threads() {
        return vec![n];
    }
    if std::env::var("SA_QUICK").is_ok() {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Repetitions per measurement (best run kept, washing out cold-start
/// effects: pool spin-up, first-touch page faults). `SA_REPS` overrides.
pub fn reps() -> usize {
    std::env::var("SA_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Run `f` `n` times, keep the result with the smallest time key.
pub fn best_of<T>(n: usize, mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let mut best = f();
    for _ in 1..n {
        let next = f();
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

/// Hybrid time estimate for one rank's 1D multiply: measured local work
/// plus α–β-modeled network time for the exact metered traffic. Used where
/// the figure's shape depends on network constants a shared-memory machine
/// cannot reproduce (see DESIGN.md §"Measurement conventions").
pub fn modeled_total(rep: &SpgemmReport) -> f64 {
    rep.breakdown.comp_s + rep.breakdown.other_s + model().time_s(rep.rdma_msgs, rep.fetched_bytes)
}

/// Max modeled total across ranks.
pub fn modeled_critical_path(reps: &[SpgemmReport]) -> f64 {
    reps.iter().map(modeled_total).fold(0.0, f64::max)
}

/// Simulated-rank counts for strong-scaling sweeps (perfect squares so the
/// 2D/3D grids are valid; the paper's CombBLAS convention).
pub fn rank_counts() -> Vec<usize> {
    if std::env::var("SA_QUICK").is_ok() {
        vec![4, 9]
    } else {
        vec![4, 9, 16, 25]
    }
}

/// Header banner for a bench target.
pub fn banner(fig: &str, what: &str, claim: &str) {
    println!("\n=== {fig}: {what} ===");
    println!("paper claim: {claim}");
    println!("scale: {:?}", scale());
}

/// Print a CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// ms formatting.
pub fn ms(s: f64) -> String {
    format!("{:.3}", s * 1e3)
}

/// MB formatting.
pub fn mb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1e6)
}

/// The α–β model used for modeled communication times.
pub fn model() -> CostModel {
    CostModel::slingshot()
}

/// One squaring run of the sparsity-aware 1D algorithm under a strategy.
/// Returns per-rank reports plus the preprocessing seconds.
pub fn square_1d(
    a: &Csc<f64>,
    p: usize,
    strategy: Strategy,
    plan: Plan1D,
) -> (Vec<SpgemmReport>, f64) {
    let prep = prepare(a, p, strategy);
    let reports = run_square_prepared(&prep, p, plan);
    (reports, prep.prep_seconds)
}

/// One rank's share of the canonical squaring workload — generic over the
/// backend so the same code runs on `SimComm` and `ThreadComm`. Returns
/// the report plus this rank's [`sa_mpisim::rank_active_seconds`] (its
/// interference-free own-work span under the serial scheduler; 0 under
/// the parallel one). This is the single definition of the workload the
/// figure benches and the `backends` comparison bench share.
pub fn square_rank<C: Comm>(comm: &C, prep: &PrepResult, plan: &Plan1D) -> (SpgemmReport, f64) {
    let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
    let db = da.clone();
    let (_c, rep) = spgemm_1d(comm, &da, &db, plan);
    (rep, sa_mpisim::rank_active_seconds())
}

/// Squaring on an already-prepared (permuted + offset) matrix under an
/// explicit backend; best of [`reps`] runs by whole-universe wall time.
/// Returns the per-rank reports plus the best run's wall seconds (launch
/// to join — the number that differs between backends).
pub fn run_square_prepared_on(
    be: Backend,
    prep: &PrepResult,
    p: usize,
    plan: Plan1D,
) -> (Vec<SpgemmReport>, f64) {
    let (_t, best) = best_of(reps(), || {
        let u = universe_with_threads(p, threads_per_rank());
        let t0 = std::time::Instant::now();
        // launch::<M> pins the scheduler: the explicit `be` argument must
        // win over any SA_BACKEND in the environment
        let reports = match be {
            Backend::Sim => {
                u.launch::<sa_mpisim::Serial, _, _>(|comm| square_rank(comm, prep, &plan).0)
            }
            Backend::Threads => {
                u.launch::<sa_mpisim::Threads, _, _>(|comm| square_rank(comm, prep, &plan).0)
            }
            // one OS process per rank; the report crosses back over a socket
            Backend::Procs => u.run_procs(|comm| square_rank(comm, prep, &plan).0),
        };
        let wall = t0.elapsed().as_secs_f64();
        (wall, (reports, wall))
    });
    best
}

/// Squaring on an already-prepared (permuted + offset) matrix; best of
/// [`reps`] runs. Executes on the backend selected by [`backend`] (the
/// serial simulator unless `SA_BACKEND`/`--backend` overrides).
pub fn run_square_prepared(prep: &PrepResult, p: usize, plan: Plan1D) -> Vec<SpgemmReport> {
    run_square_prepared_on(backend(), prep, p, plan).0
}

/// Print the per-rank breakdown block the paper's Figs. 4/8/10 show:
/// every rank's comm/comp/other in ms, then a min/median/max summary.
///
/// Caveat (see [`sa_mpisim::Breakdown`]): under the default serial
/// backend the comm column of a rank that *blocked* includes other ranks'
/// serialized execution — it is "time until the data was ready", not wait
/// skew. The figure-shape conclusions in the benches therefore rest on
/// `comp`/modeled columns ([`modeled_total`]), which are
/// backend-independent.
pub fn print_rank_breakdown(label: &str, reps: &[Breakdown]) {
    println!("# per-rank breakdown: {label}");
    row(&[
        "rank".into(),
        "comm_ms".into(),
        "comp_ms".into(),
        "other_ms".into(),
        "total_ms".into(),
    ]);
    for (r, b) in reps.iter().enumerate() {
        row(&[
            r.to_string(),
            ms(b.comm_s),
            ms(b.comp_s),
            ms(b.other_s),
            ms(b.total_s()),
        ]);
    }
    let comm: Vec<f64> = reps.iter().map(|b| b.comm_s).collect();
    let comp: Vec<f64> = reps.iter().map(|b| b.comp_s).collect();
    let total: Vec<f64> = reps.iter().map(|b| b.total_s()).collect();
    let (sc, sp, st) = (summarize(&comm), summarize(&comp), summarize(&total));
    println!(
        "# summary {label}: comm med {} max {} | comp med {} max {} | total med {} max {} (ms)",
        ms(sc.median),
        ms(sc.max),
        ms(sp.median),
        ms(sp.max),
        ms(st.median),
        ms(st.max)
    );
}

/// Print the finer four-phase wall-clock split ([`sa_mpisim::PhaseTimes`])
/// per rank: symbolic / fetch / compute / assemble in ms. Complements
/// [`print_rank_breakdown`] — the phases attribute the `other` bucket.
pub fn print_rank_phases(label: &str, phases: &[sa_mpisim::PhaseTimes]) {
    println!("# per-rank phases: {label}");
    row(&[
        "rank".into(),
        "symbolic_ms".into(),
        "fetch_ms".into(),
        "compute_ms".into(),
        "assemble_ms".into(),
    ]);
    for (r, p) in phases.iter().enumerate() {
        row(&[
            r.to_string(),
            ms(p.symbolic_s),
            ms(p.fetch_s),
            ms(p.compute_s),
            ms(p.assemble_s),
        ]);
    }
}

/// The slowest rank's total — the paper's time-to-solution for a phase.
pub fn critical_path(reps: &[Breakdown]) -> f64 {
    reps.iter().map(|b| b.total_s()).fold(0.0, f64::max)
}

/// Max across ranks of one phase.
pub fn max_phase(reps: &[Breakdown], f: impl Fn(&Breakdown) -> f64) -> f64 {
    reps.iter().map(f).fold(0.0, f64::max)
}

/// Build a dataset at the bench scale.
pub fn load(d: Dataset) -> Csc<f64> {
    d.build(scale())
}

/// Strategies the paper compares for a dataset in the 1D algorithm
/// (eukarya gets METIS; the naturally-structured ones don't need it).
pub fn strategies_for(d: Dataset) -> Vec<Strategy> {
    let mut v = vec![Strategy::Original, Strategy::RandomPerm { seed: 99 }];
    if !d.naturally_structured() {
        v.push(Strategy::Partition {
            seed: 1,
            epsilon: 0.05,
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        std::env::set_var("SA_SCALE", "tiny");
        let a = load(Dataset::Hv15rLike);
        let (reps, prep_s) = square_1d(&a, 4, Strategy::Original, Plan1D::default());
        assert_eq!(reps.len(), 4);
        assert_eq!(prep_s, 0.0);
        let bds: Vec<Breakdown> = reps.iter().map(|r| r.breakdown).collect();
        assert!(critical_path(&bds) > 0.0);
    }
}
