//! Session cache: cumulative fetched volume across iterative SpGEMM
//! workloads, cached vs uncached.
//!
//! The sessionless engines refetch the stationary operand's columns every
//! iteration, so cumulative fetched bytes grow linearly. With a
//! [`SpgemmSession`] fetch cache the curve flattens after the first
//! iteration (BC batches, Galerkin resetup) or decays with the convergence
//! delta (MCL): only the per-iteration *miss set* travels. This bench
//! prints both curves for three workloads; the README's session table
//! records the totals.

use sa_apps::bc::{bc_batches_1d_session, pick_sources};
use sa_apps::galerkin::GalerkinSession;
use sa_apps::mcl::{mcl_1d_session, MclConfig};
use sa_apps::restriction::restriction_operator;
use sa_bench::*;
use sa_dist::{uniform_offsets, CacheConfig, DistMat1D, SpgemmSession};

use sa_sparse::gen::{Dataset, Scale};
use sa_sparse::{Csc, Vidx};

/// Per-iteration cumulative fresh bytes (Σ over ranks) for one config.
fn cumulative(series: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(series.len());
    let mut acc = 0u64;
    for &x in series {
        acc += x;
        out.push(acc);
    }
    out
}

fn print_curves(workload: &str, cached: &[u64], uncached: &[u64]) {
    for (i, (c, u)) in cumulative(cached)
        .iter()
        .zip(cumulative(uncached))
        .enumerate()
    {
        row(&[
            workload.into(),
            (i + 1).to_string(),
            mb(*c),
            mb(u),
            format!("{:.3}", *c as f64 / (u as f64).max(1.0)),
        ]);
    }
}

/// Repeated squaring of a stationary matrix — the distilled session case.
fn squaring(a: &Csc<f64>, p: usize, iters: usize) -> (Vec<u64>, Vec<u64>) {
    let run = |cache: CacheConfig| -> Vec<u64> {
        let u = universe(p);
        let per_rank = u.run(|comm| {
            let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), comm.size()));
            let db = da.clone();
            let mut s = SpgemmSession::create(comm, da, plan(), cache);
            (0..iters)
                .map(|_| s.multiply(comm, &db).1.fresh_bytes)
                .collect::<Vec<u64>>()
        });
        (0..iters)
            .map(|i| per_rank.iter().map(|v| v[i]).sum())
            .collect()
    };
    (run(CacheConfig::unlimited()), run(CacheConfig::disabled()))
}

/// Batched BC: one entry per batch (increments of the cumulative session
/// snapshots).
fn bc(a: &Csc<f64>, p: usize, batches: &[Vec<Vidx>]) -> (Vec<u64>, Vec<u64>) {
    let run = |cache: CacheConfig| -> Vec<u64> {
        let u = universe(p);
        let per_rank = u.run(|comm| {
            let (_outcomes, snapshots) = bc_batches_1d_session(comm, a, batches, &plan(), cache);
            snapshots
                .iter()
                .map(|s| s.fresh_bytes())
                .collect::<Vec<u64>>()
        });
        // sum cumulative snapshots over ranks, then de-accumulate
        let mut prev = 0u64;
        (0..batches.len())
            .map(|i| {
                let t: u64 = per_rank.iter().map(|v| v[i]).sum();
                let d = t - prev;
                prev = t;
                d
            })
            .collect()
    };
    (run(CacheConfig::unlimited()), run(CacheConfig::disabled()))
}

/// Galerkin resetup: one entry per restriction operator. Counts the whole
/// product's wire traffic — the cacheable `A·R` half plus the `Rᵀ·(AR)`
/// fetch both configurations pay identically.
fn galerkin(a: &Csc<f64>, p: usize, rs: &[Csc<f64>]) -> (Vec<u64>, Vec<u64>) {
    let run = |cache: CacheConfig| -> Vec<u64> {
        let u = universe(p);
        let per_rank = u.run(|comm| {
            let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), comm.size()));
            let mut s = GalerkinSession::create(comm, da, plan(), cache);
            rs.iter()
                .map(|r| {
                    let rep = s.product(comm, r).1;
                    rep.ar.fresh_bytes + rep.rap.fresh_bytes
                })
                .collect::<Vec<u64>>()
        });
        (0..rs.len())
            .map(|i| per_rank.iter().map(|v| v[i]).sum())
            .collect()
    };
    (run(CacheConfig::unlimited()), run(CacheConfig::disabled()))
}

fn main() {
    banner(
        "Session cache",
        "cumulative fetched volume across iterations, cached vs uncached",
        "the cached curve flattens after iteration 1 while the uncached one grows linearly",
    );
    let p = 8;
    let iters = if std::env::var("SA_QUICK").is_ok() {
        4
    } else {
        6
    };
    row(&[
        "workload".into(),
        "iter".into(),
        "cached_cum_MB".into(),
        "uncached_cum_MB".into(),
        "ratio".into(),
    ]);

    // 1. repeated squaring of the hv15r analog (stationary operand)
    let a = load(Dataset::Hv15rLike);
    let (c, u) = squaring(&a, p, iters);
    print_curves("square_hv15r", &c, &u);

    // 2. batched BC on the eukarya analog (persistent adjacency sessions)
    let g = match scale() {
        Scale::Tiny => load(Dataset::EukaryaLike),
        _ => Dataset::EukaryaLike.build(Scale::Tiny), // BFS levels dominate runtime
    };
    let batches: Vec<Vec<Vidx>> = (0..iters as u64)
        .map(|s| pick_sources(g.nrows(), 16, s))
        .collect();
    let (c, u) = bc(&g, 4, &batches);
    print_curves("bc_batches", &c, &u);

    // 3. Galerkin resetup on the queen analog (stationary fine operator)
    let f = load(Dataset::QueenLike);
    let rs: Vec<Csc<f64>> = (0..iters as u64)
        .map(|s| restriction_operator(&f, s))
        .collect();
    let (c, u) = galerkin(&f, p, &rs);
    print_curves("galerkin_resetup", &c, &u);

    // 4. MCL (delta shrinks with convergence rather than vanishing)
    let m = Dataset::EukaryaLike.build(Scale::Tiny);
    let un = universe(4);
    let got = un.run(|comm| {
        let (_c1, _i1, cached) = mcl_1d_session(
            comm,
            &m,
            &MclConfig::default(),
            &plan(),
            CacheConfig::unlimited(),
        );
        let (_c2, _i2, uncached) = mcl_1d_session(
            comm,
            &m,
            &MclConfig::default(),
            &plan(),
            CacheConfig::disabled(),
        );
        (cached, uncached)
    });
    let cached: u64 = got.iter().map(|(c, _)| c.fresh_bytes).sum();
    let uncached: u64 = got.iter().map(|(_, u)| u.fresh_bytes).sum();
    let hits: u64 = got.iter().map(|(c, _)| c.cache_hit_bytes).sum();
    row(&[
        "mcl_total".into(),
        got[0].0.multiplies.to_string(),
        mb(cached),
        mb(uncached),
        format!("{:.3}", cached as f64 / (uncached as f64).max(1.0)),
    ]);
    println!(
        "## mcl cache-hit volume: {} (delta fetching; hits grow as columns freeze)",
        mb(hits)
    );
    println!("## expected shape: cached cumulative volume flattens after iteration 1; uncached grows linearly with iterations");
}
