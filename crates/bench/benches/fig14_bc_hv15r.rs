//! Figure 14: betweenness centrality on hv15r — per-iteration forward and
//! backward SpGEMM times, 1D (natural order) vs 2D vs 3D.
//!
//! Paper: the 2D algorithm *runs out of memory* in the backward sweep; the
//! 1D algorithm achieves 3.5× over the state-of-the-art 3D algorithm. We
//! reproduce the OOM observation as a peak-local-memory blow-up report
//! (the simulator does not kill ranks).

use sa_apps::bc::{bc_batch_1d, bc_batch_2d, bc_batch_3d, pick_sources, BcOutcome};
use sa_bench::*;
use sa_dist::{prepare, Strategy};
use sa_mpisim::CostModel;
use sa_sparse::gen::Dataset;

fn total(o: &BcOutcome) -> f64 {
    o.times.forward_s.iter().sum::<f64>() + o.times.backward_s.iter().sum::<f64>()
}

/// Wall SpGEMM time plus α–β-modeled network time from exact counters —
/// the network-bound regime the paper measures at multi-node scale.
fn net(o: &BcOutcome) -> f64 {
    total(o) + CostModel::slingshot().time_s(o.comm_msgs, o.comm_bytes)
}

fn main() {
    banner(
        "Fig 14",
        "BC per-iteration times on hv15r: 1D(original) vs 2D vs 3D",
        "2D runs out of memory in the backward sweep; 1D is 3.5x faster than 3D",
    );
    let p = 16;
    let a = load(Dataset::Hv15rLike);
    let batch = (a.nrows() / 625).max(16);
    println!("# batch size: {batch} sources");
    let sources = pick_sources(a.nrows(), batch, 11);

    let u = universe(p);
    let o1 = u
        .run(|comm| bc_batch_1d(comm, &a, &sources, &plan()))
        .remove(0);

    let prep = prepare(&a, p, Strategy::RandomPerm { seed: 2 });
    let u = universe(p);
    let o2 = u.run(|comm| bc_batch_2d(comm, &prep.a, &sources)).remove(0);

    let u = universe(p);
    let o3 = u
        .run(|comm| bc_batch_3d(comm, 4, &prep.a, &sources))
        .remove(0);

    for (label, o) in [
        ("1D_original", &o1),
        ("2D_random", &o2),
        ("3D_random_c4", &o3),
    ] {
        let fwd: Vec<String> = o.times.forward_s.iter().map(|&t| ms(t)).collect();
        let bwd: Vec<String> = o.times.backward_s.iter().map(|&t| ms(t)).collect();
        println!("{label},forward_ms,{}", fwd.join(","));
        println!("{label},backward_ms,{}", bwd.join(","));
        println!(
            "# {label}: total {} ms, peak local {} MB, injected {} MB / {} msgs => model {} ms",
            ms(total(o)),
            mb(o.peak_local_bytes),
            mb(o.comm_bytes),
            o.comm_msgs,
            ms(CostModel::slingshot().time_s(o.comm_msgs, o.comm_bytes)),
        );
    }
    println!(
        "## 1D vs 3D wall speedup: {:.2}x, wall+network-model {:.2}x (paper 3.5x); \
         2D peak memory / 1D peak memory: {:.1}x (paper: 2D OOMs)",
        total(&o3) / total(&o1).max(1e-12),
        net(&o3) / net(&o1).max(1e-12),
        o2.peak_local_bytes as f64 / o1.peak_local_bytes.max(1) as f64
    );
}
