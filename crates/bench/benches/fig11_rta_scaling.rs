//! Figure 11: strong scaling of the RᵀA operation on four datasets, plus
//! the algorithm comparison on queen for the full restriction pipeline
//! (RᵀA + (RᵀA)R summed, RᵀA dominant).
//!
//! Paper: scaling saturates (insufficient workload in R); the 1D variant
//! beats the 2D and 3D algorithms on queen.

use sa_apps::galerkin::{galerkin_product, RightAlgo};
use sa_apps::restriction::restriction_operator;
use sa_bench::*;
use sa_dist::mat3d::DistMat3D;
use sa_dist::{prepare, spgemm_split_3d, spgemm_summa_2d, DistMat1D, DistMat2D, Strategy};
use sa_mpisim::{Grid2D, Grid3D};
use sa_sparse::gen::Dataset;
use std::time::Instant;

fn main() {
    banner(
        "Fig 11",
        "RtA strong scaling (4 datasets) + full Galerkin algorithm comparison on queen",
        "RtA stops scaling at high P (small workload); 1D beats 2D/3D on queen",
    );

    // --- panel 1: RtA scaling across datasets with the 1D algorithm ---
    row(&["matrix".into(), "P".into(), "rta_1d_ms".into()]);
    for d in Dataset::SCALING_SET {
        let a = load(d);
        let r = restriction_operator(&a, 42);
        let rt = r.transpose();
        for p in rank_counts() {
            let prep = prepare(&a, p, Strategy::Original);
            let u = universe(p);
            let times = u.run(|comm| {
                let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
                let drt = DistMat1D::from_global(comm, &rt, &prep.offsets);
                let t0 = Instant::now();
                let (_rta, _rep) = sa_dist::spgemm_1d(comm, &drt, &da, &plan());
                t0.elapsed().as_secs_f64()
            });
            row(&[
                d.name().into(),
                p.to_string(),
                ms(times.into_iter().fold(0.0f64, f64::max)),
            ]);
        }
    }

    // --- panel 2: full Galerkin (RtA + (RtA)R) on queen, all algorithms ---
    println!("\n# queen: full restriction pipeline by algorithm");
    row(&["P".into(), "algo".into(), "total_ms".into()]);
    let a = load(Dataset::QueenLike);
    let r = restriction_operator(&a, 42);
    for p in rank_counts() {
        // 1D (left: Alg.1, right: outer-product per the paper's §III-C)
        let u = universe(p);
        let t1d = u
            .run(|comm| {
                let offsets = sa_dist::uniform_offsets(a.ncols(), comm.size());
                let da = DistMat1D::from_global(comm, &a, &offsets);
                let t0 = Instant::now();
                let (_c, _rep) = galerkin_product(comm, &da, &r, RightAlgo::Outer, &plan());
                t0.elapsed().as_secs_f64()
            })
            .into_iter()
            .fold(0.0f64, f64::max);
        row(&[p.to_string(), "1D".into(), ms(t1d)]);

        // 2D SUMMA: Rt*A then (RtA)*R on the grid (random permuted A, as
        // the sparsity-oblivious pipeline requires)
        let prep = prepare(&a, p, Strategy::RandomPerm { seed: 4 });
        let r_perm = sa_sparse::permute::permute(
            &r,
            prep.perm.as_ref().unwrap(),
            &sa_sparse::Perm::identity(r.ncols()),
        );
        let rt_perm = r_perm.transpose();
        let u = universe(p);
        let t2d = u
            .run(|comm| {
                let grid = Grid2D::square(comm);
                let da = DistMat2D::from_global(&grid, &prep.a);
                let drt = DistMat2D::from_global(&grid, &rt_perm);
                let dr = DistMat2D::from_global(&grid, &r_perm);
                let t0 = Instant::now();
                let (rta, _) = spgemm_summa_2d(comm, &grid, &drt, &da);
                let (_c, _) = spgemm_summa_2d(comm, &grid, &rta, &dr);
                t0.elapsed().as_secs_f64()
            })
            .into_iter()
            .fold(0.0f64, f64::max);
        row(&[p.to_string(), "2D".into(), ms(t2d)]);

        // 3D split (best c), same permuted operands
        let mut best: Option<(usize, f64)> = None;
        for c in sa_mpisim::valid_layer_counts(p) {
            if c > 8 && c != p {
                continue;
            }
            let q = ((p / c) as f64).sqrt().round() as usize;
            let u = universe(p);
            let t = u
                .run(|comm| {
                    let grid = Grid3D::new(comm, q, c);
                    let drt = DistMat3D::from_global_split_cols(&grid, &rt_perm);
                    let da = DistMat3D::from_global_split_rows(&grid, &prep.a);
                    let t0 = Instant::now();
                    // left multiplication (dominant per the paper)
                    let (_rta, _) = spgemm_split_3d(comm, &grid, &drt, &da);
                    t0.elapsed().as_secs_f64()
                })
                .into_iter()
                .fold(0.0f64, f64::max);
            if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                best = Some((c, t));
            }
        }
        let (c_best, t3d) = best.unwrap();
        row(&[p.to_string(), format!("3D(c={c_best},RtA only)"), ms(t3d)]);
        println!(
            "## queen P={p}: 1D full pipeline vs 2D full {:.2}x (paper: 1D fastest)",
            t2d / t1d
        );
    }
}
