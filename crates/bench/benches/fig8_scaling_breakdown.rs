//! Figure 8: strong-scaling per-rank breakdown of the 1D algorithm on
//! hv15r squaring — load imbalance is visible at small P and tamed at
//! larger concurrency.

use sa_bench::*;
use sa_dist::Strategy;
use sa_mpisim::Breakdown;
use sa_sparse::gen::Dataset;
use sa_sparse::stats::summarize;

fn main() {
    banner(
        "Fig 8",
        "strong-scaling per-rank breakdown, hv15r squaring (1D, original order)",
        "some load imbalance is expected; it shrinks in impact at higher concurrency",
    );
    let a = load(Dataset::Hv15rLike);
    let ps: Vec<usize> = if std::env::var("SA_QUICK").is_ok() {
        vec![4, 16]
    } else {
        vec![4, 8, 16, 32]
    };
    for p in ps {
        let (reps, _) = square_1d(&a, p, Strategy::Original, plan());
        let bds: Vec<Breakdown> = reps.iter().map(|r| r.breakdown).collect();
        print_rank_breakdown(&format!("P={p}"), &bds);
        let phases: Vec<_> = reps.iter().map(|r| r.phases).collect();
        print_rank_phases(&format!("P={p}"), &phases);
        let totals: Vec<f64> = bds.iter().map(|b| b.total_s()).collect();
        let s = summarize(&totals);
        println!(
            "## P={p}: imbalance (max/mean) {:.2}",
            s.max / s.mean.max(1e-12)
        );
    }
}
