//! Criterion microbenchmarks of the local SpGEMM kernels (§II: the paper
//! uses a hybrid of heap- and hash-based SpGEMM) plus the DCSC-vs-CSC
//! column-source ablation. These justify the hybrid dispatcher's existence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sa_sparse::gen::{erdos_renyi, rmat};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{spgemm_kernel, Kernel};
use sa_sparse::{Csc, Dcsc};

fn kernel_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_spgemm");
    group.sample_size(10);
    let cases: Vec<(&str, Csc<f64>)> = vec![
        ("er_d4", erdos_renyi(20_000, 20_000, 4.0, 1)),
        ("er_d16", erdos_renyi(8_000, 8_000, 16.0, 2)),
        ("rmat_s13", rmat(13, 8, (0.57, 0.19, 0.19, 0.05), 3)),
    ];
    for (name, a) in &cases {
        for kernel in [Kernel::Heap, Kernel::Hash, Kernel::Spa, Kernel::Hybrid] {
            group.bench_with_input(BenchmarkId::new(format!("{kernel:?}"), name), a, |b, a| {
                b.iter(|| spgemm_kernel::<PlusTimes<f64>, _, _>(a, a, kernel));
            });
        }
    }
    group.finish();
}

fn dcsc_vs_csc_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("a_source_format");
    group.sample_size(10);
    // hypersparse A (as after a 1D split): DCSC's target case
    let a = erdos_renyi(40_000, 40_000, 0.5, 4);
    let b = erdos_renyi(40_000, 2_000, 8.0, 5);
    let ad = Dcsc::from_csc(&a);
    group.bench_function("csc_source", |bench| {
        bench.iter(|| spgemm_kernel::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid));
    });
    group.bench_function("dcsc_source", |bench| {
        bench.iter(|| spgemm_kernel::<PlusTimes<f64>, _, _>(&ad, &b, Kernel::Hybrid));
    });
    group.finish();
}

criterion_group!(benches, kernel_comparison, dcsc_vs_csc_source);
criterion_main!(benches);
