//! Ablation (extension of §II-B / §III-B): graph-model multilevel
//! partitioning (the paper's METIS route) vs the column-net **hypergraph**
//! model of Akbudak & Aykanat, which prices communication exactly.
//!
//! For each strategy we report (a) the model's *predicted* volume, (b) the
//! volume the sparsity-aware 1D algorithm *actually fetches* (column-exact
//! mode, so no block over-fetch blurs the comparison), and (c) load
//! balance. Expected shape: both partitioners crush random ordering on
//! clustered inputs; the hypergraph model's prediction tracks the measured
//! volume exactly (same metric), while the graph edge-cut only
//! approximates it.

use sa_bench::*;
use sa_dist::{spgemm_1d, DistMat1D, FetchMode, Plan1D};

use sa_partition::{
    connectivity_volume, hypergraph::hyper_balance, partition_hypergraph, partition_kway,
    partition_to_perm, Graph, HyperConfig, Hypergraph, PartitionConfig,
};
use sa_sparse::gen::Dataset;
use sa_sparse::permute::permute_symmetric;
use sa_sparse::spgemm::Kernel;
use sa_sparse::stats::squaring_vertex_weights;
use sa_sparse::Csc;

/// Squaring fetch volume (bytes) of the 1D algorithm on a permuted matrix
/// with the given offsets, in column-exact fetch mode.
fn measured_fetch_bytes(a: &Csc<f64>, offsets: &[usize]) -> u64 {
    let p = offsets.len() - 1;
    let u = universe(p);
    let a = a.clone();
    let offsets = offsets.to_vec();
    let reps = u.run(move |comm| {
        let da = DistMat1D::from_global(comm, &a, &offsets);
        let plan = Plan1D {
            fetch_mode: FetchMode::ColumnExact,
            kernel: Kernel::Hybrid,
            global_stats: true,
            ..Default::default()
        };
        let (_, rep) = spgemm_1d(comm, &da, &da.clone(), &plan);
        rep
    });
    reps[0].fetched_bytes_global
}

fn main() {
    banner(
        "Ablation",
        "graph vs hypergraph partitioning for 1D squaring",
        "extension: hypergraph connectivity metric prices 1D volume exactly (Akbudak/Aykanat)",
    );
    let p = 16;
    row(&[
        "matrix".into(),
        "strategy".into(),
        "predicted_MB".into(),
        "measured_MB".into(),
        "balance".into(),
        "partition_ms".into(),
    ]);
    for d in [Dataset::EukaryaLike, Dataset::Hv15rLike] {
        let a = load(d);
        let h = Hypergraph::column_net_squaring(&a);
        let nnz_bytes = 12u64; // u32 row id + f64 value per transferred nnz

        // natural order: contiguous uniform slices
        let uni: Vec<u32> = {
            let off = sa_dist::uniform_offsets(a.ncols(), p);
            (0..a.ncols())
                .map(|j| (off.partition_point(|&o| o <= j) - 1) as u32)
                .collect()
        };
        let vol_nat = connectivity_volume(&h, &uni, p) * nnz_bytes;
        let meas_nat = measured_fetch_bytes(&a, &sa_dist::uniform_offsets(a.ncols(), p));
        row(&[
            d.name().into(),
            "original".into(),
            mb(vol_nat),
            mb(meas_nat),
            format!("{:.2}", hyper_balance(&h, &uni, p)),
            "0".into(),
        ]);

        // graph-model multilevel (the paper's METIS route)
        let t0 = std::time::Instant::now();
        let g = Graph::from_matrix_weighted(&a, squaring_vertex_weights(&a));
        let gparts = partition_kway(&g, &PartitionConfig::new(p));
        let graph_ms = t0.elapsed().as_secs_f64() * 1e3;
        let glayout = partition_to_perm(&gparts, p);
        let vol_g = connectivity_volume(&h, &gparts, p) * nnz_bytes;
        let ap = permute_symmetric(&a, &glayout.perm);
        let meas_g = measured_fetch_bytes(&ap, &glayout.offsets);
        row(&[
            d.name().into(),
            "graph_metis".into(),
            mb(vol_g),
            mb(meas_g),
            format!("{:.2}", hyper_balance(&h, &gparts, p)),
            format!("{graph_ms:.1}"),
        ]);

        // hypergraph column-net recursive bisection
        let t0 = std::time::Instant::now();
        let hparts = partition_hypergraph(&h, &HyperConfig::new(p));
        let hyper_ms = t0.elapsed().as_secs_f64() * 1e3;
        let hlayout = partition_to_perm(&hparts, p);
        let vol_h = connectivity_volume(&h, &hparts, p) * nnz_bytes;
        let aph = permute_symmetric(&a, &hlayout.perm);
        let meas_h = measured_fetch_bytes(&aph, &hlayout.offsets);
        row(&[
            d.name().into(),
            "hypergraph".into(),
            mb(vol_h),
            mb(meas_h),
            format!("{:.2}", hyper_balance(&h, &hparts, p)),
            format!("{hyper_ms:.1}"),
        ]);

        let pred_err_g = (vol_g as f64 - meas_g as f64).abs() / meas_g.max(1) as f64;
        let pred_err_h = (vol_h as f64 - meas_h as f64).abs() / meas_h.max(1) as f64;
        println!(
            "## {}: hypergraph prediction error {:.1}% (graph-model partition predicted via \
             the same metric: {:.1}%); best measured volume: {}",
            d.name(),
            100.0 * pred_err_h,
            100.0 * pred_err_g,
            ["original", "graph_metis", "hypergraph"][[meas_nat, meas_g, meas_h]
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| v)
                .unwrap()
                .0]
        );
    }
}
