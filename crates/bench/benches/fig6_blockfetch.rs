//! Figure 6: the block fetch strategy on hv15r squaring — RDMA message
//! count and communication time versus the split parameter K, against
//! column-exact fetching.
//!
//! Paper: block fetching significantly reduces RDMA message count and
//! improves communication time via latency savings.

use sa_bench::*;
use sa_dist::{FetchMode, Plan1D, Strategy};
use sa_sparse::gen::Dataset;
use sa_sparse::spgemm::Kernel;

fn main() {
    banner(
        "Fig 6",
        "block fetch strategy: K sweep vs column-exact (hv15r squaring)",
        "block fetching cuts RDMA message counts by orders of magnitude and improves comm time",
    );
    let p = 16;
    let a = load(Dataset::Hv15rLike);
    row(&[
        "mode".into(),
        "total_rdma_msgs".into(),
        "fetched_MB".into(),
        "overfetch_ratio".into(),
        "measured_comm_ms_max".into(),
        "modeled_comm_ms".into(),
    ]);
    let mut modes: Vec<(String, FetchMode)> = vec![
        ("full_matrix_oblivious".into(), FetchMode::FullMatrix),
        ("exact_per_column".into(), FetchMode::ColumnExact),
        ("runs_extension".into(), FetchMode::ContiguousRuns),
    ];
    for k in [16usize, 64, 256, 1024, 4096] {
        modes.push((format!("block_K={k}"), FetchMode::Block(k)));
    }
    for (name, mode) in modes {
        let plan = Plan1D {
            fetch_mode: mode,
            kernel: Kernel::Hybrid,
            global_stats: true,
            ..Default::default()
        };
        let (reps, _) = square_1d(&a, p, Strategy::Original, plan);
        let msgs: u64 = reps.iter().map(|r| r.rdma_msgs).sum();
        let fetched: u64 = reps[0].fetched_bytes_global;
        let needed: u64 = reps.iter().map(|r| r.needed_bytes).sum::<u64>().max(1);
        let comm_max = reps
            .iter()
            .map(|r| r.breakdown.comm_s)
            .fold(0.0f64, f64::max);
        // modeled time: slowest rank under the α–β model
        let modeled = reps
            .iter()
            .map(|r| model().time_s(r.rdma_msgs, r.fetched_bytes))
            .fold(0.0f64, f64::max);
        row(&[
            name,
            msgs.to_string(),
            mb(fetched),
            format!("{:.3}", fetched as f64 / needed as f64),
            ms(comm_max),
            ms(modeled),
        ]);
    }
    println!("## expected shape: msgs drop sharply with smaller K; bytes rise mildly; modeled comm time is minimized at intermediate K");
}
