//! Figure 9: strong scaling of the squaring operation on four datasets,
//! comparing the sparsity-aware 1D algorithm (no permutation) against 2D
//! sparse SUMMA and split-3D (randomly permuted, reported with and without
//! permutation time; 3D uses the best layer count).
//!
//! Paper: 1D scales on all four; on hv15r and queen it is an order of
//! magnitude faster than 2D/3D even counting only their kernel time; on
//! stokes and nlpkkt200 it wins once permutation time is included.

use sa_bench::*;
use sa_dist::mat3d::DistMat3D;
use sa_dist::{prepare, spgemm_split_3d, spgemm_summa_2d, DistMat2D, Strategy};
use sa_mpisim::{Grid2D, Grid3D};
use sa_sparse::gen::Dataset;
use std::time::Instant;

fn main() {
    banner(
        "Fig 9",
        "strong scaling of squaring: 1D vs 2D vs 3D (4 datasets)",
        "1D fastest on structured inputs (~10x on hv15r/queen); beats 2D/3D everywhere once permutation time counts",
    );
    row(&[
        "matrix".into(),
        "P".into(),
        "algo".into(),
        "kernel_ms".into(),
        "kernel_plus_perm_ms".into(),
    ]);
    for d in Dataset::SCALING_SET {
        let a = load(d);
        for p in rank_counts() {
            // --- sparsity-aware 1D, original ordering (no permutation) ---
            let (reps, _) = square_1d(&a, p, Strategy::Original, plan());
            let t1d = reps
                .iter()
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max);
            row(&[
                d.name().into(),
                p.to_string(),
                "1D".into(),
                ms(t1d),
                ms(t1d),
            ]);

            // --- 2D SUMMA with random permutation ---
            let prep = prepare(&a, p, Strategy::RandomPerm { seed: 5 });
            let u = universe(p);
            let t2d = {
                let times = u.run(|comm| {
                    let grid = Grid2D::square(comm);
                    let da = DistMat2D::from_global(&grid, &prep.a);
                    let db = da.clone();
                    let t0 = Instant::now();
                    let (_c, _rep) = spgemm_summa_2d(comm, &grid, &da, &db);
                    t0.elapsed().as_secs_f64()
                });
                times.into_iter().fold(0.0f64, f64::max)
            };
            row(&[
                d.name().into(),
                p.to_string(),
                "2D".into(),
                ms(t2d),
                ms(t2d + prep.prep_seconds),
            ]);

            // --- 3D split, best layer count ---
            let mut best: Option<(usize, f64)> = None;
            for c in sa_mpisim::valid_layer_counts(p) {
                if c > 8 && c != p {
                    continue; // skip silly middle grounds at bench scale
                }
                let q2 = p / c;
                let q = (q2 as f64).sqrt().round() as usize;
                let u = universe(p);
                let times = u.run(|comm| {
                    let grid = Grid3D::new(comm, q, c);
                    let da = DistMat3D::from_global_split_cols(&grid, &prep.a);
                    let db = DistMat3D::from_global_split_rows(&grid, &prep.a);
                    let t0 = Instant::now();
                    let (_c, _rep) = spgemm_split_3d(comm, &grid, &da, &db);
                    t0.elapsed().as_secs_f64()
                });
                let t = times.into_iter().fold(0.0f64, f64::max);
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((c, t));
                }
            }
            let (c_best, t3d) = best.unwrap();
            row(&[
                d.name().into(),
                p.to_string(),
                format!("3D(c={c_best})"),
                ms(t3d),
                ms(t3d + prep.prep_seconds),
            ]);
            println!(
                "## {} P={p}: 1D vs best-of(2D,3D) kernel-only speedup {:.2}x; incl. perm {:.2}x",
                d.name(),
                t2d.min(t3d) / t1d,
                (t2d.min(t3d) + prep.prep_seconds) / t1d
            );
        }
    }
}
