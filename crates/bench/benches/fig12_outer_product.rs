//! Figure 12: the right Galerkin multiplication `(RᵀA)·R` — sparsity-aware
//! 1D (Algorithm 1) vs outer-product 1D (Algorithm 3).
//!
//! Paper: the outer-product algorithm wins for this shape.

use sa_apps::restriction::restriction_operator;
use sa_bench::*;
use sa_dist::{spgemm_1d, spgemm_outer_1d, uniform_offsets, DistMat1D};

use sa_sparse::gen::Dataset;
use std::time::Instant;

fn main() {
    banner(
        "Fig 12",
        "(RtA)R: sparsity-aware 1D vs outer-product 1D",
        "outer-product is the better 1D algorithm for the right multiplication",
    );
    row(&[
        "matrix".into(),
        "P".into(),
        "right_1d_ms".into(),
        "right_outer_ms".into(),
        "outer_speedup".into(),
    ]);
    for d in [Dataset::QueenLike, Dataset::StokesLike] {
        let a = load(d);
        let r = restriction_operator(&a, 42);
        let rt = r.transpose();
        for p in rank_counts() {
            let u = universe(p);
            let pair = u.run(|comm| {
                let offsets = uniform_offsets(a.ncols(), comm.size());
                let da = DistMat1D::from_global(comm, &a, &offsets);
                let drt = DistMat1D::from_global(comm, &rt, &offsets);
                // left product once (shared input to both right variants)
                let (rta, _) = spgemm_1d(comm, &drt, &da, &plan());
                let r_offsets = uniform_offsets(r.ncols(), comm.size());
                let dr = DistMat1D::from_global(comm, &r, &r_offsets);
                let t0 = Instant::now();
                let (_c1, _) = spgemm_1d(comm, &rta, &dr, &plan());
                let t_1d = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let (_c2, _) = spgemm_outer_1d(comm, &rta, &dr);
                let t_outer = t0.elapsed().as_secs_f64();
                (t_1d, t_outer)
            });
            let t1d = pair.iter().map(|p| p.0).fold(0.0f64, f64::max);
            let tout = pair.iter().map(|p| p.1).fold(0.0f64, f64::max);
            row(&[
                d.name().into(),
                p.to_string(),
                ms(t1d),
                ms(tout),
                format!("{:.2}", t1d / tout.max(1e-12)),
            ]);
        }
    }
    println!("## expected shape: outer_speedup > 1 (paper Fig. 12)");
}
