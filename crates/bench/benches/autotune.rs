//! Autotuner bench (PR 4 acceptance): oblivious vs sparsity-aware 2D
//! volume on the RMAT/ER/hv15r-like suite, and `AutoTuner::pick` accuracy
//! against the exhaustively-measured cheapest algorithm.
//!
//! Claims checked:
//! * sparsity-aware 2D moves ≥2× fewer bytes than oblivious SUMMA at
//!   P ≥ 16 on the RMAT-like suite;
//! * the tuner's pick matches the measured-best algorithm on ≥90% of the
//!   suite.

use sa_bench::*;
use sa_dist::{
    prepare, spgemm_1d, spgemm_split_3d, spgemm_split_3d_sa, spgemm_summa_2d, spgemm_summa_2d_sa,
    uniform_offsets, AlgoChoice, AutoTuner, DistMat1D, DistMat2D, DistMat3D, FetchMode, Plan1D,
};
use sa_mpisim::{CommStats, Grid2D, Grid3D};
use sa_sparse::gen::{erdos_renyi_square, rmat, Dataset, Scale};
use sa_sparse::Csc;

/// One suite row: the operand (already in the layout the aware family
/// would run it in — METIS-permuted for scale-free graphs, natural order
/// for structured ones, exactly the Fig. 4/5 preparation convention) and
/// whether it belongs to the ≥2× claim suite. `rmat_ef8` rides along as a
/// labeled stress row: at edge factor 8 the hubs put >60% of the matrix
/// mass inside every rank's needed set, so no needed-set scheme can reach
/// 2× at these rank counts — the row documents the boundary.
struct Item {
    name: &'static str,
    a: Csc<f64>,
    in_claim: bool,
}

fn suite() -> Vec<Item> {
    let (rmat_scale, er_n) = match scale() {
        Scale::Tiny => (9, 600),
        Scale::Small => (12, 6_000),
        Scale::Medium => (13, 16_000),
    };
    let g500 = (0.57, 0.19, 0.19, 0.05);
    let metis = |a: &Csc<f64>| {
        prepare(
            a,
            64,
            Strat::Partition {
                seed: 1,
                epsilon: 0.05,
            },
        )
        .a
    };
    vec![
        Item {
            name: "rmat_ef4_metis",
            a: metis(&rmat(rmat_scale, 4, g500, 1)),
            in_claim: true,
        },
        Item {
            name: "rmat_ef2",
            a: rmat(rmat_scale, 2, g500, 2),
            in_claim: true,
        },
        Item {
            name: "er_d4",
            a: erdos_renyi_square(er_n, 4.0, 3),
            in_claim: true,
        },
        Item {
            name: "hv15r_like",
            a: load(Dataset::Hv15rLike),
            in_claim: true,
        },
        Item {
            name: "rmat_ef8_metis",
            a: metis(&rmat(rmat_scale, 8, g500, 4)),
            in_claim: false,
        },
    ]
}

/// Run `algo` distributed and return every rank's injected-traffic delta.
fn run_candidate(a: &Csc<f64>, p: usize, algo: AlgoChoice) -> Vec<CommStats> {
    let u = universe(p);
    u.run(|comm| {
        let stats0 = comm.stats();
        match algo {
            AlgoChoice::OneD { mode } => {
                let da = DistMat1D::from_global(comm, a, &uniform_offsets(a.ncols(), p));
                let db = da.clone();
                let plan = Plan1D {
                    fetch_mode: mode,
                    global_stats: false,
                    ..Default::default()
                };
                let _ = spgemm_1d(comm, &da, &db, &plan);
            }
            AlgoChoice::TwoDSa { pr, pc, mode } => {
                let grid = Grid2D::new(comm, pr, pc);
                let da = DistMat2D::from_global(&grid, a);
                let db = da.clone();
                let _ = spgemm_summa_2d_sa(comm, &grid, &da, &db, mode);
            }
            AlgoChoice::TwoDOblivious { s } => {
                let grid = Grid2D::new(comm, s, s);
                let da = DistMat2D::from_global(&grid, a);
                let db = da.clone();
                let _ = spgemm_summa_2d(comm, &grid, &da, &db);
            }
            AlgoChoice::ThreeDSa { q, layers, mode } => {
                let grid = Grid3D::new(comm, q, layers);
                let da = DistMat3D::from_global_split_cols(&grid, a);
                let db = DistMat3D::from_global_split_rows(&grid, a);
                let _ = spgemm_split_3d_sa(comm, &grid, &da, &db, mode);
            }
            AlgoChoice::ThreeDOblivious { q, layers } => {
                let grid = Grid3D::new(comm, q, layers);
                let da = DistMat3D::from_global_split_cols(&grid, a);
                let db = DistMat3D::from_global_split_rows(&grid, a);
                let _ = spgemm_split_3d(comm, &grid, &da, &db);
            }
        }
        comm.stats() - stats0
    })
}

fn main() {
    banner(
        "Autotune",
        "sparsity-aware 2D/3D volume + cost-model algorithm selection",
        "aware 2D moves >=2x fewer bytes than oblivious SUMMA at P>=16; tuner matches measured best on >=90% of the suite",
    );
    let suite = suite();
    let model = model();
    // Grid ranks for the oblivious-vs-aware comparison (`SA_P2D`, perfect
    // square, default 64): block hypersparsity — the paper's large-P
    // regime — is what needed-set communication exploits, so the
    // comparison is run at the suite's largest practical grid.
    let p2d: usize = std::env::var("SA_P2D")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    // --- part 1: oblivious vs aware 2D at P >= 16 ---
    row(&[
        "matrix".into(),
        "engine".into(),
        "total_MB".into(),
        "meta_MB".into(),
        "a_MB".into(),
        "b_MB".into(),
        "total_msgs".into(),
        "bytes_ratio_obl_over_aware".into(),
    ]);
    let mut worst_ratio = f64::INFINITY;
    for item in &suite {
        let (name, a) = (item.name, &item.a);
        let s = (p2d as f64).sqrt() as usize;
        // byte-minimal coalescing: like Fig. 5, this comparison is about
        // the *communication volume* the sparsity requires, not Block
        // mode's bytes-for-messages trade (Fig. 6's subject)
        let mode = FetchMode::ContiguousRuns;
        let obl = run_candidate(a, p2d, AlgoChoice::TwoDOblivious { s });
        let aware = run_candidate(a, p2d, AlgoChoice::TwoDSa { pr: s, pc: s, mode });
        let pred = sa_dist::analyze_2d(a, a, s, s, mode);
        let (a_leg, b_leg) = pred.per_rank.iter().fold((0u64, 0u64), |(af, bf), rc| {
            (
                af + rc.a_fetch_bytes,
                bf + rc.b_request_bytes + rc.b_served_bytes,
            )
        });
        let tb = |d: &[CommStats]| d.iter().map(|x| x.injected_bytes()).sum::<u64>();
        let tm = |d: &[CommStats]| d.iter().map(|x| x.injected_msgs()).sum::<u64>();
        let ratio = tb(&obl) as f64 / tb(&aware).max(1) as f64;
        if item.in_claim {
            worst_ratio = worst_ratio.min(ratio);
        }
        row(&[
            name.into(),
            "2d-oblivious".into(),
            mb(tb(&obl)),
            mb(0),
            mb(0),
            mb(0),
            tm(&obl).to_string(),
            "1.00x".into(),
        ]);
        row(&[
            name.into(),
            if item.in_claim {
                "2d-aware".into()
            } else {
                "2d-aware (stress row, outside claim)".into()
            },
            mb(tb(&aware)),
            mb(pred.aware.meta.bytes),
            mb(a_leg),
            mb(b_leg),
            tm(&aware).to_string(),
            format!("{ratio:.2}x"),
        ]);
    }
    println!(
        "## aware-vs-oblivious 2D at P={p2d}: worst-case bytes ratio {worst_ratio:.2}x (criterion >= 2x): {}",
        if worst_ratio >= 2.0 { "PASS" } else { "FAIL" }
    );

    // --- part 2: tuner pick vs exhaustively measured best ---
    row(&[
        "matrix".into(),
        "P".into(),
        "tuner_pick".into(),
        "measured_best".into(),
        "match".into(),
    ]);
    let rank_counts = if std::env::var("SA_QUICK").is_ok() {
        vec![4]
    } else {
        vec![4, 16]
    };
    let modes = [plan().fetch_mode, FetchMode::ColumnExact];
    let (mut matches, mut total) = (0usize, 0usize);
    for item in suite.iter().filter(|i| i.in_claim) {
        let (name, a) = (item.name, &item.a);
        for &p in &rank_counts {
            let tuner = AutoTuner::analyze(a, a, p, &modes);
            let pick = tuner.pick(&model).algo;
            // exhaustively run every candidate and model its time from the
            // *metered* traffic (same formula the tuner applies to its
            // predictions)
            let mut best: Option<(f64, AlgoChoice)> = None;
            for cand in &tuner.candidates {
                let deltas = run_candidate(a, p, cand.algo);
                let max_b = deltas.iter().map(|d| d.injected_bytes()).max().unwrap();
                let max_m = deltas.iter().map(|d| d.injected_msgs()).max().unwrap();
                let t = model.time_s(max_m, max_b) + cand.max_rank_flops as f64 / tuner.flops_per_s;
                if best.map(|(bt, _)| t < bt).unwrap_or(true) {
                    best = Some((t, cand.algo));
                }
            }
            let (_, best_algo) = best.expect("candidates ran");
            let hit = best_algo == pick;
            matches += hit as usize;
            total += 1;
            row(&[
                name.into(),
                p.to_string(),
                pick.name(),
                best_algo.name(),
                if hit { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    let accuracy = 100.0 * matches as f64 / total as f64;
    println!(
        "## tuner accuracy: {matches}/{total} = {accuracy:.0}% (criterion >= 90%): {}",
        if accuracy >= 90.0 { "PASS" } else { "FAIL" }
    );
}
