//! Figure 5: communication volume under different permutation strategies,
//! squaring hv15r (original vs random) and eukarya (original vs random vs
//! METIS).
//!
//! Paper: choosing the right permutation reduces volume ~96%; eukarya's
//! natural order has CV/memA = 1.0 (every rank fetches all of A).

use sa_bench::*;

use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "Fig 5",
        "communication volume by permutation strategy (1D squaring)",
        "~96% volume reduction with the right permutation; eukarya natural order CV/memA = 1.0",
    );
    let p = 16;
    row(&[
        "matrix".into(),
        "strategy".into(),
        "total_fetched_MB".into(),
        "per_rank_max_MB".into(),
        "cv_over_memA".into(),
        "reduction_vs_worst_pct".into(),
    ]);
    for d in [Dataset::Hv15rLike, Dataset::EukaryaLike] {
        let a = load(d);
        let mut entries = Vec::new();
        for strat in strategies_for(d) {
            // column-exact mode: the paper's Fig. 5 plots the algorithm's
            // *communication volume* (what the sparsity pattern requires),
            // not the block-granularity over-fetch (that trade-off is
            // Fig. 6's subject)
            let exact = sa_dist::Plan1D {
                fetch_mode: sa_dist::FetchMode::ColumnExact,
                ..plan()
            };
            let (reps, _) = square_1d(&a, p, strat, exact);
            let total = reps[0].fetched_bytes_global;
            let per_rank_max = reps.iter().map(|r| r.fetched_bytes).max().unwrap();
            entries.push((
                strat.name().to_string(),
                total,
                per_rank_max,
                reps[0].cv_over_mem,
            ));
        }
        let worst = entries.iter().map(|e| e.1).max().unwrap().max(1);
        for (name, total, prm, cv) in &entries {
            row(&[
                d.name().into(),
                name.clone(),
                mb(*total),
                mb(*prm),
                format!("{:.3}", cv),
                format!("{:.1}", 100.0 * (1.0 - *total as f64 / worst as f64)),
            ]);
        }
        let best = entries.iter().map(|e| e.1).min().unwrap();
        println!(
            "## {}: best strategy reduces volume {:.1}% vs worst (paper ~96%)",
            d.name(),
            100.0 * (1.0 - best as f64 / worst as f64)
        );
    }
}
