//! Table II + Figures 2–3: dataset statistics and structure visualizations
//! of the five evaluation-matrix analogs.

use sa_bench::{banner, row, scale};
use sa_sparse::gen::Dataset;
use sa_sparse::stats::spy;

fn main() {
    banner(
        "Table II",
        "statistics of the evaluation matrices (scaled analogs)",
        "queen 330M nnz sym / stokes 350M nonsym / eukarya 360M sym / hv15r 283M nonsym / nlpkkt200 448M sym",
    );
    row(&[
        "matrix".into(),
        "rows".into(),
        "cols".into(),
        "nnz".into(),
        "symmetric".into(),
        "nnz_per_row".into(),
    ]);
    let mut spies = Vec::new();
    for d in Dataset::ALL {
        let (a, s) = d.build_with_stats(scale());
        row(&[
            s.name.clone(),
            s.nrows.to_string(),
            s.ncols.to_string(),
            s.nnz.to_string(),
            if s.symmetric { "Yes" } else { "No" }.into(),
            format!("{:.1}", s.avg_nnz_per_row),
        ]);
        if matches!(d, Dataset::NlpkktLike | Dataset::Hv15rLike) {
            spies.push((s.name.clone(), spy(&a, 48, 20)));
        }
    }
    // Figures 2 and 3 analogs
    for (name, plot) in spies {
        println!("\n# Fig 2/3 analog — {name} nonzero structure:");
        print!("{plot}");
    }
}
