//! Figure 10: per-rank time breakdown of the RᵀA (left Galerkin)
//! multiplication on queen, original ordering vs random permutation.
//!
//! Paper: the original ordering significantly reduces communication and
//! computation time; "other" time dominates because the workload is small.

use sa_apps::restriction::restriction_operator;
use sa_bench::*;
use sa_dist::{prepare, spgemm_1d, DistMat1D, Strategy};
use sa_mpisim::Breakdown;
use sa_sparse::gen::Dataset;
use sa_sparse::permute::permute;

fn main() {
    banner(
        "Fig 10",
        "RtA per-rank breakdown on queen: original vs random permutation",
        "original order cuts comm+comp; 'other' dominates (workload too small)",
    );
    let p = 16;
    let a = load(Dataset::QueenLike);
    let r = restriction_operator(&a, 42);
    for strat in [Strategy::Original, Strategy::RandomPerm { seed: 3 }] {
        let prep = prepare(&a, p, strat);
        // permute R's fine dimension consistently with A's relabeling
        let r_used = match &prep.perm {
            Some(perm) => permute(&r, perm, &sa_sparse::Perm::identity(r.ncols())),
            None => r.clone(),
        };
        let rt = r_used.transpose();
        let u = universe(p);
        let bds: Vec<Breakdown> = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
            let drt = DistMat1D::from_global(comm, &rt, &prep.offsets);
            let (_rta, rep) = spgemm_1d(comm, &drt, &da, &plan());
            rep.breakdown
        });
        print_rank_breakdown(&format!("queen RtA / {}", strat.name()), &bds);
        println!(
            "## {}: other/total share {:.0}% (paper: other dominates)",
            strat.name(),
            100.0 * max_phase(&bds, |b| b.other_s) / critical_path(&bds).max(1e-12)
        );
    }
}
