//! Figure 7: MPI ranks × OpenMP threads configuration sweep at a fixed
//! core budget `c = p · t`, squaring hv15r with the 1D algorithm.
//!
//! Paper: intermediate configurations win — few ranks suffer serial
//! packing/copy overhead, many ranks become communication-dominated.

use sa_bench::*;
use sa_dist::{prepare, spgemm_1d, DistMat1D, Strategy};

use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "Fig 7",
        "p (ranks) x t (threads) sweep at fixed core budget, hv15r squaring",
        "intermediate rank counts (64..256 of 1024 cores) are fastest",
    );
    let a = load(Dataset::Hv15rLike);
    let budget = 16usize; // c = p*t kept constant
    row(&[
        "ranks_p".into(),
        "threads_t".into(),
        "total_ms".into(),
        "comm_ms_max".into(),
        "comp_ms_max".into(),
        "other_ms_max".into(),
    ]);
    let mut results = Vec::new();
    for p in [1usize, 2, 4, 8, 16] {
        let t = budget / p;
        let prep = prepare(&a, p, Strategy::Original);
        let u = universe_with_threads(p, t);
        let reps = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &prep.a, &prep.offsets);
            let db = da.clone();
            let (_c, rep) = spgemm_1d(comm, &da, &db, &plan());
            rep.breakdown
        });
        let total = critical_path(&reps);
        row(&[
            p.to_string(),
            t.to_string(),
            ms(total),
            ms(max_phase(&reps, |b| b.comm_s)),
            ms(max_phase(&reps, |b| b.comp_s)),
            ms(max_phase(&reps, |b| b.other_s)),
        ]);
        results.push((p, total));
    }
    let best = results
        .iter()
        .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
        .unwrap();
    println!(
        "## best configuration: p={} (paper: intermediate p wins; extremes lose to serial overhead / comm dominance)",
        best.0
    );
}
