//! Backend comparison: the serial rank-loop simulator (`SimComm`) vs the
//! truly-parallel threads-as-ranks backend (`ThreadComm`) vs the
//! process-per-rank socket backend (`ProcComm`) on the 1D claim suite
//! (squaring the Table II scaling set).
//!
//! What this bench establishes, per matrix and rank count:
//!
//! * **Traffic is byte-identical across backends** — asserted per rank on
//!   the full `CommStats` counters before any time is reported. The
//!   backends may only differ in wall-clock.
//! * **Serial wall** (`wall_sim`): launch-to-join time under `SimComm`,
//!   which executes one rank at a time — by construction ≈ the *sum* of
//!   per-rank work. This is the number that was previously (mis)read as a
//!   multi-rank time-to-solution.
//! * **Threaded wall** (`wall_threads`): launch-to-join under
//!   `ThreadComm`, i.e. real concurrent execution on this host's cores.
//! * **Process wall** (`wall_procs`): launch-to-join under `ProcComm` —
//!   fork, TCP mesh bring-up, the multiply with every byte crossing
//!   localhost sockets, and result collection. The gap to `wall_threads`
//!   is the real cost of process isolation + serialization.
//! * **Critical path** (`tts`): the slowest rank's *active* time —
//!   [`sa_mpisim::rank_active_seconds`], the span each rank holds the
//!   serial backend's run permit. Blocked time (receives, barriers,
//!   rendezvous) is excluded, so this is each rank's own work measured
//!   interference-free: the per-rank cost a dedicated-core deployment
//!   would see, and the paper's time-to-solution convention.
//!
//! `speedup_wall = wall_sim / wall_threads` is what this host measures
//! (≈1 on a single-core container, where threads timeshare); `speedup_cp =
//! wall_sim / tts` is the speedup `ThreadComm` delivers once each rank
//! thread has a core — derived entirely from measured per-rank times, the
//! same exact-measurement+model convention BENCH_pr3 used for thread
//! scaling.

use sa_bench::*;

use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "backends",
        "SimComm (serial rank-loop) vs ThreadComm (threads-as-ranks) vs ProcComm (process-per-rank sockets), 1D claim suite",
        ">=2x speedup over the serial simulator at P>=8 once ranks run concurrently",
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# host cores: {cores} (speedup_wall is core-bound; speedup_cp is the measured per-rank bound)");
    let ps: &[usize] = if std::env::var("SA_QUICK").is_ok() {
        &[8]
    } else {
        &[8, 16]
    };
    row(&[
        "matrix".into(),
        "P".into(),
        "fetched_MB_total".into(),
        "wall_sim_ms".into(),
        "wall_threads_ms".into(),
        "wall_procs_ms".into(),
        "tts_ms".into(),
        "sum_rank_ms".into(),
        "speedup_wall".into(),
        "speedup_cp".into(),
    ]);
    for d in Dataset::SCALING_SET {
        let a = load(d);
        for &p in ps {
            let prep = sa_dist::prepare(&a, p, Strat::Original);
            let (_t, (ranks_sim, wall_sim)) = best_of(reps(), || {
                let u = universe(p);
                let t0 = std::time::Instant::now();
                // launch::<M> pins the scheduler regardless of SA_BACKEND: this
                // bench's two legs must stay serial resp. parallel to mean anything
                let ranks =
                    u.launch::<sa_mpisim::Serial, _, _>(|comm| square_rank(comm, &prep, &plan()));
                let wall = t0.elapsed().as_secs_f64();
                (wall, (ranks, wall))
            });
            let (_t, (ranks_thr, wall_thr)) = best_of(reps(), || {
                let u = universe(p);
                let t0 = std::time::Instant::now();
                let ranks =
                    u.launch::<sa_mpisim::Threads, _, _>(|comm| square_rank(comm, &prep, &plan()));
                let wall = t0.elapsed().as_secs_f64();
                (wall, (ranks, wall))
            });

            let (_t, (ranks_proc, wall_proc)) = best_of(reps(), || {
                let u = universe(p);
                let t0 = std::time::Instant::now();
                // real OS processes; each rank's report returns over a socket
                let ranks = u.run_procs(|comm| square_rank(comm, &prep, &plan()));
                let wall = t0.elapsed().as_secs_f64();
                (wall, (ranks, wall))
            });

            // The backends must be indistinguishable on the wire, rank by
            // rank, before their times mean anything.
            for (r, ((s, _), (t, _))) in ranks_sim.iter().zip(&ranks_thr).enumerate() {
                assert_eq!(s.comm, t.comm, "{d:?} P={p} rank {r}: traffic diverged");
                assert_eq!(s.fetched_bytes, t.fetched_bytes, "{d:?} P={p} rank {r}");
                assert_eq!(s.rdma_msgs, t.rdma_msgs, "{d:?} P={p} rank {r}");
            }
            for (r, ((s, _), (q, _))) in ranks_sim.iter().zip(&ranks_proc).enumerate() {
                assert_eq!(
                    s.comm, q.comm,
                    "{d:?} P={p} rank {r}: procs traffic diverged from sim"
                );
                assert_eq!(s.fetched_bytes, q.fetched_bytes, "{d:?} P={p} rank {r}");
            }

            let total_fetched: u64 = ranks_sim.iter().map(|(r, _)| r.fetched_bytes).sum();
            // per-rank active (permit-held) seconds, measured interference-
            // free: max = critical path, sum = the serial wall's work part
            let tts = ranks_sim.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
            let sum: f64 = ranks_sim.iter().map(|&(_, s)| s).sum();
            row(&[
                format!("{d:?}"),
                p.to_string(),
                mb(total_fetched),
                ms(wall_sim),
                ms(wall_thr),
                ms(wall_proc),
                ms(tts),
                ms(sum),
                format!("{:.2}", wall_sim / wall_thr),
                format!("{:.2}", wall_sim / tts),
            ]);
        }
    }
    println!(
        "# traffic: byte-identical across all three backends on every row (asserted per rank)"
    );
}
