//! Figure 13: betweenness centrality on eukarya — per-iteration SpGEMM
//! times of the forward search and backward sweep, sparsity-aware 1D (with
//! METIS permutation) vs 2D vs 3D.
//!
//! Paper: with METIS permutation the 1D algorithm is 1.74× faster than the
//! next best (the 3D algorithm). Partitioning cost is excluded because BC
//! runs tens of thousands of SpGEMMs per partitioning (§IV-C).

use sa_apps::bc::{bc_batch_1d_offsets, bc_batch_2d, bc_batch_3d, pick_sources, BcOutcome};
use sa_bench::*;
use sa_dist::{prepare, Strategy};
use sa_mpisim::CostModel;
use sa_sparse::gen::Dataset;

fn print_iters(label: &str, o: &BcOutcome) {
    let fwd: Vec<String> = o.times.forward_s.iter().map(|&t| ms(t)).collect();
    let bwd: Vec<String> = o.times.backward_s.iter().map(|&t| ms(t)).collect();
    println!("# {label}: levels={}", o.levels);
    println!("{label},forward_ms,{}", fwd.join(","));
    println!("{label},backward_ms,{}", bwd.join(","));
    println!(
        "# {label}: total fwd {} ms, total bwd {} ms, peak local {} MB, \
         injected {} MB / {} msgs => model {} ms",
        ms(o.times.forward_s.iter().sum::<f64>()),
        ms(o.times.backward_s.iter().sum::<f64>()),
        mb(o.peak_local_bytes),
        mb(o.comm_bytes),
        o.comm_msgs,
        ms(CostModel::slingshot().time_s(o.comm_msgs, o.comm_bytes)),
    );
}

fn total(o: &BcOutcome) -> f64 {
    o.times.forward_s.iter().sum::<f64>() + o.times.backward_s.iter().sum::<f64>()
}

fn main() {
    banner(
        "Fig 13",
        "BC forward/backward per-iteration times on eukarya: 1D(METIS) vs 2D vs 3D",
        "1D with METIS is 1.74x faster than the best sparsity-oblivious algorithm (3D)",
    );
    let p = 16;
    let a = load(Dataset::EukaryaLike);
    // batch ≈ 0.16% of vertices, proportional to the paper's 4096 of ~3M
    let batch = (a.nrows() / 625).max(16);
    println!("# batch size: {batch} sources");

    // 1D benefits from the METIS relabeling (same clustering BC reuses for
    // every batch; cost amortized away per §IV-C)
    let prep = prepare(
        &a,
        p,
        Strategy::Partition {
            seed: 1,
            epsilon: 0.05,
        },
    );
    let sources = pick_sources(a.nrows(), batch, 7);
    let u = universe(p);
    let o1 = u
        .run(|comm| bc_batch_1d_offsets(comm, &prep.a, &sources, &plan(), &prep.offsets))
        .remove(0);
    print_iters("1D_metis", &o1);

    let prep2 = prepare(&a, p, Strategy::RandomPerm { seed: 2 });
    let u = universe(p);
    let o2 = u
        .run(|comm| bc_batch_2d(comm, &prep2.a, &sources))
        .remove(0);
    print_iters("2D_random", &o2);

    let u = universe(p);
    let o3 = u
        .run(|comm| bc_batch_3d(comm, 4, &prep2.a, &sources))
        .remove(0);
    print_iters("3D_random_c4", &o3);

    let best_oblivious = total(&o2).min(total(&o3));
    println!(
        "## 1D(METIS) wall speedup vs best oblivious: {:.2}x (paper 1.74x vs 3D)",
        best_oblivious / total(&o1).max(1e-12)
    );
    // On Perlmutter the per-level SpGEMMs are network-bound; add the α–β
    // network time (from exact per-rank counters) to the local wall time to
    // recover the regime the paper measures.
    let net = |o: &BcOutcome| total(o) + CostModel::slingshot().time_s(o.comm_msgs, o.comm_bytes);
    let best_oblivious_net = net(&o2).min(net(&o3));
    println!(
        "## 1D(METIS) wall+network-model speedup vs best oblivious: {:.2}x (paper 1.74x vs 3D)",
        best_oblivious_net / net(&o1).max(1e-12)
    );
}
