//! Figure 4: impact of permutation strategy on the sparsity-aware 1D
//! SpGEMM's per-rank time breakdown, squaring hv15r (original vs random)
//! and eukarya (original vs random vs METIS).
//!
//! Paper: on hv15r, keeping the original ordering cuts communication time
//! 16.86× (5725.5 ms → 339.4 ms), a 5.73× end-to-end speedup; on eukarya
//! the natural order has no structure and METIS gives 2.05× over random
//! (excluding partitioning cost; 1.27× including it).
//!
//! Two totals are reported: measured wall time (all phases on this
//! machine) and the hybrid modeled total (measured comp+other, α–β-modeled
//! comm) — the latter carries the paper's comm/comp balance, which a
//! shared-memory interconnect compresses.

use sa_bench::*;
use sa_dist::SpgemmReport;
use sa_mpisim::Breakdown;
use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "Fig 4",
        "permutation impact on squaring time breakdown (1D algorithm)",
        "hv15r: original beats random ~5.7x total, ~17x comm; eukarya: METIS beats random ~2x",
    );
    let p = 16;
    for d in [Dataset::Hv15rLike, Dataset::EukaryaLike] {
        let a = load(d);
        let mut per_strategy: Vec<(String, Vec<SpgemmReport>, f64)> = Vec::new();
        for strat in strategies_for(d) {
            let (reps, prep_s) = square_1d(&a, p, strat, plan());
            let bds: Vec<Breakdown> = reps.iter().map(|r| r.breakdown).collect();
            print_rank_breakdown(&format!("{} / {}", d.name(), strat.name()), &bds);
            if prep_s > 0.0 {
                println!("# preprocessing time ({}): {} ms", strat.name(), ms(prep_s));
            }
            per_strategy.push((strat.name().to_string(), reps, prep_s));
        }
        let find = |name: &str| per_strategy.iter().find(|(n, _, _)| n == name);
        let measured = |reps: &[SpgemmReport]| {
            reps.iter()
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max)
        };
        let comm_measured = |reps: &[SpgemmReport]| {
            reps.iter()
                .map(|r| r.breakdown.comm_s)
                .fold(0.0f64, f64::max)
        };
        if let Some((_, rand_reps, _)) = find("random") {
            if d == Dataset::Hv15rLike {
                let (_, orig_reps, _) = find("original").unwrap();
                println!(
                    "## {}: random/original comm ratio {:.2}x measured, {:.2}x by volume (paper 16.9x); \
                     total speedup {:.2}x measured, {:.2}x modeled (paper 5.73x)",
                    d.name(),
                    comm_measured(rand_reps) / comm_measured(orig_reps).max(1e-9),
                    rand_reps[0].fetched_bytes_global as f64
                        / orig_reps[0].fetched_bytes_global.max(1) as f64,
                    measured(rand_reps) / measured(orig_reps),
                    modeled_critical_path(rand_reps) / modeled_critical_path(orig_reps),
                );
            } else if let Some((_, metis_reps, prep_s)) = find("metis") {
                println!(
                    "## {}: metis speedup over random {:.2}x measured / {:.2}x modeled excl. partitioning \
                     (paper 2.05x), {:.2}x incl. (paper 1.27x); partition cost {} ms",
                    d.name(),
                    measured(rand_reps) / measured(metis_reps),
                    modeled_critical_path(rand_reps) / modeled_critical_path(metis_reps),
                    measured(rand_reps) / (measured(metis_reps) + prep_s),
                    ms(*prep_s)
                );
            }
        }
    }
}
