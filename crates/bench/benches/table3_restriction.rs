//! Table III: statistics of the restriction operators built by MIS-2
//! aggregation for each dataset.
//!
//! Paper property: every row of R has exactly one nonzero; coarsening
//! ratios range from 38x (stokes) to 282x (hv15r).

use sa_apps::restriction::{restriction_operator, restriction_stats};
use sa_bench::*;
use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "Table III",
        "restriction operator statistics (MIS-2 aggregation)",
        "nnz(R) = nrows(R); one nonzero per row; strong coarsening",
    );
    row(&[
        "dataset".into(),
        "nrows_R".into(),
        "ncols_R".into(),
        "nnz_R".into(),
        "coarsening_ratio".into(),
        "one_nnz_per_row".into(),
    ]);
    for d in Dataset::SCALING_SET {
        let a = load(d);
        let r = restriction_operator(&a, 42);
        let s = restriction_stats(&r);
        let one_per_row = r.nnz_per_row().iter().all(|&c| c == 1);
        row(&[
            d.name().into(),
            s.nrows.to_string(),
            s.ncols.to_string(),
            s.nnz.to_string(),
            format!("{:.1}", s.coarsening_ratio),
            one_per_row.to_string(),
        ]);
        assert!(one_per_row, "Table III property violated");
    }
}
