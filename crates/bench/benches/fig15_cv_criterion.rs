//! §V (Discussion): the CV/memA criterion for deciding whether to graph-
//! partition before running the 1D algorithm. Not a numbered figure in the
//! paper — this bench tabulates the criterion across all five datasets and
//! verifies the suggested 30% threshold makes the right call.

use sa_bench::*;
use sa_dist::{analyze_1d, prepare, DistMat1D, FetchMode, Strategy};

use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "§V criterion",
        "CV/memA before communication, all datasets, original vs METIS",
        "CV/memA > ~30% => partition first; eukarya natural order sits at ~1.0",
    );
    let p = 16;
    row(&[
        "matrix".into(),
        "cv_original".into(),
        "cv_metis".into(),
        "recommend_partitioning".into(),
        "speedup_if_followed".into(),
    ]);
    for d in Dataset::ALL {
        let a = load(d);
        let cv_of = |m: &sa_sparse::Csc<f64>, offsets: &[usize]| -> f64 {
            let u = universe(p);
            let mut cvs = u.run(|comm| {
                let da = DistMat1D::from_global(comm, m, offsets);
                let db = da.clone();
                analyze_1d(comm, &da, &db, FetchMode::default()).cv_over_mem
            });
            cvs.remove(0)
        };
        let orig = prepare(&a, p, Strategy::Original);
        let metis = prepare(
            &a,
            p,
            Strategy::Partition {
                seed: 1,
                epsilon: 0.05,
            },
        );
        let cv_orig = cv_of(&orig.a, &orig.offsets);
        let cv_metis = cv_of(&metis.a, &metis.offsets);
        let recommend = cv_orig > 0.30;
        // measure actual effect of following the recommendation
        let t_orig = {
            let reps = run_square_prepared(&orig, p, plan());
            reps.iter()
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max)
        };
        let t_metis = {
            let reps = run_square_prepared(&metis, p, plan());
            reps.iter()
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max)
        };
        let speedup = if recommend {
            t_orig / t_metis
        } else {
            t_metis / t_orig
        };
        row(&[
            d.name().into(),
            format!("{:.3}", cv_orig),
            format!("{:.3}", cv_metis),
            recommend.to_string(),
            format!("{:.2}", speedup),
        ]);
    }
    println!("## expected: eukarya cv_original ≈ (P-1)/P (fetches ~everything) and recommend=true pays off; structured datasets stay below threshold");
}
