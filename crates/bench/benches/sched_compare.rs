//! sched_compare — fixed vs flop-balanced scheduling of the local SpGEMM
//! column loop (PR 3's compute-side claim).
//!
//! Two inputs at each `SA_SCALE`: a **uniform** Erdős–Rényi square (every
//! column costs about the same — scheduling should not matter) and a
//! **skewed** degree-sorted R-MAT square (power-law column costs with the
//! hubs leading, the paper's eukarya/hv15r shape after a degree sort —
//! fixed 256-column chunks put every hub in the same few work items).
//!
//! Two numbers per (input, schedule, threads) cell:
//!
//! * `measured_ms` — wall time of the multiply on this machine's pool.
//!   Only meaningful when the host actually has that many cores (CI boxes
//!   often pin one); on a single-core host both schedules serialize to the
//!   same time.
//! * `makespan_ms` — per-work-item times measured exactly (serially),
//!   then list-scheduled onto `t` workers with the runtime's own stealing
//!   granularity. This is the same convention the network benches use
//!   (exact counters + α–β model): exact per-item measurements + the
//!   scheduler's placement policy, reproducible on any host.
//!
//! The headline claim is the skewed-input makespan ratio at 4+ threads.

use sa_bench::{banner, best_of, ms, reps, row, thread_sweep};
use sa_sparse::gen::{erdos_renyi_square, rmat, Scale};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::{
    schedule_items, spgemm_with, upper_bound_flops_per_col, Kernel, Schedule, SpgemmWorkspace,
};
use sa_sparse::types::vidx;
use sa_sparse::{Csc, Vidx};
use std::time::Instant;

/// Reorder `m`'s columns by descending upper-bound flop count of `a·m` —
/// the adversarial-but-realistic layout (degree-sorted matrices) where
/// fixed chunking concentrates the heavy columns in few work items.
fn sort_cols_by_ub_desc(a: &Csc<f64>, m: &Csc<f64>) -> Csc<f64> {
    let ubs = upper_bound_flops_per_col(a, m);
    let mut order: Vec<usize> = (0..m.ncols()).collect();
    order.sort_by_key(|&j| std::cmp::Reverse(ubs[j]));
    let mut colptr = vec![0usize; m.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::with_capacity(m.nnz());
    let mut vals: Vec<f64> = Vec::with_capacity(m.nnz());
    for (out_j, &j) in order.iter().enumerate() {
        let (r, v) = m.col(j);
        rowidx.extend_from_slice(r);
        vals.extend_from_slice(v);
        colptr[out_j + 1] = rowidx.len();
    }
    Csc::from_parts(m.nrows(), m.ncols(), colptr, rowidx, vals)
}

fn inputs() -> Vec<(&'static str, Csc<f64>, Csc<f64>)> {
    let (er_n, rmat_scale) = match Scale::from_env() {
        Scale::Tiny => (4_000, 11),
        Scale::Small => (12_000, 13),
        Scale::Medium => (30_000, 15),
    };
    let er = erdos_renyi_square(er_n, 6.0, 42);
    let rm = rmat(rmat_scale, 8, (0.57, 0.19, 0.19, 0.05), 42);
    let rm_sorted = sort_cols_by_ub_desc(&rm, &rm);
    vec![
        ("uniform_er", er.clone(), er),
        ("skewed_rmat", rm, rm_sorted),
    ]
}

/// Wall time of one multiply under `threads` on this machine.
fn measured_s(
    a: &Csc<f64>,
    b: &Csc<f64>,
    schedule: Schedule,
    threads: usize,
    ws: &SpgemmWorkspace<f64>,
) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("bench pool");
    let (t, _) = best_of(reps(), || {
        let t0 = Instant::now();
        let c = pool
            .install(|| spgemm_with::<PlusTimes<f64>, _, _>(a, b, Kernel::Hybrid, schedule, ws));
        (t0.elapsed().as_secs_f64(), c.nnz())
    });
    t
}

/// Exact serial seconds of every work item the schedule would run.
fn item_seconds(a: &Csc<f64>, b: &Csc<f64>, schedule: Schedule, threads: usize) -> Vec<f64> {
    let ubs: Vec<usize> = upper_bound_flops_per_col(a, b)
        .into_iter()
        .map(|u| u as usize)
        .collect();
    let ws = SpgemmWorkspace::new();
    schedule_items(&ubs, schedule, threads)
        .into_iter()
        .map(|r| {
            let sub = b.extract_cols(r.start, r.end);
            let (t, _) = best_of(reps(), || {
                let t0 = Instant::now();
                let c = spgemm_with::<PlusTimes<f64>, _, _>(a, &sub, Kernel::Hybrid, schedule, &ws);
                (t0.elapsed().as_secs_f64(), c.nnz())
            });
            t
        })
        .collect()
}

/// List-schedule the measured items onto `threads` workers at the
/// runtime's stealing granularity (consecutive units of
/// `max(1, items/(4·threads))` items, next idle worker takes the next
/// unit) and return the finishing time of the slowest worker.
fn makespan_s(item_s: &[f64], threads: usize) -> f64 {
    if threads <= 1 || item_s.len() <= 1 {
        return item_s.iter().sum();
    }
    let n = item_s.len();
    let unit = (n / (threads * 4)).max(1);
    let mut busy = vec![0.0f64; threads];
    let mut u = 0usize;
    while u < n {
        let hi = (u + unit).min(n);
        let work: f64 = item_s[u..hi].iter().sum();
        let (w, _) = busy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty worker set");
        busy[w] += work;
        u = hi;
    }
    busy.iter().fold(0.0f64, |m, &t| m.max(t))
}

fn main() {
    banner(
        "sched_compare",
        "fixed vs flop-balanced column scheduling (local hybrid kernel)",
        "flop-balanced scheduling ≥ 25% faster than fixed 256-column chunks \
         at 4+ threads on power-law inputs",
    );
    println!(
        "# threads sweep: {:?} (SA_THREADS pins one)",
        thread_sweep()
    );
    row(&[
        "input".into(),
        "threads".into(),
        "sched".into(),
        "items".into(),
        "measured_ms".into(),
        "makespan_ms".into(),
        "speedup_makespan".into(),
    ]);
    let mut skewed_4t_speedup: Option<f64> = None;
    for (name, a, b) in inputs() {
        // sanity: schedules agree bit-for-bit (the equivalence tests pin
        // this; the bench asserts it on the real inputs too)
        let ws = SpgemmWorkspace::new();
        let c_fixed =
            spgemm_with::<PlusTimes<f64>, _, _>(&a, &b, Kernel::Hybrid, Schedule::Fixed(256), &ws);
        let c_bal = spgemm_with::<PlusTimes<f64>, _, _>(
            &a,
            &b,
            Kernel::Hybrid,
            Schedule::FlopBalanced,
            &ws,
        );
        assert_eq!(c_fixed, c_bal, "schedules must be bit-identical");
        let _ = vidx(c_fixed.nnz().min(u32::MAX as usize)); // keep the product alive
        let fixed_items = item_seconds(&a, &b, Schedule::Fixed(256), 1);
        for &t in &thread_sweep() {
            let bal_items = item_seconds(&a, &b, Schedule::FlopBalanced, t);
            let fixed_mk = makespan_s(&fixed_items, t);
            let bal_mk = makespan_s(&bal_items, t);
            let speedup = fixed_mk / bal_mk.max(1e-12);
            for (sched, items, measured, mk) in [
                (
                    "fixed256",
                    fixed_items.len(),
                    measured_s(&a, &b, Schedule::Fixed(256), t, &ws),
                    fixed_mk,
                ),
                (
                    "flop_balanced",
                    bal_items.len(),
                    measured_s(&a, &b, Schedule::FlopBalanced, t, &ws),
                    bal_mk,
                ),
            ] {
                row(&[
                    name.into(),
                    t.to_string(),
                    sched.into(),
                    items.to_string(),
                    ms(measured),
                    ms(mk),
                    if sched == "flop_balanced" {
                        format!("{speedup:.2}")
                    } else {
                        "1.00".into()
                    },
                ]);
            }
            // the claim is "at 4+ threads": keep the WORST speedup over
            // every swept t >= 4 so a high-thread regression can't hide
            // behind a passing 4-thread number
            if name == "skewed_rmat" && t >= 4 {
                skewed_4t_speedup =
                    Some(skewed_4t_speedup.map_or(speedup, |s: f64| s.min(speedup)));
            }
        }
    }
    if let Some(s) = skewed_4t_speedup {
        println!(
            "# claim check: skewed input, min over 4+ threads: flop-balanced {:.0}% faster than \
             fixed (modeled makespan; ≥ 25% expected)",
            (s - 1.0) * 100.0
        );
    }
}
