//! Ablation (the paper's noted-but-unimplemented optimization, §III-A):
//! overlapping the RDMA fetches with the local partial product.
//!
//! `spgemm_1d_overlap` computes `C = Ã_loc·B ⊕ Ã_rem·B`, running the
//! local partial product while the remote blocks are in flight. Traffic is
//! identical to Algorithm 1 (verified by tests); the question is wall
//! time: the win is bounded by min(comm, comp_loc) and is paid for with
//! one extra elementwise merge of the partial outputs.

use sa_bench::*;
use sa_dist::{prepare, spgemm_1d, spgemm_1d_overlap, DistMat1D, Strategy};

use sa_sparse::gen::Dataset;

fn main() {
    banner(
        "Ablation",
        "communication/computation overlap in the 1D algorithm",
        "extension: paper notes 'no overlap between communication and computation'",
    );
    row(&[
        "matrix".into(),
        "strategy".into(),
        "P".into(),
        "serial_ms_max".into(),
        "overlap_ms_max".into(),
        "speedup".into(),
    ]);
    // random ordering maximizes comm, making overlap potential visible;
    // original ordering shows the structured case where comm ≈ 0.
    for (d, strat) in [
        (Dataset::Hv15rLike, Strategy::Original),
        (Dataset::Hv15rLike, Strategy::RandomPerm { seed: 5 }),
        (Dataset::EukaryaLike, Strategy::Original),
    ] {
        let a = load(d);
        for p in [4, 16] {
            let prep = prepare(&a, p, strat);
            let am = prep.a.clone();
            let offsets = prep.offsets.clone();
            let u = universe(p);
            let pl = plan();
            let pairs = u.run(move |comm| {
                let da = DistMat1D::from_global(comm, &am, &offsets);
                let (_, r1) = spgemm_1d(comm, &da, &da.clone(), &pl);
                let (_, r2) = spgemm_1d_overlap(comm, &da, &da.clone(), &pl);
                (
                    r1.breakdown.comm_s + r1.breakdown.comp_s,
                    r2.breakdown.comm_s + r2.breakdown.comp_s,
                )
            });
            let serial = pairs.iter().map(|x| x.0).fold(0.0f64, f64::max);
            let overlap = pairs.iter().map(|x| x.1).fold(0.0f64, f64::max);
            row(&[
                d.name().into(),
                strat.name().into(),
                p.to_string(),
                ms(serial),
                ms(overlap),
                format!("{:.2}", serial / overlap.max(1e-12)),
            ]);
        }
    }
    println!(
        "## expected shape: overlap ≥ 1x where comm is substantial (random ordering); \
         ≈ 1x where the sparsity-aware fetch already eliminated comm (original ordering)"
    );
}
