//! Ablation (the paper's noted-but-unimplemented optimization, §III-A):
//! overlapping the RDMA fetches with the local partial product.
//!
//! `spgemm_1d_overlap` computes `C = Ã_loc·B ⊕ Ã_rem·B`, running the
//! local partial product while the remote blocks are in flight. Traffic is
//! identical to Algorithm 1 (verified by tests); the question is wall
//! time: the win is bounded by min(comm, comp_loc) and is paid for with
//! one extra elementwise merge of the partial outputs.

use sa_bench::*;
use sa_dist::{
    prepare, spgemm_1d, spgemm_1d_overlap, spgemm_summa_2d_sa_ws_cfg, uniform_offsets, CacheConfig,
    DistMat1D, DistMat2D, FetchMode, SpgemmSession, Strategy,
};
use sa_mpisim::{Backend, Comm, Grid2D, PrefetchConfig, RankJob};
use sa_sparse::gen::Dataset;
use sa_sparse::semiring::PlusTimes;
use sa_sparse::{Csc, SpgemmWorkspace};

/// 2D staged row: `iters` back-to-back sparsity-aware SUMMA multiplies,
/// the generic prefetch engine staging stage k+1's A-panel gets behind
/// stage k's foreground work (B request/ship + metadata walk + kernel).
struct Staged2D {
    a: Csc<f64>,
    pr: usize,
    pc: usize,
    iters: usize,
    cfg: PrefetchConfig,
}

impl RankJob for Staged2D {
    type Out = u64;
    fn run<C: Comm>(&self, comm: &C) -> u64 {
        let grid = Grid2D::new(comm, self.pr, self.pc);
        let da = DistMat2D::from_global(&grid, &self.a);
        let db = DistMat2D::from_global(&grid, &self.a);
        let ws = SpgemmWorkspace::new();
        let mut acc = 0u64;
        for _ in 0..self.iters {
            let (c, rep) = spgemm_summa_2d_sa_ws_cfg::<_, PlusTimes<f64>>(
                comm,
                &grid,
                &da,
                &db,
                FetchMode::Block(256),
                self.cfg,
                &ws,
            );
            acc ^= c.local().nnz() as u64 ^ rep.a_fetched_bytes;
        }
        acc
    }
}

/// Session row: cache disabled so every multiply re-fetches its full miss
/// set — the overlapped assembly path runs `iters` times against a live
/// fetch plan instead of degenerating to cache hits after warm-up.
struct StagedSession {
    a: Csc<f64>,
    iters: usize,
    cfg: PrefetchConfig,
}

impl RankJob for StagedSession {
    type Out = u64;
    fn run<C: Comm>(&self, comm: &C) -> u64 {
        let offsets = uniform_offsets(self.a.ncols(), comm.size());
        let da = DistMat1D::from_global(comm, &self.a, &offsets);
        let db = da.clone();
        let mut session = SpgemmSession::create(comm, da, plan(), CacheConfig::disabled());
        session.set_prefetch(self.cfg);
        let mut acc = 0u64;
        for _ in 0..self.iters {
            let (c, rep) = session.multiply(comm, &db);
            acc ^= c.into_local_csc().nnz() as u64 ^ rep.fresh_bytes;
        }
        acc
    }
}

/// Parent-side wall (launch to join) on the `backend()`-selected backend,
/// best of [`reps`] runs — the number that differs between overlap off/on.
fn staged_wall<J: RankJob>(p: usize, job: &J) -> f64 {
    let be = backend();
    let (wall, ()) = best_of(reps(), || {
        let u = universe(p);
        let t0 = std::time::Instant::now();
        let out = u.run_backend(be, job);
        assert_eq!(out.len(), p, "every rank must report");
        (t0.elapsed().as_secs_f64(), ())
    });
    wall
}

fn main() {
    banner(
        "Ablation",
        "communication/computation overlap in the 1D algorithm",
        "extension: paper notes 'no overlap between communication and computation'",
    );
    // Legacy 1D section: per-rank comm+comp sums from the report breakdown.
    // Uses Universe::run (an in-process closure), so it is skipped when the
    // selected backend is procs — the staged wall rows below cover procs.
    if backend() != Backend::Procs {
        row(&[
            "matrix".into(),
            "strategy".into(),
            "P".into(),
            "serial_ms_max".into(),
            "overlap_ms_max".into(),
            "speedup".into(),
        ]);
        // random ordering maximizes comm, making overlap potential visible;
        // original ordering shows the structured case where comm ≈ 0.
        for (d, strat) in [
            (Dataset::Hv15rLike, Strategy::Original),
            (Dataset::Hv15rLike, Strategy::RandomPerm { seed: 5 }),
            (Dataset::EukaryaLike, Strategy::Original),
        ] {
            let a = load(d);
            for p in [4, 16] {
                let prep = prepare(&a, p, strat);
                let am = prep.a.clone();
                let offsets = prep.offsets.clone();
                let u = universe(p);
                let pl = plan();
                let pairs = u.run(move |comm| {
                    let da = DistMat1D::from_global(comm, &am, &offsets);
                    let (_, r1) = spgemm_1d(comm, &da, &da.clone(), &pl);
                    let (_, r2) = spgemm_1d_overlap(comm, &da, &da.clone(), &pl);
                    (
                        r1.breakdown.comm_s + r1.breakdown.comp_s,
                        r2.breakdown.comm_s + r2.breakdown.comp_s,
                    )
                });
                let serial = pairs.iter().map(|x| x.0).fold(0.0f64, f64::max);
                let overlap = pairs.iter().map(|x| x.1).fold(0.0f64, f64::max);
                row(&[
                    d.name().into(),
                    strat.name().into(),
                    p.to_string(),
                    ms(serial),
                    ms(overlap),
                    format!("{:.2}", serial / overlap.max(1e-12)),
                ]);
            }
        }
        println!(
            "## expected shape: overlap ≥ 1x where comm is substantial (random ordering); \
             ≈ 1x where the sparsity-aware fetch already eliminated comm (original ordering)"
        );
    }

    // Staged wall rows (PR 10): the generic prefetch engine behind the 2D
    // SUMMA stages and the session miss-fetch path, overlap off vs on,
    // measured as parent-side wall on the SA_BACKEND/--backend-selected
    // backend. On procs, GetReq/GetResp round-trips are genuinely
    // asynchronous, so the on-column's delta is hidden fetch time; on sim
    // the Prefetcher degrades to deterministic in-order issue and the
    // ratio pins ≈ 1 by design.
    println!(
        "\n## staged wall rows (backend={}): overlap off vs on, parent wall, best of {} runs",
        backend().name(),
        reps()
    );
    row(&[
        "workload".into(),
        "matrix".into(),
        "P".into(),
        "grid".into(),
        "iters".into(),
        "off_wall_ms".into(),
        "on_wall_ms".into(),
        "speedup".into(),
    ]);
    let quick = std::env::var("SA_QUICK").is_ok();
    let iters = if quick { 2 } else { 4 };
    // the randomly permuted operand maximizes cross-rank traffic — the
    // fetch time overlap exists to hide
    let a = load(Dataset::Hv15rLike);
    let scrambled = prepare(&a, 8, Strategy::RandomPerm { seed: 5 }).a.clone();
    let grids: &[(usize, usize)] = if quick { &[(2, 2)] } else { &[(2, 2), (2, 4)] };
    for &(pr, pc) in grids {
        let p = pr * pc;
        let mk = |cfg| Staged2D {
            a: scrambled.clone(),
            pr,
            pc,
            iters,
            cfg,
        };
        let off = staged_wall(p, &mk(PrefetchConfig::disabled()));
        let on = staged_wall(p, &mk(PrefetchConfig::on()));
        row(&[
            "2d-staged".into(),
            "hv15r-rand".into(),
            p.to_string(),
            format!("{pr}x{pc}"),
            iters.to_string(),
            ms(off),
            ms(on),
            format!("{:.2}", off / on.max(1e-12)),
        ]);
    }
    let ps: &[usize] = if quick { &[4] } else { &[4, 8] };
    for &p in ps {
        let mk = |cfg| StagedSession {
            a: scrambled.clone(),
            iters,
            cfg,
        };
        let off = staged_wall(p, &mk(PrefetchConfig::disabled()));
        let on = staged_wall(p, &mk(PrefetchConfig::on()));
        row(&[
            "session-miss".into(),
            "hv15r-rand".into(),
            p.to_string(),
            "1d".into(),
            iters.to_string(),
            ms(off),
            ms(on),
            format!("{:.2}", off / on.max(1e-12)),
        ]);
    }
    println!(
        "## staged rows run identical work per cell (checksummed); only the prefetch \
         config differs — record the procs P=8 rows in BENCH_pr10.json"
    );
}
