//! SpGEMM applications from the paper's evaluation (§II-C, §IV):
//!
//! * [`mis2`] — distance-2 maximal independent set, the seed selection for
//!   AMG restriction operators [Bell et al. 2012].
//! * [`restriction`] — building the restriction operator `R` by aggregating
//!   every vertex to a nearby MIS-2 root (one nonzero per row, Table III).
//! * [`galerkin`] — the distributed Galerkin product `RᵀAR`: left
//!   multiplication with the sparsity-aware 1D algorithm, right
//!   multiplication with either 1D or outer-product 1D (Fig. 12).
//! * [`bc`] — batched approximate Brandes betweenness centrality with
//!   multi-source BFS forward searches and dependency-accumulation backward
//!   sweeps, each level one distributed SpGEMM (Figs. 13, 14), over the 1D,
//!   2D, and 3D algorithms — plus a session engine
//!   ([`bc::bc_batches_1d_session`]) whose persistent adjacency fetch cache
//!   flattens the cumulative communication volume across batches.
//! * [`triangle`], [`mcl`] — further SpGEMM applications cited in §I
//!   (triangle counting; Markov clustering), exercising masked products and
//!   repeated squaring; [`mcl::mcl_1d_session`] fetches only each
//!   iteration's changed-column delta as the clustering converges.
//!
//! The iterative drivers also come in checkpointed flavours for execution
//! under [`run_recoverable`](sa_mpisim::Universe::run_recoverable) —
//! [`bc::bc_batches_1d_session_recoverable`], [`mcl::mcl_1d_checkpointed`],
//! [`galerkin::galerkin_products_recoverable`] — which save per-rank state
//! into a [`CheckpointStore`](sa_dist::CheckpointStore) at iteration
//! boundaries and resume mid-stream after a restart with output identical
//! to a fault-free run.

pub mod bc;
pub mod galerkin;
pub mod mcl;
pub mod mis2;
pub mod restriction;
pub mod triangle;
