//! Markov clustering (MCL) — §II-C1 names matrix squaring as the bottleneck
//! of HipMCL [Azad et al. 2018]; this module implements the MCL iteration
//! (expansion = distributed squaring, inflation + pruning = local column
//! ops) so the squaring benchmarks have their motivating application in the
//! repository.

use sa_dist::{spgemm_1d, DistMat1D, Plan1D};
use sa_mpisim::Comm;
use sa_sparse::{Csc, Dcsc, Vidx};

/// MCL parameters.
#[derive(Clone, Copy, Debug)]
pub struct MclConfig {
    /// Inflation exponent (typically 2.0).
    pub inflation: f64,
    /// Drop entries below this value after inflation.
    pub prune_threshold: f64,
    /// Maximum expansion/inflation rounds.
    pub max_iters: usize,
}

impl Default for MclConfig {
    fn default() -> Self {
        MclConfig {
            inflation: 2.0,
            prune_threshold: 1e-4,
            max_iters: 20,
        }
    }
}

/// Column-normalize (make column-stochastic) in place.
pub fn normalize_columns(m: &mut Csc<f64>) {
    let colptr = m.colptr().to_vec();
    let vals = m.vals_mut();
    for j in 0..colptr.len() - 1 {
        let (s, e) = (colptr[j], colptr[j + 1]);
        let sum: f64 = vals[s..e].iter().sum();
        if sum > 0.0 {
            for v in &mut vals[s..e] {
                *v /= sum;
            }
        }
    }
}

/// Inflate (elementwise power) + prune + renormalize a local slice.
fn inflate_prune(m: &Csc<f64>, inflation: f64, threshold: f64) -> Csc<f64> {
    let mut powered = m.map(|v| v.powf(inflation));
    normalize_columns(&mut powered);
    let mut pruned = powered.filter(|_, _, v| v >= threshold);
    normalize_columns(&mut pruned);
    pruned
}

/// Extract clusters from a converged MCL matrix: vertices sharing an
/// "attractor" row form a cluster. Returns cluster id per vertex.
pub fn interpret_clusters(m: &Csc<f64>) -> Vec<u32> {
    let n = m.ncols();
    let mut cluster = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut attractor_cluster: std::collections::HashMap<Vidx, u32> =
        std::collections::HashMap::new();
    for (j, slot) in cluster.iter_mut().enumerate() {
        let (rows, vals) = m.col(j);
        // attractor = max-valued row of the column
        if let Some(pos) = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
        {
            let att = rows[pos];
            let id = *attractor_cluster.entry(att).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *slot = id;
        } else {
            *slot = next;
            next += 1;
        }
    }
    cluster
}

/// Run distributed MCL: expansion via sparsity-aware 1D squaring,
/// inflation locally. Returns the converged matrix slice's clusters
/// (identical on all ranks) and the number of iterations. Collective.
pub fn mcl_1d(comm: &Comm, a: &Csc<f64>, cfg: &MclConfig, plan: &Plan1D) -> (Vec<u32>, usize) {
    let n = a.ncols();
    // add self-loops (standard MCL) and normalize
    let mut with_loops = {
        let mut coo = a.to_coo();
        for v in 0..n {
            coo.push(v as Vidx, v as Vidx, 1.0);
        }
        coo.to_csc_with(|x, y| x + y)
    };
    normalize_columns(&mut with_loops);

    let offsets = sa_dist::uniform_offsets(n, comm.size());
    let mut current = DistMat1D::from_global(comm, &with_loops, &offsets);
    let mut iters = 0usize;
    for _ in 0..cfg.max_iters {
        iters += 1;
        // expansion: M <- M²  (the HipMCL bottleneck)
        let (expanded, _rep) = spgemm_1d(comm, &current, &current, plan);
        // inflation + pruning on the local slice
        let local = inflate_prune(
            &expanded.into_local_csc(),
            cfg.inflation,
            cfg.prune_threshold,
        );
        let next = DistMat1D::from_local(n, n, current.offsets().clone(), Dcsc::from_csc(&local));
        // convergence: nnz and values stable (cheap: compare local diff)
        let my_prev = current.local().to_csc();
        let delta = my_prev.max_abs_diff(&local);
        let max_delta = comm.allreduce(delta, |x, y| x.max(y));
        current = next;
        if max_delta < 1e-8 {
            break;
        }
    }
    let full = current.gather(comm);
    let clusters = comm.bcast_vec(0, full.map(|m| interpret_clusters(&m)));
    (clusters, iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mpisim::Universe;
    use sa_sparse::gen::sbm;

    #[test]
    fn normalization_makes_columns_stochastic() {
        let mut a = sbm(60, 3, 6.0, 1.0, false, 1);
        normalize_columns(&mut a);
        for j in 0..a.ncols() {
            let (_, vals) = a.col(j);
            if !vals.is_empty() {
                let s: f64 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn recovers_planted_clusters() {
        // 3 dense communities, no relabeling: MCL should find ~3 clusters
        // agreeing with the ground truth.
        let n = 90;
        let a = sbm(n, 3, 12.0, 0.3, false, 2);
        let u = Universe::new(3);
        let got = u.run(|comm| mcl_1d(comm, &a, &MclConfig::default(), &Plan1D::default()));
        let (clusters, iters) = &got[0];
        assert!(*iters >= 2);
        // ground truth block = i / 30; measure majority agreement
        let mut agree = 0usize;
        for block in 0..3 {
            let ids: Vec<u32> = (block * 30..(block + 1) * 30)
                .map(|v| clusters[v])
                .collect();
            let mut counts = std::collections::HashMap::new();
            for &c in &ids {
                *counts.entry(c).or_insert(0usize) += 1;
            }
            agree += counts.values().max().copied().unwrap_or(0);
        }
        assert!(
            agree >= 72,
            "cluster agreement {agree}/90 too low: {clusters:?}"
        );
    }

    #[test]
    fn ranks_agree_on_clusters() {
        let a = sbm(60, 2, 10.0, 0.5, false, 3);
        let u = Universe::new(4);
        let got = u.run(|comm| mcl_1d(comm, &a, &MclConfig::default(), &Plan1D::default()));
        for w in got.windows(2) {
            assert_eq!(w[0].0, w[1].0);
        }
    }
}
