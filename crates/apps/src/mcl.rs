//! Markov clustering (MCL) — §II-C1 names matrix squaring as the bottleneck
//! of HipMCL [Azad et al. 2018]; this module implements the MCL iteration
//! (expansion = distributed squaring, inflation + pruning = local column
//! ops) so the squaring benchmarks have their motivating application in the
//! repository.

use sa_dist::{
    agreed_step, analyze_1d_offline, load_wire_or_fresh, save_wire, AlgoChoice, AutoTuner,
    CacheConfig, CheckpointStore, DistMat1D, FetchMode, MatSnapshot, Plan1D, SessionSnapshot,
    SessionStats, SpgemmSession,
};
use sa_mpisim::{Comm, CostModel};
use sa_sparse::{Csc, Dcsc, Vidx};

/// MCL parameters.
#[derive(Clone, Copy, Debug)]
pub struct MclConfig {
    /// Inflation exponent (typically 2.0).
    pub inflation: f64,
    /// Drop entries below this value after inflation.
    pub prune_threshold: f64,
    /// Maximum expansion/inflation rounds.
    pub max_iters: usize,
}

impl Default for MclConfig {
    fn default() -> Self {
        MclConfig {
            inflation: 2.0,
            prune_threshold: 1e-4,
            max_iters: 20,
        }
    }
}

/// Column-normalize (make column-stochastic) in place.
pub fn normalize_columns(m: &mut Csc<f64>) {
    let colptr = m.colptr().to_vec();
    let vals = m.vals_mut();
    for j in 0..colptr.len() - 1 {
        let (s, e) = (colptr[j], colptr[j + 1]);
        let sum: f64 = vals[s..e].iter().sum();
        if sum > 0.0 {
            for v in &mut vals[s..e] {
                *v /= sum;
            }
        }
    }
}

/// Inflate (elementwise power) + prune + renormalize one column's values
/// into `(rows, vals)` output buffers.
fn inflate_prune_col(
    rows_in: &[Vidx],
    vals_in: &[f64],
    inflation: f64,
    threshold: f64,
    rows_out: &mut Vec<Vidx>,
    vals_out: &mut Vec<f64>,
) {
    let start = vals_out.len();
    let mut sum = 0.0f64;
    for &v in vals_in {
        sum += v.powf(inflation);
    }
    if sum > 0.0 {
        for (&r, &v) in rows_in.iter().zip(vals_in) {
            let x = v.powf(inflation) / sum;
            if x >= threshold {
                rows_out.push(r);
                vals_out.push(x);
            }
        }
    } else {
        for (&r, &v) in rows_in.iter().zip(vals_in) {
            let x = v.powf(inflation);
            if x >= threshold {
                rows_out.push(r);
                vals_out.push(x);
            }
        }
    }
    let kept: f64 = vals_out[start..].iter().sum();
    if kept > 0.0 {
        for v in &mut vals_out[start..] {
            *v /= kept;
        }
    }
}

/// Inflate + prune + renormalize a local slice, column by column. When the
/// previous iteration's `(expanded, result)` pair is given, columns whose
/// expanded input is unchanged (identical rows *and* values) reuse the
/// previous result instead of being recomputed — near MCL convergence most
/// of the matrix freezes, so most columns skip the `powf` passes entirely.
/// Returns the slice and the number of skipped (reused) columns.
fn inflate_prune_incremental(
    m: &Csc<f64>,
    prev: Option<(&Csc<f64>, &Csc<f64>)>,
    inflation: f64,
    threshold: f64,
) -> (Csc<f64>, usize) {
    let mut colptr = vec![0usize; m.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::with_capacity(m.nnz());
    let mut vals: Vec<f64> = Vec::with_capacity(m.nnz());
    let mut skipped = 0usize;
    for j in 0..m.ncols() {
        let (rows_in, vals_in) = m.col(j);
        match prev {
            Some((prev_in, prev_out)) if prev_in.col(j) == (rows_in, vals_in) => {
                let (pr, pv) = prev_out.col(j);
                rowidx.extend_from_slice(pr);
                vals.extend_from_slice(pv);
                skipped += 1;
            }
            _ => inflate_prune_col(
                rows_in,
                vals_in,
                inflation,
                threshold,
                &mut rowidx,
                &mut vals,
            ),
        }
        colptr[j + 1] = rowidx.len();
    }
    (
        Csc::from_parts(m.nrows(), m.ncols(), colptr, rowidx, vals),
        skipped,
    )
}

/// Extract clusters from a converged MCL matrix: vertices sharing an
/// "attractor" row form a cluster. Returns cluster id per vertex.
pub fn interpret_clusters(m: &Csc<f64>) -> Vec<u32> {
    let n = m.ncols();
    let mut cluster = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut attractor_cluster: std::collections::HashMap<Vidx, u32> =
        std::collections::HashMap::new();
    for (j, slot) in cluster.iter_mut().enumerate() {
        let (rows, vals) = m.col(j);
        // attractor = max-valued row of the column
        if let Some(pos) = vals
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
        {
            let att = rows[pos];
            let id = *attractor_cluster.entry(att).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *slot = id;
        } else {
            *slot = next;
            next += 1;
        }
    }
    cluster
}

/// The matrix the first expansion squares: `a` with self-loops added
/// (standard MCL) and columns normalized — shared by the solver and the
/// autotuner's offline pricing so both see the same operand.
fn expansion_seed(a: &Csc<f64>) -> Csc<f64> {
    let n = a.ncols();
    let mut coo = a.to_coo();
    for v in 0..n {
        coo.push(v as Vidx, v as Vidx, 1.0);
    }
    let mut with_loops = coo.to_csc_with(|x, y| x + y);
    normalize_columns(&mut with_loops);
    with_loops
}

/// [`mcl_1d`] with the expansion's fetch mode chosen by the collective-free
/// analyzer: each candidate coalescing is priced on the first squaring
/// `M₀²` (the dominant multiply — later iterations only shrink) and the
/// cheapest one under the α–β model drives the whole run. Rank 0 prices
/// once and broadcasts the pick (the same pattern as `spgemm_auto` — the
/// analysis is deterministic but not free). Returns the clusters,
/// iteration count, session counters, and the mode picked. Collective.
pub fn mcl_1d_auto<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    cfg: &MclConfig,
    cache: CacheConfig,
    model: &CostModel,
) -> (Vec<u32>, usize, SessionStats, FetchMode) {
    let m0 = expansion_seed(a); // every rank needs the seed to distribute
    let payload = (comm.rank() == 0).then(|| {
        let modes = [
            FetchMode::default(),
            FetchMode::ContiguousRuns,
            FetchMode::ColumnExact,
        ];
        let best = modes
            .into_iter()
            .map(|m| {
                let t = analyze_1d_offline(&m0, &m0, comm.size(), m)
                    .modeled_time_s(model, AutoTuner::DEFAULT_FLOPS_PER_S);
                (t, m)
            })
            .min_by(|x, y| x.0.total_cmp(&y.0))
            .expect("non-empty candidate set")
            .1;
        AlgoChoice::OneD { mode: best }.encode().to_vec()
    });
    let wire = comm.bcast_vec(0, payload);
    let words: [u64; 5] = wire[..5].try_into().expect("5-word choice");
    let AlgoChoice::OneD { mode: best } = AlgoChoice::decode(&words) else {
        unreachable!("rank 0 encodes a 1D pick")
    };
    let plan = Plan1D {
        fetch_mode: best,
        ..Default::default()
    };
    let (clusters, iters, stats) = mcl_run(comm, m0, cfg, &plan, cache);
    (clusters, iters, stats, best)
}

/// Run distributed MCL: expansion via sparsity-aware 1D squaring,
/// inflation locally. Returns the converged matrix slice's clusters
/// (identical on all ranks) and the number of iterations. Collective.
///
/// Expansion runs through a cached [`SpgemmSession`] (unlimited budget) —
/// see [`mcl_1d_session`] for the cache-aware entry point and its
/// per-iteration delta semantics.
pub fn mcl_1d<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    cfg: &MclConfig,
    plan: &Plan1D,
) -> (Vec<u32>, usize) {
    let (clusters, iters, _) = mcl_1d_session(comm, a, cfg, plan, CacheConfig::unlimited());
    (clusters, iters)
}

/// [`mcl_1d`] with an explicit fetch-cache budget, returning the session
/// counters. Collective.
///
/// The expansion `M ← M²` multiplies a *changing* operand, which a naive
/// session cannot cache — but MCL converges: more and more columns of `M`
/// freeze between iterations. After each inflation the session is
/// re-anchored with [`SpgemmSession::update_a`], which invalidates exactly
/// the columns whose content changed; every frozen column stays cached, so
/// the per-iteration fetch volume decays toward zero alongside the
/// convergence delta (only the *delta* is communicated). The inflation pass
/// reuses the same diff idea locally: columns whose expanded input is
/// unchanged skip the inflate/prune recompute.
pub fn mcl_1d_session<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    cfg: &MclConfig,
    plan: &Plan1D,
    cache: CacheConfig,
) -> (Vec<u32>, usize, SessionStats) {
    mcl_run(comm, expansion_seed(a), cfg, plan, cache)
}

/// The MCL iteration on an already-seeded column-stochastic matrix —
/// [`mcl_1d_session`] builds the seed itself; [`mcl_1d_auto`] hands over
/// the one it priced the fetch modes on.
fn mcl_run<C: Comm>(
    comm: &C,
    with_loops: Csc<f64>,
    cfg: &MclConfig,
    plan: &Plan1D,
    cache: CacheConfig,
) -> (Vec<u32>, usize, SessionStats) {
    let n = with_loops.ncols();
    let offsets = sa_dist::uniform_offsets(n, comm.size());
    let mut current = DistMat1D::from_global(comm, &with_loops, &offsets);
    let mut session = SpgemmSession::create(comm, current.clone(), *plan, cache);
    let mut prev_expanded: Option<Csc<f64>> = None;
    let mut prev_result: Option<Csc<f64>> = None;
    let mut iters = 0usize;
    for _ in 0..cfg.max_iters {
        if iters > 0 {
            // re-anchor the session on the inflated matrix: only changed
            // columns are invalidated (deferred to here so a terminating
            // iteration never pays a collective + window refresh it will
            // not use)
            session.update_a(comm, current.clone());
        }
        iters += 1;
        // expansion: M <- M²  (the HipMCL bottleneck), fetching only
        // columns the cache lost to invalidation
        let (expanded, _rep) = session.multiply(comm, &current);
        let expanded = expanded.into_local_csc();
        // inflation + pruning on the local slice, skipping frozen columns
        let (local, _skipped) = inflate_prune_incremental(
            &expanded,
            prev_expanded.as_ref().zip(prev_result.as_ref()),
            cfg.inflation,
            cfg.prune_threshold,
        );
        let next = DistMat1D::from_local(n, n, current.offsets().clone(), Dcsc::from_csc(&local));
        // convergence: nnz and values stable (cheap: compare local diff)
        let my_prev = current.local().to_csc();
        let delta = my_prev.max_abs_diff(&local);
        let max_delta = comm.allreduce(delta, |x, y| x.max(y));
        prev_expanded = Some(expanded);
        prev_result = Some(local);
        current = next;
        if max_delta < 1e-8 {
            break;
        }
    }
    let full = current.gather(comm);
    let clusters = comm.bcast_vec(0, full.map(|m| interpret_clusters(&m)));
    (clusters, iters, *session.stats())
}

/// [`mcl_1d_session`] with per-iteration checkpointing, for execution under
/// [`run_recoverable`](sa_mpisim::Universe::run_recoverable). Collective.
///
/// At the top of every iteration — *after* the session has been re-anchored
/// on the current operand, so the snapshotted cache is consistent with it —
/// each rank saves `(iteration, operand slice, session snapshot)` under
/// `(rank, tag)` in `store`. On entry the ranks agree collectively
/// ([`agreed_step`]) on the last iteration **all** of them checkpointed:
/// unanimity resumes there (skipping the already-applied re-anchor),
/// anything ragged starts the whole run fresh. Iterations are therefore
/// at-least-once: a rank killed mid-iteration re-runs that iteration after
/// restart, with a cache state identical to the fault-free run's at that
/// boundary, so clusters and iteration count come out identical. Completed
/// runs remove their checkpoint.
///
/// The inflation's cross-iteration memo (`prev_expanded`/`prev_result`) is
/// deliberately *not* checkpointed: the incremental path produces exactly
/// the full recompute's output, so a resumed first iteration recomputing
/// every column changes nothing but local work.
pub fn mcl_1d_checkpointed<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    cfg: &MclConfig,
    plan: &Plan1D,
    cache: CacheConfig,
    store: &dyn CheckpointStore,
    tag: &str,
) -> (Vec<u32>, usize, SessionStats) {
    let me = comm.rank();
    let loaded: Option<(u64, MatSnapshot, SessionSnapshot)> =
        load_wire_or_fresh(store, me, tag).expect("readable checkpoint store");
    let step = agreed_step(comm, loaded.as_ref().map(|(k, ..)| *k));
    let resume = step.and_then(|k| loaded.filter(|(lk, ..)| *lk == k));

    let (mut current, mut session, mut iters, mut resumed) = match resume {
        Some((k, mat, snap)) => {
            let current = mat.restore();
            let mut session = SpgemmSession::create(comm, current.clone(), *plan, cache);
            session.restore(&snap);
            (current, session, k as usize, true)
        }
        None => {
            let with_loops = expansion_seed(a);
            let offsets = sa_dist::uniform_offsets(with_loops.ncols(), comm.size());
            let current = DistMat1D::from_global(comm, &with_loops, &offsets);
            let session = SpgemmSession::create(comm, current.clone(), *plan, cache);
            (current, session, 0usize, false)
        }
    };
    let n = current.ncols();
    let mut prev_expanded: Option<Csc<f64>> = None;
    let mut prev_result: Option<Csc<f64>> = None;
    while iters < cfg.max_iters {
        if iters > 0 && !resumed {
            session.update_a(comm, current.clone());
        }
        resumed = false;
        save_wire(
            store,
            me,
            tag,
            &(iters as u64, MatSnapshot::of(&current), session.snapshot()),
        )
        .expect("writable checkpoint store");
        iters += 1;
        let (expanded, _rep) = session.multiply(comm, &current);
        let expanded = expanded.into_local_csc();
        let (local, _skipped) = inflate_prune_incremental(
            &expanded,
            prev_expanded.as_ref().zip(prev_result.as_ref()),
            cfg.inflation,
            cfg.prune_threshold,
        );
        let next = DistMat1D::from_local(n, n, current.offsets().clone(), Dcsc::from_csc(&local));
        let my_prev = current.local().to_csc();
        let delta = my_prev.max_abs_diff(&local);
        let max_delta = comm.allreduce(delta, |x, y| x.max(y));
        prev_expanded = Some(expanded);
        prev_result = Some(local);
        current = next;
        if max_delta < 1e-8 {
            break;
        }
    }
    let full = current.gather(comm);
    let clusters = comm.bcast_vec(0, full.map(|m| interpret_clusters(&m)));
    let stats = *session.stats();
    store.remove(me, tag).expect("removable checkpoint");
    (clusters, iters, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mpisim::Universe;
    use sa_sparse::gen::sbm;

    #[test]
    fn normalization_makes_columns_stochastic() {
        let mut a = sbm(60, 3, 6.0, 1.0, false, 1);
        normalize_columns(&mut a);
        for j in 0..a.ncols() {
            let (_, vals) = a.col(j);
            if !vals.is_empty() {
                let s: f64 = vals.iter().sum();
                assert!((s - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn auto_mode_pick_is_rank_consistent_and_result_preserving() {
        let a = sbm(60, 3, 8.0, 0.4, false, 5);
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let (auto_clusters, _, _, mode) = mcl_1d_auto(
                comm,
                &a,
                &MclConfig::default(),
                CacheConfig::unlimited(),
                &CostModel::default(),
            );
            let (fixed_clusters, _) = mcl_1d(comm, &a, &MclConfig::default(), &Plan1D::default());
            (auto_clusters, fixed_clusters, mode)
        });
        let mode0 = got[0].2;
        for (auto_c, fixed_c, mode) in &got {
            assert_eq!(mode, &mode0, "all ranks pick the same mode");
            assert_eq!(auto_c, fixed_c, "fetch mode never changes the result");
        }
    }

    #[test]
    fn recovers_planted_clusters() {
        // 3 dense communities, no relabeling: MCL should find ~3 clusters
        // agreeing with the ground truth.
        let n = 90;
        let a = sbm(n, 3, 12.0, 0.3, false, 2);
        let u = Universe::new(3);
        let got = u.run(|comm| mcl_1d(comm, &a, &MclConfig::default(), &Plan1D::default()));
        let (clusters, iters) = &got[0];
        assert!(*iters >= 2);
        // ground truth block = i / 30; measure majority agreement
        let mut agree = 0usize;
        for block in 0..3 {
            let ids: Vec<u32> = (block * 30..(block + 1) * 30)
                .map(|v| clusters[v])
                .collect();
            let mut counts = std::collections::HashMap::new();
            for &c in &ids {
                *counts.entry(c).or_insert(0usize) += 1;
            }
            agree += counts.values().max().copied().unwrap_or(0);
        }
        assert!(
            agree >= 72,
            "cluster agreement {agree}/90 too low: {clusters:?}"
        );
    }

    #[test]
    fn ranks_agree_on_clusters() {
        let a = sbm(60, 2, 10.0, 0.5, false, 3);
        let u = Universe::new(4);
        let got = u.run(|comm| mcl_1d(comm, &a, &MclConfig::default(), &Plan1D::default()));
        for w in got.windows(2) {
            assert_eq!(w[0].0, w[1].0);
        }
    }

    #[test]
    fn incremental_inflation_skips_unchanged_columns_and_matches_full() {
        // iteration 1: full recompute; iteration 2: a few columns change,
        // the rest must be reused — with a result identical to the full
        // recompute (the regression the fix is guarding)
        let mut m1 = sbm(50, 2, 8.0, 1.0, false, 7);
        normalize_columns(&mut m1);
        let (r1, skipped1) = inflate_prune_incremental(&m1, None, 2.0, 1e-4);
        assert_eq!(skipped1, 0, "no previous iteration to reuse");
        let changed: Vec<usize> = vec![2, 9, 33];
        let m2 = {
            let mut m = m1.clone();
            let colptr = m.colptr().to_vec();
            let vals = m.vals_mut();
            for &j in &changed {
                for v in &mut vals[colptr[j]..colptr[j + 1]] {
                    *v = (*v + 0.1) / 2.0;
                }
            }
            m
        };
        let (full, _) = inflate_prune_incremental(&m2, None, 2.0, 1e-4);
        let (incr, skipped) = inflate_prune_incremental(&m2, Some((&m1, &r1)), 2.0, 1e-4);
        assert_eq!(incr, full, "incremental result must equal full recompute");
        let dirty = changed.iter().filter(|&&j| m1.col_nnz(j) > 0).count();
        assert_eq!(
            skipped,
            m1.ncols() - dirty,
            "every unchanged column must be skipped"
        );
    }

    #[test]
    fn checkpointed_mcl_matches_plain_session_run() {
        let a = sbm(60, 3, 8.0, 0.4, false, 5);
        let store = sa_dist::MemStore::new();
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let (c1, i1, s1) = mcl_1d_session(
                comm,
                &a,
                &MclConfig::default(),
                &Plan1D::default(),
                CacheConfig::unlimited(),
            );
            let (c2, i2, s2) = mcl_1d_checkpointed(
                comm,
                &a,
                &MclConfig::default(),
                &Plan1D::default(),
                CacheConfig::unlimited(),
                &store,
                "mcl.test",
            );
            (c1, i1, s1, c2, i2, s2)
        });
        for (c1, i1, s1, c2, i2, s2) in got {
            assert_eq!(c1, c2, "checkpointing must not change the clustering");
            assert_eq!(i1, i2, "checkpointing must not change convergence");
            assert_eq!(s1, s2, "checkpointing must not change session traffic");
        }
        assert!(store.is_empty(), "completed runs remove their checkpoints");
    }

    #[test]
    fn session_mcl_matches_uncached_and_fetches_only_deltas() {
        // 4 ranks over 3 planted blocks: the slice boundaries cut across
        // clusters, so remote column needs persist into MCL's freezing
        // phase (3 ranks would align with the blocks and the converged
        // matrix's block-diagonal locality would leave nothing to cache)
        let a = sbm(90, 3, 12.0, 0.3, false, 2);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let (c1, i1, cached) = mcl_1d_session(
                comm,
                &a,
                &MclConfig::default(),
                &Plan1D::default(),
                CacheConfig::unlimited(),
            );
            let (c2, i2, uncached) = mcl_1d_session(
                comm,
                &a,
                &MclConfig::default(),
                &Plan1D::default(),
                CacheConfig::disabled(),
            );
            (c1, i1, cached, c2, i2, uncached)
        });
        for (c1, i1, cached, c2, i2, uncached) in &got {
            assert_eq!(c1, c2, "cache must not change the clustering");
            assert_eq!(i1, i2, "cache must not change convergence");
            assert!(
                cached.fresh_bytes <= uncached.fresh_bytes,
                "caching can only reduce traffic"
            );
        }
        // MCL freezes as it converges, so some columns must have been
        // served from cache by the later iterations
        let hits: u64 = got.iter().map(|(_, _, c, ..)| c.cache_hit_bytes).sum();
        assert!(hits > 0, "converging MCL must produce cache hits");
        let fresh_cached: u64 = got.iter().map(|(_, _, c, ..)| c.fresh_bytes).sum();
        let fresh_uncached: u64 = got.iter().map(|(.., u)| u.fresh_bytes).sum();
        assert!(
            fresh_cached < fresh_uncached,
            "delta fetching must beat refetching ({fresh_cached} vs {fresh_uncached})"
        );
    }
}
