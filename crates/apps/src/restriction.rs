//! Restriction operator construction (AMG aggregation).
//!
//! Every MIS-2 root becomes an aggregate; every other vertex joins the
//! aggregate of a root within distance ≤ 2 (nearest-first, BFS order). The
//! resulting `R` is `n × n_agg` with **exactly one nonzero per row** — the
//! property the paper's Table III lists for all four restriction operators.

use crate::mis2::mis2;
use sa_sparse::{Coo, Csc};

/// Build the aggregation-based restriction operator for `a`.
/// Returns `R` (`n × n_agg`, unit weights, one nonzero per row).
pub fn restriction_operator(a: &Csc<f64>, seed: u64) -> Csc<f64> {
    let roots = mis2(a, seed);
    restriction_from_roots(a, &roots)
}

/// Build `R` from a given root set (must satisfy MIS-2 maximality).
pub fn restriction_from_roots(a: &Csc<f64>, roots: &[u32]) -> Csc<f64> {
    let n = a.nrows();
    let t = a.transpose();
    let mut agg = vec![u32::MAX; n];
    for (i, &r) in roots.iter().enumerate() {
        agg[r as usize] = i as u32;
    }
    // two BFS rounds from all roots simultaneously: nearest root wins,
    // ties by smaller aggregate id (deterministic)
    let mut frontier: Vec<u32> = roots.to_vec();
    for _round in 0..2 {
        let mut next = Vec::new();
        for &v in &frontier {
            let v = v as usize;
            let (r1, _) = a.col(v);
            let (r2, _) = t.col(v);
            for &u in r1.iter().chain(r2) {
                if agg[u as usize] == u32::MAX {
                    agg[u as usize] = agg[v];
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    let n_agg = roots.len();
    let mut r = Coo::new(n, n_agg);
    for (v, &g) in agg.iter().enumerate() {
        assert!(
            g != u32::MAX,
            "vertex {v} unaggregated — roots not MIS-2-maximal"
        );
        r.push(v as u32, g, 1.0);
    }
    r.to_csc_with(|x, _| x)
}

/// Table III-style statistics of a restriction operator.
#[derive(Clone, Debug)]
pub struct RestrictionStats {
    pub nrows: usize,
    pub ncols: usize,
    pub nnz: usize,
    /// Fine-to-coarse reduction factor.
    pub coarsening_ratio: f64,
}

/// Compute the Table III row for `r`.
pub fn restriction_stats(r: &Csc<f64>) -> RestrictionStats {
    RestrictionStats {
        nrows: r.nrows(),
        ncols: r.ncols(),
        nnz: r.nnz(),
        coarsening_ratio: r.nrows() as f64 / r.ncols().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::{erdos_renyi_square, stencil3d};

    #[test]
    fn exactly_one_nonzero_per_row() {
        let a = stencil3d(6, 6, 6, true);
        let r = restriction_operator(&a, 1);
        let per_row = r.nnz_per_row();
        assert!(per_row.iter().all(|&c| c == 1), "Table III property");
        assert_eq!(r.nnz(), r.nrows());
    }

    #[test]
    fn aggregates_all_nonempty() {
        let a = stencil3d(5, 5, 5, true);
        let r = restriction_operator(&a, 2);
        let per_col = r.nnz_per_col();
        assert!(per_col.iter().all(|&c| c >= 1), "no empty aggregate");
    }

    #[test]
    fn substantial_coarsening_on_stencil() {
        let a = stencil3d(8, 8, 8, true);
        let r = restriction_operator(&a, 3);
        let s = restriction_stats(&r);
        // paper ratios range ~38x-282x on meshes; a 27-pt stencil MIS-2
        // aggregation lands in the tens.
        assert!(
            s.coarsening_ratio > 8.0,
            "ratio {} too small",
            s.coarsening_ratio
        );
    }

    #[test]
    fn random_graph_aggregates() {
        let a = erdos_renyi_square(400, 6.0, 4);
        let r = restriction_operator(&a, 5);
        assert_eq!(r.nnz(), 400);
        assert!(r.ncols() < 200);
    }

    #[test]
    fn galerkin_coarse_matrix_shape() {
        use sa_dist::reference::serial_galerkin;
        let a = stencil3d(5, 5, 4, true);
        let r = restriction_operator(&a, 6);
        let coarse = serial_galerkin(&r, &a);
        assert_eq!(coarse.nrows(), r.ncols());
        assert_eq!(coarse.ncols(), r.ncols());
        assert!(coarse.nnz() > 0);
    }
}
