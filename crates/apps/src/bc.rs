//! Batched approximate betweenness centrality (Brandes) — §II-C3, §IV-C.
//!
//! For a batch of `b` source vertices, the **forward search** is a
//! multi-source BFS whose frontier carries shortest-path counts σ; each
//! level is one distributed SpGEMM followed by masking out already-visited
//! vertices. The **backward sweep** runs Brandes' dependency accumulation
//! level-by-level, again one SpGEMM per level. The paper benchmarks exactly
//! these two phases per loop iteration (Figs. 13, 14).
//!
//! **Operand orientation matters for the 1D engine.** Algorithm 1 keeps
//! `B` and `C` stationary and fetches only `A`; if the n×n adjacency were
//! the fetched operand, every rank would pull nearly all of it at every
//! mid-BFS level. The 1D engine therefore stores the frontier *transposed*
//! (`b × n`, row `j` = source `j`) and computes `Next = F̃·Adj` — the small
//! frontier is the fetched `A`, the adjacency is the stationary `B`, and
//! the output lands in the frontier's own 1D column layout with zero
//! output communication. The 2D/3D baselines keep CombBLAS' column-frontier
//! formulation (`Aᵀ·F` with `F` being `n × b`), which is what the paper
//! compares against; both orientations produce identical scores.

use sa_dist::mat3d::{DistMat3D, LayerSplit, Owned3DBlock};
use sa_dist::{
    agreed_step, load_wire_or_fresh, save_wire, spgemm_1d_ws, spgemm_split_3d_ws,
    spgemm_summa_2d_ws, uniform_offsets, AlgoChoice, AutoTuner, CacheConfig, CheckpointStore,
    DistMat1D, DistMat2D, FetchMode, Plan1D, SessionSnapshot, SessionStats, SpgemmSession,
};
use sa_mpisim::{Comm, CostModel, Grid2D, Grid3D, Wire, WireError};
use sa_sparse::ewise::{ewise_add, mask_complement};
use sa_sparse::semiring::PlusTimes;
use sa_sparse::{Coo, Csc, Dcsc, SpgemmWorkspace, Vidx};
use std::sync::Arc;
use std::time::Instant;

/// Per-iteration SpGEMM times of the two phases (the Fig. 13/14 series).
#[derive(Clone, Debug, Default)]
pub struct BcTimes {
    pub forward_s: Vec<f64>,
    pub backward_s: Vec<f64>,
}

/// Result of one BC batch on this rank.
#[derive(Clone, Debug)]
pub struct BcOutcome {
    /// Accumulated dependency scores (length n, identical on all ranks).
    pub scores: Vec<f64>,
    pub times: BcTimes,
    /// BFS levels explored.
    pub levels: usize,
    /// Peak local bytes across iterations (the Fig. 14 2D-OOM metric).
    pub peak_local_bytes: u64,
    /// Bytes this rank injected into the network over the whole batch
    /// (point-to-point sends + RDMA gets), excluding the one-time operand
    /// distribution.
    pub comm_bytes: u64,
    /// Messages this rank injected over the whole batch (same scope as
    /// [`BcOutcome::comm_bytes`]); with `comm_bytes` this feeds the α–β
    /// network model for the Fig. 13/14 comparisons.
    pub comm_msgs: u64,
}

impl Wire for BcTimes {
    fn put(&self, out: &mut Vec<u8>) {
        self.forward_s.put(out);
        self.backward_s.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BcTimes {
            forward_s: Wire::get(buf)?,
            backward_s: Wire::get(buf)?,
        })
    }
}

impl Wire for BcOutcome {
    fn put(&self, out: &mut Vec<u8>) {
        self.scores.put(out);
        self.times.put(out);
        self.levels.put(out);
        self.peak_local_bytes.put(out);
        self.comm_bytes.put(out);
        self.comm_msgs.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BcOutcome {
            scores: Wire::get(buf)?,
            times: Wire::get(buf)?,
            levels: Wire::get(buf)?,
            peak_local_bytes: Wire::get(buf)?,
            comm_bytes: Wire::get(buf)?,
            comm_msgs: Wire::get(buf)?,
        })
    }
}

/// Choose `batch` distinct sources deterministically.
pub fn pick_sources(n: usize, batch: usize, seed: u64) -> Vec<Vidx> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ids: Vec<Vidx> = (0..n as Vidx).collect();
    ids.shuffle(&mut rng);
    ids.truncate(batch.min(n));
    ids.sort_unstable();
    ids
}

// ---------------------------------------------------------------------
// local block algebra shared by all engines
// ---------------------------------------------------------------------

/// `w = fringe ⊙ (1 + δ) ⊘ σ`: on the fringe's pattern, combine the
/// dependency and path-count values (both defined on supersets of the
/// fringe's pattern; δ defaults to 0 where absent).
fn backward_weights(fringe: &Csc<f64>, delta: &Csc<f64>, nsp: &Csc<f64>) -> Csc<f64> {
    let mut colptr = vec![0usize; fringe.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::with_capacity(fringe.nnz());
    let mut vals: Vec<f64> = Vec::with_capacity(fringe.nnz());
    for j in 0..fringe.ncols() {
        let (fr, _) = fringe.col(j);
        let (dr, dv) = delta.col(j);
        let (sr, sv) = nsp.col(j);
        let (mut di, mut si) = (0usize, 0usize);
        for &r in fr {
            while di < dr.len() && dr[di] < r {
                di += 1;
            }
            let d = if di < dr.len() && dr[di] == r {
                dv[di]
            } else {
                0.0
            };
            while si < sr.len() && sr[si] < r {
                si += 1;
            }
            debug_assert!(si < sr.len() && sr[si] == r, "σ must cover the fringe");
            let sigma = sv[si];
            rowidx.push(r);
            vals.push((1.0 + d) / sigma);
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(fringe.nrows(), fringe.ncols(), colptr, rowidx, vals)
}

/// `contribution = t ⊙ mask ⊙ σ`: on `t ∩ mask` positions, `t · σ`.
fn masked_scale(t: &Csc<f64>, mask: &Csc<f64>, nsp: &Csc<f64>) -> Csc<f64> {
    let mut colptr = vec![0usize; t.ncols() + 1];
    let mut rowidx: Vec<Vidx> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for j in 0..t.ncols() {
        let (tr, tv) = t.col(j);
        let (mr, _) = mask.col(j);
        let (sr, sv) = nsp.col(j);
        let (mut mi, mut si) = (0usize, 0usize);
        for (&r, &x) in tr.iter().zip(tv) {
            while mi < mr.len() && mr[mi] < r {
                mi += 1;
            }
            if mi >= mr.len() || mr[mi] != r {
                continue;
            }
            while si < sr.len() && sr[si] < r {
                si += 1;
            }
            debug_assert!(si < sr.len() && sr[si] == r);
            rowidx.push(r);
            vals.push(x * sv[si]);
        }
        colptr[j + 1] = rowidx.len();
    }
    Csc::from_parts(t.nrows(), t.ncols(), colptr, rowidx, vals)
}

/// Row sums of a local block added into a global score vector at `row0`.
fn accumulate_row_sums(block: &Csc<f64>, row0: usize, scores: &mut [f64]) {
    for (r, _c, v) in block.iter() {
        scores[row0 + r as usize] += v;
    }
}

/// Column sums of a local block added into a global score vector at `col0`
/// (the transposed-frontier counterpart of [`accumulate_row_sums`]).
fn accumulate_col_sums(block: &Csc<f64>, col0: usize, scores: &mut [f64]) {
    for (_r, c, v) in block.iter() {
        scores[col0 + c as usize] += v;
    }
}

// ---------------------------------------------------------------------
// 1D engine (sparsity-aware Algorithm 1 per level)
// ---------------------------------------------------------------------

/// Run one BC batch with the sparsity-aware 1D SpGEMM. Collective.
///
/// The frontier is stored transposed (`b × n`) so that it is the *fetched*
/// operand of Algorithm 1 while the adjacency stays stationary: per level
/// the forward step is `Next = F̃·Adj` and the backward step is `T̃ = W̃·Adjᵀ`.
/// Both products leave their output in the frontier's own 1D column layout
/// (conformal with the adjacency's column split), so masking, σ updates and
/// dependency accumulation are all rank-local.
pub fn bc_batch_1d<C: Comm>(comm: &C, a: &Csc<f64>, sources: &[Vidx], plan: &Plan1D) -> BcOutcome {
    bc_batch_1d_offsets(
        comm,
        a,
        sources,
        plan,
        &uniform_offsets(a.nrows(), comm.size()),
    )
}

/// [`bc_batch_1d`] with explicit 1D column offsets — pass the partitioner's
/// (uneven) slice boundaries so rank slices align with METIS parts instead
/// of cutting clusters at uniform boundaries.
pub fn bc_batch_1d_offsets<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    sources: &[Vidx],
    plan: &Plan1D,
    offsets: &[usize],
) -> BcOutcome {
    let n = a.nrows();
    let b = sources.len();
    let a01 = a.map(|_| 1.0);
    let at01 = a01.transpose();
    // Per-level multiplies skip the global-volume allreduces (metrics only).
    let plan = Plan1D {
        global_stats: false,
        ..*plan
    };
    let plan = &plan;
    // stationary operands: adjacency (forward), its transpose (backward)
    let da = DistMat1D::from_global(comm, &a01, offsets);
    let dat = DistMat1D::from_global(comm, &at01, offsets);
    let n_offsets = da.offsets().clone();
    let (c0, c1) = (n_offsets[comm.rank()], n_offsets[comm.rank() + 1]);
    let stats0 = comm.stats();

    // initial frontier: row j holds source j with σ = 1 at column s_j
    let mut fringe = {
        let mut coo = Coo::new(b, c1 - c0);
        for (j, &s) in sources.iter().enumerate() {
            let su = s as usize;
            if su >= c0 && su < c1 {
                coo.push(j as Vidx, (su - c0) as Vidx, 1.0);
            }
        }
        coo.to_csc_with(|x, _| x)
    };
    let mut visited = fringe.clone();
    let mut nsp = fringe.clone();
    let mut stack = vec![fringe.clone()];
    let mut times = BcTimes::default();
    let mut peak = 0u64;
    // one arena for every per-level multiply of this batch: a BFS runs
    // 2·levels multiplies whose scratch is shape-compatible level to level
    let ws = SpgemmWorkspace::new();

    // forward search
    loop {
        let t0 = Instant::now();
        let f_dist = DistMat1D::from_local(b, n, n_offsets.clone(), Dcsc::from_csc(&fringe));
        let (next, rep) = spgemm_1d_ws(comm, &f_dist, &da, plan, &ws);
        times.forward_s.push(t0.elapsed().as_secs_f64());
        let masked = mask_complement(&next.into_local_csc(), &visited);
        let live = comm.allreduce(masked.nnz() as u64, |x, y| x + y);
        // frontier state + the fetched Ã working set, comparable with the
        // 2D/3D engines' per-level peaks
        peak = peak.max(
            (masked.mem_bytes() + nsp.mem_bytes() + visited.mem_bytes()) as u64 + rep.fetched_bytes,
        );
        if live == 0 {
            break;
        }
        visited = ewise_add::<PlusTimes<f64>>(&visited, &masked.map(|_| 1.0));
        nsp = ewise_add::<PlusTimes<f64>>(&nsp, &masked);
        stack.push(masked.clone());
        fringe = masked;
        if stack.len() > n {
            unreachable!("BFS deeper than vertex count");
        }
    }

    // backward sweep (levels L-1 .. 1; level-0 deltas belong to the
    // sources themselves and are excluded, as in Brandes)
    let mut delta: Csc<f64> = Csc::zeros(b, c1 - c0);
    for l in (1..stack.len()).rev() {
        let w = backward_weights(&stack[l], &delta, &nsp);
        let t0 = Instant::now();
        let w_dist = DistMat1D::from_local(b, n, n_offsets.clone(), Dcsc::from_csc(&w));
        let (t, _rep) = spgemm_1d_ws(comm, &w_dist, &dat, plan, &ws);
        times.backward_s.push(t0.elapsed().as_secs_f64());
        if l >= 2 {
            let contrib = masked_scale(&t.into_local_csc(), &stack[l - 1], &nsp);
            delta = ewise_add::<PlusTimes<f64>>(&delta, &contrib);
        }
    }

    let mut scores = vec![0.0f64; n];
    accumulate_col_sums(&delta, c0, &mut scores);
    let scores = comm.allreduce_vec(scores, |x, y| x + y);
    BcOutcome {
        scores,
        levels: stack.len(),
        times,
        peak_local_bytes: peak,
        comm_bytes: (comm.stats() - stats0).injected_bytes(),
        comm_msgs: (comm.stats() - stats0).injected_msgs(),
    }
}

// ---------------------------------------------------------------------
// 1D session engine (persistent adjacency sessions + fetch cache)
// ---------------------------------------------------------------------

/// Cumulative session counters of [`bc_batches_1d_session`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BcSessionStats {
    /// The forward sessions' counters (`Next = Ãᵀ·F`).
    pub forward: SessionStats,
    /// The backward sessions' counters (`T = Ã·W`).
    pub backward: SessionStats,
}

impl BcSessionStats {
    /// Σ wire bytes over both sessions.
    pub fn fresh_bytes(&self) -> u64 {
        self.forward.fresh_bytes + self.backward.fresh_bytes
    }

    /// Σ needed bytes the caches served without traffic.
    pub fn cache_hit_bytes(&self) -> u64 {
        self.forward.cache_hit_bytes + self.backward.cache_hit_bytes
    }
}

impl Wire for BcSessionStats {
    fn put(&self, out: &mut Vec<u8>) {
        self.forward.put(out);
        self.backward.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BcSessionStats {
            forward: Wire::get(buf)?,
            backward: Wire::get(buf)?,
        })
    }
}

/// Run several BC batches over *persistent* sparsity-aware 1D sessions.
/// Collective.
///
/// Where [`bc_batch_1d`] transposes the frontier so the tiny changing
/// operand is the fetched one, this engine keeps CombBLAS' column-frontier
/// formulation (`Next = Ãᵀ·F`, `T = Ã·W`) and pins the **adjacency** as the
/// fetched operand of two [`SpgemmSession`]s (forward `Ãᵀ`, backward `Ã`).
/// Within one batch each BFS level needs fresh columns (frontiers are
/// disjoint), but across batches the traversals revisit mostly the same
/// graph — so from the second batch on, the sessions' caches serve almost
/// every needed column and the cumulative fetched volume flattens (the
/// `session_cache` bench plots exactly this curve). An undersized
/// [`CacheConfig`] degrades gracefully to per-level refetching;
/// [`CacheConfig::disabled`] is the uncached baseline the acceptance test
/// compares against.
///
/// Returns one [`BcOutcome`] per batch plus the cumulative session
/// counters *after each batch* (the last entry is the final total — its
/// increments are what the `session_cache` bench plots).
pub fn bc_batches_1d_session<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    batches: &[Vec<Vidx>],
    plan: &Plan1D,
    cache: CacheConfig,
) -> (Vec<BcOutcome>, Vec<BcSessionStats>) {
    let n = a.nrows();
    let a01 = a.map(|_| 1.0);
    let at01 = a01.transpose();
    let plan = Plan1D {
        global_stats: false,
        ..*plan
    };
    let n_offsets = uniform_offsets(n, comm.size());
    let mut fwd = SpgemmSession::create(
        comm,
        DistMat1D::from_global(comm, &at01, &n_offsets),
        plan,
        cache,
    );
    let mut bwd = SpgemmSession::create(
        comm,
        DistMat1D::from_global(comm, &a01, &n_offsets),
        plan,
        cache,
    );
    let mut outcomes = Vec::with_capacity(batches.len());
    let mut snapshots = Vec::with_capacity(batches.len());
    for sources in batches {
        outcomes.push(bc_one_batch_sessions(comm, &mut fwd, &mut bwd, n, sources));
        snapshots.push(BcSessionStats {
            forward: *fwd.stats(),
            backward: *bwd.stats(),
        });
    }
    (outcomes, snapshots)
}

/// [`bc_batches_1d_session`] with per-batch checkpointing, for execution
/// under [`run_recoverable`](sa_mpisim::Universe::run_recoverable).
/// Collective.
///
/// Before each batch, every rank saves `(batches done, outcomes so far,
/// stats so far, forward snapshot, backward snapshot)` under `(rank, tag)`
/// in `store`; on entry the ranks agree ([`agreed_step`]) on the last batch
/// boundary all of them reached and resume there (the adjacency never
/// changes, so restored cache contents are trivially valid — a restarted
/// process only re-pays the window exposure). Batches are at-least-once: a
/// rank killed mid-batch re-runs that batch with the caches exactly as the
/// fault-free run had them at its start, so the re-run's scores *and*
/// per-batch traffic counters come out identical. Completed runs remove
/// their checkpoint.
pub fn bc_batches_1d_session_recoverable<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    batches: &[Vec<Vidx>],
    plan: &Plan1D,
    cache: CacheConfig,
    store: &dyn CheckpointStore,
    tag: &str,
) -> (Vec<BcOutcome>, Vec<BcSessionStats>) {
    let me = comm.rank();
    type BcCkpt = (
        u64,
        Vec<BcOutcome>,
        Vec<BcSessionStats>,
        SessionSnapshot,
        SessionSnapshot,
    );
    let loaded: Option<BcCkpt> =
        load_wire_or_fresh(store, me, tag).expect("readable checkpoint store");
    let step = agreed_step(comm, loaded.as_ref().map(|(k, ..)| *k));
    let resume = step.and_then(|k| loaded.filter(|(lk, ..)| *lk == k));

    let n = a.nrows();
    let a01 = a.map(|_| 1.0);
    let at01 = a01.transpose();
    let plan = Plan1D {
        global_stats: false,
        ..*plan
    };
    let n_offsets = uniform_offsets(n, comm.size());
    let mut fwd = SpgemmSession::create(
        comm,
        DistMat1D::from_global(comm, &at01, &n_offsets),
        plan,
        cache,
    );
    let mut bwd = SpgemmSession::create(
        comm,
        DistMat1D::from_global(comm, &a01, &n_offsets),
        plan,
        cache,
    );
    let (mut outcomes, mut snapshots, start) = match resume {
        Some((k, outcomes, snapshots, fs, bs)) => {
            fwd.restore(&fs);
            bwd.restore(&bs);
            (outcomes, snapshots, k as usize)
        }
        None => (Vec::new(), Vec::new(), 0),
    };
    for sources in batches.iter().skip(start) {
        save_wire(
            store,
            me,
            tag,
            &(
                outcomes.len() as u64,
                outcomes.clone(),
                snapshots.clone(),
                fwd.snapshot(),
                bwd.snapshot(),
            ),
        )
        .expect("writable checkpoint store");
        outcomes.push(bc_one_batch_sessions(comm, &mut fwd, &mut bwd, n, sources));
        snapshots.push(BcSessionStats {
            forward: *fwd.stats(),
            backward: *bwd.stats(),
        });
    }
    store.remove(me, tag).expect("removable checkpoint");
    (outcomes, snapshots)
}

/// One batch of the session engine: the column-frontier BC algebra of
/// [`bc_batch_2d`] on a 1D split of the batch dimension, multiplies routed
/// through the persistent sessions.
fn bc_one_batch_sessions<C: Comm>(
    comm: &C,
    fwd: &mut SpgemmSession,
    bwd: &mut SpgemmSession,
    n: usize,
    sources: &[Vidx],
) -> BcOutcome {
    let b = sources.len();
    let col_offsets = Arc::new(uniform_offsets(b, comm.size()));
    let (c0, c1) = (col_offsets[comm.rank()], col_offsets[comm.rank() + 1]);
    let stats0 = comm.stats();
    let wrap =
        |local: &Csc<f64>| DistMat1D::from_local(n, b, col_offsets.clone(), Dcsc::from_csc(local));

    // frontier block: rows = vertices (global), columns = my batch slice
    let mut fringe = {
        let mut coo = Coo::new(n, c1 - c0);
        for (j, &s) in sources[c0..c1].iter().enumerate() {
            coo.push(s, j as Vidx, 1.0);
        }
        coo.to_csc_with(|x, _| x)
    };
    let mut visited = fringe.clone();
    let mut nsp = fringe.clone();
    let mut stack = vec![fringe.clone()];
    let mut times = BcTimes::default();
    let mut peak = 0u64;

    loop {
        let t0 = Instant::now();
        let (next, rep) = fwd.multiply(comm, &wrap(&fringe));
        times.forward_s.push(t0.elapsed().as_secs_f64());
        let masked = mask_complement(&next.into_local_csc(), &visited);
        // frontier state + this level's Ã working set (fresh + cached)
        peak = peak.max(
            (masked.mem_bytes() + nsp.mem_bytes() + visited.mem_bytes()) as u64
                + rep.fresh_bytes
                + rep.cache_hit_bytes,
        );
        let live = comm.allreduce(masked.nnz() as u64, |x, y| x + y);
        if live == 0 {
            break;
        }
        visited = ewise_add::<PlusTimes<f64>>(&visited, &masked.map(|_| 1.0));
        nsp = ewise_add::<PlusTimes<f64>>(&nsp, &masked);
        stack.push(masked.clone());
        fringe = masked;
        if stack.len() > n {
            unreachable!("BFS deeper than vertex count");
        }
    }

    let mut delta: Csc<f64> = Csc::zeros(n, c1 - c0);
    for l in (1..stack.len()).rev() {
        let w = backward_weights(&stack[l], &delta, &nsp);
        let t0 = Instant::now();
        let (t, _rep) = bwd.multiply(comm, &wrap(&w));
        times.backward_s.push(t0.elapsed().as_secs_f64());
        if l >= 2 {
            let contrib = masked_scale(&t.into_local_csc(), &stack[l - 1], &nsp);
            delta = ewise_add::<PlusTimes<f64>>(&delta, &contrib);
        }
    }

    let mut scores = vec![0.0f64; n];
    accumulate_row_sums(&delta, 0, &mut scores);
    let scores = comm.allreduce_vec(scores, |x, y| x + y);
    BcOutcome {
        scores,
        levels: stack.len(),
        times,
        peak_local_bytes: peak,
        comm_bytes: (comm.stats() - stats0).injected_bytes(),
        comm_msgs: (comm.stats() - stats0).injected_msgs(),
    }
}

// ---------------------------------------------------------------------
// 2D engine (sparse SUMMA per level)
// ---------------------------------------------------------------------

/// Run one BC batch with 2D sparse SUMMA. Collective; `comm.size()` must be
/// a perfect square.
pub fn bc_batch_2d<C: Comm>(comm: &C, a: &Csc<f64>, sources: &[Vidx]) -> BcOutcome {
    let grid = Grid2D::square(comm);
    let n = a.nrows();
    let b = sources.len();
    let a01 = a.map(|_| 1.0);
    let at01 = a01.transpose();
    let da = DistMat2D::from_global(&grid, &a01);
    let dat = DistMat2D::from_global(&grid, &at01);
    let stats0 = comm.stats();

    // frontier blocks share A's row split; columns split b over q
    let row_offsets = Arc::new(uniform_offsets(n, grid.pr));
    let col_offsets = Arc::new(uniform_offsets(b, grid.pc));
    let (r0, r1) = (row_offsets[grid.myrow], row_offsets[grid.myrow + 1]);
    let (c0, c1) = (col_offsets[grid.mycol], col_offsets[grid.mycol + 1]);
    let block = |coo: Coo<f64>| coo.to_csc_with(|x, _| x);
    let mut fringe = {
        let mut coo = Coo::new(r1 - r0, c1 - c0);
        for (j, &s) in sources[c0..c1].iter().enumerate() {
            if (s as usize) >= r0 && (s as usize) < r1 {
                coo.push(s - r0 as Vidx, j as Vidx, 1.0);
            }
        }
        block(coo)
    };
    let mut visited = fringe.clone();
    let mut nsp = fringe.clone();
    let mut stack = vec![fringe.clone()];
    let mut times = BcTimes::default();
    let mut peak = 0u64;
    // one arena for every per-level SUMMA of this batch (like the 1D
    // engine's), so the oblivious baseline is also alloc-noise-free
    let ws = SpgemmWorkspace::new();

    let wrap = |local: Csc<f64>| {
        DistMat2D::from_parts(n, b, row_offsets.clone(), col_offsets.clone(), local)
    };

    loop {
        let t0 = Instant::now();
        let f2d = wrap(fringe.clone());
        let (next, rep) = spgemm_summa_2d_ws(comm, &grid, &dat, &f2d, &ws);
        times.forward_s.push(t0.elapsed().as_secs_f64());
        let masked = mask_complement(next.local(), &visited);
        peak = peak.max(
            rep.peak_local_bytes
                + (masked.mem_bytes() + nsp.mem_bytes() + visited.mem_bytes()) as u64,
        );
        let live = comm.allreduce(masked.nnz() as u64, |x, y| x + y);
        if live == 0 {
            break;
        }
        visited = ewise_add::<PlusTimes<f64>>(&visited, &masked.map(|_| 1.0));
        nsp = ewise_add::<PlusTimes<f64>>(&nsp, &masked);
        stack.push(masked.clone());
        fringe = masked;
    }

    let mut delta: Csc<f64> = Csc::zeros(r1 - r0, c1 - c0);
    for l in (1..stack.len()).rev() {
        let w = backward_weights(&stack[l], &delta, &nsp);
        let t0 = Instant::now();
        let (t, rep) = spgemm_summa_2d_ws(comm, &grid, &da, &wrap(w), &ws);
        times.backward_s.push(t0.elapsed().as_secs_f64());
        peak = peak.max(rep.peak_local_bytes + (delta.mem_bytes() + nsp.mem_bytes()) as u64);
        if l >= 2 {
            let contrib = masked_scale(t.local(), &stack[l - 1], &nsp);
            delta = ewise_add::<PlusTimes<f64>>(&delta, &contrib);
        }
    }

    let mut scores = vec![0.0f64; n];
    accumulate_row_sums(&delta, r0, &mut scores);
    let scores = comm.allreduce_vec(scores, |x, y| x + y);
    BcOutcome {
        scores,
        levels: stack.len(),
        times,
        peak_local_bytes: peak,
        comm_bytes: (comm.stats() - stats0).injected_bytes(),
        comm_msgs: (comm.stats() - stats0).injected_msgs(),
    }
}

// ---------------------------------------------------------------------
// 3D engine (split-3D per level, with fiber-layout restore)
// ---------------------------------------------------------------------

/// Run one BC batch with split-3D SpGEMM (`q² · layers` ranks). Each level
/// multiplies and then redistributes the output back to the row-split 3D
/// frontier layout (CombBLAS' 3D SpGEMM performs the same layout
/// conversions internally). Collective.
pub fn bc_batch_3d<C: Comm>(comm: &C, layers: usize, a: &Csc<f64>, sources: &[Vidx]) -> BcOutcome {
    let q2 = comm.size() / layers;
    let q = (q2 as f64).sqrt().round() as usize;
    let grid = Grid3D::new(comm, q, layers);
    let n = a.nrows();
    let b = sources.len();
    let a01 = a.map(|_| 1.0);
    let at01 = a01.transpose();
    let da = DistMat3D::from_global_split_cols(&grid, &a01);
    let dat = DistMat3D::from_global_split_cols(&grid, &at01);
    let stats0 = comm.stats();

    // canonical frontier layout: rows layer-split, then 2D within layer
    let layer_offsets = Arc::new(uniform_offsets(n, layers));
    let slice_lo = layer_offsets[grid.mylayer];
    let slice_hi = layer_offsets[grid.mylayer + 1];
    let within_rows = Arc::new(uniform_offsets(slice_hi - slice_lo, q));
    let col_offsets = Arc::new(uniform_offsets(b, q));
    let my_r0 = slice_lo + within_rows[grid.myrow];
    let my_r1 = slice_lo + within_rows[grid.myrow + 1];
    let (c0, c1) = (col_offsets[grid.mycol], col_offsets[grid.mycol + 1]);

    // ownership: global (r, c) -> world rank in the frontier layout
    let owner = |r: usize, c: usize| -> usize {
        let l = layer_offsets.partition_point(|&o| o <= r) - 1;
        let lr = r - layer_offsets[l];
        let wr = {
            let w = uniform_offsets(layer_offsets[l + 1] - layer_offsets[l], q);
            w.partition_point(|&o| o <= lr) - 1
        };
        let wc = col_offsets.partition_point(|&o| o <= c) - 1;
        l * q * q + wr * q + wc
    };

    let mut fringe = {
        let mut coo = Coo::new(my_r1 - my_r0, c1 - c0);
        for (j, &s) in sources[c0..c1].iter().enumerate() {
            if (s as usize) >= my_r0 && (s as usize) < my_r1 {
                coo.push(s - my_r0 as Vidx, j as Vidx, 1.0);
            }
        }
        coo.to_csc_with(|x, _| x)
    };
    let mut visited = fringe.clone();
    let mut nsp = fringe.clone();
    let mut stack = vec![fringe.clone()];
    let mut times = BcTimes::default();
    let mut peak = 0u64;
    let ws = SpgemmWorkspace::new();

    // wrap the local block as a row-split DistMat3D for the multiply
    let wrap = |local: Csc<f64>| -> DistMat3D {
        let within = DistMat2D::from_parts(
            slice_hi - slice_lo,
            b,
            within_rows.clone(),
            col_offsets.clone(),
            local,
        );
        DistMat3D::from_local_parts(n, b, LayerSplit::Rows, layer_offsets.clone(), within)
    };
    // redistribute a multiply output back into the frontier layout
    let restore = |out: &Owned3DBlock, comm: &C| -> Csc<f64> {
        let mut sends: Vec<Vec<(Vidx, Vidx, f64)>> = vec![Vec::new(); comm.size()];
        for (r, c, v) in out.local.iter() {
            let (gr, gc) = (out.row0 + r as usize, out.col0 + c as usize);
            sends[owner(gr, gc)].push((gr as Vidx, gc as Vidx, v));
        }
        let recvd = comm.alltoallv(sends);
        let mut coo = Coo::new(my_r1 - my_r0, c1 - c0);
        for part in recvd {
            for (gr, gc, v) in part {
                coo.push(gr - my_r0 as Vidx, gc - c0 as Vidx, v);
            }
        }
        coo.to_csc_with(|x, y| x + y)
    };

    loop {
        let t0 = Instant::now();
        let f3d = wrap(fringe.clone());
        let (out, rep) = spgemm_split_3d_ws(comm, &grid, &dat, &f3d, &ws);
        let next = restore(&out, comm);
        times.forward_s.push(t0.elapsed().as_secs_f64());
        let masked = mask_complement(&next, &visited);
        peak = peak.max(
            rep.peak_local_bytes
                + (masked.mem_bytes() + nsp.mem_bytes() + visited.mem_bytes()) as u64,
        );
        let live = comm.allreduce(masked.nnz() as u64, |x, y| x + y);
        if live == 0 {
            break;
        }
        visited = ewise_add::<PlusTimes<f64>>(&visited, &masked.map(|_| 1.0));
        nsp = ewise_add::<PlusTimes<f64>>(&nsp, &masked);
        stack.push(masked.clone());
        fringe = masked;
    }

    let mut delta: Csc<f64> = Csc::zeros(my_r1 - my_r0, c1 - c0);
    for l in (1..stack.len()).rev() {
        let w = backward_weights(&stack[l], &delta, &nsp);
        let t0 = Instant::now();
        let (out, rep) = spgemm_split_3d_ws(comm, &grid, &da, &wrap(w), &ws);
        let t = restore(&out, comm);
        times.backward_s.push(t0.elapsed().as_secs_f64());
        peak = peak.max(rep.peak_local_bytes + (delta.mem_bytes() + nsp.mem_bytes()) as u64);
        if l >= 2 {
            let contrib = masked_scale(&t, &stack[l - 1], &nsp);
            delta = ewise_add::<PlusTimes<f64>>(&delta, &contrib);
        }
    }

    let mut scores = vec![0.0f64; n];
    accumulate_row_sums(&delta, my_r0, &mut scores);
    let scores = comm.allreduce_vec(scores, |x, y| x + y);
    BcOutcome {
        scores,
        levels: stack.len(),
        times,
        peak_local_bytes: peak,
        comm_bytes: (comm.stats() - stats0).injected_bytes(),
        comm_msgs: (comm.stats() - stats0).injected_msgs(),
    }
}

// ---------------------------------------------------------------------
// autotuned engine dispatch
// ---------------------------------------------------------------------

/// Run one BC batch on the engine the [`AutoTuner`] considers cheapest for
/// this adjacency and rank count. Collective.
///
/// The per-level frontier products are too shape-diverse to price one by
/// one before the traversal exists, so the tuner prices the adjacency
/// squaring `A·A` — the standard proxy for a graph's SpGEMM communication
/// structure — and the chosen family (1D / 2D / 3D, Fig. 13/14's axes)
/// runs the batch. Only candidates a BC engine actually implements are
/// considered (1D aware, 2D/3D oblivious SUMMA): pricing the aware 2D/3D
/// variants and then running the oblivious engines would let a rejected
/// configuration's cheap prediction pick an expensive execution. Returns
/// the outcome plus the choice, so callers (the benches behind the
/// `SA_AUTO` flag) can report what was picked.
pub fn bc_batch_auto<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    sources: &[Vidx],
    model: &CostModel,
) -> (BcOutcome, AlgoChoice) {
    // the analysis is deterministic but not free: rank 0 prices the
    // runnable candidates once and broadcasts the 40-byte pick
    let payload = (comm.rank() == 0).then(|| {
        let a01 = a.map(|_| 1.0);
        let tuner = AutoTuner::analyze(&a01, &a01, comm.size(), &[FetchMode::default()]);
        tuner
            .candidates
            .iter()
            .filter(|c| {
                matches!(
                    c.algo,
                    AlgoChoice::OneD { .. }
                        | AlgoChoice::TwoDOblivious { .. }
                        | AlgoChoice::ThreeDOblivious { .. }
                )
            })
            .min_by(|x, y| {
                x.modeled_time_s(model, tuner.flops_per_s)
                    .total_cmp(&y.modeled_time_s(model, tuner.flops_per_s))
            })
            .expect("the 1D candidate always exists")
            .algo
            .encode()
            .to_vec()
    });
    let wire = comm.bcast_vec(0, payload);
    let words: [u64; 5] = wire[..5].try_into().expect("5-word choice");
    let choice = AlgoChoice::decode(&words);
    let outcome = match choice {
        AlgoChoice::OneD { mode } => bc_batch_1d(
            comm,
            a,
            sources,
            &Plan1D {
                fetch_mode: mode,
                ..Default::default()
            },
        ),
        AlgoChoice::TwoDOblivious { .. } => bc_batch_2d(comm, a, sources),
        AlgoChoice::ThreeDOblivious { layers, .. } => bc_batch_3d(comm, layers, a, sources),
        AlgoChoice::TwoDSa { .. } | AlgoChoice::ThreeDSa { .. } => {
            unreachable!("candidates are filtered to the engines BC implements")
        }
    };
    (outcome, choice)
}

// ---------------------------------------------------------------------
// serial reference
// ---------------------------------------------------------------------

/// Textbook Brandes over the given sources (partial BC — exact when
/// `sources` is all vertices). Edge `u→v` iff `A[u][v] ≠ 0`.
pub fn bc_serial(a: &Csc<f64>, sources: &[Vidx]) -> Vec<f64> {
    let n = a.nrows();
    let out = a.transpose(); // out.col(u) = out-neighbors of u
    let mut scores = vec![0.0f64; n];
    for &s in sources {
        let mut dist = vec![i64::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut order: Vec<u32> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let (nbrs, _) = out.col(v as usize);
            for &w in nbrs {
                let wu = w as usize;
                if dist[wu] == i64::MAX {
                    dist[wu] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[wu] == dist[v as usize] + 1 {
                    sigma[wu] += sigma[v as usize];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            let (nbrs, _) = out.col(w as usize);
            for &v in nbrs {
                // w -> v edge; v on next level => w is predecessor of v
                if dist[v as usize] == dist[w as usize] + 1 {
                    delta[w as usize] +=
                        sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if w != s {
                scores[w as usize] += delta[w as usize];
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{banded, rmat, stencil2d_convection};

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn serial_brandes_path_graph() {
        // path 0-1-2-3 undirected: exact BC with all sources
        let mut coo = Coo::new(4, 4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        let a = coo.to_csc_with(|x, _| x);
        let scores = bc_serial(&a, &[0, 1, 2, 3]);
        // middle vertices lie on (0,2),(0,3),(1,3) paths: bc(1)=bc(2)=4
        // (each direction counted)
        assert!(close(&scores, &[0.0, 4.0, 4.0, 0.0]), "{scores:?}");
    }

    #[test]
    fn engine_1d_matches_serial() {
        let a = rmat(7, 6, (0.57, 0.19, 0.19, 0.05), 1);
        let sources = pick_sources(a.nrows(), 12, 2);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(4);
        let got = u.run(|comm| bc_batch_1d(comm, &a, &sources, &Plan1D::default()));
        for o in got {
            assert!(close(&o.scores, &expect), "1D BC mismatch");
            assert!(o.levels >= 2);
            assert_eq!(
                o.times.forward_s.len(),
                o.levels,
                "one fwd spgemm per level incl. the empty-detect one"
            );
        }
    }

    #[test]
    fn engine_2d_matches_serial() {
        let a = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 3);
        let sources = pick_sources(a.nrows(), 8, 4);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(4);
        let got = u.run(|comm| bc_batch_2d(comm, &a, &sources));
        for o in got {
            assert!(close(&o.scores, &expect), "2D BC mismatch");
        }
    }

    #[test]
    fn engine_3d_matches_serial() {
        let a = rmat(6, 5, (0.57, 0.19, 0.19, 0.05), 5);
        let sources = pick_sources(a.nrows(), 8, 6);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(8); // 2x2x2
        let got = u.run(|comm| bc_batch_3d(comm, 2, &a, &sources));
        for o in got {
            assert!(close(&o.scores, &expect), "3D BC mismatch");
        }
    }

    #[test]
    fn auto_engine_matches_serial_and_agrees_across_ranks() {
        let a = rmat(6, 6, (0.57, 0.19, 0.19, 0.05), 4);
        let sources = pick_sources(a.nrows(), 8, 2);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(4);
        let got = u.run(|comm| bc_batch_auto(comm, &a, &sources, &CostModel::default()));
        let choice0 = got[0].1;
        for (o, choice) in &got {
            assert!(close(&o.scores, &expect), "auto BC mismatch ({choice:?})");
            assert_eq!(choice, &choice0, "all ranks pick the same engine");
        }
    }

    #[test]
    fn directed_graph_bc() {
        // directed cycle plus chord; compare engines against serial
        let a = stencil2d_convection(5, 5, 0.7); // asymmetric structure? values differ, structure symmetric
        let a = a.filter(|r, c, _| (r as i64 - c as i64).rem_euclid(3) != 1); // make structure asymmetric
        let sources = pick_sources(a.nrows(), 6, 7);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(4);
        let got = u.run(|comm| bc_batch_1d(comm, &a, &sources, &Plan1D::default()));
        assert!(close(&got[0].scores, &expect));
    }

    #[test]
    fn single_source_matches_brandes() {
        let a = rmat(5, 4, (0.57, 0.19, 0.19, 0.05), 8);
        let sources = vec![3];
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(2);
        let got = u.run(|comm| bc_batch_1d(comm, &a, &sources, &Plan1D::default()));
        assert!(close(&got[0].scores, &expect));
    }

    #[test]
    fn bc_1d_comm_stays_small_on_banded_graph() {
        // The transposed-frontier orientation only moves frontier data, so
        // on a natural-ordered banded graph each SpGEMM level must inject
        // far fewer bytes than one copy of the adjacency — the
        // adjacency-fetching orientation would approach P·nnz(A)·12 B per
        // level. The band graph has diameter ≈ n/bw, so normalize by the
        // number of SpGEMM calls (one forward per level + one backward).
        let a = banded(512, 8, 1.0, true, 11);
        let sources = pick_sources(a.nrows(), 16, 3);
        let expect = bc_serial(&a, &sources);
        let u = Universe::new(4);
        let got = u.run(|comm| bc_batch_1d(comm, &a, &sources, &Plan1D::default()));
        assert!(close(&got[0].scores, &expect));
        let total: u64 = got.iter().map(|o| o.comm_bytes).sum();
        let spgemm_calls = 2 * got[0].levels as u64;
        let one_adjacency = a.nnz() as u64 * 12;
        assert!(
            total / spgemm_calls < one_adjacency / 10,
            "per-level 1D BC traffic {} B should be <10% of one copy of A ({} B)",
            total / spgemm_calls,
            one_adjacency
        );
    }

    #[test]
    fn empty_batch() {
        let a = rmat(5, 4, (0.57, 0.19, 0.19, 0.05), 9);
        let u = Universe::new(2);
        let got = u.run(|comm| bc_batch_1d(comm, &a, &[], &Plan1D::default()));
        assert!(got[0].scores.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn session_engine_matches_serial_per_batch() {
        let a = rmat(7, 6, (0.57, 0.19, 0.19, 0.05), 1);
        let batches: Vec<Vec<Vidx>> = (0..3).map(|s| pick_sources(a.nrows(), 10, s)).collect();
        let u = Universe::new(4);
        let got = u.run(|comm| {
            bc_batches_1d_session(
                comm,
                &a,
                &batches,
                &Plan1D::default(),
                CacheConfig::unlimited(),
            )
        });
        for (outcomes, snapshots) in got {
            assert_eq!(outcomes.len(), batches.len());
            assert_eq!(snapshots.len(), batches.len());
            for (o, sources) in outcomes.iter().zip(&batches) {
                let expect = bc_serial(&a, sources);
                assert!(close(&o.scores, &expect), "session BC batch mismatch");
            }
        }
    }

    #[test]
    fn recoverable_session_engine_matches_plain_and_round_trips_wire() {
        let a = rmat(7, 6, (0.57, 0.19, 0.19, 0.05), 1);
        let batches: Vec<Vec<Vidx>> = (0..3).map(|s| pick_sources(a.nrows(), 10, s)).collect();
        let store = sa_dist::MemStore::new();
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let plan = Plan1D::default();
            let (o1, s1) =
                bc_batches_1d_session(comm, &a, &batches, &plan, CacheConfig::unlimited());
            let (o2, s2) = bc_batches_1d_session_recoverable(
                comm,
                &a,
                &batches,
                &plan,
                CacheConfig::unlimited(),
                &store,
                "bc.test",
            );
            (o1, s1, o2, s2)
        });
        for (o1, s1, o2, s2) in got {
            assert_eq!(o1.len(), o2.len());
            for (x, y) in o1.iter().zip(&o2) {
                assert_eq!(x.scores, y.scores, "checkpointing must not change scores");
                assert_eq!(x.levels, y.levels);
                assert_eq!(x.comm_bytes, y.comm_bytes, "identical per-batch traffic");
                // wire round-trip of the outcome is lossless (timings too)
                let back = BcOutcome::from_bytes(&y.to_bytes()).unwrap();
                assert_eq!(back.scores, y.scores);
                assert_eq!(back.times.forward_s, y.times.forward_s);
            }
            assert_eq!(
                s1.last().map(|s| (s.forward, s.backward)),
                s2.last().map(|s| (s.forward, s.backward)),
                "identical cumulative session counters"
            );
        }
        assert!(store.is_empty(), "completed runs remove their checkpoints");
    }

    #[test]
    fn cache_halves_cumulative_traffic_across_batches() {
        // ≥4 batches over the same graph: from the second batch on, the
        // persistent sessions serve the adjacency columns out of cache, so
        // cumulative fetched bytes must be ≤ 50% of the uncached engine's.
        let a = rmat(7, 8, (0.57, 0.19, 0.19, 0.05), 3);
        let batches: Vec<Vec<Vidx>> = (0..4)
            .map(|s| pick_sources(a.nrows(), 12, 10 + s))
            .collect();
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let plan = Plan1D::default();
            let (_, cached) =
                bc_batches_1d_session(comm, &a, &batches, &plan, CacheConfig::unlimited());
            let (_, uncached) =
                bc_batches_1d_session(comm, &a, &batches, &plan, CacheConfig::disabled());
            (cached, uncached)
        });
        let total = |s: &[BcSessionStats]| s.last().unwrap().fresh_bytes();
        let cached: u64 = got.iter().map(|(c, _)| total(c)).sum();
        let uncached: u64 = got.iter().map(|(_, u)| total(u)).sum();
        assert!(uncached > 0);
        assert!(
            cached * 2 <= uncached,
            "cached {cached} B should be ≤ 50% of uncached {uncached} B"
        );
        // the avoided traffic is accounted, not lost
        let hits: u64 = got
            .iter()
            .map(|(c, _)| c.last().unwrap().cache_hit_bytes())
            .sum();
        assert!(hits > 0);
    }
}
