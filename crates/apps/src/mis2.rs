//! Distance-2 Maximal Independent Set (MIS-2).
//!
//! §II-C2: AMG restriction operators select coarse points with MIS-2 — no
//! two selected vertices share a neighbor [Bell, Dalton, Olson 2012; Azad
//! et al. 2016]. We implement the Luby-style random-priority parallel
//! formulation: a vertex enters the set when its priority beats every
//! undecided vertex within distance 2; its distance-≤2 neighborhood is then
//! knocked out. Deterministic in the seed.

use rand::{Rng, SeedableRng};
use sa_sparse::Csc;

/// Vertex states during the iteration.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Undecided,
    In,
    Out,
}

/// Compute a distance-2 MIS of the (symmetrized) graph of `a`.
/// Returns the sorted root list.
pub fn mis2(a: &Csc<f64>, seed: u64) -> Vec<u32> {
    assert_eq!(a.nrows(), a.ncols());
    let n = a.nrows();
    // Symmetrize the structure so "neighbor" is well-defined on directed
    // inputs (hv15r is nonsymmetric).
    let t = a.transpose();
    let neighbors = |v: usize| -> Vec<u32> {
        let (r1, _) = a.col(v);
        let (r2, _) = t.col(v);
        let mut out = Vec::with_capacity(r1.len() + r2.len());
        let (mut i, mut j) = (0, 0);
        while i < r1.len() || j < r2.len() {
            let x = r1.get(i).copied().unwrap_or(u32::MAX);
            let y = r2.get(j).copied().unwrap_or(u32::MAX);
            let u = x.min(y);
            if x == u {
                i += 1;
            }
            if y == u {
                j += 1;
            }
            if u as usize != v {
                out.push(u);
            }
        }
        out
    };

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Priorities break ties by vertex id (strict total order).
    let prio: Vec<(u64, u32)> = (0..n).map(|v| (rng.gen::<u64>(), v as u32)).collect();
    let mut state = vec![State::Undecided; n];
    let mut undecided = n;

    while undecided > 0 {
        // A vertex wins if its priority is the max among undecided vertices
        // within distance 2 (including itself).
        let mut winners: Vec<u32> = Vec::new();
        for v in 0..n {
            if state[v] != State::Undecided {
                continue;
            }
            let mut is_max = true;
            'outer: for u in neighbors(v) {
                let u = u as usize;
                if state[u] == State::Undecided && prio[u] > prio[v] {
                    is_max = false;
                    break;
                }
                for w in neighbors(u) {
                    let w = w as usize;
                    if w != v && state[w] == State::Undecided && prio[w] > prio[v] {
                        is_max = false;
                        break 'outer;
                    }
                }
            }
            if is_max {
                winners.push(v as u32);
            }
        }
        debug_assert!(!winners.is_empty(), "progress guaranteed by max priority");
        for &v in &winners {
            let v = v as usize;
            state[v] = State::In;
            undecided -= 1;
            for u in neighbors(v) {
                let u = u as usize;
                if state[u] == State::Undecided {
                    state[u] = State::Out;
                    undecided -= 1;
                }
                for w in neighbors(u) {
                    let w = w as usize;
                    if state[w] == State::Undecided {
                        state[w] = State::Out;
                        undecided -= 1;
                    }
                }
            }
        }
    }
    (0..n as u32)
        .filter(|&v| state[v as usize] == State::In)
        .collect()
}

/// Check the MIS-2 invariants (used by tests and debug assertions):
/// independence (no two roots within distance 2) and maximality (every
/// vertex is within distance 2 of a root).
pub fn verify_mis2(a: &Csc<f64>, roots: &[u32]) -> Result<(), String> {
    let n = a.nrows();
    let t = a.transpose();
    let mut dist = vec![u8::MAX; n]; // distance to nearest root, capped at 2
    let mut frontier: Vec<u32> = roots.to_vec();
    for &r in roots {
        dist[r as usize] = 0;
    }
    for d in 1..=2u8 {
        let mut next = Vec::new();
        for &v in &frontier {
            let v = v as usize;
            let (r1, _) = a.col(v);
            let (r2, _) = t.col(v);
            for &u in r1.iter().chain(r2) {
                if dist[u as usize] == u8::MAX {
                    dist[u as usize] = d;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    // independence: BFS from each root must not meet another root at d<=2
    let rootset: std::collections::HashSet<u32> = roots.iter().copied().collect();
    for &r in roots {
        let v = r as usize;
        let (r1, _) = a.col(v);
        let (r2, _) = t.col(v);
        for &u in r1.iter().chain(r2) {
            if u != r && rootset.contains(&u) {
                return Err(format!("roots {r} and {u} adjacent"));
            }
            let (s1, _) = a.col(u as usize);
            let (s2, _) = t.col(u as usize);
            for &w in s1.iter().chain(s2) {
                if w != r && rootset.contains(&w) {
                    return Err(format!("roots {r} and {w} at distance 2"));
                }
            }
        }
    }
    // maximality
    if let Some(v) = dist.iter().position(|&d| d == u8::MAX) {
        return Err(format!("vertex {v} farther than 2 from every root"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::{erdos_renyi_square, stencil3d};

    #[test]
    fn invariants_on_stencil() {
        let a = stencil3d(6, 6, 6, true);
        let roots = mis2(&a, 1);
        assert!(!roots.is_empty());
        verify_mis2(&a, &roots).unwrap();
        // 27-pt stencil MIS-2 roots are ≥3 apart per axis => ≤ ~n/27 + slack
        assert!(
            roots.len() <= a.nrows() / 8,
            "{} roots of {}",
            roots.len(),
            a.nrows()
        );
    }

    #[test]
    fn invariants_on_random_graph() {
        let a = erdos_renyi_square(300, 5.0, 2);
        let roots = mis2(&a, 3);
        verify_mis2(&a, &roots).unwrap();
    }

    #[test]
    fn isolated_vertices_are_roots() {
        let a: Csc<f64> = Csc::zeros(5, 5);
        let roots = mis2(&a, 4);
        assert_eq!(roots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = erdos_renyi_square(200, 4.0, 5);
        assert_eq!(mis2(&a, 7), mis2(&a, 7));
    }

    #[test]
    fn works_on_nonsymmetric_input() {
        let a = sa_sparse::gen::banded(200, 6, 0.4, false, 6);
        let roots = mis2(&a, 8);
        verify_mis2(&a, &roots).unwrap();
    }
}
