//! Distributed Galerkin product `RᵀAR` (§III-C, §IV-B).
//!
//! The left multiplication `RᵀA` runs the sparsity-aware 1D algorithm
//! (Algorithm 1): `A` is stationary, `Rᵀ`'s columns are fetched on demand —
//! and since `R` has one nonzero per row, `Rᵀ`'s columns are single-entry,
//! making the sparsity-aware fetch especially profitable. The right
//! multiplication `(RᵀA)·R` uses either Algorithm 1 again or the
//! outer-product Algorithm 3, which Ballard et al. showed (and Fig. 12
//! confirms) is the better 1D algorithm for that shape.

use sa_dist::outer1d::{spgemm_outer_1d, OuterReport};
use sa_dist::spgemm1d::{
    analyze_1d_modes, spgemm_1d, spgemm_1d_ws, FetchMode, Plan1D, SpgemmReport,
};
use sa_dist::{
    agreed_step, load_wire_or_fresh, save_wire, uniform_offsets, CacheConfig, CheckpointStore,
    DistMat1D, MatSnapshot, SessionSnapshot, SessionStats, SpgemmSession,
};
use sa_mpisim::{Comm, CostModel};
use sa_sparse::{Csc, SpgemmWorkspace};

/// Algorithm choice for the right multiplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RightAlgo {
    /// Sparsity-aware 1D (Algorithm 1).
    OneD,
    /// Outer-product 1D (Algorithm 3) — the paper's recommendation.
    Outer,
}

/// Reports from the two multiplications.
#[derive(Clone, Copy, Debug)]
pub struct GalerkinReport {
    /// `RᵀA` (always Algorithm 1).
    pub left: SpgemmReport,
    /// `(RᵀA)R` when run with Algorithm 1.
    pub right_1d: Option<SpgemmReport>,
    /// `(RᵀA)R` when run with Algorithm 3.
    pub right_outer: Option<OuterReport>,
}

/// Compute the distributed Galerkin product.
///
/// `a` is the fine operator, 1D-distributed; `r_global` is the restriction
/// operator, conceptually replicated (it is tall-skinny and tiny next to
/// `A`; CombBLAS also keeps it fully mapped). Returns the coarse operator
/// (`n_agg × n_agg`, 1D-distributed) and the reports. Collective.
pub fn galerkin_product<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    r_global: &Csc<f64>,
    right: RightAlgo,
    plan: &Plan1D,
) -> (DistMat1D, GalerkinReport) {
    // Rᵀ distributed with A's column offsets (so the k spaces align).
    let rt = r_global.transpose();
    let rt_dist = DistMat1D::from_global(comm, &rt, a.offsets());
    galerkin_product_with(comm, a, &rt_dist, r_global, right, plan)
}

/// [`galerkin_product`] with a pre-distributed `Rᵀ` (`rt_dist` must be
/// `r_global.transpose()` under `a`'s column offsets) — lets callers that
/// already built the distribution, like [`galerkin_auto`]'s mode pricing,
/// skip a second transpose + scatter.
pub fn galerkin_product_with<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    rt_dist: &DistMat1D,
    r_global: &Csc<f64>,
    right: RightAlgo,
    plan: &Plan1D,
) -> (DistMat1D, GalerkinReport) {
    assert_eq!(
        a.nrows(),
        r_global.nrows(),
        "R's fine dimension must match A"
    );
    let n_agg = r_global.ncols();
    // left: RᵀA — fetches Rᵀ columns, B = A stationary.
    let (rta, left_rep) = spgemm_1d(comm, rt_dist, a, plan);
    // right: (RᵀA)·R — R distributed over the coarse dimension.
    let r_offsets = uniform_offsets(n_agg, comm.size());
    let r_dist = DistMat1D::from_global(comm, r_global, &r_offsets);
    match right {
        RightAlgo::OneD => {
            let (coarse, rep) = spgemm_1d(comm, &rta, &r_dist, plan);
            (
                coarse,
                GalerkinReport {
                    left: left_rep,
                    right_1d: Some(rep),
                    right_outer: None,
                },
            )
        }
        RightAlgo::Outer => {
            let (coarse, rep) = spgemm_outer_1d(comm, &rta, &r_dist);
            (
                coarse,
                GalerkinReport {
                    left: left_rep,
                    right_1d: None,
                    right_outer: Some(rep),
                },
            )
        }
    }
}

/// [`galerkin_product`] with the left multiplication's fetch coalescing
/// picked by the collective analyzer: every candidate mode is priced in
/// one [`analyze_1d_modes`] round (one metadata exchange, no numeric
/// traffic), the per-rank critical paths under the α–β `model` are
/// max-reduced together, and the cheapest mode drives the product — with
/// the outer-product right algorithm the paper recommends (Fig. 12).
/// Returns the coarse operator, the reports, and the mode picked.
/// Collective.
pub fn galerkin_auto<C: Comm>(
    comm: &C,
    a: &DistMat1D,
    r_global: &Csc<f64>,
    model: &CostModel,
) -> (DistMat1D, GalerkinReport, FetchMode) {
    let rt = r_global.transpose();
    let rt_dist = DistMat1D::from_global(comm, &rt, a.offsets());
    let modes = [
        FetchMode::default(),
        FetchMode::ContiguousRuns,
        FetchMode::ColumnExact,
    ];
    let local_times: Vec<f64> = analyze_1d_modes(comm, &rt_dist, a, &modes)
        .iter()
        .map(|pre| model.time_s(pre.planned_intervals * 2, pre.planned_fetch_bytes))
        .collect();
    let critical = comm.allreduce_vec(local_times, |x, y| x.max(*y));
    let best = modes[critical
        .iter()
        .enumerate()
        .min_by(|x, y| x.1.total_cmp(y.1))
        .expect("non-empty candidate set")
        .0];
    let plan = Plan1D {
        fetch_mode: best,
        ..Default::default()
    };
    let (coarse, report) =
        galerkin_product_with(comm, a, &rt_dist, r_global, RightAlgo::Outer, &plan);
    (coarse, report, best)
}

/// Reports of one [`GalerkinSession::product`]: the cached right
/// multiplication and the sessionless left one.
#[derive(Clone, Copy, Debug)]
pub struct GalerkinSessionReport {
    /// `A·R` through the session (fresh vs cache-hit split is meaningful).
    pub ar: SpgemmReport,
    /// `Rᵀ·(AR)` (Algorithm 1; `Rᵀ`'s single-entry columns make this fetch
    /// tiny, as in [`galerkin_product`]'s left multiplication).
    pub rap: SpgemmReport,
}

/// Repeated Galerkin products against a stationary fine operator.
///
/// Adaptive AMG setups recompute `RᵀAR` with an updated `R` every cycle
/// while `A` stays fixed. [`galerkin_product`] associates left-first
/// (`(RᵀA)·R`), which makes the *changing* `Rᵀ` the fetched operand — cheap
/// once, but nothing carries over between cycles. This session associates
/// **right-first** (`Rᵀ·(A·R)`) so the stationary `A` is the fetched
/// operand of a persistent [`SpgemmSession`]: the first product pays the
/// full fetch, later products hit the cache for every `A` column any
/// earlier `R` already touched, and the cumulative volume flattens (the
/// `session_cache` bench plots the curve). Both associations produce the
/// same coarse operator up to floating-point rounding.
pub struct GalerkinSession {
    session: SpgemmSession,
    /// Arena for the sessionless `Rᵀ·(AR)` multiplies: `Rᵀ` changes every
    /// resetup so it cannot ride the fetch cache, but its kernel scratch
    /// and `Ã` assembly buffers carry over cycle to cycle.
    rap_ws: SpgemmWorkspace<f64>,
}

impl GalerkinSession {
    /// Pin the fine operator. Collective.
    pub fn create<C: Comm>(
        comm: &C,
        a: DistMat1D,
        plan: Plan1D,
        cache: CacheConfig,
    ) -> GalerkinSession {
        GalerkinSession {
            session: SpgemmSession::create(comm, a, plan, cache),
            rap_ws: SpgemmWorkspace::new(),
        }
    }

    /// The pinned fine operator.
    pub fn a(&self) -> &DistMat1D {
        self.session.a()
    }

    /// Cumulative counters of the cached `A·R` multiplies.
    pub fn stats(&self) -> &SessionStats {
        self.session.stats()
    }

    /// One coarse operator: `Rᵀ·(A·R)` with the `A·R` half served by the
    /// session cache. Collective.
    pub fn product<C: Comm>(
        &mut self,
        comm: &C,
        r_global: &Csc<f64>,
    ) -> (DistMat1D, GalerkinSessionReport) {
        assert_eq!(
            self.session.a().nrows(),
            r_global.nrows(),
            "R's fine dimension must match A"
        );
        let n_agg = r_global.ncols();
        let r_offsets = uniform_offsets(n_agg, comm.size());
        let r_dist = DistMat1D::from_global(comm, r_global, &r_offsets);
        let (ar, ar_rep) = self.session.multiply(comm, &r_dist);
        let rt = r_global.transpose();
        let rt_dist = DistMat1D::from_global(comm, &rt, self.session.a().offsets());
        let plan = *self.session.plan();
        let (coarse, rap_rep) = spgemm_1d_ws(comm, &rt_dist, &ar, &plan, &self.rap_ws);
        (
            coarse,
            GalerkinSessionReport {
                ar: ar_rep,
                rap: rap_rep,
            },
        )
    }

    /// Capture the pinned-`A` session's state (cache + counters) for a
    /// checkpoint. Purely local — see [`SpgemmSession::snapshot`].
    pub fn snapshot(&self) -> SessionSnapshot {
        self.session.snapshot()
    }

    /// Re-apply a snapshot to a freshly created session on the same fine
    /// operator — see [`SpgemmSession::restore`]. `A` never changes within
    /// a Galerkin session, so restored cache contents are always valid.
    pub fn restore(&mut self, snap: &SessionSnapshot) {
        self.session.restore(snap)
    }
}

/// An adaptive-AMG-style resetup loop — one [`GalerkinSession::product`]
/// per restriction operator in `rs` — with per-product checkpointing, for
/// execution under [`run_recoverable`](sa_mpisim::Universe::run_recoverable).
/// Returns the coarse operators (1D-distributed, in `rs` order) and the
/// session counters. Collective.
///
/// Before each product, every rank saves `(products done, coarse slices so
/// far, session snapshot)` under `(rank, tag)` in `store`; on entry the
/// ranks agree ([`agreed_step`]) on the last boundary all of them reached
/// and resume there. Products are at-least-once: a rank killed mid-product
/// re-runs it against a cache identical to the fault-free run's at that
/// boundary, so the recovered coarse operators are bit-identical. Completed
/// runs remove their checkpoint.
pub fn galerkin_products_recoverable<C: Comm>(
    comm: &C,
    a: &Csc<f64>,
    rs: &[Csc<f64>],
    plan: &Plan1D,
    cache: CacheConfig,
    store: &dyn CheckpointStore,
    tag: &str,
) -> (Vec<DistMat1D>, SessionStats) {
    let me = comm.rank();
    let loaded: Option<(u64, Vec<MatSnapshot>, SessionSnapshot)> =
        load_wire_or_fresh(store, me, tag).expect("readable checkpoint store");
    let step = agreed_step(comm, loaded.as_ref().map(|(k, ..)| *k));
    let resume = step.and_then(|k| loaded.filter(|(lk, ..)| *lk == k));

    let offsets = uniform_offsets(a.ncols(), comm.size());
    let da = DistMat1D::from_global(comm, a, &offsets);
    let mut gs = GalerkinSession::create(comm, da, *plan, cache);
    let (mut coarse_snaps, start) = match resume {
        Some((k, snaps, session_snap)) => {
            gs.restore(&session_snap);
            (snaps, k as usize)
        }
        None => (Vec::new(), 0),
    };
    for r in rs.iter().skip(start) {
        save_wire(
            store,
            me,
            tag,
            &(
                coarse_snaps.len() as u64,
                coarse_snaps.clone(),
                gs.snapshot(),
            ),
        )
        .expect("writable checkpoint store");
        let (coarse, _rep) = gs.product(comm, r);
        coarse_snaps.push(MatSnapshot::of(&coarse));
    }
    store.remove(me, tag).expect("removable checkpoint");
    let stats = *gs.stats();
    (
        coarse_snaps.iter().map(MatSnapshot::restore).collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restriction::restriction_operator;
    use sa_dist::reference::serial_galerkin;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi_square, stencil3d};

    fn check(a: &Csc<f64>, p: usize, right: RightAlgo) {
        let r = restriction_operator(a, 42);
        let expect = serial_galerkin(&r, a);
        let u = Universe::new(p);
        let got = u.run(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, a, &offsets);
            let (coarse, _) = galerkin_product(comm, &da, &r, right, &Plan1D::default());
            coarse.gather(comm)
        });
        let coarse = got[0].as_ref().unwrap();
        assert!(
            coarse.max_abs_diff(&expect) < 1e-9,
            "P={p} {right:?}: diff {}",
            coarse.max_abs_diff(&expect)
        );
    }

    #[test]
    fn matches_serial_triple_product_1d_right() {
        let a = stencil3d(5, 5, 4, true);
        check(&a, 4, RightAlgo::OneD);
    }

    #[test]
    fn matches_serial_triple_product_outer_right() {
        let a = stencil3d(5, 5, 4, true);
        check(&a, 4, RightAlgo::Outer);
        check(&a, 3, RightAlgo::Outer);
    }

    #[test]
    fn auto_mode_pick_preserves_the_product() {
        let a = stencil3d(5, 5, 4, true);
        let r = restriction_operator(&a, 42);
        let expect = serial_galerkin(&r, &a);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let (coarse, _, mode) = galerkin_auto(comm, &da, &r, &CostModel::default());
            (coarse.gather(comm), mode)
        });
        let (coarse, mode0) = &got[0];
        assert!(coarse.as_ref().unwrap().max_abs_diff(&expect) < 1e-9);
        for (_, mode) in &got {
            assert_eq!(mode, mode0, "all ranks agree on the fetch mode");
        }
    }

    #[test]
    fn random_graph_galerkin() {
        let a = erdos_renyi_square(120, 5.0, 7);
        check(&a, 4, RightAlgo::Outer);
    }

    #[test]
    fn coarse_operator_is_much_smaller() {
        let a = stencil3d(6, 6, 6, true);
        let r = restriction_operator(&a, 1);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &a, &uniform_offsets(a.ncols(), 4));
            let (coarse, rep) =
                galerkin_product(comm, &da, &r, RightAlgo::Outer, &Plan1D::default());
            (coarse.ncols(), coarse.global_nnz(comm), rep)
        });
        let (nc, nnz, _) = got[0];
        assert!(nc < a.ncols() / 8);
        assert!(nnz > 0);
        assert!((nnz as usize) < a.nnz());
    }

    #[test]
    fn session_products_match_serial_and_flatten_traffic() {
        // an adaptive-AMG-style resetup loop: 4 restriction operators over
        // the same fine matrix
        let a = stencil3d(6, 6, 4, true);
        let rs: Vec<Csc<f64>> = (0..4).map(|s| restriction_operator(&a, s)).collect();
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let plan = Plan1D::default();
            let mut cached =
                GalerkinSession::create(comm, da.clone(), plan, CacheConfig::unlimited());
            let mut uncached = GalerkinSession::create(comm, da, plan, CacheConfig::disabled());
            let mut coarse = Vec::new();
            for r in &rs {
                coarse.push(cached.product(comm, r).0.gather(comm));
                let _ = uncached.product(comm, r);
            }
            // one more product with an already-seen R: fully cache-served
            let (_c, rep) = cached.product(comm, &rs[0]);
            (coarse, *cached.stats(), *uncached.stats(), rep)
        });
        for (i, r) in rs.iter().enumerate() {
            let expect = serial_galerkin(r, &a);
            let coarse = got[0].0[i].as_ref().unwrap();
            assert!(
                coarse.max_abs_diff(&expect) < 1e-9,
                "resetup {i}: diff {}",
                coarse.max_abs_diff(&expect)
            );
        }
        let cached_fresh: u64 = got.iter().map(|(_, c, _, _)| c.fresh_bytes).sum();
        let uncached_fresh: u64 = got.iter().map(|(_, _, u, _)| u.fresh_bytes).sum();
        // 5 cached products vs 4 uncached ones, still far less traffic
        assert!(
            cached_fresh < uncached_fresh,
            "session must flatten cumulative volume ({cached_fresh} vs {uncached_fresh})"
        );
        for (_, _, _, rep) in &got {
            assert_eq!(rep.ar.fresh_bytes, 0, "repeated R is fully cache-served");
        }
    }

    #[test]
    fn recoverable_products_match_plain_session_loop() {
        let a = stencil3d(6, 6, 4, true);
        let rs: Vec<Csc<f64>> = (0..3).map(|s| restriction_operator(&a, s)).collect();
        let store = sa_dist::MemStore::new();
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let offsets = uniform_offsets(a.ncols(), comm.size());
            let da = DistMat1D::from_global(comm, &a, &offsets);
            let plan = Plan1D::default();
            let mut plain = GalerkinSession::create(comm, da, plan, CacheConfig::unlimited());
            let expect: Vec<_> = rs
                .iter()
                .map(|r| plain.product(comm, r).0.gather(comm))
                .collect();
            let (coarse, stats) = galerkin_products_recoverable(
                comm,
                &a,
                &rs,
                &plan,
                CacheConfig::unlimited(),
                &store,
                "rap.test",
            );
            let got: Vec<_> = coarse.iter().map(|c| c.gather(comm)).collect();
            (expect, got, *plain.stats(), stats)
        });
        for (expect, got, plain_stats, stats) in got {
            assert_eq!(expect, got, "checkpointing must not change the products");
            assert_eq!(plain_stats, stats, "identical session traffic");
        }
        assert!(store.is_empty(), "completed runs remove their checkpoints");
    }

    #[test]
    fn left_multiplication_fetch_is_cheap_for_one_nnz_rows() {
        // Rᵀ columns are single-entry: the sparsity-aware fetch volume for
        // RᵀA is bounded by nnz(R) = n, far below full replication.
        let a = stencil3d(6, 6, 4, true);
        let r = restriction_operator(&a, 2);
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let da = DistMat1D::from_global(comm, &a, &uniform_offsets(a.ncols(), 4));
            let (_, rep) = galerkin_product(comm, &da, &r, RightAlgo::Outer, &Plan1D::default());
            rep.left
        });
        for rep in got {
            assert!(
                rep.needed_bytes <= (r.nnz() as u64) * 12,
                "needed {} bytes",
                rep.needed_bytes
            );
        }
    }
}
