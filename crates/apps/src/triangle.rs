//! Triangle counting via masked SpGEMM — one of the §I application domains
//! (Azad, Buluç, Gilbert: parallel triangle counting in matrix algebra, the
//! prior 1D attempt the paper cites as motivation).
//!
//! `#triangles = Σ (L·L) ⊙ L` where `L` is the strictly-lower-triangular
//! part of the (symmetric) adjacency: each triangle `i>j>k` is counted once
//! through the wedge at its middle vertex.

use sa_dist::{spgemm_1d, uniform_offsets, DistMat1D, Plan1D};
use sa_mpisim::Comm;
use sa_sparse::ewise::ewise_mul;
use sa_sparse::semiring::PlusTimes;
use sa_sparse::spgemm::spgemm;
use sa_sparse::Csc;

/// Strictly lower-triangular pattern of `a` with unit weights.
pub fn lower_triangle(a: &Csc<f64>) -> Csc<f64> {
    a.filter(|r, c, _| r > c).map(|_| 1.0)
}

/// Serial triangle count.
pub fn triangles_serial(a: &Csc<f64>) -> u64 {
    let l = lower_triangle(a);
    let ll = spgemm::<PlusTimes<f64>, _, _>(&l, &l);
    let masked = ewise_mul::<PlusTimes<f64>>(&ll, &l);
    masked.vals().iter().sum::<f64>() as u64
}

/// Distributed triangle count with the sparsity-aware 1D algorithm:
/// `L·L` runs distributed; the mask and reduction are local. Collective.
pub fn triangles_1d<C: Comm>(comm: &C, a: &Csc<f64>, plan: &Plan1D) -> u64 {
    let l = lower_triangle(a);
    let offsets = uniform_offsets(l.ncols(), comm.size());
    let dl = DistMat1D::from_global(comm, &l, &offsets);
    let (ll, _rep) = spgemm_1d(comm, &dl, &dl.clone(), plan);
    // mask with the local slice of L and sum
    let my_l = l.extract_cols(offsets[comm.rank()], offsets[comm.rank() + 1]);
    let masked = ewise_mul::<PlusTimes<f64>>(&ll.into_local_csc(), &my_l);
    let local: f64 = masked.vals().iter().sum();
    comm.allreduce(local as u64, |x, y| x + y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_mpisim::Universe;
    use sa_sparse::gen::{erdos_renyi_square, rmat};
    use sa_sparse::Coo;

    #[test]
    fn counts_known_graph() {
        // K4 has 4 triangles
        let mut coo = Coo::new(4, 4);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    coo.push(i, j, 1.0);
                }
            }
        }
        let a = coo.to_csc_with(|x, _| x);
        assert_eq!(triangles_serial(&a), 4);
    }

    #[test]
    fn triangle_free_graph() {
        // bipartite graphs have no triangles
        let mut coo = Coo::new(6, 6);
        for i in 0..3u32 {
            for j in 3..6u32 {
                coo.push(i, j, 1.0);
                coo.push(j, i, 1.0);
            }
        }
        assert_eq!(triangles_serial(&coo.to_csc_with(|x, _| x)), 0);
    }

    #[test]
    fn distributed_matches_serial() {
        let a = rmat(7, 8, (0.57, 0.19, 0.19, 0.05), 1);
        let expect = triangles_serial(&a);
        let u = Universe::new(4);
        let got = u.run(|comm| triangles_1d(comm, &a, &Plan1D::default()));
        assert!(got.iter().all(|&t| t == expect), "{got:?} vs {expect}");
        assert!(expect > 0, "R-MAT should contain triangles");
    }

    #[test]
    fn er_distributed_matches_serial() {
        let a = erdos_renyi_square(200, 6.0, 2);
        let expect = triangles_serial(&a);
        let u = Universe::new(5);
        let got = u.run(|comm| triangles_1d(comm, &a, &Plan1D::default()));
        assert!(got.iter().all(|&t| t == expect));
    }
}
