//! Partition → (permutation, 1D layout) conversion.
//!
//! After partitioning, part `p`'s vertices are renumbered contiguously; the
//! resulting symmetric permutation clusters each part's columns, and the
//! part boundaries become the (generally non-uniform) 1D column offsets the
//! distributed matrices use. This is how "METIS permutation" enters the 1D
//! SpGEMM pipeline (§III-B, Figure 4's eukarya results).

use sa_sparse::{Perm, Vidx};

/// A 1D column layout derived from a partition: `offsets[p]..offsets[p+1]`
/// are part `p`'s columns after permutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartLayout {
    /// Symmetric permutation placing each part contiguously
    /// (`forward[old] = new`).
    pub perm: Perm,
    /// Column offsets per part, length `k+1`.
    pub offsets: Vec<usize>,
}

/// Build the layout from a partition vector (`parts[v] < k`). Within a
/// part, original relative order is kept (stable), preserving any intra-part
/// locality the input had.
pub fn partition_to_perm(parts: &[u32], k: usize) -> PartLayout {
    let n = parts.len();
    let mut counts = vec![0usize; k];
    for &p in parts {
        assert!((p as usize) < k, "part id {p} out of range {k}");
        counts[p as usize] += 1;
    }
    let mut offsets = vec![0usize; k + 1];
    for p in 0..k {
        offsets[p + 1] = offsets[p] + counts[p];
    }
    let mut cursor = offsets.clone();
    let mut forward = vec![0 as Vidx; n];
    for (v, &p) in parts.iter().enumerate() {
        forward[v] = cursor[p as usize] as Vidx;
        cursor[p as usize] += 1;
    }
    PartLayout {
        perm: Perm::from_forward(forward),
        offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_parts_contiguously() {
        let parts = vec![1, 0, 1, 0, 2];
        let layout = partition_to_perm(&parts, 3);
        assert_eq!(layout.offsets, vec![0, 2, 4, 5]);
        // part 0 vertices (1, 3) -> positions 0,1 (stable)
        assert_eq!(layout.perm.apply(1), 0);
        assert_eq!(layout.perm.apply(3), 1);
        // part 1 vertices (0, 2) -> positions 2,3
        assert_eq!(layout.perm.apply(0), 2);
        assert_eq!(layout.perm.apply(2), 3);
        // part 2 vertex 4 -> 4
        assert_eq!(layout.perm.apply(4), 4);
    }

    #[test]
    fn permuted_matrix_is_block_clustered() {
        use sa_sparse::gen::sbm;
        use sa_sparse::permute::permute_symmetric;
        // SBM with hidden labels; a perfect partition re-clusters it.
        let n = 300;
        // no cross edges at all
        let a = sbm(n, 3, 10.0, 0.0, true, 1);
        // Recover components by union-find-ish BFS to build "parts".
        let mut parts = vec![u32::MAX; n];
        let mut next = 0u32;
        for s in 0..n {
            if parts[s] != u32::MAX {
                continue;
            }
            let mut stack = vec![s];
            parts[s] = next;
            while let Some(v) = stack.pop() {
                let (rows, _) = a.col(v);
                for &u in rows {
                    if parts[u as usize] == u32::MAX {
                        parts[u as usize] = next;
                        stack.push(u as usize);
                    }
                }
            }
            next += 1;
        }
        let k = next as usize;
        let layout = partition_to_perm(&parts, k);
        let b = permute_symmetric(&a, &layout.perm);
        // after permutation, every edge lies within one part's index range
        for (r, c, _) in b.iter() {
            let pr = layout.offsets.partition_point(|&o| o <= r as usize) - 1;
            let pc = layout.offsets.partition_point(|&o| o <= c as usize) - 1;
            assert_eq!(pr, pc, "edge ({r},{c}) crosses parts after clustering");
        }
    }

    #[test]
    fn empty_parts_allowed() {
        let parts = vec![2, 2, 2];
        let layout = partition_to_perm(&parts, 4);
        assert_eq!(layout.offsets, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_part_ids() {
        partition_to_perm(&[0, 5], 2);
    }
}
