//! Undirected weighted graph in CSR form — the partitioner's working
//! representation, built from a sparse matrix's symmetrized structure.

use sa_sparse::{Csc, Vidx};

/// Undirected graph with vertex and edge weights (self-loops removed).
#[derive(Clone, Debug)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<Vidx>,
    adjwgt: Vec<u64>,
    vwgt: Vec<u64>,
}

impl Graph {
    /// From raw CSR parts (must already be symmetric and loop-free).
    pub fn from_parts(
        xadj: Vec<usize>,
        adjncy: Vec<Vidx>,
        adjwgt: Vec<u64>,
        vwgt: Vec<u64>,
    ) -> Graph {
        assert_eq!(xadj.len(), vwgt.len() + 1);
        assert_eq!(adjncy.len(), adjwgt.len());
        assert_eq!(*xadj.last().unwrap(), adjncy.len());
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Build from a square matrix: structure is symmetrized (`A ∪ Aᵀ`),
    /// diagonal dropped, unit edge weights, vertex weights supplied by
    /// `vwgt` (pass the squared-degree weights from
    /// [`sa_sparse::stats::squaring_vertex_weights`] for SpGEMM balancing,
    /// per §III-B).
    pub fn from_matrix_weighted(a: &Csc<f64>, vwgt: Vec<u64>) -> Graph {
        assert_eq!(a.nrows(), a.ncols(), "graph needs a square matrix");
        assert_eq!(vwgt.len(), a.nrows());
        let n = a.nrows();
        // union of A and A^T patterns, sans diagonal
        let t = a.transpose();
        let mut xadj = vec![0usize; n + 1];
        let mut adjncy: Vec<Vidx> = Vec::with_capacity(2 * a.nnz());
        for v in 0..n {
            let (r1, _) = a.col(v);
            let (r2, _) = t.col(v);
            // merge two sorted lists, dropping v itself and duplicates
            let (mut i, mut j) = (0usize, 0usize);
            while i < r1.len() || j < r2.len() {
                let x = r1.get(i).copied().unwrap_or(Vidx::MAX);
                let y = r2.get(j).copied().unwrap_or(Vidx::MAX);
                let u = x.min(y);
                if x == u {
                    i += 1;
                }
                if y == u {
                    j += 1;
                }
                if u as usize != v {
                    adjncy.push(u);
                }
            }
            xadj[v + 1] = adjncy.len();
        }
        let adjwgt = vec![1u64; adjncy.len()];
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Build with unit vertex weights.
    pub fn from_matrix(a: &Csc<f64>) -> Graph {
        let n = a.nrows();
        Graph::from_matrix_weighted(a, vec![1; n])
    }

    pub fn n(&self) -> usize {
        self.vwgt.len()
    }

    pub fn n_edges_directed(&self) -> usize {
        self.adjncy.len()
    }

    #[inline]
    pub fn neighbors(&self, v: usize) -> (&[Vidx], &[u64]) {
        let (s, e) = (self.xadj[v], self.xadj[v + 1]);
        (&self.adjncy[s..e], &self.adjwgt[s..e])
    }

    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    #[inline]
    pub fn vwgt(&self, v: usize) -> u64 {
        self.vwgt[v]
    }

    pub fn vwgts(&self) -> &[u64] {
        &self.vwgt
    }

    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Induce the subgraph on `ids` (sorted order defines new labels).
    /// Returns the subgraph; `ids[new] = old`.
    pub fn induce(&self, ids: &[Vidx]) -> Graph {
        let mut newid = vec![Vidx::MAX; self.n()];
        for (new, &old) in ids.iter().enumerate() {
            newid[old as usize] = new as Vidx;
        }
        let mut xadj = vec![0usize; ids.len() + 1];
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(ids.len());
        for (new, &old) in ids.iter().enumerate() {
            let (nbrs, wts) = self.neighbors(old as usize);
            for (&u, &w) in nbrs.iter().zip(wts) {
                let nu = newid[u as usize];
                if nu != Vidx::MAX {
                    adjncy.push(nu);
                    adjwgt.push(w);
                }
            }
            xadj[new + 1] = adjncy.len();
            vwgt.push(self.vwgt(old as usize));
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::Coo;

    fn path3() -> Graph {
        // 0 - 1 - 2 with a diagonal entry to be dropped
        let mut m = Coo::new(3, 3);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        m.push(1, 2, 1.0);
        m.push(2, 1, 1.0);
        m.push(1, 1, 5.0);
        Graph::from_matrix(&m.to_csc())
    }

    #[test]
    fn structure_symmetric_no_loops() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.neighbors(0).0, &[1]);
        assert_eq!(g.neighbors(1).0, &[0, 2]);
        assert_eq!(g.neighbors(2).0, &[1]);
    }

    #[test]
    fn asymmetric_matrix_is_symmetrized() {
        let mut m = Coo::new(3, 3);
        m.push(0, 2, 1.0); // only one direction stored
        let g = Graph::from_matrix(&m.to_csc());
        assert_eq!(g.neighbors(0).0, &[2]);
        assert_eq!(g.neighbors(2).0, &[0]);
    }

    #[test]
    fn weights_carried() {
        let mut m = Coo::new(2, 2);
        m.push(0, 1, 1.0);
        m.push(1, 0, 1.0);
        let g = Graph::from_matrix_weighted(&m.to_csc(), vec![10, 20]);
        assert_eq!(g.vwgt(0), 10);
        assert_eq!(g.total_vwgt(), 30);
    }

    #[test]
    fn induce_subgraph() {
        let g = path3();
        let sub = g.induce(&[0, 1]); // drop vertex 2
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.neighbors(0).0, &[1]);
        assert_eq!(sub.neighbors(1).0, &[0], "edge to dropped vertex removed");
    }

    #[test]
    fn induce_relabels() {
        let g = path3();
        let sub = g.induce(&[1, 2]); // 1->0, 2->1
        assert_eq!(sub.neighbors(0).0, &[1]);
        assert_eq!(sub.neighbors(1).0, &[0]);
    }
}
