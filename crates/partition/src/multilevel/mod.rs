//! Multilevel k-way partitioning driver: coarsen → initial partition →
//! uncoarsen + refine. The algorithm family of METIS [Karypis & Kumar].

mod coarsen;
mod initial;
mod refine;

use crate::graph::Graph;
use rand::SeedableRng;

pub(crate) type Rng = rand::rngs::StdRng;

/// Tuning knobs for [`partition_kway`].
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// Number of parts.
    pub k: usize,
    /// Allowed imbalance: max part weight ≤ (1+epsilon)·(total/k).
    pub epsilon: f64,
    /// RNG seed (matching, tie-breaks, growing seeds).
    pub seed: u64,
    /// Stop coarsening when the graph has at most `max(coarse_floor, 8k)`
    /// vertices.
    pub coarse_floor: usize,
    /// FM refinement passes per uncoarsening level.
    pub refine_passes: usize,
}

impl PartitionConfig {
    pub fn new(k: usize) -> PartitionConfig {
        PartitionConfig {
            k,
            epsilon: 0.05,
            seed: 1,
            coarse_floor: 256,
            refine_passes: 4,
        }
    }
}

/// Partition `g` into `cfg.k` parts, balancing vertex weight, minimizing
/// edge cut. Returns `parts[v] ∈ 0..k`.
pub fn partition_kway(g: &Graph, cfg: &PartitionConfig) -> Vec<u32> {
    assert!(cfg.k >= 1);
    if cfg.k == 1 {
        return vec![0; g.n()];
    }
    if g.n() <= cfg.k {
        // degenerate: one vertex per part
        return (0..g.n() as u32).collect();
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);

    // ---- coarsening phase ----
    let floor = cfg.coarse_floor.max(8 * cfg.k);
    let mut levels: Vec<(Graph, Vec<u32>)> = Vec::new(); // (fine graph, fine->coarse map)
    let mut current = g.clone();
    while current.n() > floor {
        let (coarse, map) = coarsen::coarsen(&current, &mut rng);
        // Stalled matching (too many isolated/self matches) — stop.
        if coarse.n() as f64 > 0.95 * current.n() as f64 {
            break;
        }
        levels.push((std::mem::replace(&mut current, coarse), map));
    }

    // ---- initial partition on the coarsest graph (best of several) ----
    let mut parts = Vec::new();
    let mut best_cut = u64::MAX;
    for _ in 0..4 {
        let mut cand = initial::initial_partition(&current, cfg.k, cfg.epsilon, &mut rng);
        refine::refine(
            &current,
            &mut cand,
            cfg.k,
            cfg.epsilon,
            cfg.refine_passes,
            &mut rng,
        );
        let cut = crate::metrics::edge_cut(&current, &cand);
        if cut < best_cut {
            best_cut = cut;
            parts = cand;
        }
    }

    // ---- uncoarsening + refinement ----
    while let Some((fine, map)) = levels.pop() {
        let mut fine_parts = vec![0u32; fine.n()];
        for v in 0..fine.n() {
            fine_parts[v] = parts[map[v] as usize];
        }
        parts = fine_parts;
        refine::refine(
            &fine,
            &mut parts,
            cfg.k,
            cfg.epsilon,
            cfg.refine_passes,
            &mut rng,
        );
        current = fine;
    }
    let _ = current;
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, edge_cut};
    use sa_sparse::gen::{sbm, stencil3d};
    use sa_sparse::stats::squaring_vertex_weights;

    #[test]
    fn partitions_are_valid_and_balanced() {
        let a = stencil3d(8, 8, 8, true);
        let g = Graph::from_matrix(&a);
        for k in [2, 4, 7] {
            let parts = partition_kway(&g, &PartitionConfig::new(k));
            assert_eq!(parts.len(), g.n());
            assert!(parts.iter().all(|&p| (p as usize) < k));
            // every part non-empty
            for p in 0..k as u32 {
                assert!(parts.contains(&p), "part {p} empty for k={k}");
            }
            let bal = balance(&g, &parts, k);
            assert!(bal < 1.25, "k={k} balance {bal}");
        }
    }

    #[test]
    fn beats_random_partition_on_structured_graph() {
        let a = stencil3d(10, 10, 10, true);
        let g = Graph::from_matrix(&a);
        let k = 8;
        let parts = partition_kway(&g, &PartitionConfig::new(k));
        let cut = edge_cut(&g, &parts);
        // random assignment cut
        use rand::Rng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let rand_parts: Vec<u32> = (0..g.n()).map(|_| rng.gen_range(0..k as u32)).collect();
        let rand_cut = edge_cut(&g, &rand_parts);
        // The optimal 2x2x2 spatial blocking of a 10^3 27-pt stencil cuts
        // ~2352 edges (3 planes x ~784 crossing edges); accept within 25%
        // of that, far below the random baseline.
        assert!(
            (cut as f64) < 1.25 * 2352.0,
            "multilevel cut {cut} should be near the ~2352 optimum"
        );
        assert!(
            (cut as f64) < 0.35 * rand_cut as f64,
            "multilevel cut {cut} vs random {rand_cut}"
        );
    }

    #[test]
    fn recovers_planted_communities() {
        // 8 communities, strong internal structure, labels hidden.
        let a = sbm(1600, 8, 16.0, 0.5, true, 3);
        let g = Graph::from_matrix(&a);
        let parts = partition_kway(&g, &PartitionConfig::new(8));
        let cut = edge_cut(&g, &parts);
        let total: u64 = (0..g.n())
            .map(|v| g.neighbors(v).1.iter().sum::<u64>())
            .sum::<u64>()
            / 2;
        assert!(
            (cut as f64) < 0.25 * total as f64,
            "cut {cut} of {total} edges — should isolate communities"
        );
    }

    #[test]
    fn respects_squared_degree_weights() {
        let a = sbm(1200, 6, 12.0, 1.0, true, 5);
        let w = squaring_vertex_weights(&a);
        let g = Graph::from_matrix_weighted(&a, w);
        let parts = partition_kway(&g, &PartitionConfig::new(6));
        let bal = balance(&g, &parts, 6);
        assert!(bal < 1.3, "flop-weighted balance {bal}");
    }

    #[test]
    fn k_equals_one() {
        let a = stencil3d(4, 4, 4, true);
        let g = Graph::from_matrix(&a);
        let parts = partition_kway(&g, &PartitionConfig::new(1));
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn tiny_graph_fewer_vertices_than_parts() {
        let a = stencil3d(2, 2, 1, true); // 4 vertices
        let g = Graph::from_matrix(&a);
        let parts = partition_kway(&g, &PartitionConfig::new(4));
        let mut sorted = parts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = sbm(600, 4, 10.0, 1.0, true, 7);
        let g = Graph::from_matrix(&a);
        let cfg = PartitionConfig::new(4);
        assert_eq!(partition_kway(&g, &cfg), partition_kway(&g, &cfg));
    }
}
