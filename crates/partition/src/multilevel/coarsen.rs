//! Coarsening by heavy-edge matching (HEM): visit vertices in random order,
//! match each unmatched vertex with its unmatched neighbor of heaviest edge,
//! then contract matched pairs into coarse vertices.

use super::Rng;
use crate::graph::Graph;
use rand::seq::SliceRandom;
use sa_sparse::Vidx;
use std::collections::HashMap;

/// One coarsening level. Returns the coarse graph and the fine→coarse map.
pub fn coarsen(g: &Graph, rng: &mut Rng) -> (Graph, Vec<u32>) {
    let n = g.n();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        let (nbrs, wts) = g.neighbors(v);
        let mut best: Option<(u64, usize)> = None;
        for (&u, &w) in nbrs.iter().zip(wts) {
            let u = u as usize;
            if u != v && mate[u] == UNMATCHED {
                match best {
                    Some((bw, _)) if bw >= w => {}
                    _ => best = Some((w, u)),
                }
            }
        }
        match best {
            Some((_, u)) => {
                mate[v] = u as u32;
                mate[u] = v as u32;
            }
            None => mate[v] = v as u32, // self-match (stays singleton)
        }
    }

    // Assign coarse ids: pair gets one id (owned by the smaller endpoint).
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        map[v] = next;
        map[m] = next; // self-match: same write twice
        next += 1;
    }
    let cn = next as usize;

    // Build the coarse graph: sum vertex weights, merge parallel edges.
    let mut cvwgt = vec![0u64; cn];
    for v in 0..n {
        cvwgt[map[v] as usize] += g.vwgt(v);
    }
    let mut xadj = vec![0usize; cn + 1];
    let mut adjncy: Vec<Vidx> = Vec::new();
    let mut adjwgt: Vec<u64> = Vec::new();
    // bucket fine vertices per coarse vertex
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cn];
    for v in 0..n {
        members[map[v] as usize].push(v as u32);
    }
    let mut acc: HashMap<u32, u64> = HashMap::new();
    for c in 0..cn {
        acc.clear();
        for &v in &members[c] {
            let (nbrs, wts) = g.neighbors(v as usize);
            for (&u, &w) in nbrs.iter().zip(wts) {
                let cu = map[u as usize];
                if cu as usize != c {
                    *acc.entry(cu).or_insert(0) += w;
                }
            }
        }
        let mut pairs: Vec<(u32, u64)> = acc.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable_by_key(|p| p.0);
        for (u, w) in pairs {
            adjncy.push(u);
            adjwgt.push(w);
        }
        xadj[c + 1] = adjncy.len();
    }
    (Graph::from_parts(xadj, adjncy, adjwgt, cvwgt), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sa_sparse::gen::stencil3d;

    #[test]
    fn shrinks_substantially() {
        let g = Graph::from_matrix(&stencil3d(6, 6, 6, true));
        let mut rng = Rng::seed_from_u64(1);
        let (coarse, map) = coarsen(&g, &mut rng);
        assert!(coarse.n() <= (g.n() * 3) / 4, "{} -> {}", g.n(), coarse.n());
        assert_eq!(map.len(), g.n());
        assert!(map.iter().all(|&c| (c as usize) < coarse.n()));
    }

    #[test]
    fn preserves_total_vertex_weight() {
        let a = stencil3d(5, 5, 5, true);
        let w: Vec<u64> = (0..a.nrows() as u64).map(|i| i + 1).collect();
        let g = Graph::from_matrix_weighted(&a, w);
        let mut rng = Rng::seed_from_u64(2);
        let (coarse, _) = coarsen(&g, &mut rng);
        assert_eq!(coarse.total_vwgt(), g.total_vwgt());
    }

    #[test]
    fn preserves_cross_pair_edge_weight() {
        // Total edge weight between distinct coarse vertices equals total
        // fine edge weight minus intra-pair weight — and nothing is created.
        let g = Graph::from_matrix(&stencil3d(4, 4, 4, true));
        let mut rng = Rng::seed_from_u64(3);
        let (coarse, map) = coarsen(&g, &mut rng);
        let map_ref = &map;
        let fine_cross: u64 = (0..g.n())
            .flat_map(|v| {
                let (nbrs, wts) = g.neighbors(v);
                nbrs.iter()
                    .zip(wts)
                    .filter(move |(&u, _)| map_ref[u as usize] != map_ref[v])
                    .map(|(_, &w)| w)
                    .collect::<Vec<_>>()
            })
            .sum();
        let coarse_total: u64 = (0..coarse.n())
            .map(|v| coarse.neighbors(v).1.iter().sum::<u64>())
            .sum();
        assert_eq!(coarse_total, fine_cross);
    }

    #[test]
    fn map_pairs_are_adjacent_or_self() {
        let g = Graph::from_matrix(&stencil3d(4, 4, 2, true));
        let mut rng = Rng::seed_from_u64(4);
        let (_, map) = coarsen(&g, &mut rng);
        // every coarse vertex has at most 2 fine members
        let mut count = std::collections::HashMap::new();
        for &c in &map {
            *count.entry(c).or_insert(0usize) += 1;
        }
        assert!(count.values().all(|&c| c <= 2));
    }
}
