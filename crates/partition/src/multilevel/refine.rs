//! Boundary refinement (Fiduccia–Mattheyses greedy variant): move boundary
//! vertices to the neighboring part with the best edge-cut gain while the
//! balance constraint holds.

use super::Rng;
use crate::graph::Graph;
use rand::seq::SliceRandom;

/// In-place k-way refinement, up to `passes` sweeps or until no moves.
pub fn refine(g: &Graph, parts: &mut [u32], k: usize, epsilon: f64, passes: usize, rng: &mut Rng) {
    let n = g.n();
    let total = g.total_vwgt();
    let max_allowed = ((total as f64 / k as f64) * (1.0 + epsilon)).ceil() as u64;
    let mut pwgt = vec![0u64; k];
    for v in 0..n {
        pwgt[parts[v] as usize] += g.vwgt(v);
    }
    // connectivity[p] scratch reused per vertex
    let mut conn = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::new();
    let mut order: Vec<u32> = (0..n as u32).collect();

    for _pass in 0..passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let v = v as usize;
            let my = parts[v] as usize;
            let (nbrs, wts) = g.neighbors(v);
            // external connectivity per neighbor part
            touched.clear();
            let mut internal = 0u64;
            for (&u, &w) in nbrs.iter().zip(wts) {
                let pu = parts[u as usize] as usize;
                if pu == my {
                    internal += w;
                } else {
                    if conn[pu] == 0 {
                        touched.push(pu as u32);
                    }
                    conn[pu] += w;
                }
            }
            // best candidate move
            let vw = g.vwgt(v);
            let mut best: Option<(i64, usize)> = None;
            for &p in &touched {
                let p = p as usize;
                if pwgt[p] + vw > max_allowed {
                    continue;
                }
                let gain = conn[p] as i64 - internal as i64;
                let better = match best {
                    Some((bg, _)) => gain > bg,
                    None => true,
                };
                if better {
                    best = Some((gain, p));
                }
            }
            if let Some((gain, p)) = best {
                // accept strict gains, or zero-gain moves that improve balance
                let improves_balance = pwgt[my] > pwgt[p] + vw;
                if gain > 0 || (gain == 0 && improves_balance) {
                    pwgt[my] -= vw;
                    pwgt[p] += vw;
                    parts[v] = p as u32;
                    moved += 1;
                }
            }
            for &p in &touched {
                conn[p as usize] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{balance, edge_cut};
    use rand::SeedableRng;
    use sa_sparse::gen::stencil3d;

    #[test]
    fn refinement_never_worsens_cut() {
        let g = Graph::from_matrix(&stencil3d(6, 6, 6, true));
        let mut rng = Rng::seed_from_u64(1);
        use rand::Rng as _;
        let mut parts: Vec<u32> = (0..g.n()).map(|_| rng.gen_range(0..4)).collect();
        let before = edge_cut(&g, &parts);
        refine(&g, &mut parts, 4, 0.05, 6, &mut rng);
        let after = edge_cut(&g, &parts);
        assert!(after <= before, "cut {before} -> {after}");
        assert!(
            (after as f64) < 0.7 * before as f64,
            "random partition should improve a lot: {before} -> {after}"
        );
    }

    #[test]
    fn respects_balance_cap() {
        let g = Graph::from_matrix(&stencil3d(5, 5, 5, true));
        let mut rng = Rng::seed_from_u64(2);
        use rand::Rng as _;
        let mut parts: Vec<u32> = (0..g.n()).map(|_| rng.gen_range(0..5)).collect();
        refine(&g, &mut parts, 5, 0.05, 8, &mut rng);
        // refinement must not blow the cap it was given even if it started
        // roughly balanced
        let bal = balance(&g, &parts, 5);
        assert!(bal <= 1.3, "balance {bal}");
    }

    #[test]
    fn perfect_partition_is_stable() {
        // two cliques joined by one edge, already optimally split
        use sa_sparse::Coo;
        let mut m = Coo::new(8, 8);
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    m.push(i, j, 1.0);
                    m.push(i + 4, j + 4, 1.0);
                }
            }
        }
        m.push(0, 4, 1.0);
        m.push(4, 0, 1.0);
        let g = Graph::from_matrix(&m.to_csc_with(|a, _| a));
        let mut parts = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut rng = Rng::seed_from_u64(3);
        refine(&g, &mut parts, 2, 0.05, 4, &mut rng);
        assert_eq!(parts, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }
}
