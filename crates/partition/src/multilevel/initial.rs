//! Initial partitioning of the coarsest graph: recursive bisection with
//! greedy (BFS) graph growing, best-of-several-seeds.

use super::Rng;
use crate::graph::Graph;
use crate::metrics::edge_cut;
use rand::Rng as _;
use sa_sparse::Vidx;
use std::collections::VecDeque;

/// Partition `g` into `k` parts by recursive bisection.
pub fn initial_partition(g: &Graph, k: usize, epsilon: f64, rng: &mut Rng) -> Vec<u32> {
    let mut parts = vec![0u32; g.n()];
    let ids: Vec<Vidx> = (0..g.n() as u32).collect();
    recurse(g, &ids, k, 0, epsilon, rng, &mut parts);
    parts
}

/// Partition the sub-graph induced on `ids` into parts `base..base+k`.
fn recurse(
    g: &Graph,
    ids: &[Vidx],
    k: usize,
    base: u32,
    epsilon: f64,
    rng: &mut Rng,
    parts: &mut [u32],
) {
    if k == 1 {
        for &v in ids {
            parts[v as usize] = base;
        }
        return;
    }
    let sub = g.induce(ids);
    let k_left = k / 2;
    let frac = k_left as f64 / k as f64;
    let side = grow_bisection(&sub, frac, epsilon, rng);
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for (new, &old) in ids.iter().enumerate() {
        if side[new] {
            left.push(old);
        } else {
            right.push(old);
        }
    }
    // Degenerate guard: growing can fail only on pathological graphs.
    if left.is_empty() || right.is_empty() {
        let mid = ids.len() / 2;
        left = ids[..mid].to_vec();
        right = ids[mid..].to_vec();
    }
    recurse(g, &left, k_left, base, epsilon, rng, parts);
    recurse(
        g,
        &right,
        k - k_left,
        base + k_left as u32,
        epsilon,
        rng,
        parts,
    );
}

/// Grow a region of ~`frac` of the total vertex weight by BFS from a random
/// seed; several trials, keep the lowest-cut result. Returns the side mask.
fn grow_bisection(g: &Graph, frac: f64, _epsilon: f64, rng: &mut Rng) -> Vec<bool> {
    let total = g.total_vwgt();
    let target = (total as f64 * frac) as u64;
    let trials = 4.min(g.n()).max(1);
    let mut best: Option<(u64, Vec<bool>)> = None;
    for _ in 0..trials {
        let seed = rng.gen_range(0..g.n());
        let mut side = vec![false; g.n()];
        let mut weight = 0u64;
        let mut queue = VecDeque::new();
        let mut seen = vec![false; g.n()];
        queue.push_back(seed);
        seen[seed] = true;
        while weight < target {
            let v = match queue.pop_front() {
                Some(v) => v,
                None => {
                    // disconnected: jump to an unseen vertex
                    match (0..g.n()).find(|&u| !seen[u]) {
                        Some(u) => {
                            seen[u] = true;
                            u
                        }
                        None => break,
                    }
                }
            };
            side[v] = true;
            weight += g.vwgt(v);
            for &u in g.neighbors(v).0 {
                let u = u as usize;
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        let as_parts: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let cut = edge_cut(g, &as_parts);
        if best.as_ref().map(|(c, _)| cut < *c).unwrap_or(true) {
            best = Some((cut, side));
        }
    }
    best.expect("at least one trial").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::balance;
    use rand::SeedableRng;
    use sa_sparse::gen::stencil3d;

    #[test]
    fn bisection_splits_grid_spatially() {
        let g = Graph::from_matrix(&stencil3d(8, 8, 4, true));
        let mut rng = Rng::seed_from_u64(5);
        let parts = initial_partition(&g, 2, 0.05, &mut rng);
        let bal = balance(&g, &parts, 2);
        assert!(bal < 1.2, "balance {bal}");
        // a spatial bisection of a 2048-edge-ish grid should cut a small
        // fraction of total edges
        let cut = edge_cut(&g, &parts);
        let total: u64 = (0..g.n()).map(|v| g.degree(v) as u64).sum::<u64>() / 2;
        assert!(cut * 4 < total, "cut {cut} of {total}");
    }

    #[test]
    fn all_parts_populated_for_odd_k() {
        let g = Graph::from_matrix(&stencil3d(6, 6, 3, true));
        let mut rng = Rng::seed_from_u64(6);
        let parts = initial_partition(&g, 5, 0.05, &mut rng);
        for p in 0..5u32 {
            assert!(parts.contains(&p), "part {p} empty");
        }
    }

    #[test]
    fn handles_disconnected_graph() {
        // two disjoint paths
        use sa_sparse::Coo;
        let mut m = Coo::new(6, 6);
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            m.push(a, b, 1.0);
            m.push(b, a, 1.0);
        }
        let g = Graph::from_matrix(&m.to_csc());
        let mut rng = Rng::seed_from_u64(7);
        let parts = initial_partition(&g, 2, 0.05, &mut rng);
        assert!(parts.contains(&0) && parts.contains(&1));
    }
}
