//! Partition quality metrics: edge cut, balance, and the 1D-SpGEMM
//! communication volume a partition implies.

use crate::graph::Graph;

/// Total weight of edges crossing parts (each undirected edge counted once).
pub fn edge_cut(g: &Graph, parts: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.n() {
        let (nbrs, wts) = g.neighbors(v);
        for (&u, &w) in nbrs.iter().zip(wts) {
            if parts[u as usize] != parts[v] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// max part weight / ideal part weight (1.0 = perfect).
pub fn balance(g: &Graph, parts: &[u32], k: usize) -> f64 {
    let mut pwgt = vec![0u64; k];
    for v in 0..g.n() {
        pwgt[parts[v] as usize] += g.vwgt(v);
    }
    let max = *pwgt.iter().max().unwrap_or(&0) as f64;
    let ideal = g.total_vwgt() as f64 / k as f64;
    if ideal == 0.0 {
        1.0
    } else {
        max / ideal
    }
}

/// Communication volume of a 1D column distribution implied by the
/// partition, in "column transfers": for each vertex `v`, the number of
/// *other* parts containing a neighbor of `v` — each such part must fetch
/// `v`'s column. This is the hypergraph connectivity-minus-one metric that
/// models the paper's fetch volume.
pub fn comm_volume_1d(g: &Graph, parts: &[u32], k: usize) -> u64 {
    let mut seen = vec![u64::MAX; k];
    let mut vol = 0u64;
    for v in 0..g.n() {
        let my = parts[v];
        let (nbrs, _) = g.neighbors(v);
        for &u in nbrs {
            let p = parts[u as usize];
            if p != my && seen[p as usize] != v as u64 {
                seen[p as usize] = v as u64;
                vol += 1;
            }
        }
    }
    vol
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::Coo;

    fn two_triangles_bridge() -> Graph {
        // triangle {0,1,2} - bridge - triangle {3,4,5}
        let mut m = Coo::new(6, 6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            m.push(a, b, 1.0);
            m.push(b, a, 1.0);
        }
        Graph::from_matrix(&m.to_csc())
    }

    #[test]
    fn edge_cut_counts_crossings_once() {
        let g = two_triangles_bridge();
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(edge_cut(&g, &parts), 1);
        let worse = vec![0, 1, 0, 1, 0, 1];
        assert!(edge_cut(&g, &worse) > 1);
    }

    #[test]
    fn balance_perfect_and_skewed() {
        let g = two_triangles_bridge();
        assert_eq!(balance(&g, &[0, 0, 0, 1, 1, 1], 2), 1.0);
        assert_eq!(balance(&g, &[0, 0, 0, 0, 0, 1], 2), 5.0 / 3.0);
    }

    #[test]
    fn comm_volume_counts_boundary_vertices() {
        let g = two_triangles_bridge();
        // cut edge (2,3): vertex 2 needed by part 1, vertex 3 by part 0.
        assert_eq!(comm_volume_1d(&g, &[0, 0, 0, 1, 1, 1], 2), 2);
        // all in one part: zero volume
        assert_eq!(comm_volume_1d(&g, &[0; 6], 1), 0);
    }

    #[test]
    fn comm_volume_multiplicity() {
        // star: center 0 with leaves in 3 different parts => center counted
        // once per remote part (3), each leaf once (3) => 6 total... leaves'
        // only neighbor is 0 which is remote to them.
        let mut m = Coo::new(4, 4);
        for l in 1..4u32 {
            m.push(0, l, 1.0);
            m.push(l, 0, 1.0);
        }
        let g = Graph::from_matrix(&m.to_csc());
        let parts = vec![0, 1, 2, 3];
        assert_eq!(comm_volume_1d(&g, &parts, 4), 6);
    }
}
