//! Graph partitioning and permutation strategies for sparsity-aware SpGEMM.
//!
//! The paper (§III-B) partitions the input graph with (Par)METIS using
//! vertex weights equal to the *square* of each vertex's degree (the
//! sparse-flop estimate for squaring), so that both nonzeros and local
//! SpGEMM work are balanced across the 1D process slices. This crate
//! implements the same multilevel k-way scheme METIS uses:
//!
//! 1. **Coarsening** by heavy-edge matching until the graph is small,
//! 2. **Initial partitioning** by recursive bisection with greedy graph
//!    growing,
//! 3. **Uncoarsening** with Fiduccia–Mattheyses-style boundary refinement
//!    at every level.
//!
//! It also provides the *random symmetric permutation* baseline the 2D/3D
//! sparsity-oblivious algorithms need, and the conversion from a partition
//! vector to a (permutation, 1D column-offset) pair that the distributed
//! matrices consume.
//!
//! Module map (paper § in parentheses):
//!
//! * [`Graph`] / [`partition_kway`] — the METIS-class multilevel k-way
//!   partitioner with squared-degree vertex weights (§III-B).
//! * [`hypergraph`] — the column-net hypergraph whose connectivity metric
//!   prices the 1D algorithm's column-exact communication volume exactly
//!   (the model behind the needed-column set the fetch cache persists).
//! * [`random_symmetric_perm`] — the §IV baseline permutation.
//! * [`partition_to_perm`] / [`PartLayout`] — partition vector →
//!   (permutation, 1D offsets) for the distributed matrices.
//! * [`metrics`] — edge-cut / connectivity / balance diagnostics.

mod graph;
pub mod hypergraph;
pub mod metrics;
mod multilevel;
mod perm_builder;

pub use graph::Graph;
pub use hypergraph::{
    connectivity_volume, hypergraph_layout, partition_hypergraph, HyperConfig, Hypergraph,
};
pub use multilevel::{partition_kway, PartitionConfig};
pub use perm_builder::{partition_to_perm, PartLayout};

use sa_sparse::Perm;

/// Uniformly random symmetric permutation — the load-balancing
/// preprocessing of the sparsity-oblivious algorithms (§II-B1).
pub fn random_symmetric_perm(n: usize, seed: u64) -> Perm {
    Perm::random(n, seed)
}
