//! Hypergraph partitioning for 1D SpGEMM — the §II-B extension.
//!
//! The paper's related work (Akbudak & Aykanat [2, 4]) models 1D SpGEMM
//! communication *exactly* with a hypergraph: unlike the graph model, whose
//! edge cut only approximates communication, the **connectivity metric**
//! `Σ_nets cost(net)·(λ(net) − 1)` equals the true volume the
//! sparsity-aware 1D algorithm moves.
//!
//! For squaring (`C = A·A`, the paper's §IV-A workload) the model is the
//! *column-net* construction: vertex `j` is column `j` of `A`; net `n_k`
//! connects vertex `k` with every vertex `j` such that `A[k, j] ≠ 0`, and
//! costs `nnz(A(:,k))` (the bytes-proportional size of column `k`). A part
//! needs column `k` exactly when it owns some column `j` with `A[k,j] ≠ 0`
//! (then row `k` of its `B` slice is nonzero — Algorithm 1's `⃗H` test), so
//! column `k` is fetched by `λ(n_k) − 1` non-owner parts.
//!
//! The partitioner is a multilevel-style recursive bisection: greedy
//! net-aware growing for the initial split, then Fiduccia–Mattheyses
//! boundary passes using exact connectivity gains. This is the same
//! algorithm family as PaToH, scaled to this repository's needs.

use crate::perm_builder::{partition_to_perm, PartLayout};
use sa_sparse::{Csc, Vidx};

/// A hypergraph: vertices with weights, nets (hyperedges) with costs.
#[derive(Clone, Debug)]
pub struct Hypergraph {
    /// Net pin lists in CSR form: net `i` pins are
    /// `pins[xpins[i]..xpins[i+1]]`.
    xpins: Vec<usize>,
    pins: Vec<Vidx>,
    /// Cost charged per unit of connectivity above 1.
    ncost: Vec<u64>,
    /// Vertex weights (flop balance, squared column nnz per §III-B).
    vwgt: Vec<u64>,
}

impl Hypergraph {
    /// Assemble from raw parts.
    pub fn from_parts(
        xpins: Vec<usize>,
        pins: Vec<Vidx>,
        ncost: Vec<u64>,
        vwgt: Vec<u64>,
    ) -> Hypergraph {
        assert_eq!(xpins.len(), ncost.len() + 1);
        assert_eq!(*xpins.last().unwrap_or(&0), pins.len());
        Hypergraph {
            xpins,
            pins,
            ncost,
            vwgt,
        }
    }

    /// The column-net model of squaring a square matrix `A` (see module
    /// docs): one vertex and one net per column; net `k` pins `{k} ∪
    /// {j : A[k,j] ≠ 0}`, cost `nnz(A(:,k))`; vertex weight
    /// `nnz(A(:,j))²` (the §III-B sparse-flop estimate).
    ///
    /// ```
    /// use sa_partition::{connectivity_volume, Hypergraph};
    /// use sa_sparse::gen::banded;
    ///
    /// let a = banded(100, 3, 1.0, true, 1);
    /// let h = Hypergraph::column_net_squaring(&a);
    /// assert_eq!(h.nverts(), 100);
    /// // splitting the band in half only cuts the nets at the boundary
    /// let parts: Vec<u32> = (0..100).map(|v| (v >= 50) as u32).collect();
    /// let vol = connectivity_volume(&h, &parts, 2);
    /// assert!(vol > 0 && vol < a.nnz() as u64 / 10);
    /// ```
    pub fn column_net_squaring(a: &Csc<f64>) -> Hypergraph {
        assert_eq!(a.nrows(), a.ncols(), "squaring model needs square A");
        let n = a.ncols();
        let at = a.transpose(); // at.col(k) = row k of A = pins of net k
        let mut xpins = Vec::with_capacity(n + 1);
        let mut pins: Vec<Vidx> = Vec::with_capacity(a.nnz() + n);
        let mut ncost = Vec::with_capacity(n);
        let mut vwgt = Vec::with_capacity(n);
        xpins.push(0usize);
        for k in 0..n {
            let (row_js, _) = at.col(k);
            // merge {k} into the sorted pin list, dropping the duplicate
            let mut inserted = false;
            for &j in row_js {
                if !inserted && (j as usize) >= k {
                    if (j as usize) != k {
                        pins.push(k as Vidx);
                    }
                    inserted = true;
                }
                pins.push(j);
            }
            if !inserted {
                pins.push(k as Vidx);
            }
            xpins.push(pins.len());
            ncost.push(a.col_nnz(k) as u64);
            let d = a.col_nnz(k) as u64;
            vwgt.push(d * d);
        }
        Hypergraph {
            xpins,
            pins,
            ncost,
            vwgt,
        }
    }

    /// Number of vertices.
    pub fn nverts(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of nets.
    pub fn nnets(&self) -> usize {
        self.ncost.len()
    }

    /// Pins of net `i`.
    pub fn net(&self, i: usize) -> &[Vidx] {
        &self.pins[self.xpins[i]..self.xpins[i + 1]]
    }

    /// Vertex weights.
    pub fn vwgt(&self) -> &[u64] {
        &self.vwgt
    }

    /// Net costs.
    pub fn ncost(&self) -> &[u64] {
        &self.ncost
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Build the inverse (vertex → nets containing it) incidence in CSR.
    fn vertex_to_nets(&self) -> (Vec<usize>, Vec<Vidx>) {
        let n = self.nverts();
        let mut deg = vec![0usize; n];
        for &p in &self.pins {
            deg[p as usize] += 1;
        }
        let mut xnets = Vec::with_capacity(n + 1);
        xnets.push(0usize);
        for v in 0..n {
            xnets.push(xnets[v] + deg[v]);
        }
        let mut cursor = xnets.clone();
        let mut nets = vec![0 as Vidx; self.pins.len()];
        for i in 0..self.nnets() {
            for &p in self.net(i) {
                nets[cursor[p as usize]] = i as Vidx;
                cursor[p as usize] += 1;
            }
        }
        (xnets, nets)
    }
}

/// Connectivity metric `Σ cost(net)·(λ − 1)` — the exact 1D SpGEMM
/// communication volume (in nnz units) of the partition.
pub fn connectivity_volume(h: &Hypergraph, parts: &[u32], k: usize) -> u64 {
    assert_eq!(parts.len(), h.nverts());
    let mut seen = vec![u32::MAX; k];
    let mut vol = 0u64;
    for i in 0..h.nnets() {
        let mut lambda = 0u64;
        for &p in h.net(i) {
            let pt = parts[p as usize] as usize;
            if seen[pt] != i as u32 {
                seen[pt] = i as u32;
                lambda += 1;
            }
        }
        vol += h.ncost[i] * lambda.saturating_sub(1);
    }
    vol
}

/// Number of nets spanning more than one part (the "cut nets").
pub fn cut_nets(h: &Hypergraph, parts: &[u32]) -> usize {
    (0..h.nnets())
        .filter(|&i| {
            let net = h.net(i);
            net.iter()
                .any(|&p| parts[p as usize] != parts[net[0] as usize])
        })
        .count()
}

/// Max part weight over average part weight (1.0 = perfectly balanced).
pub fn hyper_balance(h: &Hypergraph, parts: &[u32], k: usize) -> f64 {
    let mut w = vec![0u64; k];
    for (v, &p) in parts.iter().enumerate() {
        w[p as usize] += h.vwgt[v];
    }
    let max = *w.iter().max().unwrap_or(&0) as f64;
    let avg = h.total_vwgt() as f64 / k as f64;
    if avg == 0.0 {
        1.0
    } else {
        max / avg
    }
}

/// Configuration of the recursive-bisection hypergraph partitioner.
#[derive(Clone, Copy, Debug)]
pub struct HyperConfig {
    /// Number of parts.
    pub k: usize,
    /// Allowed imbalance per bisection (0.05 = 5%).
    pub epsilon: f64,
    /// FM refinement passes per bisection.
    pub passes: usize,
    /// RNG seed for tie-breaking and growth starts.
    pub seed: u64,
}

impl HyperConfig {
    /// Defaults matching the graph partitioner's (ε = 5%, 4 passes).
    pub fn new(k: usize) -> HyperConfig {
        HyperConfig {
            k,
            epsilon: 0.05,
            passes: 4,
            seed: 1,
        }
    }
}

/// Partition the hypergraph into `cfg.k` parts by recursive bisection,
/// minimizing the connectivity metric. Returns a part id per vertex.
pub fn partition_hypergraph(h: &Hypergraph, cfg: &HyperConfig) -> Vec<u32> {
    assert!(cfg.k >= 1);
    let mut parts = vec![0u32; h.nverts()];
    if cfg.k == 1 || h.nverts() == 0 {
        return parts;
    }
    let all: Vec<Vidx> = (0..h.nverts() as Vidx).collect();
    recurse(h, &all, 0, cfg.k, cfg, &mut parts);
    parts
}

/// Bisect `verts` (a sub-hypergraph by restriction) into part-id ranges
/// `[base, base+split)` and `[base+split, base+k)`, recursing.
fn recurse(
    h: &Hypergraph,
    verts: &[Vidx],
    base: u32,
    k: usize,
    cfg: &HyperConfig,
    parts: &mut [u32],
) {
    if k == 1 {
        for &v in verts {
            parts[v as usize] = base;
        }
        return;
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    let frac_left = k_left as f64 / k as f64;
    let (left, right) = bisect(h, verts, frac_left, cfg);
    recurse(h, &left, base, k_left, cfg, parts);
    recurse(h, &right, base + k_left as u32, k_right, cfg, parts);
}

/// One weighted bisection of `verts`: greedy growth + FM refinement.
/// Returns (left, right) vertex lists.
fn bisect(
    h: &Hypergraph,
    verts: &[Vidx],
    frac_left: f64,
    cfg: &HyperConfig,
) -> (Vec<Vidx>, Vec<Vidx>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (verts.len() as u64) << 1);
    let total: u64 = verts.iter().map(|&v| h.vwgt[v as usize]).sum();
    let target_left = (total as f64 * frac_left) as u64;
    let cap_left = (target_left as f64 * (1.0 + cfg.epsilon)) as u64;

    // membership: 0 = left, 1 = right, restricted to `verts`
    let mut side = vec![1u8; h.nverts()];
    let mut in_sub = vec![false; h.nverts()];
    for &v in verts {
        in_sub[v as usize] = true;
    }

    // (1) greedy growth of the left side from a random start: absorb
    // frontier vertices while that moves the left weight *closer to* the
    // target (classic graph-growing; overshoot bounded by one vertex).
    let (xnets, vnets) = h.vertex_to_nets();
    let start = verts[rng.gen_range(0..verts.len())] as usize;
    let mut wl = 0u64;
    let mut queue: Vec<usize> = vec![start];
    let mut enqueued = vec![false; h.nverts()];
    enqueued[start] = true;
    loop {
        let v = match queue.pop() {
            Some(v) => v,
            None => {
                // disconnected remainder: seed from any right-side vertex
                match verts
                    .iter()
                    .find(|&&u| side[u as usize] == 1 && !enqueued[u as usize])
                {
                    Some(&u) => {
                        enqueued[u as usize] = true;
                        u as usize
                    }
                    None => break,
                }
            }
        };
        if side[v] == 0 {
            continue;
        }
        let w = h.vwgt[v];
        // absorb only while it brings wl closer to the target
        if (wl + w).abs_diff(target_left) >= wl.abs_diff(target_left) && wl > 0 {
            if wl >= target_left {
                break;
            }
            continue; // heavy vertex: skip it, keep growing past it
        }
        side[v] = 0;
        wl += w;
        // push net-neighbours; shuffle within the batch to avoid
        // pathological orderings while keeping growth contiguous (LIFO)
        let mut nbrs: Vec<usize> = Vec::new();
        for &ni in &vnets[xnets[v]..xnets[v + 1]] {
            for &u in h.net(ni as usize) {
                let u = u as usize;
                if in_sub[u] && side[u] == 1 && !enqueued[u] {
                    enqueued[u] = true;
                    nbrs.push(u);
                }
            }
        }
        for i in (1..nbrs.len()).rev() {
            nbrs.swap(i, rng.gen_range(0..=i));
        }
        queue.extend(nbrs);
    }

    // (2) FM refinement on the connectivity metric, with best-prefix
    // rollback: each pass greedily applies the best allowed move (each
    // vertex at most once per pass), tracks the running volume delta, and
    // rewinds to the best balanced state seen.
    let mut pin_l = vec![0u32; h.nnets()];
    let mut pin_r = vec![0u32; h.nnets()];
    let mut net_active = vec![false; h.nnets()];
    for i in 0..h.nnets() {
        for &p in h.net(i) {
            if !in_sub[p as usize] {
                continue;
            }
            net_active[i] = true;
            if side[p as usize] == 0 {
                pin_l[i] += 1;
            } else {
                pin_r[i] += 1;
            }
        }
    }
    let mut cnt_l = verts.iter().filter(|&&v| side[v as usize] == 0).count();
    let mut wl_now = wl;
    let floor_left = (target_left as f64 * (1.0 - cfg.epsilon)) as u64;
    let gain_of = |v: usize, side: &[u8], pin_l: &[u32], pin_r: &[u32]| -> i64 {
        let mut g = 0i64;
        for &ni in &vnets[xnets[v]..xnets[v + 1]] {
            let ni = ni as usize;
            if !net_active[ni] {
                continue;
            }
            let (mine, other) = if side[v] == 0 {
                (pin_l[ni], pin_r[ni])
            } else {
                (pin_r[ni], pin_l[ni])
            };
            if mine == 1 && other > 0 {
                g += h.ncost[ni] as i64;
            } else if other == 0 && mine > 1 {
                g -= h.ncost[ni] as i64;
            }
        }
        g
    };
    for _ in 0..cfg.passes {
        // One pass: snapshot the boundary, order by initial gain, then
        // apply greedily with gains recomputed at apply time (stale-gain
        // FM — O(B log B + B·pins) instead of O(B²·pins)).
        let mut candidates: Vec<(i64, usize)> = verts
            .iter()
            .map(|&v| v as usize)
            .filter(|&v| {
                vnets[xnets[v]..xnets[v + 1]].iter().any(|&ni| {
                    let ni = ni as usize;
                    net_active[ni] && pin_l[ni] > 0 && pin_r[ni] > 0
                })
            })
            .map(|v| (gain_of(v, &side, &pin_l, &pin_r), v))
            .collect();
        candidates.sort_unstable_by_key(|&(g, _)| std::cmp::Reverse(g));
        let mut history: Vec<usize> = Vec::new();
        let mut delta = 0i64; // cumulative volume change (negative = better)
        let mut best_delta = 0i64;
        let mut best_len = 0usize;
        for &(_, v) in &candidates {
            let g = gain_of(v, &side, &pin_l, &pin_r); // fresh gain
            if g < 0 && history.len() >= best_len + 8 {
                break; // short escape budget past the best state
            }
            let w = h.vwgt[v];
            let (new_wl, leaves_empty) = if side[v] == 0 {
                (wl_now - w, cnt_l == 1)
            } else {
                (wl_now + w, cnt_l + 1 == verts.len())
            };
            // block emptying a side; block right→left moves above the cap
            if leaves_empty || (side[v] == 1 && new_wl > cap_left) {
                continue;
            }
            for &ni in &vnets[xnets[v]..xnets[v + 1]] {
                let ni = ni as usize;
                if !net_active[ni] {
                    continue;
                }
                if side[v] == 0 {
                    pin_l[ni] -= 1;
                    pin_r[ni] += 1;
                } else {
                    pin_r[ni] -= 1;
                    pin_l[ni] += 1;
                }
            }
            if side[v] == 0 {
                wl_now -= w;
                cnt_l -= 1;
            } else {
                wl_now += w;
                cnt_l += 1;
            }
            side[v] = 1 - side[v];
            history.push(v);
            delta -= g;
            let balanced = wl_now >= floor_left && wl_now <= cap_left;
            if delta < best_delta && balanced && cnt_l > 0 && cnt_l < verts.len() {
                best_delta = delta;
                best_len = history.len();
            }
        }
        // rewind to the best prefix
        while history.len() > best_len {
            let v = history.pop().unwrap();
            for &ni in &vnets[xnets[v]..xnets[v + 1]] {
                let ni = ni as usize;
                if !net_active[ni] {
                    continue;
                }
                if side[v] == 0 {
                    pin_l[ni] -= 1;
                    pin_r[ni] += 1;
                } else {
                    pin_r[ni] -= 1;
                    pin_l[ni] += 1;
                }
            }
            if side[v] == 0 {
                wl_now -= h.vwgt[v];
                cnt_l -= 1;
            } else {
                wl_now += h.vwgt[v];
                cnt_l += 1;
            }
            side[v] = 1 - side[v];
        }
        if best_len == 0 {
            break;
        }
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    for &v in verts {
        if side[v as usize] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // degenerate growth (e.g. one huge vertex): never return an empty side
    if left.is_empty() {
        left.push(right.pop().unwrap());
    } else if right.is_empty() {
        right.push(left.pop().unwrap());
    }
    (left, right)
}

/// Partition a square matrix for `k`-way 1D SpGEMM with the column-net
/// model and convert the result to a (permutation, offsets) layout, like
/// [`crate::partition_to_perm`] does for the graph partitioner.
pub fn hypergraph_layout(a: &Csc<f64>, cfg: &HyperConfig) -> PartLayout {
    let h = Hypergraph::column_net_squaring(a);
    let parts = partition_hypergraph(&h, cfg);
    partition_to_perm(&parts, cfg.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sparse::gen::{banded, erdos_renyi, sbm};
    use sa_sparse::Coo;

    fn tiny_block_diag() -> Csc<f64> {
        // two 3-cliques joined by one edge: the obvious 2-way split exists
        let mut coo = Coo::new(6, 6);
        for &(u, v) in &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 3)] {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csc_with(|x, _| x)
    }

    #[test]
    fn column_net_counts() {
        let a = tiny_block_diag();
        let h = Hypergraph::column_net_squaring(&a);
        assert_eq!(h.nverts(), 6);
        assert_eq!(h.nnets(), 6);
        // net 0 pins: {0} ∪ {j : A[0,j] ≠ 0} = {0, 1, 2}
        assert_eq!(h.net(0), &[0, 1, 2]);
        // net 2 pins: row 2 touches 0,1,3 plus vertex 2 itself
        assert_eq!(h.net(2), &[0, 1, 2, 3]);
        // cost = column nnz
        assert_eq!(h.ncost()[2], 3);
        assert_eq!(h.vwgt()[2], 9);
    }

    #[test]
    fn connectivity_volume_matches_hand_count() {
        let a = tiny_block_diag();
        let h = Hypergraph::column_net_squaring(&a);
        // the natural split {0,1,2} | {3,4,5}: only nets 2 and 3 span both
        // parts (they contain the bridge 2–3); each costs its column nnz 3.
        let parts = vec![0, 0, 0, 1, 1, 1];
        assert_eq!(connectivity_volume(&h, &parts, 2), 6);
        assert_eq!(cut_nets(&h, &parts), 2);
        // everything in one part: zero volume
        assert_eq!(connectivity_volume(&h, &[0; 6], 1), 0);
    }

    #[test]
    fn partitioner_finds_planted_split() {
        let a = tiny_block_diag();
        let h = Hypergraph::column_net_squaring(&a);
        let parts = partition_hypergraph(&h, &HyperConfig::new(2));
        // both cliques must be pure
        assert_eq!(parts[0], parts[1]);
        assert_eq!(parts[1], parts[2]);
        assert_eq!(parts[3], parts[4]);
        assert_eq!(parts[4], parts[5]);
        assert_ne!(parts[0], parts[3]);
    }

    #[test]
    fn volume_beats_random_assignment_on_banded() {
        let a = banded(600, 6, 1.0, true, 3);
        let h = Hypergraph::column_net_squaring(&a);
        let cfg = HyperConfig::new(8);
        let parts = partition_hypergraph(&h, &cfg);
        let vol = connectivity_volume(&h, &parts, 8);
        // random assignment for comparison
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let rand_parts: Vec<u32> = (0..h.nverts()).map(|_| rng.gen_range(0..8)).collect();
        let rand_vol = connectivity_volume(&h, &rand_parts, 8);
        assert!(
            vol * 4 < rand_vol,
            "partitioned volume {vol} should be ≪ random volume {rand_vol}"
        );
    }

    #[test]
    fn balance_respected_on_clustered_input() {
        let a = sbm(800, 8, 12.0, 1.0, false, 7);
        let h = Hypergraph::column_net_squaring(&a);
        let cfg = HyperConfig::new(8);
        let parts = partition_hypergraph(&h, &cfg);
        let bal = hyper_balance(&h, &parts, 8);
        // recursive bisection compounds ε per level; allow a loose bound
        assert!(bal < 1.8, "balance {bal}");
        let k_used = parts.iter().collect::<std::collections::HashSet<_>>().len();
        assert_eq!(k_used, 8, "all parts populated");
    }

    #[test]
    fn er_matrix_has_no_exploitable_structure() {
        // on an ER matrix even a good partitioner cannot reduce volume
        // much below random — the paper's "worst case for 1D" (§II-A)
        let a = erdos_renyi(400, 400, 8.0, 5);
        let sym = {
            // symmetrize so the model's assumptions hold
            let at = a.transpose();
            sa_sparse::ewise::ewise_add::<sa_sparse::semiring::PlusTimes<f64>>(&a, &at)
        };
        let h = Hypergraph::column_net_squaring(&sym);
        let parts = partition_hypergraph(&h, &HyperConfig::new(4));
        let vol = connectivity_volume(&h, &parts, 4);
        let full = h.ncost().iter().sum::<u64>() * 3; // λ−1 = 3 everywhere
        assert!(
            vol * 10 > full * 4,
            "ER volume {vol} cannot be far below the λ-max {full}"
        );
    }

    #[test]
    fn single_part_trivial() {
        let a = tiny_block_diag();
        let h = Hypergraph::column_net_squaring(&a);
        let parts = partition_hypergraph(&h, &HyperConfig::new(1));
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn layout_offsets_cover_all_columns() {
        let a = banded(200, 4, 1.0, true, 1);
        let layout = hypergraph_layout(&a, &HyperConfig::new(4));
        assert_eq!(layout.offsets.len(), 5);
        assert_eq!(layout.offsets[0], 0);
        assert_eq!(*layout.offsets.last().unwrap(), 200);
        assert!(layout.offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empty_matrix_partitions() {
        let a: Csc<f64> = Csc::zeros(0, 0);
        let h = Hypergraph::column_net_squaring(&a);
        let parts = partition_hypergraph(&h, &HyperConfig::new(4));
        assert!(parts.is_empty());
    }
}
