//! Per-phase wall-clock timing, matching the paper's breakdown legend
//! (Figures 4, 8, 10): *communication* (RDMA fetches), *computation*
//! (local SpGEMM), and *other* (metadata exchange, auxiliary structure
//! construction such as building the local DCSC and the compacted Ã).

use std::cell::RefCell;
use std::time::Instant;

/// The paper's three time-breakdown categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// RDMA requests fetching remote A data.
    Comm,
    /// Local SpGEMM computation.
    Comp,
    /// Auxiliary array/data-structure creation and metadata exchange.
    Other,
}

/// Accumulated seconds per phase.
///
/// These are wall-clock spans, so the *blocking* phases' meaning depends
/// on the backend executing the ranks: under `ThreadComm` on dedicated
/// cores, a span wrapping a blocking call (a receive, a broadcast leg)
/// measures genuine wait skew; under the serial `SimComm` scheduler the
/// same span also contains whatever other ranks executed while this rank
/// held no run permit — up to the whole job, so per-rank `comm_s`/`other_s`
/// around blocking calls are **not** comparable across backends and are
/// not a wait-skew measure under `SimComm`. Compute spans (`comp_s`) never
/// block and are interference-free under `SimComm`. For backend-honest
/// quantities use `rank_active_seconds` (own work) and the α–β model over
/// the exact metered traffic (network time) — the convention the benches
/// print (`sa_bench::modeled_total`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    pub comm_s: f64,
    pub comp_s: f64,
    pub other_s: f64,
}

impl Breakdown {
    pub fn total_s(&self) -> f64 {
        self.comm_s + self.comp_s + self.other_s
    }

    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Comm => self.comm_s,
            Phase::Comp => self.comp_s,
            Phase::Other => self.other_s,
        }
    }
}

impl std::ops::Add for Breakdown {
    type Output = Breakdown;
    fn add(self, o: Breakdown) -> Breakdown {
        Breakdown {
            comm_s: self.comm_s + o.comm_s,
            comp_s: self.comp_s + o.comp_s,
            other_s: self.other_s + o.other_s,
        }
    }
}

/// Finer wall-clock split of one SpGEMM call than [`Breakdown`]: the four
/// stages of the sparsity-aware pipeline. `symbolic` is the metadata /
/// needed-column / fetch-planning work plus window exposure, `fetch` the
/// one-sided window gets, `assemble` the `Ã` (and output) structure
/// builds excluding the gets, and `compute` the local kernel. Benches
/// report these as millis to show where a scheduling or caching change
/// moved the time.
///
/// Relation to [`Breakdown`]: `fetch ≈ comm`, `compute ≈ comp`, and
/// `symbolic + assemble` make up the bulk of `other` (the breakdown's
/// `other` also absorbs glue the phases don't attribute). Under
/// comm/comp overlap the phases are measured per stage and may sum to
/// more than the call's wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    pub symbolic_s: f64,
    pub fetch_s: f64,
    pub compute_s: f64,
    pub assemble_s: f64,
}

impl PhaseTimes {
    /// Σ of the four phases.
    pub fn total_s(&self) -> f64 {
        self.symbolic_s + self.fetch_s + self.compute_s + self.assemble_s
    }
}

impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;
    fn add(self, o: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            symbolic_s: self.symbolic_s + o.symbolic_s,
            fetch_s: self.fetch_s + o.fetch_s,
            compute_s: self.compute_s + o.compute_s,
            assemble_s: self.assemble_s + o.assemble_s,
        }
    }
}

/// Phase accumulator with interior mutability (single-threaded per rank).
#[derive(Default)]
pub struct Timer {
    acc: RefCell<Breakdown>,
}

impl Timer {
    pub fn new() -> Self {
        Timer::default()
    }

    /// Run `f`, charging its wall time to `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(phase, t0.elapsed().as_secs_f64());
        r
    }

    /// Charge `secs` to `phase` directly.
    pub fn add(&self, phase: Phase, secs: f64) {
        let mut acc = self.acc.borrow_mut();
        match phase {
            Phase::Comm => acc.comm_s += secs,
            Phase::Comp => acc.comp_s += secs,
            Phase::Other => acc.other_s += secs,
        }
    }

    /// Current accumulated breakdown.
    pub fn breakdown(&self) -> Breakdown {
        *self.acc.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phases() {
        let t = Timer::new();
        let v = t.time(Phase::Comp, || 42);
        assert_eq!(v, 42);
        t.add(Phase::Comm, 0.25);
        t.add(Phase::Comm, 0.25);
        t.add(Phase::Other, 0.1);
        let b = t.breakdown();
        assert!((b.comm_s - 0.5).abs() < 1e-12);
        assert!((b.other_s - 0.1).abs() < 1e-12);
        assert!(b.comp_s >= 0.0);
        assert!(b.total_s() >= 0.6);
    }

    #[test]
    fn phase_times_add_and_total() {
        let p = PhaseTimes {
            symbolic_s: 0.5,
            fetch_s: 1.0,
            compute_s: 2.0,
            assemble_s: 0.5,
        };
        let s = p + p;
        assert_eq!(s.total_s(), 8.0);
        assert_eq!(s.fetch_s, 2.0);
        assert_eq!(PhaseTimes::default().total_s(), 0.0);
    }

    #[test]
    fn breakdown_add() {
        let a = Breakdown {
            comm_s: 1.0,
            comp_s: 2.0,
            other_s: 3.0,
        };
        let s = a + a;
        assert_eq!(s.total_s(), 12.0);
        assert_eq!(s.get(Phase::Comp), 4.0);
    }
}
