//! Deterministic fault injection: a wrapping communicator that kills or
//! stalls ranks at chosen operation indices.
//!
//! [`FaultComm`] wraps any [`Comm`] and counts this rank's communication
//! calls (its *fault-op* index — a per-rank counter shared across
//! sub-communicators split from the wrapped handle, so an injection point
//! is a stable coordinate no matter how the algorithm splits). Before each
//! potentially-blocking call it consults the [`FaultPlan`]:
//!
//! * [`FaultAction::Abort`] — the rank panics ("injected fault: ..."),
//!   modeling a process crash. The runtime's poison machinery then wakes
//!   every parked peer with
//!   [`PeerFailed`](crate::CommError::PeerFailed) naming this rank.
//! * [`FaultAction::Delay`] — the rank sleeps before proceeding, modeling
//!   a straggler (under the serial scheduler the sleep stalls the whole
//!   job, exactly like a slow rank stalls a serial simulation).
//! * [`FaultAction::Kill`] — the "power cord pulled" fault: inside a
//!   forked `ProcComm` child the rank SIGKILLs its own process (no
//!   unwinding, no abort broadcast — survivors must detect the dead
//!   socket); on the in-process backends it degrades to an `Abort`-style
//!   panic, since a thread cannot be SIGKILLed in isolation.
//!
//! For recovery scenarios ([`Universe::run_recoverable`]
//! (crate::Universe::run_recoverable)) a plan can be armed for one attempt
//! only: [`FaultPlan::on_attempt`] records which attempt it fires on, and
//! the job calls [`FaultPlan::for_attempt`] each time it is (re-)entered —
//! the restarted attempt runs clean, which is what "kill-then-recover,
//! deterministic and replayable" means.
//!
//! Because the [`Comm`] collectives are *provided* methods, calling them on
//! the wrapper decomposes into the wrapper's own `send_vec`/`recv_vec` —
//! so a zero-fault `FaultComm` produces byte-identical traffic to the bare
//! backend (wrapper neutrality, asserted by `tests/fault_injection.rs`),
//! and an injected fault can land *inside* a collective, between its
//! constituent point-to-point calls.

use crate::backend::Comm;
use crate::stats::CommStats;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// What to inject when a rank reaches a planned fault-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill the rank: panic with an "injected fault" message.
    Abort,
    /// Stall the rank for the given time, then proceed normally.
    Delay(Duration),
    /// Destroy the rank's whole process with SIGKILL (procs backend); on
    /// the in-process backends, where a lone thread cannot be SIGKILLed,
    /// degrades to an `Abort`-style panic.
    Kill,
}

/// One planned fault: `rank` triggers `action` at its `at_op`-th
/// communication call (0-based, counted by the wrapping [`FaultComm`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    pub rank: usize,
    pub at_op: u64,
    pub action: FaultAction,
}

/// What a lossy-transport shim does to one outgoing frame. Unlike
/// [`FaultAction`] (which fires at a rank's *communication-call* index),
/// frame faults fire at a rank's *droppable-frame* index — the n-th
/// `Data`/`GetReq`/`GetResp` frame that rank writes to any peer socket
/// under the procs backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Never write the frame; the ack/retransmit layer must recover it.
    Drop,
    /// Flip a byte in the encoded frame before writing, so the receiver's
    /// CRC check rejects it (detected corruption, recovered by retransmit).
    Corrupt,
    /// Write the frame after stalling for the given time.
    Delay(Duration),
    /// Write the frame twice; the receiver must dedup by sequence number.
    Duplicate,
}

/// One planned frame fault: `rank`'s `at_frame`-th droppable frame
/// (0-based, counted across all its peer links) suffers `fault`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameFaultRule {
    pub rank: usize,
    pub at_frame: u64,
    pub fault: FrameFault,
}

/// A procedurally-generated lossy network: each droppable frame is
/// independently dropped / corrupted / duplicated with the given
/// per-mille probabilities, keyed by (`seed`, rank, frame index) — the
/// same seed always injures the same frames, so lossy runs replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossyRule {
    pub seed: u64,
    pub drop_permille: u16,
    pub corrupt_permille: u16,
    pub duplicate_permille: u16,
}

/// A deterministic schedule of injected faults, shared by all ranks of a
/// job (each rank consults only its own entries).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Frame-level (transport) faults; only the procs backend has frames,
    /// so these are inert on the in-process backends.
    frame_faults: Vec<FrameFaultRule>,
    /// Procedural background loss on top of the explicit rules.
    lossy: Option<LossyRule>,
    /// Which [`run_recoverable`](crate::Universe::run_recoverable) attempt
    /// the plan fires on (see [`FaultPlan::for_attempt`]); 0 — the first
    /// attempt — unless overridden, so non-recovery uses are unaffected.
    fire_on_attempt: u32,
}

impl FaultPlan {
    /// The empty plan: a `FaultComm` under it is a transparent wrapper.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `rank` at its `at_op`-th communication call.
    pub fn abort_at(rank: usize, at_op: u64) -> FaultPlan {
        FaultPlan::none().with(Fault {
            rank,
            at_op,
            action: FaultAction::Abort,
        })
    }

    /// Stall `rank` for `delay` at its `at_op`-th communication call.
    pub fn delay_at(rank: usize, at_op: u64, delay: Duration) -> FaultPlan {
        FaultPlan::none().with(Fault {
            rank,
            at_op,
            action: FaultAction::Delay(delay),
        })
    }

    /// SIGKILL `rank`'s process at its `at_op`-th communication call (the
    /// procs-only hard-crash fault; degrades to a panic in-process).
    pub fn kill_at(rank: usize, at_op: u64) -> FaultPlan {
        FaultPlan::none().with(Fault {
            rank,
            at_op,
            action: FaultAction::Kill,
        })
    }

    /// Append one more fault to the plan.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Arm the plan for one specific recovery attempt (0-based). Combined
    /// with [`FaultPlan::for_attempt`] in the job body, the fault fires on
    /// that attempt only and every other attempt runs clean — without
    /// this, a restarted attempt's fresh fault-op counter would re-trigger
    /// the same fault forever.
    pub fn on_attempt(mut self, attempt: u32) -> FaultPlan {
        self.fire_on_attempt = attempt;
        self
    }

    /// The plan as seen by recovery attempt `attempt`: the full plan if it
    /// is armed for that attempt, the empty plan otherwise. Deterministic
    /// plain data — the whole kill-then-recover scenario replays exactly.
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        if attempt == self.fire_on_attempt {
            self.clone()
        } else {
            FaultPlan::none()
        }
    }

    /// A pseudo-random single-abort plan: `seed` picks one victim rank in
    /// `0..nranks` and one abort point in `0..max_op`, reproducibly — the
    /// same seed always yields the same plan, which is what makes fault
    /// runs replayable.
    pub fn seeded(seed: u64, nranks: usize, max_op: u64) -> FaultPlan {
        let mut state = seed;
        let rank = (splitmix64(&mut state) % nranks.max(1) as u64) as usize;
        let at_op = splitmix64(&mut state) % max_op.max(1);
        FaultPlan::abort_at(rank, at_op)
    }

    /// The first aborted rank of the plan, if any — the rank every
    /// survivor's `PeerFailed` should name.
    pub fn victim(&self) -> Option<usize> {
        self.faults
            .iter()
            .find(|f| matches!(f.action, FaultAction::Abort | FaultAction::Kill))
            .map(|f| f.rank)
    }

    fn lookup(&self, rank: usize, op: u64) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|f| f.rank == rank && f.at_op == op)
            .map(|f| f.action)
    }

    /// Drop `rank`'s `at_frame`-th droppable frame on the floor.
    pub fn drop_frame_at(rank: usize, at_frame: u64) -> FaultPlan {
        FaultPlan::none().with_frame_fault(FrameFaultRule {
            rank,
            at_frame,
            fault: FrameFault::Drop,
        })
    }

    /// Corrupt a byte of `rank`'s `at_frame`-th droppable frame in flight.
    pub fn corrupt_frame_at(rank: usize, at_frame: u64) -> FaultPlan {
        FaultPlan::none().with_frame_fault(FrameFaultRule {
            rank,
            at_frame,
            fault: FrameFault::Corrupt,
        })
    }

    /// Stall `rank`'s `at_frame`-th droppable frame for `delay` before
    /// delivery.
    pub fn delay_frame_at(rank: usize, at_frame: u64, delay: Duration) -> FaultPlan {
        FaultPlan::none().with_frame_fault(FrameFaultRule {
            rank,
            at_frame,
            fault: FrameFault::Delay(delay),
        })
    }

    /// Deliver `rank`'s `at_frame`-th droppable frame twice.
    pub fn duplicate_frame_at(rank: usize, at_frame: u64) -> FaultPlan {
        FaultPlan::none().with_frame_fault(FrameFaultRule {
            rank,
            at_frame,
            fault: FrameFault::Duplicate,
        })
    }

    /// Append one more frame fault to the plan.
    pub fn with_frame_fault(mut self, rule: FrameFaultRule) -> FaultPlan {
        self.frame_faults.push(rule);
        self
    }

    /// A procedurally lossy network: every droppable frame of every rank is
    /// independently dropped / corrupted / duplicated with the given
    /// per-mille rates, reproducibly keyed by `seed`.
    pub fn seeded_lossy(
        seed: u64,
        drop_permille: u16,
        corrupt_permille: u16,
        duplicate_permille: u16,
    ) -> FaultPlan {
        assert!(
            (drop_permille + corrupt_permille + duplicate_permille) <= 1000,
            "lossy rates sum above 1000 permille"
        );
        FaultPlan {
            lossy: Some(LossyRule {
                seed,
                drop_permille,
                corrupt_permille,
                duplicate_permille,
            }),
            ..FaultPlan::none()
        }
    }

    /// Whether the plan injects any transport-level faults at all — the
    /// procs backend only arms its reliability layer when this is true, so
    /// clean runs pay nothing beyond the frame CRC.
    pub fn has_frame_faults(&self) -> bool {
        !self.frame_faults.is_empty() || self.lossy.is_some()
    }

    /// The fault (if any) for `rank`'s `idx`-th droppable frame: explicit
    /// rules win, then the procedural lossy hash. Pure data in, pure data
    /// out — the same (plan, rank, idx) always answers the same, which is
    /// what makes lossy runs replayable under `SA_FAULT_SEED`.
    pub fn frame_lookup(&self, rank: usize, idx: u64) -> Option<FrameFault> {
        if let Some(rule) = self
            .frame_faults
            .iter()
            .find(|r| r.rank == rank && r.at_frame == idx)
        {
            return Some(rule.fault);
        }
        let lossy = self.lossy?;
        let mut state = lossy.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ idx;
        let roll = splitmix64(&mut state) % 1000;
        let drop_to = lossy.drop_permille as u64;
        let corrupt_to = drop_to + lossy.corrupt_permille as u64;
        let dup_to = corrupt_to + lossy.duplicate_permille as u64;
        if roll < drop_to {
            Some(FrameFault::Drop)
        } else if roll < corrupt_to {
            Some(FrameFault::Corrupt)
        } else if roll < dup_to {
            Some(FrameFault::Duplicate)
        } else {
            None
        }
    }
}

thread_local! {
    /// The frame-fault plan the *next* procs launch on this thread runs
    /// under. Thread-local (not an env var) so parallel tests cannot race
    /// each other's arming; forked children inherit it because `fork`
    /// happens on the arming thread.
    static ARMED_FRAME_PLAN: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

/// Arm `plan`'s frame faults for procs launches started from this thread,
/// until the returned guard drops. Plans with no frame faults arm nothing.
pub fn arm_frame_plan(plan: &FaultPlan) -> FramePlanGuard {
    let armed = plan.has_frame_faults().then(|| Arc::new(plan.clone()));
    ARMED_FRAME_PLAN.with(|slot| *slot.borrow_mut() = armed);
    FramePlanGuard { _private: () }
}

/// RAII guard from [`arm_frame_plan`]: dropping it disarms the thread.
pub struct FramePlanGuard {
    _private: (),
}

impl Drop for FramePlanGuard {
    fn drop(&mut self) {
        ARMED_FRAME_PLAN.with(|slot| *slot.borrow_mut() = None);
    }
}

/// The plan armed on this thread, if any (consulted by the procs backend
/// at launch time, on the thread that is about to fork the children).
pub(crate) fn armed_frame_plan() -> Option<Arc<FaultPlan>> {
    ARMED_FRAME_PLAN.with(|slot| slot.borrow().clone())
}

/// A lossy-transport plan from the environment, for the CI soak jobs:
/// `SA_LOSSY_RATE` (permille of droppable frames injured, 0/unset =
/// clean), `SA_LOSSY_MODE` (`drop` | `corrupt` | `duplicate`, default
/// `drop`), seeded by `SA_FAULT_SEED` (default 1). Unparseable values are
/// logged, never silently ignored.
pub(crate) fn frame_plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("SA_LOSSY_RATE").ok()?;
    let rate: u16 = match raw.trim().parse() {
        Ok(r) => r,
        Err(_) => {
            eprintln!(
                "sa-mpisim: ignoring unparseable SA_LOSSY_RATE={raw:?} \
                 (want permille as a u16); transport runs clean"
            );
            return None;
        }
    };
    if rate == 0 {
        return None;
    }
    let seed = std::env::var("SA_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(1);
    let mode = std::env::var("SA_LOSSY_MODE").unwrap_or_else(|_| "drop".to_string());
    match mode.trim() {
        "drop" => Some(FaultPlan::seeded_lossy(seed, rate, 0, 0)),
        "corrupt" => Some(FaultPlan::seeded_lossy(seed, 0, rate, 0)),
        "duplicate" => Some(FaultPlan::seeded_lossy(seed, 0, 0, rate)),
        other => {
            eprintln!(
                "sa-mpisim: ignoring unknown SA_LOSSY_MODE={other:?} \
                 (want drop|corrupt|duplicate); transport runs clean"
            );
            None
        }
    }
}

/// SplitMix64 step — a tiny, dependency-free PRNG, plenty for picking
/// injection coordinates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Comm`] that injects the faults a [`FaultPlan`] schedules for this
/// rank, and is otherwise transparent. See the module docs.
pub struct FaultComm<C: Comm> {
    inner: C,
    plan: Arc<FaultPlan>,
    /// The wrapped rank's id in the communicator the wrapper was *created*
    /// on — the coordinate fault plans are written in, stable across splits.
    world_rank: usize,
    /// This rank's fault-op counter, shared (like a NIC) by every
    /// sub-communicator split from this wrapper.
    ops: Rc<Cell<u64>>,
}

impl<C: Comm> FaultComm<C> {
    /// Wrap `inner`, treating its current rank id as the plan coordinate.
    pub fn new(inner: C, plan: FaultPlan) -> FaultComm<C> {
        let world_rank = inner.rank();
        FaultComm {
            inner,
            plan: Arc::new(plan),
            world_rank,
            ops: Rc::new(Cell::new(0)),
        }
    }

    /// Advance this rank's fault-op counter and trigger any planned fault.
    fn checkpoint(&self) {
        let op = self.ops.get();
        self.ops.set(op + 1);
        match self.plan.lookup(self.world_rank, op) {
            Some(FaultAction::Abort) => panic!(
                "injected fault: rank {} aborted at fault-op {op}",
                self.world_rank
            ),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Kill) => {
                if crate::proc::in_forked_child() {
                    // The real thing: destroy the whole child process with
                    // no unwinding and no goodbye — survivors must detect
                    // the dead socket, the parent classifies the corpse.
                    crate::proc::kill_self_with_sigkill();
                }
                // In-process there is no lone-thread SIGKILL; the closest
                // honest model is an abort-style panic.
                panic!(
                    "injected fault: rank {} killed at fault-op {op}",
                    self.world_rank
                )
            }
            None => {}
        }
    }
}

impl<C: Comm> Comm for FaultComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn stats(&self) -> CommStats {
        self.inner.stats()
    }

    fn pool(&self) -> &rayon::ThreadPool {
        self.inner.pool()
    }

    fn barrier(&self) {
        self.checkpoint();
        self.inner.barrier();
    }

    fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        self.checkpoint();
        self.inner.send_vec(dst, tag, data);
    }

    fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        self.checkpoint();
        self.inner.recv_vec(src, tag)
    }

    fn probe(&self, src: usize, tag: u64) -> bool {
        self.inner.probe(src, tag)
    }

    fn split(&self, color: usize, key: usize) -> FaultComm<C> {
        self.checkpoint();
        FaultComm {
            inner: self.inner.split(color, key),
            plan: self.plan.clone(),
            world_rank: self.world_rank,
            ops: self.ops.clone(),
        }
    }

    fn next_op(&self) -> u64 {
        self.inner.next_op()
    }

    fn exchange_arcs(&self, value: Arc<dyn Any + Send + Sync>) -> Vec<Arc<dyn Any + Send + Sync>> {
        self.checkpoint();
        self.inner.exchange_arcs(value)
    }

    fn record_get(&self, bytes: usize) {
        self.inner.record_get(bytes);
    }

    fn overlap_capable(&self) -> bool {
        // Explicit, not inherited: the default answers false, which would
        // silently serialize prefetch under a fault wrapper and make the
        // fault matrix test a different code path than production. No
        // checkpoint — capability queries are not communication ops.
        self.inner.overlap_capable()
    }

    fn expose(&self, spec: crate::window::WindowSpec) -> crate::window::Exposure {
        // Explicit, not inherited: the default would route through *this*
        // wrapper's `exchange_arcs` (fine in-process, panics on a remote
        // backend). One checkpoint here keeps the fault-op numbering of a
        // window exposure identical to the pre-`expose` era, so existing
        // plans' injection coordinates don't shift.
        self.checkpoint();
        self.inner.expose(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = FaultPlan::seeded(seed, 6, 100);
            let b = FaultPlan::seeded(seed, 6, 100);
            assert_eq!(a, b);
            let v = a.victim().expect("seeded plan aborts someone");
            assert!(v < 6);
        }
    }

    #[test]
    fn seeded_plans_vary_with_seed() {
        let plans: Vec<FaultPlan> = (0..32).map(|s| FaultPlan::seeded(s, 8, 1000)).collect();
        let distinct: std::collections::HashSet<_> =
            plans.iter().map(|p| format!("{p:?}")).collect();
        assert!(distinct.len() > 1, "seeds must actually spread");
    }

    #[test]
    fn lookup_matches_rank_and_op() {
        let plan = FaultPlan::abort_at(2, 5).with(Fault {
            rank: 1,
            at_op: 3,
            action: FaultAction::Delay(Duration::from_millis(1)),
        });
        assert_eq!(plan.lookup(2, 5), Some(FaultAction::Abort));
        assert_eq!(
            plan.lookup(1, 3),
            Some(FaultAction::Delay(Duration::from_millis(1)))
        );
        assert_eq!(plan.lookup(2, 4), None);
        assert_eq!(plan.lookup(0, 5), None);
        assert_eq!(plan.victim(), Some(2));
        assert_eq!(FaultPlan::none().victim(), None);
    }

    #[test]
    fn frame_lookup_matches_rank_and_index() {
        let plan = FaultPlan::drop_frame_at(2, 5).with_frame_fault(FrameFaultRule {
            rank: 1,
            at_frame: 3,
            fault: FrameFault::Duplicate,
        });
        assert!(plan.has_frame_faults());
        assert_eq!(plan.frame_lookup(2, 5), Some(FrameFault::Drop));
        assert_eq!(plan.frame_lookup(1, 3), Some(FrameFault::Duplicate));
        assert_eq!(plan.frame_lookup(2, 4), None);
        assert_eq!(plan.frame_lookup(0, 5), None);
        assert!(!FaultPlan::none().has_frame_faults());
        assert!(!FaultPlan::abort_at(0, 0).has_frame_faults());
    }

    #[test]
    fn seeded_lossy_is_reproducible_and_spreads() {
        let plan = FaultPlan::seeded_lossy(42, 50, 20, 10);
        assert!(plan.has_frame_faults());
        let sweep = |p: &FaultPlan| -> Vec<Option<FrameFault>> {
            (0..2000).map(|i| p.frame_lookup(1, i)).collect()
        };
        assert_eq!(sweep(&plan), sweep(&plan.clone()));
        let hits = sweep(&plan).iter().filter(|f| f.is_some()).count();
        // 80 permille over 2000 frames: expect ~160, allow wide slack.
        assert!((40..500).contains(&hits), "lossy rate off: {hits}");
        // Different seeds injure different frames.
        assert_ne!(
            sweep(&plan),
            sweep(&FaultPlan::seeded_lossy(43, 50, 20, 10))
        );
        // Different ranks are injured independently.
        let r0: Vec<_> = (0..2000).map(|i| plan.frame_lookup(0, i)).collect();
        assert_ne!(r0, sweep(&plan));
    }

    #[test]
    fn arming_is_thread_local_and_guard_scoped() {
        assert!(armed_frame_plan().is_none());
        {
            let _g = arm_frame_plan(&FaultPlan::drop_frame_at(0, 1));
            let armed = armed_frame_plan().expect("armed inside the guard");
            assert_eq!(armed.frame_lookup(0, 1), Some(FrameFault::Drop));
            // A plan with no frame faults arms nothing.
            std::thread::spawn(|| {
                assert!(armed_frame_plan().is_none(), "arming leaked across threads");
            })
            .join()
            .unwrap();
        }
        assert!(armed_frame_plan().is_none(), "guard did not disarm");
        let _g = arm_frame_plan(&FaultPlan::abort_at(0, 0));
        assert!(armed_frame_plan().is_none(), "op-level plan armed frames");
    }

    #[test]
    fn attempt_gating_arms_one_attempt_only() {
        let plan = FaultPlan::kill_at(1, 4).on_attempt(0);
        assert_eq!(plan.victim(), Some(1));
        // Attempt 0 sees the armed plan, attempt 1 (the restart) runs clean.
        assert_eq!(plan.for_attempt(0), plan);
        assert_eq!(plan.for_attempt(1), FaultPlan::none());
        // Arming for a later attempt leaves earlier attempts clean.
        let late = FaultPlan::abort_at(0, 2).on_attempt(2);
        assert_eq!(late.for_attempt(0).victim(), None);
        assert_eq!(late.for_attempt(2).victim(), Some(0));
        // Replayable: the gate is plain data, equality is structural.
        assert_eq!(
            FaultPlan::kill_at(1, 4).on_attempt(3),
            FaultPlan::kill_at(1, 4).on_attempt(3)
        );
    }
}
