//! Simulated distributed-memory runtime.
//!
//! The paper runs on MPI (Cray MPICH) with passive-target RDMA windows.
//! This crate reproduces that programming model on one machine: every rank
//! is an OS thread, ranks communicate **only** through this API (two-sided
//! messages, collectives, and one-sided [`Window::get`]), and every transfer
//! is metered exactly (message counts and bytes, split by operation class).
//!
//! Fidelity notes:
//! * **Volume and message counts are exact**, not modeled — they are the
//!   quantities the paper's analysis (Figures 5 and 6) is about.
//! * **Wall-clock is real**: data is really copied between address regions
//!   and local compute really runs on per-rank Rayon pools (`p × t` =
//!   MPI ranks × OpenMP threads).
//! * A Hockney **α–β model** ([`CostModel`]) converts the metered traffic
//!   into network-time estimates with Slingshot-like constants, for the
//!   figures whose shape depends on network latency/bandwidth rather than
//!   shared-memory copy speed.
//! * `Window::get` is genuinely one-sided: the target rank's thread is not
//!   involved — the simulation reads the exposed buffer directly, exactly
//!   like RDMA bypassing the remote CPU.
//!
//! Type map (paper § in parentheses):
//!
//! * [`Universe`] / [`Comm`] — rank threads, two-sided p2p, collectives.
//! * [`Window`] / [`PairedWindow`] — passive-target RDMA exposure and
//!   ranged `get`s (Algorithm 1 lines 1 and 7); a session keeps one
//!   `PairedWindow` alive across iterative multiplies.
//! * [`CommStats`] — exact per-rank byte/message counters, split two-sided
//!   vs one-sided (Figs. 5/6).
//! * [`CostModel`] — the Hockney α–β network model (§IV setup).
//! * [`Grid2D`] / [`Grid3D`] — process grids for the 2D/3D baselines.
//! * [`Timer`] / [`Breakdown`] — the comm/comp/other wall-clock split of
//!   the figure breakdowns.

mod blackboard;
mod collectives;
mod comm;
mod costmodel;
mod grid;
mod p2p;
mod stats;
mod timer;
mod universe;
mod window;

pub use comm::Comm;
pub use costmodel::CostModel;
pub use grid::{Grid2D, Grid3D};
pub use stats::CommStats;
pub use timer::{Breakdown, Phase, PhaseTimes, Timer};
pub use universe::Universe;
pub use window::{PairedWindow, Window, WindowError};
