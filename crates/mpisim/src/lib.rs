//! Simulated distributed-memory runtime.
//!
//! The paper runs on MPI (Cray MPICH) with passive-target RDMA windows.
//! This crate reproduces that programming model on one machine: every rank
//! is an OS thread, ranks communicate **only** through this API (two-sided
//! messages, collectives, and one-sided [`Window::get`]), and every transfer
//! is metered exactly (message counts and bytes, split by operation class).
//!
//! Fidelity notes:
//! * **Volume and message counts are exact**, not modeled — they are the
//!   quantities the paper's analysis (Figures 5 and 6) is about, and they
//!   are byte-identical across backends by construction (the collectives
//!   are provided [`Comm`] methods over the metered two-sided core).
//! * **Two execution backends** share one data path and differ only in
//!   scheduling: [`SimComm`] is the serial rank-loop simulator (one rank
//!   executes at a time — per-rank timings are interference-free, a run's
//!   wall-clock is the sum of rank work), [`ThreadComm`] runs all rank
//!   threads concurrently (real parallel wall-clock). See
//!   `docs/BACKENDS.md` for the contract and an extension guide.
//! * A Hockney **α–β model** ([`CostModel`]) converts the metered traffic
//!   into network-time estimates with Slingshot-like constants, for the
//!   figures whose shape depends on network latency/bandwidth rather than
//!   shared-memory copy speed.
//! * `Window::get` is genuinely one-sided: the target rank's thread is not
//!   involved — the simulation reads the exposed buffer directly, exactly
//!   like RDMA bypassing the remote CPU.
//!
//! Type map (paper § in parentheses):
//!
//! * [`Comm`] — the backend-neutral communicator trait every distributed
//!   algorithm is written against.
//! * [`Universe`] — launches a job on a backend: [`Universe::run`]
//!   ([`SimComm`]), [`Universe::run_threads`] ([`ThreadComm`]), or the
//!   generic [`Universe::launch`]; [`Backend`] names them for runtime
//!   dispatch (`--backend threads`, `SA_BACKEND`).
//! * [`Universe::run_recoverable`] — restart-on-failure execution of a
//!   [`RecoverableJob`] under a [`RetryPolicy`] (bounded exponential
//!   backoff, `SA_MAX_RESTARTS`), with a [`RecoveryReport`] recording every
//!   attempt; composes with checkpoint stores (`sa_dist`) so restarted
//!   iterative jobs resume mid-stream instead of starting over.
//! * [`Window`] / [`PairedWindow`] — passive-target RDMA exposure and
//!   ranged `get`s (Algorithm 1 lines 1 and 7); a session keeps one
//!   `PairedWindow` alive across iterative multiplies. Backend-neutral.
//! * [`CommStats`] — exact per-rank byte/message counters, split two-sided
//!   vs one-sided (Figs. 5/6).
//! * [`CostModel`] — the Hockney α–β network model (§IV setup).
//! * [`Grid2D`] / [`Grid3D`] — process grids for the 2D/3D baselines,
//!   generic over the backend.
//! * [`Timer`] / [`Breakdown`] — the comm/comp/other wall-clock split of
//!   the figure breakdowns.

mod backend;
mod blackboard;
mod comm;
mod costmodel;
mod error;
mod fault;
mod grid;
mod p2p;
mod prefetch;
mod proc;
mod recover;
mod scheduler;
mod stats;
mod timer;
mod universe;
mod window;
mod wire;

pub use backend::{Backend, Comm, Mode, Serial, Threads};
pub use comm::{RankComm, SimComm, ThreadComm};
pub use costmodel::CostModel;
pub use error::{CommError, Primitive, RankError, RankOutcome};
pub use fault::{
    arm_frame_plan, Fault, FaultAction, FaultComm, FaultPlan, FrameFault, FrameFaultRule,
    FramePlanGuard, LossyRule,
};
pub use grid::{valid_layer_counts, Grid2D, Grid3D};
pub use prefetch::{PrefetchConfig, PrefetchMeter, Prefetcher};
pub use proc::{kill_self_with_sigkill, mute_heartbeats, ProcComm};
pub use recover::{AttemptFailure, RecoverableJob, RecoveryReport, RetryPolicy};
pub use scheduler::rank_active_seconds;
pub use stats::CommStats;
pub use timer::{Breakdown, Phase, PhaseTimes, Timer};
pub use universe::{RankJob, Universe};
pub use window::{
    Exposure, PairedGet, PairedWindow, PartSpec, RemoteWindow, WinElem, Window, WindowError,
    WindowSpec,
};
pub use wire::{crc32, Frame, Wire, WireError, MAX_FRAME};
