//! Length-delimited manual serialization for the cross-process backend.
//!
//! The in-process backends move payloads as `Arc`s and `Box<dyn Any>`; the
//! process-per-rank backend ([`ProcComm`](crate::ProcComm)) has to put the
//! same values on a socket. This module is the whole wire story:
//!
//! * [`Wire`] — put/get of the closed set of value types the runtime
//!   ships (primitives, tuples, `Vec`s, the error/stats/timing types).
//!   Encoding is little-endian and bit-exact (`f64` travels as its bit
//!   pattern, so outputs stay *bit-identical* across backends). Decoding
//!   **never panics**: every malformed input returns a typed
//!   [`WireError`], a property `tests/wire_props.rs` fuzzes.
//! * [`Frame`] — the framed messages of the socket protocol (bootstrap
//!   handshake, two-sided data, one-sided window gets, failure
//!   notifications, per-rank results). On the socket every frame is
//!   `[u32 little-endian length][kind byte][body]`.
//! * A `TypeId → codec` registry ([`vec_codec`]) so the untyped transport
//!   can serialize `Comm::send_vec::<T>` payloads for every element type
//!   that actually crosses rank boundaries in this workspace. Sending an
//!   unregistered type panics with instructions, at the send site, rather
//!   than corrupting a stream.
//!
//! Everything here is deliberately dependency-free (no serde/bincode: the
//! build container is offline) and endian-pinned so the format does not
//! depend on the host — although today both ends are always the same
//! binary (the backend forks its ranks).

use crate::error::{CommError, Primitive, RankError};
use crate::stats::CommStats;
use crate::timer::{Breakdown, PhaseTimes};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

/// Hard cap on one frame's encoded size (body + kind byte). Large enough
/// for any test/bench matrix slice, small enough that a corrupt length
/// prefix cannot ask the reader to allocate the address space.
pub const MAX_FRAME: usize = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time so the checksum stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum every [`Frame`] carries and the
/// checkpoint header reuses. Standard check value:
/// `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Why a decode failed. Decoding is total: corrupt or truncated input maps
/// to one of these, never a panic or an unbounded allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated { needed: usize, have: usize },
    /// A field held an impossible value (bad bool byte, invalid UTF-8,
    /// nanoseconds ≥ 10⁹, length that cannot fit the remaining input...).
    Malformed { what: &'static str },
    /// An enum discriminant no variant claims.
    BadTag { what: &'static str, tag: u64 },
    /// A frame length prefix above [`MAX_FRAME`].
    FrameTooLarge { len: usize },
    /// A frame whose stored CRC-32 does not match the checksum of its
    /// received bytes: the frame was damaged in flight (or at rest).
    /// `expected` is the checksum the sender stored, `got` what the
    /// receiver computed.
    Corrupt { expected: u32, got: u32 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated: needed {needed} more bytes, have {have}")
            }
            WireError::Malformed { what } => write!(f, "malformed {what}"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
            WireError::Corrupt { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated {
            needed: n - buf.len(),
            have: buf.len(),
        });
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Manual little-endian serialization of one value type.
///
/// `get` consumes from the front of `buf`; [`Wire::from_bytes`] adds the
/// "input fully consumed" check used at message boundaries.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn put(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn get(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.put(&mut out);
        out
    }

    /// Decode a value that must span exactly `bytes`.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::get(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(WireError::Malformed {
                what: "trailing bytes after value",
            });
        }
        Ok(v)
    }
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn put(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
                let b = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    )*};
}
wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn put(&self, out: &mut Vec<u8>) {
        (*self as u64).put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        usize::try_from(u64::get(buf)?).map_err(|_| WireError::Malformed {
            what: "usize out of range",
        })
    }
}

impl Wire for f64 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out); // bit-exact: NaN payloads and -0.0 survive
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::get(buf)?))
    }
}

impl Wire for f32 {
    fn put(&self, out: &mut Vec<u8>) {
        self.to_bits().put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::get(buf)?))
    }
}

impl Wire for bool {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { what: "bool byte" }),
        }
    }
}

impl Wire for () {
    fn put(&self, _out: &mut Vec<u8>) {}
    fn get(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for String {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = checked_len(buf)?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            what: "string utf-8",
        })
    }
}

/// Read a collection length and reject anything the remaining input cannot
/// possibly hold — the guard that makes corrupt length fields return
/// [`WireError::Truncated`] instead of attempting a huge allocation.
/// (Consequence: collections of zero-sized `Wire` types are unsupported.)
fn checked_len(buf: &mut &[u8]) -> Result<usize, WireError> {
    let len = usize::get(buf)?;
    if len > buf.len() {
        return Err(WireError::Truncated {
            needed: len - buf.len(),
            have: buf.len(),
        });
    }
    Ok(len)
}

impl<T: Wire> Wire for Vec<T> {
    fn put(&self, out: &mut Vec<u8>) {
        (self.len() as u64).put(out);
        for x in self {
            x.put(out);
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = checked_len(buf)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::get(buf)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.put(out);
            }
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::get(buf)?)),
            t => Err(WireError::BadTag {
                what: "Option",
                tag: t as u64,
            }),
        }
    }
}

macro_rules! wire_tuple {
    ($($name:ident),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn put(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.put(out);)+
            }
            fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
                Ok(($($name::get(buf)?,)+))
            }
        }
    };
}
wire_tuple!(A);
wire_tuple!(A, B);
wire_tuple!(A, B, C);
wire_tuple!(A, B, C, D);
wire_tuple!(A, B, C, D, E);

impl Wire for Duration {
    fn put(&self, out: &mut Vec<u8>) {
        self.as_secs().put(out);
        self.subsec_nanos().put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        let secs = u64::get(buf)?;
        let nanos = u32::get(buf)?;
        if nanos >= 1_000_000_000 {
            return Err(WireError::Malformed {
                what: "duration nanos",
            });
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl Wire for CommStats {
    fn put(&self, out: &mut Vec<u8>) {
        for v in [
            self.sent_msgs,
            self.sent_bytes,
            self.recv_msgs,
            self.recv_bytes,
            self.rdma_gets,
            self.rdma_get_bytes,
        ] {
            v.put(out);
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CommStats {
            sent_msgs: u64::get(buf)?,
            sent_bytes: u64::get(buf)?,
            recv_msgs: u64::get(buf)?,
            recv_bytes: u64::get(buf)?,
            rdma_gets: u64::get(buf)?,
            rdma_get_bytes: u64::get(buf)?,
        })
    }
}

impl Wire for Breakdown {
    fn put(&self, out: &mut Vec<u8>) {
        self.comm_s.put(out);
        self.comp_s.put(out);
        self.other_s.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Breakdown {
            comm_s: f64::get(buf)?,
            comp_s: f64::get(buf)?,
            other_s: f64::get(buf)?,
        })
    }
}

impl Wire for PhaseTimes {
    fn put(&self, out: &mut Vec<u8>) {
        self.symbolic_s.put(out);
        self.fetch_s.put(out);
        self.compute_s.put(out);
        self.assemble_s.put(out);
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PhaseTimes {
            symbolic_s: f64::get(buf)?,
            fetch_s: f64::get(buf)?,
            compute_s: f64::get(buf)?,
            assemble_s: f64::get(buf)?,
        })
    }
}

impl Wire for Primitive {
    fn put(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Primitive::Recv => 0,
            Primitive::Barrier => 1,
            Primitive::Exchange => 2,
        });
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(Primitive::Recv),
            1 => Ok(Primitive::Barrier),
            2 => Ok(Primitive::Exchange),
            t => Err(WireError::BadTag {
                what: "Primitive",
                tag: t as u64,
            }),
        }
    }
}

impl Wire for CommError {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            CommError::PeerFailed { rank, primitive } => {
                out.push(0);
                rank.put(out);
                primitive.put(out);
            }
            CommError::Timeout { primitive, waited } => {
                out.push(1);
                primitive.put(out);
                waited.put(out);
            }
            CommError::Poisoned => out.push(2),
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(CommError::PeerFailed {
                rank: usize::get(buf)?,
                primitive: Primitive::get(buf)?,
            }),
            1 => Ok(CommError::Timeout {
                primitive: Primitive::get(buf)?,
                waited: Duration::get(buf)?,
            }),
            2 => Ok(CommError::Poisoned),
            t => Err(WireError::BadTag {
                what: "CommError",
                tag: t as u64,
            }),
        }
    }
}

impl Wire for RankError {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            RankError::Comm(e) => {
                out.push(0);
                e.put(out);
            }
            RankError::Panic { summary } => {
                out.push(1);
                summary.put(out);
            }
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(RankError::Comm(CommError::get(buf)?)),
            1 => Ok(RankError::Panic {
                summary: String::get(buf)?,
            }),
            t => Err(WireError::BadTag {
                what: "RankError",
                tag: t as u64,
            }),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn put(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.put(out);
            }
            Err(e) => {
                out.push(1);
                e.put(out);
            }
        }
    }
    fn get(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::get(buf)? {
            0 => Ok(Ok(T::get(buf)?)),
            1 => Ok(Err(E::get(buf)?)),
            t => Err(WireError::BadTag {
                what: "Result",
                tag: t as u64,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Typed payload codecs for the untyped transport
// ---------------------------------------------------------------------------

/// FNV-1a of a type name: the fingerprint stamped on every data frame so a
/// `recv_vec::<T>` against a differently-typed message fails loudly instead
/// of reinterpreting bytes.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializer/deserializer for `Vec<T>` payloads of one concrete `T`,
/// stored behind `dyn Any` so [`ProcComm`](crate::ProcComm)'s untyped
/// transport can dispatch on [`TypeId`].
pub(crate) type DecodeFn = fn(u64, &[u8]) -> Result<Box<dyn Any + Send>, WireError>;

pub(crate) struct VecCodec {
    pub fp: u64,
    pub type_name: &'static str,
    pub encode: fn(&(dyn Any + Send)) -> (u64, Vec<u8>),
    pub decode: DecodeFn,
}

fn enc_vec<T: Wire + Send + 'static>(any: &(dyn Any + Send)) -> (u64, Vec<u8>) {
    let v = any
        .downcast_ref::<Vec<T>>()
        .expect("codec invoked on matching TypeId");
    let mut out = Vec::new();
    for x in v {
        x.put(&mut out);
    }
    (v.len() as u64, out)
}

fn dec_vec<T: Wire + Send + 'static>(
    count: u64,
    bytes: &[u8],
) -> Result<Box<dyn Any + Send>, WireError> {
    let mut buf = bytes;
    let n = usize::try_from(count).map_err(|_| WireError::Malformed {
        what: "element count",
    })?;
    let mut v: Vec<T> = Vec::with_capacity(n.min(bytes.len().max(1)));
    for _ in 0..n {
        v.push(T::get(&mut buf)?);
    }
    if !buf.is_empty() {
        return Err(WireError::Malformed {
            what: "trailing bytes after payload",
        });
    }
    Ok(Box::new(v))
}

macro_rules! register_codecs {
    ($map:ident, $($t:ty),* $(,)?) => {$(
        $map.insert(TypeId::of::<$t>(), VecCodec {
            fp: fnv1a(std::any::type_name::<$t>()),
            type_name: std::any::type_name::<$t>(),
            encode: enc_vec::<$t>,
            decode: dec_vec::<$t>,
        });
    )*};
}

fn registry() -> &'static HashMap<TypeId, VecCodec> {
    static REGISTRY: OnceLock<HashMap<TypeId, VecCodec>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut m = HashMap::new();
        // The closed set of element types that cross rank boundaries in
        // this workspace (audited over crates/dist, crates/apps, the test
        // tree, and the benches). `Vec<u64>`/`Vec<f64>` appear because the
        // provided reduce/allreduce_vec collectives send vectors-of-vectors.
        register_codecs!(
            m,
            u8,
            u16,
            u32,
            u64,
            usize,
            i32,
            i64,
            f32,
            f64,
            (u32, u32),
            (u64, u64),
            (u32, u32, f64),
            (u64, u64, u64),
            (f64, u64),
            Vec<u8>,
            Vec<u32>,
            Vec<u64>,
            Vec<f32>,
            Vec<f64>,
        );
        m
    })
}

/// The codec for element type `T`, if `T` is in the registered wire set.
pub(crate) fn vec_codec<T: Send + 'static>() -> Option<&'static VecCodec> {
    registry().get(&TypeId::of::<T>())
}

// ---------------------------------------------------------------------------
// Socket frames
// ---------------------------------------------------------------------------

/// One framed message of the cross-process protocol. On a socket each frame
/// travels as `[u32 LE length][kind byte][body]`; [`Frame::to_bytes`] /
/// [`Frame::from_bytes`] cover the `[kind][body]` part, the transport adds
/// the length prefix.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Child → parent bootstrap: "rank `rank` listens on `port`".
    Hello { rank: u64, port: u16 },
    /// Parent → child bootstrap: every rank's listen port, in rank order.
    Table { ports: Vec<u16> },
    /// First frame on a freshly connected mesh link: who is calling.
    Peer { rank: u64 },
    /// A two-sided `send_vec` payload (or an unmetered control-plane
    /// message when `metered` is false). `src` is the sender's rank *in
    /// the communicator* `comm_id`; `count` elements of the type
    /// fingerprinted by `type_fp` are encoded in `payload`.
    Data {
        comm_id: u64,
        src: u64,
        tag: u64,
        metered: bool,
        meter_bytes: u64,
        type_fp: u64,
        count: u64,
        payload: Vec<u8>,
    },
    /// One-sided ranged get against part `part` of exposed window
    /// `win_id`, element range `start..end`.
    GetReq {
        req_id: u64,
        win_id: u64,
        part: u32,
        start: u64,
        end: u64,
    },
    /// Raw bytes answering [`Frame::GetReq`] `req_id`.
    GetResp { req_id: u64, payload: Vec<u8> },
    /// "Rank `victim` failed" — poisons the receiver's job.
    Abort { victim: u64 },
    /// Clean goodbye: the sender's rank closure has finished; it will keep
    /// serving window gets until every peer has said the same.
    Bye,
    /// Child → parent: the rank's final [`RankOutcome`](crate::RankOutcome),
    /// pre-encoded (the result type is generic, so the frame carries bytes).
    Outcome { payload: Vec<u8> },
    /// Periodic "I am alive" beacon on a mesh link; carries no payload.
    /// Reader threads refresh the peer's last-seen clock on *every* frame,
    /// heartbeats only guarantee the clock advances on an idle link.
    Heartbeat,
    /// Reliable-delivery envelope used when a lossy-transport fault plan is
    /// armed: `inner` is a complete encoded frame (with its own CRC),
    /// `seq` a per-link sequence number the receiver acks and dedups by.
    Reliable { seq: u64, inner: Vec<u8> },
    /// Receiver → sender acknowledgement of [`Frame::Reliable`] `seq`.
    Ack { seq: u64 },
}

const K_HELLO: u8 = 1;
const K_TABLE: u8 = 2;
const K_PEER: u8 = 3;
const K_DATA: u8 = 4;
const K_GETREQ: u8 = 5;
const K_GETRESP: u8 = 6;
const K_ABORT: u8 = 7;
const K_BYE: u8 = 8;
const K_OUTCOME: u8 = 9;
const K_HEARTBEAT: u8 = 10;
const K_RELIABLE: u8 = 11;
const K_ACK: u8 = 12;

impl Frame {
    /// Encode as `[kind][body][crc32 LE]` (no length prefix). The trailing
    /// CRC-32 covers `[kind][body]`, so any in-flight bit flip — in the
    /// tag, the body, or the checksum itself — is caught at decode.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { rank, port } => {
                out.push(K_HELLO);
                rank.put(&mut out);
                port.put(&mut out);
            }
            Frame::Table { ports } => {
                out.push(K_TABLE);
                ports.put(&mut out);
            }
            Frame::Peer { rank } => {
                out.push(K_PEER);
                rank.put(&mut out);
            }
            Frame::Data {
                comm_id,
                src,
                tag,
                metered,
                meter_bytes,
                type_fp,
                count,
                payload,
            } => {
                out.push(K_DATA);
                comm_id.put(&mut out);
                src.put(&mut out);
                tag.put(&mut out);
                metered.put(&mut out);
                meter_bytes.put(&mut out);
                type_fp.put(&mut out);
                count.put(&mut out);
                payload.put(&mut out);
            }
            Frame::GetReq {
                req_id,
                win_id,
                part,
                start,
                end,
            } => {
                out.push(K_GETREQ);
                req_id.put(&mut out);
                win_id.put(&mut out);
                part.put(&mut out);
                start.put(&mut out);
                end.put(&mut out);
            }
            Frame::GetResp { req_id, payload } => {
                out.push(K_GETRESP);
                req_id.put(&mut out);
                payload.put(&mut out);
            }
            Frame::Abort { victim } => {
                out.push(K_ABORT);
                victim.put(&mut out);
            }
            Frame::Bye => out.push(K_BYE),
            Frame::Outcome { payload } => {
                out.push(K_OUTCOME);
                payload.put(&mut out);
            }
            Frame::Heartbeat => out.push(K_HEARTBEAT),
            Frame::Reliable { seq, inner } => {
                out.push(K_RELIABLE);
                seq.put(&mut out);
                inner.put(&mut out);
            }
            Frame::Ack { seq } => {
                out.push(K_ACK);
                seq.put(&mut out);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a `[kind][body][crc32]` buffer produced by
    /// [`Frame::to_bytes`]. Total: truncated or corrupt input yields a
    /// typed error — a checksum mismatch is always
    /// [`WireError::Corrupt`], never a silent wrong answer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, WireError> {
        if bytes.len() > MAX_FRAME {
            return Err(WireError::FrameTooLarge { len: bytes.len() });
        }
        // Minimum frame: 1 kind byte + 4 CRC bytes.
        if bytes.len() < 5 {
            return Err(WireError::Truncated {
                needed: 5 - bytes.len(),
                have: bytes.len(),
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let expected = u32::from_le_bytes(crc_bytes.try_into().expect("sized split"));
        let got = crc32(body);
        if expected != got {
            return Err(WireError::Corrupt { expected, got });
        }
        let mut buf = body;
        let kind = u8::get(&mut buf)?;
        let frame = match kind {
            K_HELLO => Frame::Hello {
                rank: u64::get(&mut buf)?,
                port: u16::get(&mut buf)?,
            },
            K_TABLE => Frame::Table {
                ports: Vec::<u16>::get(&mut buf)?,
            },
            K_PEER => Frame::Peer {
                rank: u64::get(&mut buf)?,
            },
            K_DATA => Frame::Data {
                comm_id: u64::get(&mut buf)?,
                src: u64::get(&mut buf)?,
                tag: u64::get(&mut buf)?,
                metered: bool::get(&mut buf)?,
                meter_bytes: u64::get(&mut buf)?,
                type_fp: u64::get(&mut buf)?,
                count: u64::get(&mut buf)?,
                payload: Vec::<u8>::get(&mut buf)?,
            },
            K_GETREQ => Frame::GetReq {
                req_id: u64::get(&mut buf)?,
                win_id: u64::get(&mut buf)?,
                part: u32::get(&mut buf)?,
                start: u64::get(&mut buf)?,
                end: u64::get(&mut buf)?,
            },
            K_GETRESP => Frame::GetResp {
                req_id: u64::get(&mut buf)?,
                payload: Vec::<u8>::get(&mut buf)?,
            },
            K_ABORT => Frame::Abort {
                victim: u64::get(&mut buf)?,
            },
            K_BYE => Frame::Bye,
            K_OUTCOME => Frame::Outcome {
                payload: Vec::<u8>::get(&mut buf)?,
            },
            K_HEARTBEAT => Frame::Heartbeat,
            K_RELIABLE => Frame::Reliable {
                seq: u64::get(&mut buf)?,
                inner: Vec::<u8>::get(&mut buf)?,
            },
            K_ACK => Frame::Ack {
                seq: u64::get(&mut buf)?,
            },
            t => {
                return Err(WireError::BadTag {
                    what: "Frame",
                    tag: t as u64,
                })
            }
        };
        if !buf.is_empty() {
            return Err(WireError::Malformed {
                what: "trailing bytes after frame",
            });
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX - 1);
        round_trip(u64::MAX);
        round_trip(-7i32);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(1.5f32);
        round_trip(-0.0f64);
        round_trip(f64::NAN.to_bits()); // NaN itself is != NaN; compare bits
        assert_eq!(
            f64::from_bytes(&f64::NAN.to_bytes()).unwrap().to_bits(),
            f64::NAN.to_bits()
        );
        round_trip(true);
        round_trip(false);
        round_trip(());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(String::from("héllo wörld"));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(vec![vec![1.0f64], vec![], vec![2.0, 3.0]]);
        round_trip(Some(42u32));
        round_trip(None::<String>);
        round_trip((1u32, 2u32, 3.5f64));
        round_trip((u64::MAX, 0u64, 1u64));
        round_trip(Duration::from_millis(1234));
        round_trip(CommStats {
            sent_msgs: 1,
            sent_bytes: 2,
            recv_msgs: 3,
            recv_bytes: 4,
            rdma_gets: 5,
            rdma_get_bytes: 6,
        });
        round_trip(Breakdown {
            comm_s: 0.25,
            comp_s: 1.5,
            other_s: 0.0,
        });
        round_trip(PhaseTimes {
            symbolic_s: 1.0,
            fetch_s: 2.0,
            compute_s: 3.0,
            assemble_s: 4.0,
        });
    }

    #[test]
    fn error_types_round_trip() {
        round_trip(RankError::Comm(CommError::PeerFailed {
            rank: 3,
            primitive: Primitive::Barrier,
        }));
        round_trip(RankError::Comm(CommError::Timeout {
            primitive: Primitive::Recv,
            waited: Duration::from_secs_f64(1.75),
        }));
        round_trip(RankError::Comm(CommError::Poisoned));
        round_trip(RankError::Panic {
            summary: "boom".into(),
        });
        round_trip(Ok::<u64, RankError>(99));
        round_trip(Err::<u64, RankError>(RankError::Panic {
            summary: "x".into(),
        }));
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = (vec![1u64, 2, 3], String::from("tail")).to_bytes();
        for cut in 0..bytes.len() {
            let err = <(Vec<u64>, String)>::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A length field claiming 2^60 elements must be rejected up front.
        let mut bytes = Vec::new();
        (1u64 << 60).put(&mut bytes);
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            String::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_tags_are_typed() {
        assert!(matches!(
            Option::<u8>::from_bytes(&[9, 0]),
            Err(WireError::BadTag { what: "Option", .. })
        ));
        assert!(matches!(
            Primitive::from_bytes(&[77]),
            Err(WireError::BadTag { .. })
        ));
        assert!(matches!(
            bool::from_bytes(&[2]),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                rank: 3,
                port: 40111,
            },
            Frame::Table {
                ports: vec![1000, 2000, 3000],
            },
            Frame::Peer { rank: 2 },
            Frame::Data {
                comm_id: 7,
                src: 1,
                tag: (1 << 63) | 42,
                metered: true,
                meter_bytes: 800,
                type_fp: 0xdead_beef,
                count: 100,
                payload: vec![1, 2, 3, 4],
            },
            Frame::GetReq {
                req_id: 9,
                win_id: 2,
                part: 1,
                start: 10,
                end: 20,
            },
            Frame::GetResp {
                req_id: 9,
                payload: vec![0; 80],
            },
            Frame::Abort { victim: 1 },
            Frame::Bye,
            Frame::Outcome {
                payload: Ok::<u64, RankError>(5).to_bytes(),
            },
            Frame::Heartbeat,
            Frame::Reliable {
                seq: 17,
                inner: Frame::Bye.to_bytes(),
            },
            Frame::Ack { seq: 17 },
        ];
        for f in frames {
            let bytes = f.to_bytes();
            assert_eq!(Frame::from_bytes(&bytes).unwrap(), f, "frame {f:?}");
            // every prefix of a valid frame is a typed error, not a panic
            for cut in 0..bytes.len() {
                assert!(Frame::from_bytes(&bytes[..cut]).is_err());
            }
        }
    }

    /// Append the CRC-32 suffix `Frame::to_bytes` would have stamped on a
    /// hand-built `[kind][body]` buffer, so tests can exercise the decoder
    /// past the checksum gate.
    fn with_crc(body: &[u8]) -> Vec<u8> {
        let mut out = body.to_vec();
        out.extend_from_slice(&crc32(body).to_le_bytes());
        out
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn unknown_frame_kind_is_typed() {
        assert!(matches!(
            Frame::from_bytes(&with_crc(&[200, 1, 2, 3])),
            Err(WireError::BadTag { what: "Frame", .. })
        ));
        assert!(matches!(
            Frame::from_bytes(&[]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn flipped_bits_are_always_corrupt() {
        let bytes = Frame::Data {
            comm_id: 1,
            src: 0,
            tag: 5,
            metered: true,
            meter_bytes: 24,
            type_fp: 0x1234,
            count: 3,
            payload: vec![9, 8, 7],
        }
        .to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    matches!(Frame::from_bytes(&bad), Err(WireError::Corrupt { .. })),
                    "flip byte {i} bit {bit} was not detected as corruption"
                );
            }
        }
    }

    #[test]
    fn codec_registry_covers_the_audited_set_and_rejects_strangers() {
        assert!(vec_codec::<u64>().is_some());
        assert!(vec_codec::<(u32, u32, f64)>().is_some());
        assert!(vec_codec::<Vec<f64>>().is_some());
        assert!(vec_codec::<std::net::TcpStream>().is_none());

        let v: Vec<u64> = vec![10, 20, 30];
        let codec = vec_codec::<u64>().unwrap();
        let (count, bytes) = (codec.encode)(&v as &(dyn Any + Send));
        assert_eq!(count, 3);
        let back = (codec.decode)(count, &bytes).unwrap();
        assert_eq!(*back.downcast::<Vec<u64>>().unwrap(), v);
        // corrupt payload: typed error, not a panic
        assert!((codec.decode)(count, &bytes[..bytes.len() - 1]).is_err());
        assert!((codec.decode)(count + 1, &bytes).is_err());
    }
}
