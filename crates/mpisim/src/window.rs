//! Passive-target RDMA windows — the paper's key communication primitive.
//!
//! Algorithm 1 line 1: "Create two MPI Windows for row id and numeric
//! values of A"; line 7: "Use passive-target RDMA Calls (MPI_Get) to fetch
//! the remote column block data". [`Window::create`] is the collective
//! exposure (`MPI_Win_create`), [`Window::get`] the one-sided fetch. The
//! target rank's thread never participates in a `get` — faithful to RDMA
//! semantics where the NIC serves remote reads.

use crate::backend::Comm;
use std::ops::Range;
use std::sync::Arc;

/// Errors a one-sided access can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// Target rank does not exist in the communicator.
    BadRank { rank: usize, size: usize },
    /// Requested range exceeds the exposed buffer.
    OutOfRange {
        rank: usize,
        requested_end: usize,
        exposed_len: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::BadRank { rank, size } => {
                write!(f, "window get from rank {rank}, communicator has {size}")
            }
            WindowError::OutOfRange {
                rank,
                requested_end,
                exposed_len,
            } => write!(
                f,
                "window get past end of rank {rank}'s buffer: {requested_end} > {exposed_len}"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

/// A window over per-rank exposed buffers of `T`.
///
/// The handle is cheap to clone (it holds `Arc`s of the exposed buffers).
pub struct Window<T> {
    bufs: Vec<Arc<Vec<T>>>,
}

impl<T: Copy + Send + Sync + 'static> Window<T> {
    /// Collectively expose `local` from every rank. The data is frozen for
    /// the window's lifetime (passive-target exposure epoch). Works on any
    /// in-process backend; the window handle itself is backend-neutral.
    pub fn create<C: Comm>(comm: &C, local: Vec<T>) -> Window<T> {
        let deposits = comm.exchange_arcs(Arc::new(local));
        let bufs = deposits
            .into_iter()
            .map(|a| a.downcast::<Vec<T>>().expect("window type mismatch"))
            .collect();
        Window { bufs }
    }

    /// Length of `rank`'s exposed buffer.
    pub fn len_of(&self, rank: usize) -> usize {
        self.bufs[rank].len()
    }

    /// This rank's own exposed buffer (no traffic).
    pub fn local<'a, C: Comm>(&'a self, comm: &C) -> &'a [T] {
        &self.bufs[comm.rank()]
    }

    /// One-sided fetch of `range` from `rank`'s buffer into a fresh vector,
    /// metered as one RDMA message. Local gets are free (the paper's ranks
    /// read their own slice directly).
    pub fn get<C: Comm>(&self, comm: &C, rank: usize, range: Range<usize>) -> Vec<T> {
        let mut out = Vec::new();
        self.get_into(comm, rank, range, &mut out).unwrap();
        out
    }

    /// As [`Window::get`], appending into `out`; returns errors instead of
    /// panicking (failure-injection friendly).
    pub fn get_into<C: Comm>(
        &self,
        comm: &C,
        rank: usize,
        range: Range<usize>,
        out: &mut Vec<T>,
    ) -> Result<(), WindowError> {
        if rank >= self.bufs.len() {
            return Err(WindowError::BadRank {
                rank,
                size: self.bufs.len(),
            });
        }
        let buf = &self.bufs[rank];
        if range.end > buf.len() {
            return Err(WindowError::OutOfRange {
                rank,
                requested_end: range.end,
                exposed_len: buf.len(),
            });
        }
        if rank != comm.rank() {
            comm.record_get((range.end - range.start) * std::mem::size_of::<T>());
        }
        out.extend_from_slice(&buf[range]);
        Ok(())
    }
}

impl<T> Clone for Window<T> {
    fn clone(&self) -> Self {
        Window {
            bufs: self.bufs.clone(),
        }
    }
}

/// Two parallel arrays exposed in a **single** collective round.
///
/// Algorithm 1 exposes both the row-id and the numeric-value array of the
/// local `A`; creating them as one paired window halves the per-multiply
/// rendezvous count, which matters when a multiply is issued per BFS level
/// (betweenness centrality) rather than once per application run.
pub struct PairedWindow<T, U> {
    bufs: Vec<Arc<(Vec<T>, Vec<U>)>>,
}

impl<T, U> PairedWindow<T, U>
where
    T: Copy + Send + Sync + 'static,
    U: Copy + Send + Sync + 'static,
{
    /// Collectively expose `(a, b)` from every rank. The arrays must be
    /// parallel (same length); they are frozen for the window's lifetime.
    pub fn create<C: Comm>(comm: &C, a: Vec<T>, b: Vec<U>) -> PairedWindow<T, U> {
        assert_eq!(a.len(), b.len(), "paired window arrays must be parallel");
        let deposits = comm.exchange_arcs(Arc::new((a, b)));
        let bufs = deposits
            .into_iter()
            .map(|d| {
                d.downcast::<(Vec<T>, Vec<U>)>()
                    .expect("paired window type")
            })
            .collect();
        PairedWindow { bufs }
    }

    /// Length of `rank`'s exposed arrays.
    pub fn len_of(&self, rank: usize) -> usize {
        self.bufs[rank].0.len()
    }

    /// One-sided fetch of `range` from both of `rank`'s arrays, appended to
    /// `out_a`/`out_b`. Metered as two RDMA messages (one per array), like
    /// the two `MPI_Get`s of Algorithm 1 line 7.
    pub fn get_both_into<C: Comm>(
        &self,
        comm: &C,
        rank: usize,
        range: Range<usize>,
        out_a: &mut Vec<T>,
        out_b: &mut Vec<U>,
    ) -> Result<(), WindowError> {
        if rank >= self.bufs.len() {
            return Err(WindowError::BadRank {
                rank,
                size: self.bufs.len(),
            });
        }
        let (a, b) = &*self.bufs[rank];
        if range.end > a.len() {
            return Err(WindowError::OutOfRange {
                rank,
                requested_end: range.end,
                exposed_len: a.len(),
            });
        }
        if rank != comm.rank() {
            comm.record_get((range.end - range.start) * std::mem::size_of::<T>());
            comm.record_get((range.end - range.start) * std::mem::size_of::<U>());
        }
        out_a.extend_from_slice(&a[range.clone()]);
        out_b.extend_from_slice(&b[range]);
        Ok(())
    }
}

impl<T, U> Clone for PairedWindow<T, U> {
    fn clone(&self) -> Self {
        PairedWindow {
            bufs: self.bufs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn exposes_and_fetches() {
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let data: Vec<u64> = (0..10).map(|i| (comm.rank() * 100 + i) as u64).collect();
            let win = Window::create(comm, data);
            // every rank reads a slice of rank 1

            win.get(comm, 1, 2..5)
        });
        for p in got {
            assert_eq!(p, vec![102, 103, 104]);
        }
    }

    #[test]
    fn gets_are_metered_and_local_reads_free() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![1.0f64; 50]);
            let before = comm.stats();
            let _ = win.get(comm, 1 - comm.rank(), 0..50); // remote: 400 B
            let _ = win.get(comm, comm.rank(), 0..50); // local: free
            let _ = win.local(comm);
            comm.stats() - before
        });
        for s in got {
            assert_eq!(s.rdma_gets, 1);
            assert_eq!(s.rdma_get_bytes, 400);
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u32; comm.rank() * 4]);
            let mut out = Vec::new();
            win.get_into(comm, 0, 0..10, &mut out).err()
        });
        assert_eq!(
            got[1],
            Some(WindowError::OutOfRange {
                rank: 0,
                requested_end: 10,
                exposed_len: 0
            })
        );
    }

    #[test]
    fn bad_rank_is_reported() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u8; 1]);
            let mut out = Vec::new();
            win.get_into(comm, 7, 0..1, &mut out).err()
        });
        assert_eq!(got[0], Some(WindowError::BadRank { rank: 7, size: 2 }));
    }

    #[test]
    fn uneven_buffer_sizes() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u8; comm.rank() * 3]);
            (0..4).map(|r| win.len_of(r)).collect::<Vec<_>>()
        });
        for lens in got {
            assert_eq!(lens, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn ranged_fetches_meter_exact_bytes_per_rank() {
        // The fetch path's accounting contract: every ranged remote get
        // charges exactly range_len * size_of::<T>() to the *issuing* rank,
        // and nothing to the target.
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u64; 16]);
            let before = comm.stats();
            if comm.rank() == 0 {
                let _ = win.get(comm, 1, 2..7); // 5 * 8 B
                let _ = win.get(comm, 2, 0..16); // 16 * 8 B
                let _ = win.get(comm, 1, 10..10); // empty range: 1 msg, 0 B
            }
            comm.barrier();
            comm.stats() - before
        });
        assert_eq!(got[0].rdma_gets, 3);
        assert_eq!(got[0].rdma_get_bytes, (5 + 16) * 8);
        // targets of one-sided gets stay idle and uncharged
        assert_eq!(got[1].rdma_gets, 0);
        assert_eq!(got[1].rdma_get_bytes, 0);
        assert_eq!(got[2].rdma_get_bytes, 0);
    }

    #[test]
    fn get_into_appends_preserving_existing_contents() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u32 + 10; 4]);
            let mut out = vec![99u32];
            win.get_into(comm, 0, 0..2, &mut out).unwrap();
            win.get_into(comm, 1, 1..3, &mut out).unwrap();
            out
        });
        for o in got {
            assert_eq!(o, vec![99, 10, 10, 11, 11]);
        }
    }

    #[test]
    fn out_of_range_error_carries_request_and_exposure() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u8; 6]);
            let mut out = Vec::new();
            let err = win.get_into(comm, 1, 3..9, &mut out).unwrap_err();
            (err, out.len())
        });
        for (err, len) in got {
            assert_eq!(
                err,
                WindowError::OutOfRange {
                    rank: 1,
                    requested_end: 9,
                    exposed_len: 6
                }
            );
            assert_eq!(len, 0, "failed get must not touch the output buffer");
        }
    }

    #[test]
    fn paired_window_matches_two_plain_windows_and_meters_both_arrays() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let ir: Vec<u32> = (0..12).map(|i| comm.rank() as u32 * 100 + i).collect();
            let num: Vec<f64> = (0..12).map(|i| i as f64 / 3.0).collect();
            let paired = PairedWindow::create(comm, ir.clone(), num.clone());
            let w_ir = Window::create(comm, ir);
            let w_num = Window::create(comm, num);
            let other = 1 - comm.rank();
            let before = comm.stats();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            paired
                .get_both_into(comm, other, 4..9, &mut a, &mut b)
                .unwrap();
            let delta = comm.stats() - before;
            let a2 = w_ir.get(comm, other, 4..9);
            let b2 = w_num.get(comm, other, 4..9);
            (a == a2, b == b2, delta)
        });
        for (ir_same, num_same, delta) in got {
            assert!(ir_same && num_same);
            assert_eq!(delta.rdma_gets, 2, "one message per exposed array");
            assert_eq!(delta.rdma_get_bytes, 5 * 4 + 5 * 8);
        }
    }

    #[test]
    fn paired_window_rejects_bad_rank_and_overrun() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = PairedWindow::create(comm, vec![1u32; 3], vec![1.0f64; 3]);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let bad = win
                .get_both_into(comm, 5, 0..1, &mut a, &mut b)
                .unwrap_err();
            let oob = win
                .get_both_into(comm, 0, 0..4, &mut a, &mut b)
                .unwrap_err();
            (bad, oob, a.len(), b.len())
        });
        for (bad, oob, alen, blen) in got {
            assert!(matches!(bad, WindowError::BadRank { rank: 5, size: 2 }));
            assert!(matches!(
                oob,
                WindowError::OutOfRange {
                    requested_end: 4,
                    exposed_len: 3,
                    ..
                }
            ));
            assert_eq!((alen, blen), (0, 0));
        }
    }

    #[test]
    fn two_windows_coexist() {
        // Algorithm 1 uses two windows (row ids + values).
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win_ir = Window::create(comm, vec![comm.rank() as u32; 4]);
            let win_num = Window::create(comm, vec![comm.rank() as f64 + 0.5; 4]);
            let other = 1 - comm.rank();
            (
                win_ir.get(comm, other, 0..1),
                win_num.get(comm, other, 3..4),
            )
        });
        assert_eq!(got[0].0, vec![1u32]);
        assert_eq!(got[0].1, vec![1.5f64]);
        assert_eq!(got[1].0, vec![0u32]);
        assert_eq!(got[1].1, vec![0.5f64]);
    }
}
