//! Passive-target RDMA windows — the paper's key communication primitive.
//!
//! Algorithm 1 line 1: "Create two MPI Windows for row id and numeric
//! values of A"; line 7: "Use passive-target RDMA Calls (MPI_Get) to fetch
//! the remote column block data". [`Window::create`] is the collective
//! exposure (`MPI_Win_create`), [`Window::get`] the one-sided fetch. The
//! target rank's thread never participates in a `get` — faithful to RDMA
//! semantics where the NIC serves remote reads.

use crate::backend::Comm;
use crate::wire::Wire;
use std::any::Any;
use std::ops::Range;
use std::sync::Arc;

/// An element type a window can expose: fixed-size, byte-serializable.
///
/// In-process backends never serialize (they share the exposed `Arc`), but
/// a cross-process backend serves ranged gets as little-endian bytes, so
/// window elements must have a wire form. The set of implementors mirrors
/// the primitive types windows actually carry in this workspace.
pub trait WinElem: Wire + Copy + Send + Sync + 'static {}

impl WinElem for u8 {}
impl WinElem for u16 {}
impl WinElem for u32 {}
impl WinElem for u64 {}
impl WinElem for i32 {}
impl WinElem for i64 {}
impl WinElem for f32 {}
impl WinElem for f64 {}

/// One exposed array of a window: element count and size, plus enough for
/// a remote backend to compute byte offsets. A plain [`Window`] has one
/// part, a [`PairedWindow`] two.
#[derive(Clone, Copy, Debug)]
pub struct PartSpec {
    /// Elements in this rank's exposed array.
    pub len: usize,
    /// Bytes per element on the wire (= `size_of::<T>()` for all `WinElem`s).
    pub elem_size: usize,
}

/// What one rank contributes to a collective window exposure — the typed
/// deposit (for in-process sharing) plus untyped byte extractors (for a
/// backend that must serve ranged gets over a socket).
pub struct WindowSpec {
    /// The deposit the in-process backends exchange zero-copy.
    pub arc: Arc<dyn Any + Send + Sync>,
    /// Shape of each exposed array.
    pub parts: Vec<PartSpec>,
    /// Serialize elements `range` of part `part` of `arc` as little-endian
    /// bytes appended to `out`. Monomorphized per window element type; a
    /// remote backend's progress engine calls this to answer peers' gets.
    pub extract: fn(&(dyn Any + Send + Sync), usize, Range<usize>, &mut Vec<u8>),
}

/// The one-sided fetch transport a non-shared-memory backend returns from
/// [`Comm::expose`]: fetches raw bytes from a peer's exposed array. Called
/// only for remote ranks (local reads never leave the process) and only
/// with in-bounds ranges (the window validates first). On peer failure the
/// implementation raises the typed [`CommError`](crate::CommError) by
/// unwinding, like every blocking primitive — it does not return errors.
pub trait RemoteWindow: Send + Sync {
    /// Append elements `range` of `rank`'s part `part` to `out`.
    fn get_bytes(&self, rank: usize, part: usize, range: Range<usize>, out: &mut Vec<u8>);
}

/// Result of [`Comm::expose`]: either every rank's deposit shared directly
/// (in-process backends) or per-rank lengths plus a byte-fetch transport
/// (cross-process backends).
pub enum Exposure {
    /// Zero-copy: deposit `r` is rank `r`'s exposed data.
    Shared(Vec<Arc<dyn Any + Send + Sync>>),
    /// One-sided transport: `lens[r][p]` is the element count of rank `r`'s
    /// part `p`; `transport` fetches the bytes.
    Remote {
        lens: Vec<Vec<usize>>,
        transport: Arc<dyn RemoteWindow>,
    },
}

fn extract_vec<T: WinElem>(
    any: &(dyn Any + Send + Sync),
    part: usize,
    range: Range<usize>,
    out: &mut Vec<u8>,
) {
    debug_assert_eq!(part, 0);
    let v = any.downcast_ref::<Vec<T>>().expect("window deposit type");
    for x in &v[range] {
        x.put(out);
    }
}

fn extract_pair<T: WinElem, U: WinElem>(
    any: &(dyn Any + Send + Sync),
    part: usize,
    range: Range<usize>,
    out: &mut Vec<u8>,
) {
    let (a, b) = any
        .downcast_ref::<(Vec<T>, Vec<U>)>()
        .expect("paired window deposit type");
    match part {
        0 => {
            for x in &a[range] {
                x.put(out);
            }
        }
        1 => {
            for x in &b[range] {
                x.put(out);
            }
        }
        _ => unreachable!("paired window has two parts"),
    }
}

/// Decode `bytes` (little-endian, validated length) appending to `out`.
fn decode_elems<T: WinElem>(bytes: &[u8], count: usize, out: &mut Vec<T>) {
    let mut buf = bytes;
    out.reserve(count);
    for _ in 0..count {
        out.push(T::get(&mut buf).expect("window payload decode"));
    }
    assert!(buf.is_empty(), "window payload had trailing bytes");
}

/// Errors a one-sided access can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowError {
    /// Target rank does not exist in the communicator.
    BadRank { rank: usize, size: usize },
    /// Requested range exceeds the exposed buffer.
    OutOfRange {
        rank: usize,
        requested_end: usize,
        exposed_len: usize,
    },
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::BadRank { rank, size } => {
                write!(f, "window get from rank {rank}, communicator has {size}")
            }
            WindowError::OutOfRange {
                rank,
                requested_end,
                exposed_len,
            } => write!(
                f,
                "window get past end of rank {rank}'s buffer: {requested_end} > {exposed_len}"
            ),
        }
    }
}

impl std::error::Error for WindowError {}

enum WinInner<T> {
    /// In-process: every rank's exposed buffer shared zero-copy.
    Shared { bufs: Vec<Arc<Vec<T>>> },
    /// Cross-process: own buffer held locally, peers' served over a
    /// byte-fetch transport.
    Remote {
        me: usize,
        local: Arc<Vec<T>>,
        lens: Vec<usize>,
        transport: Arc<dyn RemoteWindow>,
    },
}

impl<T> Clone for WinInner<T> {
    fn clone(&self) -> Self {
        match self {
            WinInner::Shared { bufs } => WinInner::Shared { bufs: bufs.clone() },
            WinInner::Remote {
                me,
                local,
                lens,
                transport,
            } => WinInner::Remote {
                me: *me,
                local: local.clone(),
                lens: lens.clone(),
                transport: transport.clone(),
            },
        }
    }
}

/// A window over per-rank exposed buffers of `T`.
///
/// The handle is cheap to clone (it holds `Arc`s of the exposed buffers).
pub struct Window<T> {
    inner: WinInner<T>,
}

impl<T: WinElem> Window<T> {
    /// Collectively expose `local` from every rank. The data is frozen for
    /// the window's lifetime (passive-target exposure epoch). Works on any
    /// backend; the window handle itself is backend-neutral.
    pub fn create<C: Comm>(comm: &C, local: Vec<T>) -> Window<T> {
        let len = local.len();
        let arc: Arc<dyn Any + Send + Sync> = Arc::new(local);
        let spec = WindowSpec {
            arc: arc.clone(),
            parts: vec![PartSpec {
                len,
                elem_size: std::mem::size_of::<T>(),
            }],
            extract: extract_vec::<T>,
        };
        let inner = match comm.expose(spec) {
            Exposure::Shared(deposits) => WinInner::Shared {
                bufs: deposits
                    .into_iter()
                    .map(|a| a.downcast::<Vec<T>>().expect("window type mismatch"))
                    .collect(),
            },
            Exposure::Remote { lens, transport } => WinInner::Remote {
                me: comm.rank(),
                local: arc.downcast::<Vec<T>>().expect("window type mismatch"),
                lens: lens.into_iter().map(|l| l[0]).collect(),
                transport,
            },
        };
        Window { inner }
    }

    /// Length of `rank`'s exposed buffer.
    pub fn len_of(&self, rank: usize) -> usize {
        match &self.inner {
            WinInner::Shared { bufs } => bufs[rank].len(),
            WinInner::Remote { lens, .. } => lens[rank],
        }
    }

    fn nranks(&self) -> usize {
        match &self.inner {
            WinInner::Shared { bufs } => bufs.len(),
            WinInner::Remote { lens, .. } => lens.len(),
        }
    }

    /// This rank's own exposed buffer (no traffic).
    pub fn local<'a, C: Comm>(&'a self, comm: &C) -> &'a [T] {
        match &self.inner {
            WinInner::Shared { bufs } => &bufs[comm.rank()],
            WinInner::Remote { me, local, .. } => {
                debug_assert_eq!(*me, comm.rank());
                local
            }
        }
    }

    /// One-sided fetch of `range` from `rank`'s buffer into a fresh vector,
    /// metered as one RDMA message. Local gets are free (the paper's ranks
    /// read their own slice directly).
    pub fn get<C: Comm>(&self, comm: &C, rank: usize, range: Range<usize>) -> Vec<T> {
        let mut out = Vec::new();
        self.get_into(comm, rank, range, &mut out).unwrap();
        out
    }

    /// As [`Window::get`], appending into `out`; returns errors instead of
    /// panicking (failure-injection friendly).
    pub fn get_into<C: Comm>(
        &self,
        comm: &C,
        rank: usize,
        range: Range<usize>,
        out: &mut Vec<T>,
    ) -> Result<(), WindowError> {
        if rank >= self.nranks() {
            return Err(WindowError::BadRank {
                rank,
                size: self.nranks(),
            });
        }
        if range.end > self.len_of(rank) {
            return Err(WindowError::OutOfRange {
                rank,
                requested_end: range.end,
                exposed_len: self.len_of(rank),
            });
        }
        if rank != comm.rank() {
            comm.record_get((range.end - range.start) * std::mem::size_of::<T>());
        }
        match &self.inner {
            WinInner::Shared { bufs } => out.extend_from_slice(&bufs[rank][range]),
            WinInner::Remote {
                me,
                local,
                transport,
                ..
            } => {
                if rank == *me {
                    out.extend_from_slice(&local[range]);
                } else {
                    let count = range.end - range.start;
                    let mut bytes = Vec::with_capacity(count * std::mem::size_of::<T>());
                    transport.get_bytes(rank, 0, range, &mut bytes);
                    decode_elems(&bytes, count, out);
                }
            }
        }
        Ok(())
    }
}

impl<T> Clone for Window<T> {
    fn clone(&self) -> Self {
        Window {
            inner: self.inner.clone(),
        }
    }
}

/// Two parallel arrays exposed in a **single** collective round.
///
/// Algorithm 1 exposes both the row-id and the numeric-value array of the
/// local `A`; creating them as one paired window halves the per-multiply
/// rendezvous count, which matters when a multiply is issued per BFS level
/// (betweenness centrality) rather than once per application run.
pub struct PairedWindow<T, U> {
    inner: PairedInner<T, U>,
}

enum PairedInner<T, U> {
    Shared {
        bufs: Vec<Arc<(Vec<T>, Vec<U>)>>,
    },
    Remote {
        me: usize,
        local: Arc<(Vec<T>, Vec<U>)>,
        lens: Vec<usize>,
        transport: Arc<dyn RemoteWindow>,
    },
}

impl<T, U> Clone for PairedInner<T, U> {
    fn clone(&self) -> Self {
        match self {
            PairedInner::Shared { bufs } => PairedInner::Shared { bufs: bufs.clone() },
            PairedInner::Remote {
                me,
                local,
                lens,
                transport,
            } => PairedInner::Remote {
                me: *me,
                local: local.clone(),
                lens: lens.clone(),
                transport: transport.clone(),
            },
        }
    }
}

impl<T: WinElem, U: WinElem> PairedWindow<T, U> {
    /// Collectively expose `(a, b)` from every rank. The arrays must be
    /// parallel (same length); they are frozen for the window's lifetime.
    pub fn create<C: Comm>(comm: &C, a: Vec<T>, b: Vec<U>) -> PairedWindow<T, U> {
        assert_eq!(a.len(), b.len(), "paired window arrays must be parallel");
        let len = a.len();
        let arc: Arc<dyn Any + Send + Sync> = Arc::new((a, b));
        let spec = WindowSpec {
            arc: arc.clone(),
            parts: vec![
                PartSpec {
                    len,
                    elem_size: std::mem::size_of::<T>(),
                },
                PartSpec {
                    len,
                    elem_size: std::mem::size_of::<U>(),
                },
            ],
            extract: extract_pair::<T, U>,
        };
        let inner = match comm.expose(spec) {
            Exposure::Shared(deposits) => PairedInner::Shared {
                bufs: deposits
                    .into_iter()
                    .map(|d| {
                        d.downcast::<(Vec<T>, Vec<U>)>()
                            .expect("paired window type")
                    })
                    .collect(),
            },
            Exposure::Remote { lens, transport } => PairedInner::Remote {
                me: comm.rank(),
                local: arc
                    .downcast::<(Vec<T>, Vec<U>)>()
                    .expect("paired window type"),
                lens: lens.into_iter().map(|l| l[0]).collect(),
                transport,
            },
        };
        PairedWindow { inner }
    }

    /// Length of `rank`'s exposed arrays.
    pub fn len_of(&self, rank: usize) -> usize {
        match &self.inner {
            PairedInner::Shared { bufs } => bufs[rank].0.len(),
            PairedInner::Remote { lens, .. } => lens[rank],
        }
    }

    fn nranks(&self) -> usize {
        match &self.inner {
            PairedInner::Shared { bufs } => bufs.len(),
            PairedInner::Remote { lens, .. } => lens.len(),
        }
    }

    /// One-sided fetch of `range` from both of `rank`'s arrays, appended to
    /// `out_a`/`out_b`. Metered as two RDMA messages (one per array), like
    /// the two `MPI_Get`s of Algorithm 1 line 7.
    pub fn get_both_into<C: Comm>(
        &self,
        comm: &C,
        rank: usize,
        range: Range<usize>,
        out_a: &mut Vec<T>,
        out_b: &mut Vec<U>,
    ) -> Result<(), WindowError> {
        if rank >= self.nranks() {
            return Err(WindowError::BadRank {
                rank,
                size: self.nranks(),
            });
        }
        if range.end > self.len_of(rank) {
            return Err(WindowError::OutOfRange {
                rank,
                requested_end: range.end,
                exposed_len: self.len_of(rank),
            });
        }
        if rank != comm.rank() {
            comm.record_get((range.end - range.start) * std::mem::size_of::<T>());
            comm.record_get((range.end - range.start) * std::mem::size_of::<U>());
        }
        match &self.inner {
            PairedInner::Shared { bufs } => {
                let (a, b) = &*bufs[rank];
                out_a.extend_from_slice(&a[range.clone()]);
                out_b.extend_from_slice(&b[range]);
            }
            PairedInner::Remote {
                me,
                local,
                transport,
                ..
            } => {
                if rank == *me {
                    let (a, b) = &**local;
                    out_a.extend_from_slice(&a[range.clone()]);
                    out_b.extend_from_slice(&b[range]);
                } else {
                    let count = range.end - range.start;
                    let mut bytes = Vec::with_capacity(count * std::mem::size_of::<T>());
                    transport.get_bytes(rank, 0, range.clone(), &mut bytes);
                    decode_elems(&bytes, count, out_a);
                    bytes.clear();
                    transport.get_bytes(rank, 1, range, &mut bytes);
                    decode_elems(&bytes, count, out_b);
                }
            }
        }
        Ok(())
    }
}

impl<T: WinElem, U: WinElem> PairedWindow<T, U> {
    /// Issue a paired get without moving data yet: validate and **meter
    /// now**, on the calling thread, exactly as [`get_both_into`]
    /// (two RDMA messages for a remote target, nothing for a local one),
    /// and return a [`PairedGet`] whose [`fetch_into`](PairedGet::fetch_into)
    /// performs the pure data movement.
    ///
    /// This is the issue/rendezvous split the
    /// [`Prefetcher`](crate::Prefetcher) builds on: a consumer issues its
    /// whole fetch plan up front (so per-rank [`CommStats`](crate::CommStats)
    /// are byte-identical to a sequential fetch loop, and no range can be
    /// metered twice), then lets background and demand paths move the
    /// bytes in whatever order overlap dictates. The handle is `Send +
    /// Sync` — it holds only the target's shared buffer or the byte-fetch
    /// transport, never the `Comm`.
    ///
    /// [`get_both_into`]: PairedWindow::get_both_into
    pub fn start_get_both<C: Comm>(
        &self,
        comm: &C,
        rank: usize,
        range: Range<usize>,
    ) -> Result<PairedGet<T, U>, WindowError> {
        if rank >= self.nranks() {
            return Err(WindowError::BadRank {
                rank,
                size: self.nranks(),
            });
        }
        if range.end > self.len_of(rank) {
            return Err(WindowError::OutOfRange {
                rank,
                requested_end: range.end,
                exposed_len: self.len_of(rank),
            });
        }
        if rank != comm.rank() {
            comm.record_get((range.end - range.start) * std::mem::size_of::<T>());
            comm.record_get((range.end - range.start) * std::mem::size_of::<U>());
        }
        let src = match &self.inner {
            PairedInner::Shared { bufs } => GetSrc::Local(bufs[rank].clone()),
            PairedInner::Remote {
                me,
                local,
                transport,
                ..
            } => {
                if rank == *me {
                    GetSrc::Local(local.clone())
                } else {
                    GetSrc::Transport(transport.clone())
                }
            }
        };
        Ok(PairedGet { rank, range, src })
    }
}

impl<T, U> Clone for PairedWindow<T, U> {
    fn clone(&self) -> Self {
        PairedWindow {
            inner: self.inner.clone(),
        }
    }
}

/// Where a [`PairedGet`] reads from: the target's shared buffer pair
/// (in-process, or the issuing rank's own deposit) or the cross-process
/// byte-fetch transport.
enum GetSrc<T, U> {
    Local(Arc<(Vec<T>, Vec<U>)>),
    Transport(Arc<dyn RemoteWindow>),
}

/// An issued-but-not-yet-moved paired get (see
/// [`PairedWindow::start_get_both`]). Metering already happened at issue
/// time; [`fetch_into`](PairedGet::fetch_into) is pure data movement and
/// may run on a background thread.
pub struct PairedGet<T, U> {
    rank: usize,
    range: Range<usize>,
    src: GetSrc<T, U>,
}

impl<T, U> std::fmt::Debug for PairedGet<T, U> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairedGet")
            .field("rank", &self.rank)
            .field("range", &self.range)
            .finish_non_exhaustive()
    }
}

impl<T: WinElem, U: WinElem> PairedGet<T, U> {
    /// Number of elements this get covers.
    pub fn len(&self) -> usize {
        self.range.end - self.range.start
    }

    /// Whether the covered range is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Wire byte size of this get (both arrays) — what the issue-time
    /// metering charged for a remote target, and the unit the
    /// [`PrefetchMeter`](crate::PrefetchMeter) budgets in.
    pub fn bytes(&self) -> u64 {
        (self.len() * (std::mem::size_of::<T>() + std::mem::size_of::<U>())) as u64
    }

    /// Move the data: append the covered range of both arrays to
    /// `out_a`/`out_b`. Involves no `Comm` and no metering; on a
    /// cross-process backend this is the blocking `GetReq`/`GetResp`
    /// round-trip (peer failure unwinds with the typed
    /// [`CommError`](crate::CommError), like every blocking primitive).
    pub fn fetch_into(&self, out_a: &mut Vec<T>, out_b: &mut Vec<U>) {
        match &self.src {
            GetSrc::Local(buf) => {
                let (a, b) = &**buf;
                out_a.extend_from_slice(&a[self.range.clone()]);
                out_b.extend_from_slice(&b[self.range.clone()]);
            }
            GetSrc::Transport(transport) => {
                let count = self.len();
                let mut bytes = Vec::with_capacity(count * std::mem::size_of::<T>());
                transport.get_bytes(self.rank, 0, self.range.clone(), &mut bytes);
                decode_elems(&bytes, count, out_a);
                bytes.clear();
                transport.get_bytes(self.rank, 1, self.range.clone(), &mut bytes);
                decode_elems(&bytes, count, out_b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn exposes_and_fetches() {
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let data: Vec<u64> = (0..10).map(|i| (comm.rank() * 100 + i) as u64).collect();
            let win = Window::create(comm, data);
            // every rank reads a slice of rank 1

            win.get(comm, 1, 2..5)
        });
        for p in got {
            assert_eq!(p, vec![102, 103, 104]);
        }
    }

    #[test]
    fn gets_are_metered_and_local_reads_free() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![1.0f64; 50]);
            let before = comm.stats();
            let _ = win.get(comm, 1 - comm.rank(), 0..50); // remote: 400 B
            let _ = win.get(comm, comm.rank(), 0..50); // local: free
            let _ = win.local(comm);
            comm.stats() - before
        });
        for s in got {
            assert_eq!(s.rdma_gets, 1);
            assert_eq!(s.rdma_get_bytes, 400);
        }
    }

    #[test]
    fn out_of_range_is_reported() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u32; comm.rank() * 4]);
            let mut out = Vec::new();
            win.get_into(comm, 0, 0..10, &mut out).err()
        });
        assert_eq!(
            got[1],
            Some(WindowError::OutOfRange {
                rank: 0,
                requested_end: 10,
                exposed_len: 0
            })
        );
    }

    #[test]
    fn bad_rank_is_reported() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u8; 1]);
            let mut out = Vec::new();
            win.get_into(comm, 7, 0..1, &mut out).err()
        });
        assert_eq!(got[0], Some(WindowError::BadRank { rank: 7, size: 2 }));
    }

    #[test]
    fn uneven_buffer_sizes() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u8; comm.rank() * 3]);
            (0..4).map(|r| win.len_of(r)).collect::<Vec<_>>()
        });
        for lens in got {
            assert_eq!(lens, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn ranged_fetches_meter_exact_bytes_per_rank() {
        // The fetch path's accounting contract: every ranged remote get
        // charges exactly range_len * size_of::<T>() to the *issuing* rank,
        // and nothing to the target.
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u64; 16]);
            let before = comm.stats();
            if comm.rank() == 0 {
                let _ = win.get(comm, 1, 2..7); // 5 * 8 B
                let _ = win.get(comm, 2, 0..16); // 16 * 8 B
                let _ = win.get(comm, 1, 10..10); // empty range: 1 msg, 0 B
            }
            comm.barrier();
            comm.stats() - before
        });
        assert_eq!(got[0].rdma_gets, 3);
        assert_eq!(got[0].rdma_get_bytes, (5 + 16) * 8);
        // targets of one-sided gets stay idle and uncharged
        assert_eq!(got[1].rdma_gets, 0);
        assert_eq!(got[1].rdma_get_bytes, 0);
        assert_eq!(got[2].rdma_get_bytes, 0);
    }

    #[test]
    fn get_into_appends_preserving_existing_contents() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![comm.rank() as u32 + 10; 4]);
            let mut out = vec![99u32];
            win.get_into(comm, 0, 0..2, &mut out).unwrap();
            win.get_into(comm, 1, 1..3, &mut out).unwrap();
            out
        });
        for o in got {
            assert_eq!(o, vec![99, 10, 10, 11, 11]);
        }
    }

    #[test]
    fn out_of_range_error_carries_request_and_exposure() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = Window::create(comm, vec![0u8; 6]);
            let mut out = Vec::new();
            let err = win.get_into(comm, 1, 3..9, &mut out).unwrap_err();
            (err, out.len())
        });
        for (err, len) in got {
            assert_eq!(
                err,
                WindowError::OutOfRange {
                    rank: 1,
                    requested_end: 9,
                    exposed_len: 6
                }
            );
            assert_eq!(len, 0, "failed get must not touch the output buffer");
        }
    }

    #[test]
    fn paired_window_matches_two_plain_windows_and_meters_both_arrays() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let ir: Vec<u32> = (0..12).map(|i| comm.rank() as u32 * 100 + i).collect();
            let num: Vec<f64> = (0..12).map(|i| i as f64 / 3.0).collect();
            let paired = PairedWindow::create(comm, ir.clone(), num.clone());
            let w_ir = Window::create(comm, ir);
            let w_num = Window::create(comm, num);
            let other = 1 - comm.rank();
            let before = comm.stats();
            let (mut a, mut b) = (Vec::new(), Vec::new());
            paired
                .get_both_into(comm, other, 4..9, &mut a, &mut b)
                .unwrap();
            let delta = comm.stats() - before;
            let a2 = w_ir.get(comm, other, 4..9);
            let b2 = w_num.get(comm, other, 4..9);
            (a == a2, b == b2, delta)
        });
        for (ir_same, num_same, delta) in got {
            assert!(ir_same && num_same);
            assert_eq!(delta.rdma_gets, 2, "one message per exposed array");
            assert_eq!(delta.rdma_get_bytes, 5 * 4 + 5 * 8);
        }
    }

    #[test]
    fn paired_window_rejects_bad_rank_and_overrun() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = PairedWindow::create(comm, vec![1u32; 3], vec![1.0f64; 3]);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let bad = win
                .get_both_into(comm, 5, 0..1, &mut a, &mut b)
                .unwrap_err();
            let oob = win
                .get_both_into(comm, 0, 0..4, &mut a, &mut b)
                .unwrap_err();
            (bad, oob, a.len(), b.len())
        });
        for (bad, oob, alen, blen) in got {
            assert!(matches!(bad, WindowError::BadRank { rank: 5, size: 2 }));
            assert!(matches!(
                oob,
                WindowError::OutOfRange {
                    requested_end: 4,
                    exposed_len: 3,
                    ..
                }
            ));
            assert_eq!((alen, blen), (0, 0));
        }
    }

    #[test]
    fn start_get_both_meters_at_issue_and_fetches_identically() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let ir: Vec<u32> = (0..12).map(|i| comm.rank() as u32 * 100 + i).collect();
            let num: Vec<f64> = (0..12).map(|i| i as f64 / 3.0).collect();
            let win = PairedWindow::create(comm, ir, num);
            let other = 1 - comm.rank();
            let before = comm.stats();
            let get = win.start_get_both(comm, other, 4..9).unwrap();
            let issued = comm.stats() - before;
            let (mut a, mut b) = (Vec::new(), Vec::new());
            get.fetch_into(&mut a, &mut b);
            let moved = comm.stats() - before;
            let (mut a2, mut b2) = (Vec::new(), Vec::new());
            win.get_both_into(comm, other, 4..9, &mut a2, &mut b2)
                .unwrap();
            let after_demand = comm.stats() - before;
            // the local deposit is metered as zero either way
            let local = win.start_get_both(comm, comm.rank(), 0..12).unwrap();
            let after_local = comm.stats() - before;
            (
                a == a2,
                b == b2,
                issued,
                moved,
                after_demand,
                after_local,
                local.bytes(),
            )
        });
        for (ir_same, num_same, issued, moved, after_demand, after_local, local_bytes) in got {
            assert!(ir_same && num_same);
            assert_eq!(issued.rdma_gets, 2, "metering happens at issue time");
            assert_eq!(issued.rdma_get_bytes, 5 * 4 + 5 * 8);
            assert_eq!(
                (moved.rdma_gets, moved.rdma_get_bytes),
                (issued.rdma_gets, issued.rdma_get_bytes),
                "fetch_into moves data without metering again"
            );
            assert_eq!(
                (after_demand.rdma_gets, after_demand.rdma_get_bytes),
                (4, 2 * (5 * 4 + 5 * 8)),
                "a demand get of the same range meters like the issued one"
            );
            assert_eq!(after_local.rdma_gets, 4, "local issue is free");
            assert_eq!(local_bytes, 12 * (4 + 8));
        }
    }

    #[test]
    fn started_get_fetches_from_a_helper_thread() {
        // The Send+Sync claim the prefetcher's background path relies on:
        // fetch_into works off the rank's main thread (the Comm stays put).
        let u = Universe::new(2);
        let got = u.run_threads(|comm| {
            let win = PairedWindow::create(
                comm,
                vec![comm.rank() as u32; 8],
                vec![comm.rank() as f64; 8],
            );
            let get = win.start_get_both(comm, 1 - comm.rank(), 2..6).unwrap();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    get.fetch_into(&mut a, &mut b);
                    (a, b)
                })
                .join()
                .unwrap()
            })
        });
        for (r, (a, b)) in got.into_iter().enumerate() {
            assert_eq!(a, vec![(1 - r) as u32; 4]);
            assert_eq!(b, vec![(1 - r) as f64; 4]);
        }
    }

    #[test]
    fn start_get_both_validates_before_metering() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win = PairedWindow::create(comm, vec![1u32; 3], vec![1.0f64; 3]);
            let before = comm.stats();
            let bad = win.start_get_both(comm, 5, 0..1).unwrap_err();
            let oob = win.start_get_both(comm, 0, 0..4).unwrap_err();
            (bad, oob, comm.stats() - before)
        });
        for (bad, oob, delta) in got {
            assert!(matches!(bad, WindowError::BadRank { rank: 5, size: 2 }));
            assert!(matches!(oob, WindowError::OutOfRange { .. }));
            assert_eq!(delta.rdma_gets, 0, "failed issue meters nothing");
        }
    }

    #[test]
    fn two_windows_coexist() {
        // Algorithm 1 uses two windows (row ids + values).
        let u = Universe::new(2);
        let got = u.run(|comm| {
            let win_ir = Window::create(comm, vec![comm.rank() as u32; 4]);
            let win_num = Window::create(comm, vec![comm.rank() as f64 + 0.5; 4]);
            let other = 1 - comm.rank();
            (
                win_ir.get(comm, other, 0..1),
                win_num.get(comm, other, 3..4),
            )
        });
        assert_eq!(got[0].0, vec![1u32]);
        assert_eq!(got[0].1, vec![1.5f64]);
        assert_eq!(got[1].0, vec![0u32]);
        assert_eq!(got[1].1, vec![0.5f64]);
    }
}
