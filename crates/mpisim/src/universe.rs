//! Launching a simulated job: one thread per rank, one Rayon pool per rank.

use crate::backend::{Backend, Comm, Mode};
use crate::comm::{RankComm, Shared, SimComm, ThreadComm};
use crate::error::{RankError, RankOutcome};
use crate::proc::ProcComm;
use crate::scheduler::{self, PoisonGuard, Scheduler};
use crate::wire::Wire;
use std::sync::Arc;
use std::time::Duration;

/// A backend-generic per-rank workload: the same job can run on any
/// [`Backend`] via [`Universe::run_backend`]. This is a trait rather than a
/// closure because the rank body must be generic over the communicator type
/// (`SimComm`, `ThreadComm`, and [`ProcComm`] are distinct types), which a
/// closure cannot express. The output crosses a process boundary under the
/// `procs` backend, hence `Out: Wire`.
///
/// ```
/// use sa_mpisim::{Backend, Comm, RankJob, Universe};
///
/// struct Sum;
/// impl RankJob for Sum {
///     type Out = u64;
///     fn run<C: Comm>(&self, comm: &C) -> u64 {
///         comm.allreduce(comm.rank() as u64, |a, b| a + b)
///     }
/// }
/// let u = Universe::new(3);
/// assert_eq!(u.run_backend(Backend::Sim, &Sum), vec![3, 3, 3]);
/// ```
pub trait RankJob: Sync {
    /// Per-rank result type.
    type Out: Wire + Send;
    /// The rank body, written once against the [`Comm`] trait.
    fn run<C: Comm>(&self, comm: &C) -> Self::Out;
}

/// A simulated machine allocation: `nranks` MPI ranks, each with
/// `threads_per_rank` compute threads (the paper's `c = p · t` Figure 7
/// configuration space).
///
/// The same allocation can be executed by either in-process backend:
/// [`Universe::run`] uses the serial rank-loop simulator ([`SimComm`] —
/// exact metering, interference-free per-rank timings, wall-clock = sum of
/// rank work), [`Universe::run_threads`] the truly-parallel backend
/// ([`ThreadComm`] — same metering, real concurrent wall-clock). Outputs
/// and metered traffic are identical across the two; only time differs.
///
/// ```
/// use sa_mpisim::Universe;
///
/// let u = Universe::new(4);
/// // every rank runs the closure; results come back in rank order
/// let sums = u.run(|comm| comm.allreduce(comm.rank() as u64, |a, b| a + b));
/// assert_eq!(sums, vec![6, 6, 6, 6]);
/// // the threaded backend computes the same thing, in parallel
/// let t = u.run_threads(|comm| comm.allreduce(comm.rank() as u64, |a, b| a + b));
/// assert_eq!(t, sums);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Universe {
    nranks: usize,
    threads_per_rank: usize,
    watchdog: Option<Duration>,
    heartbeat: Option<Duration>,
}

impl Universe {
    /// `nranks` ranks with 1 compute thread each.
    pub fn new(nranks: usize) -> Universe {
        Universe::with_threads(nranks, 1)
    }

    /// `nranks` ranks × `threads_per_rank` compute threads.
    ///
    /// The stall watchdog starts from `SA_WATCHDOG_SECS` in the environment
    /// (unset or `0` = off — the default, so tests exercise the no-deadline
    /// path); [`Universe::with_watchdog`] overrides it per universe.
    pub fn with_threads(nranks: usize, threads_per_rank: usize) -> Universe {
        assert!(nranks >= 1 && threads_per_rank >= 1);
        Universe {
            nranks,
            threads_per_rank,
            watchdog: watchdog_from_env(),
            heartbeat: heartbeat_from_env(),
        }
    }

    /// Override the stall watchdog: a rank parked in one blocking primitive
    /// for longer than `deadline` fails the whole job with a typed
    /// [`CommError::Timeout`](crate::CommError::Timeout) (after printing a
    /// who-waits-on-whom diagnostic) instead of hanging. `None` disables it.
    /// No effect when the `watchdog` feature is compiled out.
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Universe {
        self.watchdog = deadline;
        self
    }

    pub fn nranks(&self) -> usize {
        self.nranks
    }

    pub fn threads_per_rank(&self) -> usize {
        self.threads_per_rank
    }

    /// The configured watchdog deadline, if any.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    /// Override the peer-liveness heartbeat deadline for the `procs`
    /// backend: each rank sends a low-rate [`Frame::Heartbeat`](crate::Frame::Heartbeat) to every
    /// peer, and a peer not heard from (any frame counts) for longer than
    /// `deadline` is converted to a typed
    /// [`CommError::PeerFailed`](crate::CommError::PeerFailed) — detecting
    /// SIGKILLed or wedged peers in bounded time, well before the stall
    /// watchdog. `None` disables it (the default). In-process backends
    /// ignore it: their "peers" are threads whose death already poisons the
    /// job synchronously.
    pub fn with_heartbeat(mut self, deadline: Option<Duration>) -> Universe {
        self.heartbeat = deadline;
        self
    }

    /// The configured heartbeat deadline, if any.
    pub fn heartbeat(&self) -> Option<Duration> {
        self.heartbeat
    }

    /// Run `f` once per rank on the **serial simulator backend**
    /// ([`SimComm`]) and collect the per-rank results in rank order. Panics
    /// in any rank propagate. This is the default backend: deterministic
    /// metering, one rank executing at a time.
    ///
    /// One escape hatch, for exercising existing `run`-based suites under
    /// concurrency without rewriting them: `SA_BACKEND=threads` in the
    /// environment upgrades the *scheduling* to free-running (the handle
    /// type and all metering are unchanged — outputs and traffic are
    /// backend-identical by contract, which is exactly what makes the
    /// override safe). CI uses this to re-run the dist integration suites
    /// under the threaded scheduler. Code that must pin serial execution
    /// regardless of the environment (the `backends` bench's baseline leg)
    /// uses [`Universe::launch`], which never consults the environment.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&SimComm) -> R + Send + Sync,
        R: Send,
    {
        Self::unwrap_outcomes(self.launch_raw(self.sched_from_env(), f))
    }

    /// Run `f` once per rank on the **truly-parallel threads backend**
    /// ([`ThreadComm`]) and collect the per-rank results in rank order.
    /// Same outputs and metered traffic as [`Universe::run`]; wall-clock is
    /// real concurrent execution.
    pub fn run_threads<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&ThreadComm) -> R + Send + Sync,
        R: Send,
    {
        self.launch(f)
    }

    /// Backend-generic launcher: spawns one OS thread per rank (named
    /// `sa-rank-{r}` for readable backtraces), builds the rank's compute
    /// pool and communicator handle, and schedules execution strictly
    /// according to the mode `M` (serial run permit or free-running) —
    /// unlike [`Universe::run`], the environment is never consulted.
    pub fn launch<M, F, R>(&self, f: F) -> Vec<R>
    where
        M: Mode,
        F: Fn(&RankComm<M>) -> R + Send + Sync,
        R: Send,
    {
        Self::unwrap_outcomes(self.launch_raw(self.sched_for_mode::<M>(), f))
    }

    /// Fault-tolerant variant of [`Universe::run`]: joins **all** rank
    /// threads and returns one [`RankOutcome`] per rank, in rank order,
    /// instead of re-raising the first panic. A rank that fails poisons the
    /// job, so its surviving peers unwind out of their blocking primitives
    /// with [`PeerFailed`](crate::CommError::PeerFailed) naming the victim —
    /// every rank terminates, none hangs.
    ///
    /// To *complete* such a job instead of merely observing its typed
    /// failures, see [`Universe::run_recoverable`], which restarts the
    /// rank set under a [`RetryPolicy`](crate::RetryPolicy) so a
    /// checkpointing job resumes where the dying attempt left off.
    ///
    /// ```
    /// use sa_mpisim::{CommError, RankError, Universe};
    ///
    /// let u = Universe::new(3);
    /// let out = u.try_run(|comm| {
    ///     if comm.rank() == 1 {
    ///         panic!("rank 1 dies");
    ///     }
    ///     comm.barrier();
    ///     comm.rank()
    /// });
    /// assert!(matches!(out[1], Err(RankError::Panic { .. })));
    /// for r in [0, 2] {
    ///     assert!(matches!(
    ///         out[r],
    ///         Err(RankError::Comm(CommError::PeerFailed { rank: 1, .. }))
    ///     ));
    /// }
    /// ```
    pub fn try_run<F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        F: Fn(&SimComm) -> R + Send + Sync,
        R: Send,
    {
        Self::classify_outcomes(self.launch_raw(self.sched_from_env(), f))
    }

    /// Fault-tolerant variant of [`Universe::run_threads`]; see
    /// [`Universe::try_run`].
    pub fn try_run_threads<F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        F: Fn(&ThreadComm) -> R + Send + Sync,
        R: Send,
    {
        self.try_launch(f)
    }

    /// Fault-tolerant variant of [`Universe::launch`]; see
    /// [`Universe::try_run`].
    pub fn try_launch<M, F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        M: Mode,
        F: Fn(&RankComm<M>) -> R + Send + Sync,
        R: Send,
    {
        Self::classify_outcomes(self.launch_raw(self.sched_for_mode::<M>(), f))
    }

    /// Run `f` once per rank on the **process-per-rank socket backend**
    /// ([`ProcComm`]): every rank is a forked OS process, all communication
    /// crosses localhost TCP. Results come back in rank order; any rank
    /// failure panics (survivor `PeerFailed` payloads stay typed). Unlike
    /// the in-process backends the closure's result must be wire-encodable
    /// (`R: Wire`) — it crosses a process boundary.
    pub fn run_procs<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&ProcComm) -> R + Send + Sync,
        R: Wire + Send,
    {
        let outcomes = self.try_run_procs(f);
        if outcomes.iter().all(|o| o.is_ok()) {
            return outcomes
                .into_iter()
                .map(|o| match o {
                    Ok(v) => v,
                    Err(_) => unreachable!("checked ok"),
                })
                .collect();
        }
        let mut first: Option<RankError> = None;
        for (rank, o) in outcomes.into_iter().enumerate() {
            if let Err(e) = o {
                eprintln!("[sa_mpisim] rank {rank} failed: {e}");
                if first.is_none() {
                    first = Some(e);
                }
            }
        }
        // Re-raise like `unwrap_outcomes`: a typed CommError travels as the
        // panic payload itself, a plain panic as its summary string — so
        // `#[should_panic(expected = ...)]` matches the rank's own message.
        match first.expect("at least one failure") {
            RankError::Comm(e) => std::panic::panic_any(e),
            RankError::Panic { summary } => std::panic::panic_any(summary),
        }
    }

    /// Fault-tolerant variant of [`Universe::run_procs`]: one
    /// [`RankOutcome`] per rank. A child process that dies without
    /// reporting (crash, `kill -9`) is classified from its exit status;
    /// survivors terminate typed via the poison/watchdog machinery exactly
    /// as in-process.
    pub fn try_run_procs<F, R>(&self, f: F) -> Vec<RankOutcome<R>>
    where
        F: Fn(&ProcComm) -> R + Send + Sync,
        R: Wire + Send,
    {
        crate::proc::launch_procs(
            self.nranks,
            self.threads_per_rank,
            self.watchdog,
            self.heartbeat,
            f,
        )
    }

    /// Run a backend-generic [`RankJob`] on the given [`Backend`] —
    /// panicking join. This is the dispatch point suites use to execute
    /// one workload identically on `sim`, `threads`, and `procs`.
    pub fn run_backend<J: RankJob>(&self, backend: Backend, job: &J) -> Vec<J::Out> {
        match backend {
            Backend::Sim => self.launch::<crate::Serial, _, _>(|c| job.run(c)),
            Backend::Threads => self.launch::<crate::Threads, _, _>(|c| job.run(c)),
            Backend::Procs => self.run_procs(|c| job.run(c)),
        }
    }

    /// Fault-tolerant variant of [`Universe::run_backend`].
    pub fn try_run_backend<J: RankJob>(
        &self,
        backend: Backend,
        job: &J,
    ) -> Vec<RankOutcome<J::Out>> {
        match backend {
            Backend::Sim => self.try_launch::<crate::Serial, _, _>(|c| job.run(c)),
            Backend::Threads => self.try_launch::<crate::Threads, _, _>(|c| job.run(c)),
            Backend::Procs => self.try_run_procs(|c| job.run(c)),
        }
    }

    fn sched_from_env(&self) -> Arc<Scheduler> {
        match Backend::from_env() {
            Backend::Sim => Scheduler::serial(self.nranks, self.watchdog),
            Backend::Threads => Scheduler::parallel(self.nranks, self.watchdog),
            Backend::Procs => panic!(
                "SA_BACKEND=procs: Universe::run/try_run execute the in-process \
                 backends only; this entry point takes a `SimComm` closure that \
                 cannot cross a process boundary. Use Universe::run_procs (or the \
                 backend-generic Universe::run_backend with a RankJob) instead."
            ),
        }
    }

    fn sched_for_mode<M: Mode>(&self) -> Arc<Scheduler> {
        if M::SERIAL {
            Scheduler::serial(self.nranks, self.watchdog)
        } else {
            Scheduler::parallel(self.nranks, self.watchdog)
        }
    }

    /// Spawn, run and join **all** rank threads, returning each rank's raw
    /// result or panic payload in rank order. Joining everyone (rather than
    /// bailing at the first failed join) is what the poison machinery
    /// guarantees is safe: a failed rank wakes every parked peer, so no
    /// join can hang.
    fn launch_raw<M, F, R>(
        &self,
        sched: Arc<Scheduler>,
        f: F,
    ) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        M: Mode,
        F: Fn(&RankComm<M>) -> R + Send + Sync,
        R: Send,
    {
        let shared = Shared::new(self.nranks, sched);
        let tpr = self.threads_per_rank;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nranks)
                .map(|rank| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("sa-rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            scheduler::set_world_rank(rank);
                            let pool = Arc::new(
                                rayon::ThreadPoolBuilder::new()
                                    .num_threads(tpr)
                                    .thread_name(move |i| format!("rank{rank}-w{i}"))
                                    .build()
                                    .expect("rank pool"),
                            );
                            let sched = shared.sched.clone();
                            let comm = RankComm::new(rank, shared.hub_size(), shared, pool);
                            // Serial mode: hold the run permit whenever this
                            // rank executes; the guard releases it on return
                            // or panic. The poison guard is declared second
                            // so it drops *first* on unwind: peers learn of
                            // the failure before the permit recirculates.
                            let _run = sched.runner();
                            let _poison = PoisonGuard::new(&sched, rank);
                            f(&comm)
                        })
                        .expect("spawn rank thread")
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        })
    }

    fn classify_outcomes<R>(
        raw: Vec<Result<R, Box<dyn std::any::Any + Send>>>,
    ) -> Vec<RankOutcome<R>> {
        raw.into_iter()
            .map(|r| r.map_err(|payload| RankError::from_payload(payload.as_ref())))
            .collect()
    }

    /// The panicking join: log **every** failed rank (a multi-rank failure
    /// is debuggable only if the secondary outcomes are not swallowed),
    /// then re-raise the first failure with its original payload so callers
    /// (and `#[should_panic(expected = ...)]` tests) see the rank's own
    /// message, not a generic wrapper.
    fn unwrap_outcomes<R>(raw: Vec<Result<R, Box<dyn std::any::Any + Send>>>) -> Vec<R> {
        if raw.iter().all(|r| r.is_ok()) {
            return raw
                .into_iter()
                .map(|r| match r {
                    Ok(v) => v,
                    Err(_) => unreachable!("checked ok"),
                })
                .collect();
        }
        let mut first: Option<Box<dyn std::any::Any + Send>> = None;
        for (rank, r) in raw.into_iter().enumerate() {
            if let Err(payload) = r {
                eprintln!(
                    "[sa_mpisim] rank {rank} failed: {}",
                    RankError::from_payload(payload.as_ref())
                );
                if first.is_none() {
                    first = Some(payload);
                }
            }
        }
        std::panic::resume_unwind(first.expect("at least one failure"))
    }
}

/// `SA_WATCHDOG_SECS` from the environment: fractional seconds accepted,
/// unset / unparsable / `<= 0` = off. Always off when the `watchdog`
/// feature is compiled out.
fn watchdog_from_env() -> Option<Duration> {
    if !cfg!(feature = "watchdog") {
        return None;
    }
    let raw = std::env::var("SA_WATCHDOG_SECS").ok()?;
    let secs: f64 = raw.trim().parse().ok()?;
    (secs > 0.0).then(|| Duration::from_secs_f64(secs))
}

/// `SA_HEARTBEAT_SECS` from the environment: fractional seconds accepted,
/// unset / `0` = off. Unlike the watchdog knob, an unparseable value is
/// *logged* before falling back to off — a liveness deadline that was asked
/// for but silently ignored would look exactly like a hung detector.
fn heartbeat_from_env() -> Option<Duration> {
    parse_heartbeat_secs(std::env::var("SA_HEARTBEAT_SECS").ok().as_deref())
}

fn parse_heartbeat_secs(raw: Option<&str>) -> Option<Duration> {
    let raw = raw?;
    match raw.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 => Some(Duration::from_secs_f64(secs)),
        Ok(_) => None, // explicit 0 (or negative) = off, as documented
        Err(_) => {
            eprintln!(
                "[sa_mpisim] ignoring unparseable SA_HEARTBEAT_SECS={raw:?} \
                 (want fractional seconds, e.g. 0.5); heartbeat monitoring off"
            );
            None
        }
    }
}

impl Shared {
    fn hub_size(&self) -> usize {
        self.hub.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let u = Universe::new(6);
        let got = u.run(|comm| (comm.rank(), comm.size()));
        for (r, (rank, size)) in got.iter().enumerate() {
            assert_eq!(*rank, r);
            assert_eq!(*size, 6);
        }
    }

    #[test]
    fn p2p_ring() {
        let u = Universe::new(5);
        let got = u.run(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_vec(next, 0, vec![comm.rank() as u64]);
            comm.recv_vec::<u64>(prev, 0)[0]
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn barrier_interleaves() {
        // All ranks must pass phase 1 before any passes phase 2.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let u = Universe::new(8);
        u.run(|comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn bcast_and_gather() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let data = comm.bcast_vec(2, (comm.rank() == 2).then(|| vec![7u32, 8, 9]));
            assert_eq!(data, vec![7, 8, 9]);
            comm.gatherv(0, vec![comm.rank() as u32])
        });
        let at_root = got[0].as_ref().unwrap();
        assert_eq!(at_root.len(), 4);
        assert_eq!(at_root[3], vec![3]);
        assert!(got[1].is_none());
    }

    #[test]
    fn allgatherv_uneven() {
        let u = Universe::new(3);
        let got = u.run(|comm| {
            let mine: Vec<u64> = (0..comm.rank() as u64 + 1).collect();
            comm.allgatherv(mine)
        });
        for parts in got {
            assert_eq!(parts, vec![vec![0], vec![0, 1], vec![0, 1, 2]]);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let sends: Vec<Vec<u64>> = (0..4)
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            comm.alltoallv(sends)
        });
        for (r, recvd) in got.iter().enumerate() {
            for (s, v) in recvd.iter().enumerate() {
                assert_eq!(v[0], (s * 10 + r) as u64, "from {s} at {r}");
            }
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let u = Universe::new(5);
        let got = u.run(|comm| {
            let total = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
            let max = comm.reduce(0, comm.rank() as u64, |a, b| a.max(b));
            (total, max)
        });
        for (r, (total, max)) in got.iter().enumerate() {
            assert_eq!(*total, 15);
            if r == 0 {
                assert_eq!(*max, Some(4));
            } else {
                assert!(max.is_none());
            }
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let u = Universe::new(3);
        let got = u.run(|comm| comm.allreduce_vec(vec![comm.rank() as u64, 1], |a, b| a + b));
        for v in got {
            assert_eq!(v, vec![3, 3]);
        }
    }

    #[test]
    fn exscan_offsets() {
        let u = Universe::new(4);
        let got = u.run(|comm| comm.exscan_sum((comm.rank() as u64 + 1) * 10));
        assert_eq!(got, vec![(0, 100), (10, 100), (30, 100), (60, 100)]);
    }

    #[test]
    fn stats_meter_p2p() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            if comm.rank() == 0 {
                comm.send_vec(1, 3, vec![0u64; 100]); // 800 bytes
            } else {
                let _ = comm.recv_vec::<u64>(0, 3);
            }
            comm.barrier();
            comm.stats()
        });
        assert_eq!(got[0].sent_msgs, 1);
        assert_eq!(got[0].sent_bytes, 800);
        assert_eq!(got[1].recv_msgs, 1);
        assert_eq!(got[1].recv_bytes, 800);
    }

    #[test]
    fn self_sends_are_free() {
        let u = Universe::new(2);
        let got = u.run(|comm| {
            comm.send_vec(comm.rank(), 9, vec![1u8, 2, 3]);
            let v = comm.recv_vec::<u8>(comm.rank(), 9);
            assert_eq!(v, vec![1, 2, 3]);
            comm.stats()
        });
        assert_eq!(got[0].sent_bytes, 0);
        assert_eq!(got[0].recv_bytes, 0);
    }

    #[test]
    fn subcomm_traffic_charges_parent_stats() {
        // The rank's counters model its NIC: traffic on a split
        // communicator must appear in the world handle's stats too.
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank());
            let before = comm.stats();
            if sub.rank() == 0 {
                sub.send_vec(1, 0, vec![0u64; 64]);
            } else {
                let _ = sub.recv_vec::<u64>(0, 0);
            }
            comm.barrier();
            comm.stats() - before
        });
        assert_eq!(got[0].sent_bytes, 512);
        assert_eq!(got[2].recv_bytes, 512);
    }

    #[test]
    fn split_into_rows() {
        // 6 ranks -> 2 colors of 3; new ranks ordered by key=old rank.
        let u = Universe::new(6);
        let got = u.run(|comm| {
            let color = comm.rank() / 3;
            let sub = comm.split(color, comm.rank());
            // sum of old ranks within each color group
            let s = sub.allreduce(comm.rank() as u64, |a, b| a + b);
            (sub.rank(), sub.size(), s)
        });
        assert_eq!(got[0], (0, 3, 3)); // 0+1+2
        assert_eq!(got[4], (1, 3, 12)); // 3+4+5
        assert_eq!(got[5], (2, 3, 12));
    }

    #[test]
    fn split_key_reorders() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            // single color, key reverses order
            let sub = comm.split(0, comm.size() - comm.rank());
            sub.rank()
        });
        assert_eq!(got, vec![3, 2, 1, 0]);
    }

    #[test]
    fn threads_backend_matches_sim_backend() {
        // Same collectives, same results, same metered traffic on both
        // backends — the contract the backend-equivalence suite asserts at
        // algorithm scale.
        let u = Universe::new(6);
        fn job<C: crate::Comm>(comm: &C) -> (u64, Vec<Vec<u64>>, crate::CommStats) {
            let s = comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b);
            let parts = comm.allgatherv(vec![comm.rank() as u64; comm.rank() + 1]);
            comm.barrier();
            (s, parts, comm.stats())
        }
        let sim = u.run(job);
        let thr = u.run_threads(job);
        assert_eq!(sim, thr);
    }

    #[test]
    fn serial_backend_runs_one_rank_at_a_time() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inside = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let u = Universe::new(8);
        // launch::<Serial> pins serial scheduling regardless of SA_BACKEND
        u.launch::<crate::Serial, _, _>(|comm| {
            for _ in 0..5 {
                let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now(); // invite overlap if scheduling allowed it
                inside.fetch_sub(1, Ordering::SeqCst);
                comm.barrier();
            }
        });
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "SimComm must serialize ranks"
        );
    }

    #[test]
    fn threads_backend_overlaps_ranks() {
        // All ranks enter a rendezvous region and wait for each other
        // WITHOUT a comm barrier: only truly-concurrent execution can get
        // every rank inside the region at once.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inside = AtomicUsize::new(0);
        let u = Universe::new(4);
        u.run_threads(|_comm| {
            inside.fetch_add(1, Ordering::SeqCst);
            while inside.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
        });
        assert_eq!(inside.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn threads_backend_p2p_and_windows() {
        use crate::Window;
        let u = Universe::new(5);
        let got = u.run_threads(|comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_vec(next, 0, vec![comm.rank() as u64]);
            let from_prev = comm.recv_vec::<u64>(prev, 0)[0];
            let win = Window::create(comm, vec![comm.rank() as u32; 4]);
            let fetched = win.get(comm, next, 1..3);
            (from_prev, fetched)
        });
        for (r, (from_prev, fetched)) in got.iter().enumerate() {
            assert_eq!(*from_prev as usize, (r + 4) % 5);
            assert_eq!(*fetched, vec![((r + 1) % 5) as u32; 2]);
        }
    }

    #[test]
    fn rank_threads_are_named() {
        let u = Universe::new(3);
        let got = u.run(|_comm| std::thread::current().name().map(String::from));
        for (r, name) in got.iter().enumerate() {
            assert_eq!(name.as_deref(), Some(format!("sa-rank-{r}").as_str()));
        }
    }

    #[test]
    fn try_run_returns_every_rank_outcome() {
        use crate::{CommError, RankError};
        // Rank 2 dies mid-job on both backends; the others must terminate
        // with PeerFailed naming it, and ranks are joined in order.
        fn job<M: Mode>(comm: &RankComm<M>) -> usize {
            if comm.rank() == 2 {
                panic!("rank 2 gives up");
            }
            comm.barrier();
            comm.rank() * 10
        }
        for backend_threads in [false, true] {
            let u = Universe::new(4);
            let out = if backend_threads {
                u.try_launch::<crate::Threads, _, _>(job)
            } else {
                u.try_launch::<crate::Serial, _, _>(job)
            };
            assert_eq!(out.len(), 4);
            assert!(matches!(
                &out[2],
                Err(RankError::Panic { summary }) if summary.contains("rank 2 gives up")
            ));
            for r in [0, 1, 3] {
                match &out[r] {
                    Err(RankError::Comm(CommError::PeerFailed { rank, .. })) => {
                        assert_eq!(*rank, 2, "survivor {r} must name the victim");
                    }
                    other => panic!("rank {r}: expected PeerFailed, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn try_run_is_all_ok_on_success() {
        let u = Universe::new(3);
        let out = u.try_run(|comm| comm.allreduce(1u64, |a, b| a + b));
        assert_eq!(
            out.into_iter().collect::<Result<Vec<_>, _>>().unwrap(),
            vec![3, 3, 3]
        );
    }

    #[cfg(feature = "watchdog")]
    #[test]
    fn watchdog_converts_deadlock_into_typed_failure() {
        use crate::{CommError, RankError};
        // Both ranks receive a message nobody sends: a certain deadlock.
        // The watchdog must terminate the job — one rank times out, the
        // other unwinds with PeerFailed naming it.
        let u = Universe::new(2).with_watchdog(Some(Duration::from_millis(200)));
        let out = u.try_run(|comm| {
            let from = (comm.rank() + 1) % 2;
            let _: Vec<u8> = comm.recv_vec(from, 0);
        });
        let timed_out: Vec<usize> = (0..2)
            .filter(|&r| matches!(out[r], Err(RankError::Comm(CommError::Timeout { .. }))))
            .collect();
        assert_eq!(
            timed_out.len(),
            1,
            "exactly one rank trips the watchdog: {out:?}"
        );
        let victim = timed_out[0];
        assert!(
            matches!(
                out[1 - victim],
                Err(RankError::Comm(CommError::PeerFailed { rank, .. })) if rank == victim
            ),
            "peer must name the timed-out rank: {out:?}"
        );
    }

    #[test]
    fn watchdog_env_knob_parses() {
        // Parsing only — the env var itself is process-global, so don't set
        // it here; with_watchdog covers the wiring.
        let u = Universe::new(2).with_watchdog(Some(Duration::from_secs(7)));
        if cfg!(feature = "watchdog") {
            assert_eq!(u.watchdog(), Some(Duration::from_secs(7)));
        }
        assert_eq!(u.with_watchdog(None).watchdog(), None);
    }

    #[test]
    fn heartbeat_secs_parsing_accepts_and_rejects_explicitly() {
        // Parsing only — the env var is process-global, so exercise the
        // pure parser; with_heartbeat covers the wiring.
        assert_eq!(parse_heartbeat_secs(None), None);
        assert_eq!(
            parse_heartbeat_secs(Some("0.5")),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            parse_heartbeat_secs(Some(" 2 ")),
            Some(Duration::from_secs(2))
        );
        assert_eq!(parse_heartbeat_secs(Some("0")), None, "0 disables");
        assert_eq!(parse_heartbeat_secs(Some("-1")), None);
        assert_eq!(parse_heartbeat_secs(Some("soon")), None, "logged, off");
        let u = Universe::new(2).with_heartbeat(Some(Duration::from_millis(250)));
        assert_eq!(u.heartbeat(), Some(Duration::from_millis(250)));
        assert_eq!(u.with_heartbeat(None).heartbeat(), None);
    }

    #[test]
    fn per_rank_pools_have_requested_threads() {
        let u = Universe::with_threads(3, 2);
        let got = u.run(|comm| comm.pool().current_num_threads());
        assert_eq!(got, vec![2, 2, 2]);
    }

    #[test]
    fn install_runs_on_pool() {
        let u = Universe::with_threads(2, 3);
        let got = u.run(|comm| comm.install(rayon::current_num_threads));
        assert_eq!(got, vec![3, 3]);
    }
}
