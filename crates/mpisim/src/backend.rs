//! The backend-neutral communicator contract.
//!
//! Every distributed algorithm in this workspace is written against the
//! [`Comm`] trait, not a concrete runtime. A backend supplies the small
//! **core surface** (identity, two-sided transport, barrier, split, and the
//! metering hooks); the collectives are *provided methods* built on that
//! core, so their byte and message accounting is identical across backends
//! by construction — the property the equivalence suite asserts per rank.
//!
//! Two in-process backends ship with the crate (see `docs/BACKENDS.md` for
//! the full contract and an extension guide):
//!
//! * [`SimComm`](crate::SimComm) — the serial rank-loop **simulator**: one
//!   rank executes at a time (a global run permit is handed over at
//!   blocking calls), so per-rank timings are measured interference-free
//!   and a run's wall-clock is the *sum* of rank work. The default.
//! * [`ThreadComm`](crate::ThreadComm) — **threads as ranks**: all rank
//!   threads run concurrently; wall-clock is real parallel execution.
//!
//! ```
//! use sa_mpisim::{Comm, Universe};
//!
//! // An algorithm written once against the trait ...
//! fn ring_sum<C: Comm>(comm: &C) -> u64 {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! }
//!
//! // ... runs on the serial simulator and the threaded backend alike,
//! // with identical results and identical metered traffic.
//! let u = Universe::new(4);
//! let serial = u.run(|comm| (ring_sum(comm), comm.stats()));
//! let threaded = u.run_threads(|comm| (ring_sum(comm), comm.stats()));
//! assert_eq!(serial, threaded);
//! ```

use crate::stats::CommStats;
use crate::window::{Exposure, WindowSpec};
use std::any::Any;
use std::sync::Arc;

/// Internal tag namespace for collectives: high bit set, op id in the middle,
/// op kind in the low byte. User tags must stay below 2^48.
fn tag(op: u64, kind: u64) -> u64 {
    (1 << 63) | (op << 8) | kind
}

const K_BCAST: u64 = 1;
const K_GATHER: u64 = 2;
const K_SCATTER: u64 = 3;
const K_ALLTOALL: u64 = 4;
const K_REDUCE: u64 = 5;

/// One rank's handle to a communicator — the backend-neutral analog of an
/// `MPI_Comm` plus the rank's compute ("OpenMP") pool.
///
/// # Contract
///
/// A conforming backend must guarantee, for the required methods:
///
/// * **Identity.** [`rank`](Comm::rank) is stable and unique in
///   `0..size()`; every rank of the communicator observes the same
///   [`size`](Comm::size).
/// * **Ordering.** Messages between one `(sender, receiver, tag)` triple
///   are non-overtaking (FIFO), the MPI guarantee the linear collective
///   algorithms rely on. Messages under different tags are independent.
/// * **Progress.** [`send_vec`](Comm::send_vec) is eager and never blocks
///   (unbounded buffering); [`recv_vec`](Comm::recv_vec) blocks until a
///   matching message arrives. A backend whose ranks share a scheduler
///   (e.g. the serial simulator) must keep other ranks runnable while one
///   rank blocks — blocking a rank must never block the *job*.
/// * **Metering.** Every remote transfer is counted exactly once, on the
///   initiating side as sent and on the receiving side as received, with
///   `len * size_of::<T>()` bytes; rank-local transfers are free. The
///   one-sided hook [`record_get`](Comm::record_get) charges the issuing
///   rank only. Counters are monotone; [`stats`](Comm::stats) snapshots
///   them without synchronizing.
/// * **Collectives.** The provided collectives must not be overridden with
///   different traffic shapes: their linear (root-relay) decomposition into
///   `send_vec`/`recv_vec` is what makes metered volume byte-identical
///   across backends, which the repo's reports and tests assert. A backend
///   that wants faster collectives must keep the accounting identical.
pub trait Comm: Sized {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in this communicator.
    fn size(&self) -> usize;

    /// Cumulative communication counters of this rank (on this
    /// communicator and windows created from it).
    fn stats(&self) -> CommStats;

    /// The rank's compute pool ("OpenMP threads"). Run local kernels inside
    /// [`Comm::install`] so they use this pool, not the global one.
    fn pool(&self) -> &rayon::ThreadPool;

    /// Synchronize all ranks of this communicator.
    fn barrier(&self);

    /// Send a `Vec<T>` to `dst` under `tag` (two-sided, eager, non-blocking).
    fn send_vec<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>);

    /// Blocking receive of a `Vec<T>` from `(src, tag)`.
    fn recv_vec<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T>;

    /// Non-blocking: is a message from `(src, tag)` queued?
    fn probe(&self, src: usize, tag: u64) -> bool;

    /// Split into sub-communicators by `color`, ranked by `(key, old
    /// rank)` — the analog of `MPI_Comm_split`. Collective over all ranks.
    /// Traffic on the sub-communicator still charges this rank's counters
    /// (one NIC per rank).
    fn split(&self, color: usize, key: usize) -> Self;

    /// Fresh collective-operation id; identical across ranks because MPI
    /// semantics require every rank to call collectives in the same order.
    #[doc(hidden)]
    fn next_op(&self) -> u64;

    /// Simulation-internal zero-copy all-exchange of `Arc`s (not metered —
    /// used for window exposure and communicator splits, which move no
    /// payload bytes; the subsequent `get`s are what's metered). In-process
    /// backends share the `Arc` directly; a cross-process backend would
    /// implement window exposure natively instead (see `docs/BACKENDS.md`).
    #[doc(hidden)]
    fn exchange_arcs(&self, value: Arc<dyn Any + Send + Sync>) -> Vec<Arc<dyn Any + Send + Sync>>;

    /// Metering hook for one-sided transfers: charge one RDMA get of
    /// `bytes` to this rank. Called by [`Window::get`](crate::Window) for
    /// remote fetches only.
    #[doc(hidden)]
    fn record_get(&self, bytes: usize);

    /// Whether this backend's one-sided gets may be driven from a
    /// background thread while the rank's main thread computes — the
    /// capability the [`Prefetcher`](crate::Prefetcher) consults.
    ///
    /// Contract: returning `true` promises that (a) the transport half of a
    /// window fetch (`RemoteWindow::get_bytes` or the shared-`Arc` memcpy)
    /// is safe to call from a helper thread of the rank, and (b) doing so
    /// cannot change metered traffic (metering is pinned to issue time on
    /// the main thread — see
    /// [`PairedWindow::start_get_both`](crate::PairedWindow::start_get_both)).
    /// The serial simulator answers `false`: its determinism comes from the
    /// run-permit discipline, so the prefetcher degrades to in-order issue
    /// rather than spawning a racing helper. Wrapper communicators must
    /// delegate explicitly (like [`expose`](Comm::expose)); the
    /// conservative default is `false`.
    fn overlap_capable(&self) -> bool {
        false
    }

    /// Collective window exposure (`MPI_Win_create`). The default routes
    /// through [`exchange_arcs`](Comm::exchange_arcs) — zero-copy sharing,
    /// correct for any in-process backend. A cross-process backend overrides
    /// this to register the deposit with its progress engine and return an
    /// [`Exposure::Remote`] transport instead; like `exchange_arcs`, the
    /// exposure itself is unmetered (the subsequent `get`s are what's
    /// metered).
    #[doc(hidden)]
    fn expose(&self, spec: WindowSpec) -> Exposure {
        Exposure::Shared(self.exchange_arcs(spec.arc))
    }

    /// Execute `f` on this rank's compute pool.
    fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.pool().install(f)
    }

    /// Broadcast `data` from `root` to every rank; all ranks return the
    /// payload. Non-roots pass `None`.
    fn bcast_vec<T: Clone + Send + 'static>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        let op = self.next_op();
        let t = tag(op, K_BCAST);
        if self.rank() == root {
            let data = data.expect("root must supply bcast data");
            for dst in 0..self.size() {
                if dst != root {
                    self.send_vec(dst, t, data.clone());
                }
            }
            data
        } else {
            self.recv_vec(root, t)
        }
    }

    /// Gather each rank's vector at `root`; returns `Some(per-rank vectors)`
    /// on the root, `None` elsewhere.
    fn gatherv<T: Send + 'static>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        let op = self.next_op();
        let t = tag(op, K_GATHER);
        if self.rank() == root {
            let mut out: Vec<Option<Vec<T>>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(data);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_vec(src, t));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send_vec(root, t, data);
            None
        }
    }

    /// Scatter per-destination vectors from `root`; every rank returns its
    /// piece. Non-roots pass `None`.
    fn scatterv<T: Send + 'static>(&self, root: usize, data: Option<Vec<Vec<T>>>) -> Vec<T> {
        let op = self.next_op();
        let t = tag(op, K_SCATTER);
        if self.rank() == root {
            let mut data = data.expect("root must supply scatter data");
            assert_eq!(data.len(), self.size());
            let mine = std::mem::take(&mut data[self.rank()]);
            for (dst, part) in data.into_iter().enumerate() {
                if dst != self.rank() {
                    self.send_vec(dst, t, part);
                }
            }
            mine
        } else {
            self.recv_vec(root, t)
        }
    }

    /// All ranks receive every rank's vector (gather + bcast volume).
    fn allgatherv<T: Clone + Send + 'static>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        // gather to 0, then broadcast lengths+flat data
        let gathered = self.gatherv(0, data);
        let (flat, lens) = if self.rank() == 0 {
            let parts = gathered.unwrap();
            let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
            let mut flat = Vec::with_capacity(lens.iter().sum());
            for p in parts {
                flat.extend(p);
            }
            (Some(flat), Some(lens))
        } else {
            (None, None)
        };
        let lens = self.bcast_vec(0, lens);
        let flat = self.bcast_vec(0, flat);
        let mut out = Vec::with_capacity(lens.len());
        let mut off = 0usize;
        for l in lens {
            out.push(flat[off..off + l].to_vec());
            off += l;
        }
        out
    }

    /// Personalized all-to-all: `sends[d]` goes to rank `d`; returns what
    /// each source sent here.
    fn alltoallv<T: Send + 'static>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(sends.len(), self.size());
        let op = self.next_op();
        let t = tag(op, K_ALLTOALL);
        let mine = std::mem::take(&mut sends[self.rank()]);
        for (dst, part) in sends.into_iter().enumerate() {
            if dst != self.rank() {
                self.send_vec(dst, t, part);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        let mut mine = Some(mine); // self-delivery: no network traffic
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(mine.take().unwrap());
            } else {
                out.push(self.recv_vec(src, t));
            }
        }
        out
    }

    /// Reduce single values to `root` with `op_fn`; `Some` on root only.
    fn reduce<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        op_fn: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let op = self.next_op();
        let t = tag(op, K_REDUCE);
        if self.rank() == root {
            let mut acc = value;
            for src in 0..self.size() {
                if src != root {
                    let v = self.recv_vec::<T>(src, t).pop().unwrap();
                    acc = op_fn(acc, v);
                }
            }
            Some(acc)
        } else {
            self.send_vec(root, t, vec![value]);
            None
        }
    }

    /// All-reduce single values (reduce at 0, then broadcast).
    fn allreduce<T: Clone + Send + 'static>(&self, value: T, op_fn: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op_fn);
        self.bcast_vec(0, reduced.map(|v| vec![v])).pop().unwrap()
    }

    /// Elementwise all-reduce of equal-length vectors.
    fn allreduce_vec<T: Clone + Send + 'static>(
        &self,
        value: Vec<T>,
        op_fn: impl Fn(&T, &T) -> T,
    ) -> Vec<T> {
        let reduced = self.reduce(0, value, |a, b| {
            a.iter().zip(b.iter()).map(|(x, y)| op_fn(x, y)).collect()
        });
        self.bcast_vec(0, reduced)
    }

    /// Exclusive prefix "scan" of a single u64 (rank 0 gets 0) plus the
    /// global total — the common "compute my offset" idiom.
    fn exscan_sum(&self, value: u64) -> (u64, u64) {
        let all = self.allgatherv(vec![value]);
        let mut prefix = 0u64;
        for (r, v) in all.iter().enumerate() {
            if r == self.rank() {
                break;
            }
            prefix += v[0];
        }
        let total = all.iter().map(|v| v[0]).sum();
        (prefix, total)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Serial {}
    impl Sealed for super::Threads {}
}

/// Type-level scheduling mode of the in-process backends: [`Serial`] (the
/// `SimComm` simulator) or [`Threads`] (the `ThreadComm` parallel backend).
/// Sealed — a *new* backend implements [`Comm`] directly instead (see
/// `docs/BACKENDS.md`).
pub trait Mode: sealed::Sealed + Send + Sync + 'static {
    /// Backend name as the benches' `--backend` switch spells it.
    const NAME: &'static str;
    /// Whether rank execution is serialized by the global run permit.
    #[doc(hidden)]
    const SERIAL: bool;
}

/// Marker for the serial rank-loop simulator ([`SimComm`](crate::SimComm)).
pub enum Serial {}

/// Marker for the truly-parallel threads-as-ranks backend
/// ([`ThreadComm`](crate::ThreadComm)).
pub enum Threads {}

impl Mode for Serial {
    const NAME: &'static str = "sim";
    const SERIAL: bool = true;
}

impl Mode for Threads {
    const NAME: &'static str = "threads";
    const SERIAL: bool = false;
}

/// Runtime backend selector for benches and CLIs (`--backend threads`,
/// `SA_BACKEND=threads`). The typed entry points are
/// [`Universe::run`](crate::Universe::run) (sim) and
/// [`Universe::run_threads`](crate::Universe::run_threads); this enum only
/// names them for dispatch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Serial rank-loop simulator (`SimComm`) — the default.
    #[default]
    Sim,
    /// Truly-parallel threads-as-ranks backend (`ThreadComm`).
    Threads,
    /// Process-per-rank localhost-socket backend
    /// ([`ProcComm`](crate::ProcComm)).
    Procs,
}

impl Backend {
    /// Parse a `--backend` value: `sim` | `serial` | `threads` | `thread` |
    /// `procs` | `proc` | `process`.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sim" | "serial" => Some(Backend::Sim),
            "threads" | "thread" => Some(Backend::Threads),
            "procs" | "proc" | "process" => Some(Backend::Procs),
            _ => None,
        }
    }

    /// Backend from the `SA_BACKEND` environment variable (default
    /// [`Backend::Sim`]; unknown values panic so typos can't silently
    /// change what a bench measured).
    pub fn from_env() -> Backend {
        match std::env::var("SA_BACKEND") {
            Ok(v) => Backend::parse(&v)
                .unwrap_or_else(|| panic!("SA_BACKEND={v}: expected 'sim', 'threads', or 'procs'")),
            Err(_) => Backend::Sim,
        }
    }

    /// The backend's canonical name (`"sim"` / `"threads"` / `"procs"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => Serial::NAME,
            Backend::Threads => Threads::NAME,
            Backend::Procs => "procs",
        }
    }

    /// Whether this backend executes ranks inside the calling process
    /// (thread-per-rank) rather than as separate OS processes. In-process
    /// backends share one address space, so tests that reach across ranks
    /// through shared memory (or rely on a shared panic hook) only work
    /// when this is true.
    pub fn in_process(self) -> bool {
        !matches!(self, Backend::Procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parsing() {
        assert_eq!(Backend::parse("sim"), Some(Backend::Sim));
        assert_eq!(Backend::parse("Serial"), Some(Backend::Sim));
        assert_eq!(Backend::parse("threads"), Some(Backend::Threads));
        assert_eq!(Backend::parse("THREAD"), Some(Backend::Threads));
        assert_eq!(Backend::parse("procs"), Some(Backend::Procs));
        assert_eq!(Backend::parse("Process"), Some(Backend::Procs));
        assert_eq!(Backend::parse("mpi"), None);
        assert_eq!(Backend::default(), Backend::Sim);
    }

    #[test]
    fn mode_names_match_backend_names() {
        assert_eq!(Backend::Sim.name(), "sim");
        assert_eq!(Backend::Threads.name(), "threads");
        assert_eq!(Backend::Procs.name(), "procs");
        assert!(Backend::Sim.in_process());
        assert!(Backend::Threads.in_process());
        assert!(!Backend::Procs.in_process());
    }
}
