//! Exact communication accounting.

use std::cell::Cell;
use std::ops::{Add, Sub};

/// A snapshot of one rank's cumulative communication counters.
///
/// `sent_*` counts two-sided sends (collectives decompose into these),
/// `rdma_*` counts one-sided [`crate::Window::get`] traffic — the paper
/// reports the two classes separately (Fig. 5 vs Fig. 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    pub sent_msgs: u64,
    pub sent_bytes: u64,
    pub recv_msgs: u64,
    pub recv_bytes: u64,
    pub rdma_gets: u64,
    pub rdma_get_bytes: u64,
}

impl CommStats {
    /// Total bytes this rank moved onto the network (sends + gets; receives
    /// are the mirror image of some other rank's sends).
    pub fn injected_bytes(&self) -> u64 {
        self.sent_bytes + self.rdma_get_bytes
    }

    /// Total network transactions initiated by this rank.
    pub fn injected_msgs(&self) -> u64 {
        self.sent_msgs + self.rdma_gets
    }
}

impl Sub for CommStats {
    type Output = CommStats;
    fn sub(self, o: CommStats) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs - o.sent_msgs,
            sent_bytes: self.sent_bytes - o.sent_bytes,
            recv_msgs: self.recv_msgs - o.recv_msgs,
            recv_bytes: self.recv_bytes - o.recv_bytes,
            rdma_gets: self.rdma_gets - o.rdma_gets,
            rdma_get_bytes: self.rdma_get_bytes - o.rdma_get_bytes,
        }
    }
}

impl Add for CommStats {
    type Output = CommStats;
    fn add(self, o: CommStats) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs + o.sent_msgs,
            sent_bytes: self.sent_bytes + o.sent_bytes,
            recv_msgs: self.recv_msgs + o.recv_msgs,
            recv_bytes: self.recv_bytes + o.recv_bytes,
            rdma_gets: self.rdma_gets + o.rdma_gets,
            rdma_get_bytes: self.rdma_get_bytes + o.rdma_get_bytes,
        }
    }
}

/// Interior-mutable counters owned by a [`crate::Comm`] (each rank's handle
/// lives on exactly one thread, so `Cell` suffices).
#[derive(Default)]
pub(crate) struct StatsCell {
    sent_msgs: Cell<u64>,
    sent_bytes: Cell<u64>,
    recv_msgs: Cell<u64>,
    recv_bytes: Cell<u64>,
    rdma_gets: Cell<u64>,
    rdma_get_bytes: Cell<u64>,
}

impl StatsCell {
    pub fn record_send(&self, bytes: usize) {
        self.sent_msgs.set(self.sent_msgs.get() + 1);
        self.sent_bytes.set(self.sent_bytes.get() + bytes as u64);
    }

    pub fn record_recv(&self, bytes: usize) {
        self.recv_msgs.set(self.recv_msgs.get() + 1);
        self.recv_bytes.set(self.recv_bytes.get() + bytes as u64);
    }

    pub fn record_get(&self, bytes: usize) {
        self.rdma_gets.set(self.rdma_gets.get() + 1);
        self.rdma_get_bytes
            .set(self.rdma_get_bytes.get() + bytes as u64);
    }

    pub fn snapshot(&self) -> CommStats {
        CommStats {
            sent_msgs: self.sent_msgs.get(),
            sent_bytes: self.sent_bytes.get(),
            recv_msgs: self.recv_msgs.get(),
            recv_bytes: self.recv_bytes.get(),
            rdma_gets: self.rdma_gets.get(),
            rdma_get_bytes: self.rdma_get_bytes.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = StatsCell::default();
        s.record_send(100);
        s.record_send(50);
        s.record_get(8);
        let snap = s.snapshot();
        assert_eq!(snap.sent_msgs, 2);
        assert_eq!(snap.sent_bytes, 150);
        assert_eq!(snap.rdma_gets, 1);
        assert_eq!(snap.injected_bytes(), 158);
        assert_eq!(snap.injected_msgs(), 3);
    }

    #[test]
    fn diff_arithmetic() {
        let s = StatsCell::default();
        s.record_send(10);
        let before = s.snapshot();
        s.record_send(30);
        s.record_recv(5);
        let delta = s.snapshot() - before;
        assert_eq!(delta.sent_msgs, 1);
        assert_eq!(delta.sent_bytes, 30);
        assert_eq!(delta.recv_bytes, 5);
        let sum = delta + delta;
        assert_eq!(sum.sent_bytes, 60);
    }
}
