//! Double-buffered prefetch: overlap planned ranged gets with compute.
//!
//! The staged multiplies (1D overlap, the 2D SUMMA stage, its per-layer 3D
//! form, and session miss-fetches) all share one shape: a *plan* of ranged
//! window gets whose coordinates are fully known before any byte moves,
//! followed by compute that does not need the fetched bytes until a
//! well-defined rendezvous point. [`Prefetcher`] exploits that shape: it
//! issues a budget-capped prefix of the plan on a background thread while
//! the foreground closure computes, joins at the rendezvous, and
//! demand-fetches the remainder inline.
//!
//! # The byte-identity invariant
//!
//! Overlap must never change what the run *meters* or *produces* — only
//! when the bytes move. Two design rules enforce this by construction:
//!
//! * **Metering happens at issue time, on the calling thread.** Consumers
//!   create [`PairedGet`](crate::PairedGet) handles for the whole plan
//!   up front (each handle records its RDMA messages/bytes exactly once,
//!   in plan order); the background and demand paths then perform pure
//!   data movement. A range can therefore never be metered twice, no
//!   matter which path fetches it — the double-meter hazard is
//!   structurally impossible, and per-rank [`CommStats`](crate::CommStats)
//!   totals are identical with overlap on or off.
//! * **Fetches land in plan order.** The background prefix `0..k` appends
//!   to the staging area first, the demand suffix `k..n` after the join,
//!   so staged bytes are laid out exactly as a sequential fetch loop would
//!   lay them out, and the rendezvous assembly is deterministic.
//!
//! # Backend degradation
//!
//! On backends whose gets are genuinely asynchronous round-trips
//! ([`ProcComm`](crate::ProcComm)'s `GetReq`/`GetResp` over sockets) or at
//! least concurrent memcpys ([`ThreadComm`](crate::ThreadComm)), the
//! prefix runs on a scoped background thread. On the serial simulator
//! ([`SimComm`](crate::SimComm)) a background thread would perturb the
//! run-permit discipline's determinism for no gain (gets never block), so
//! [`Comm::overlap_capable`] reports `false` and the prefetcher degrades
//! to deterministic in-order issue: foreground first, then every fetch
//! inline in plan order on the calling thread. Either way the same
//! closures run with the same arguments — only the interleaving differs.

use crate::backend::Comm;
use std::ops::Range;

/// Overlap knob for the staged multiplies: whether to prefetch at all and
/// how many bytes may be in flight on the background path per stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Whether consumers should overlap fetches with compute at all.
    pub enabled: bool,
    /// Byte budget for the background path of one stage: the prefetched
    /// prefix of a stage plan never exceeds this many bytes in flight;
    /// ranges past the budget are demand-fetched at the rendezvous.
    pub max_inflight_bytes: u64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig::disabled()
    }
}

impl PrefetchConfig {
    /// Overlap off: every fetch is issued inline in plan order (the
    /// pre-prefetch behaviour, and the default).
    pub const fn disabled() -> PrefetchConfig {
        PrefetchConfig {
            enabled: false,
            max_inflight_bytes: u64::MAX,
        }
    }

    /// Overlap on with an unlimited in-flight budget.
    pub const fn on() -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            max_inflight_bytes: u64::MAX,
        }
    }

    /// Overlap on, background path capped at `bytes` in flight per stage.
    pub const fn budget(bytes: u64) -> PrefetchConfig {
        PrefetchConfig {
            enabled: true,
            max_inflight_bytes: bytes,
        }
    }

    /// Config from the environment: `SA_PREFETCH` truthy (anything but
    /// unset, empty, or `0`) enables overlap; `SA_PREFETCH_BYTES` caps the
    /// per-stage in-flight budget (default unlimited).
    pub fn from_env() -> PrefetchConfig {
        let enabled = std::env::var("SA_PREFETCH")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let max_inflight_bytes = std::env::var("SA_PREFETCH_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(u64::MAX);
        PrefetchConfig {
            enabled,
            max_inflight_bytes,
        }
    }
}

/// Pure accounting half of the prefetcher: splits each stage plan into the
/// budget-admitted background prefix and the demand suffix, and keeps the
/// running prefetched/demand byte totals. Separated from the execution
/// half so the invariants are property-testable without threads:
///
/// * `prefetched_bytes() + demand_bytes() == planned_bytes()` exactly;
/// * every admitted prefix's byte sum is `<=` the budget passed to
///   [`admit`](PrefetchMeter::admit);
/// * the prefix/suffix split covers each range exactly once.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchMeter {
    prefetched_bytes: u64,
    demand_bytes: u64,
    stages: u64,
}

impl PrefetchMeter {
    /// Fresh meter with zero totals.
    pub fn new() -> PrefetchMeter {
        PrefetchMeter::default()
    }

    /// Admit a stage plan of per-range byte `sizes` under `max_inflight`
    /// budget: returns `k` such that ranges `0..k` go to the background
    /// path (their byte sum never exceeding the budget) and `k..n` stay
    /// for demand fetch. Admission is a plan-order prefix — reordering
    /// fetches would change where staged bytes land. A single range
    /// larger than the whole budget is never admitted.
    pub fn admit(&mut self, sizes: &[u64], max_inflight: u64) -> usize {
        let mut inflight = 0u64;
        let mut k = 0usize;
        for &s in sizes {
            match inflight.checked_add(s) {
                Some(total) if total <= max_inflight => inflight = total,
                _ => break,
            }
            k += 1;
        }
        self.prefetched_bytes += inflight;
        self.demand_bytes += sizes[k..].iter().sum::<u64>();
        self.stages += 1;
        k
    }

    /// Total bytes admitted to background paths so far.
    pub fn prefetched_bytes(&self) -> u64 {
        self.prefetched_bytes
    }

    /// Total bytes left to demand fetches so far.
    pub fn demand_bytes(&self) -> u64 {
        self.demand_bytes
    }

    /// Total planned bytes seen: prefetched + demand, by construction.
    pub fn planned_bytes(&self) -> u64 {
        self.prefetched_bytes + self.demand_bytes
    }

    /// Number of stage plans admitted.
    pub fn stages(&self) -> u64 {
        self.stages
    }
}

/// The double-buffered prefetch engine. Create one per staged multiply
/// with [`Prefetcher::new`]; run each stage through
/// [`Prefetcher::stage`]. See the module docs for the overlap protocol
/// and the determinism/byte-identity argument.
pub struct Prefetcher {
    cfg: PrefetchConfig,
    async_capable: bool,
    meter: PrefetchMeter,
}

impl Prefetcher {
    /// A prefetcher for `comm`'s backend under `cfg`. Captures
    /// [`Comm::overlap_capable`] once — the `Comm` handle itself is not
    /// thread-safe and never crosses to the background path.
    pub fn new<C: Comm>(comm: &C, cfg: PrefetchConfig) -> Prefetcher {
        Prefetcher {
            cfg,
            async_capable: comm.overlap_capable(),
            meter: PrefetchMeter::new(),
        }
    }

    /// Whether stages actually run a background thread (config enabled AND
    /// the backend advertises asynchronous gets).
    pub fn is_async(&self) -> bool {
        self.cfg.enabled && self.async_capable
    }

    /// The accounting so far (prefetched vs demand bytes, stage count).
    pub fn meter(&self) -> &PrefetchMeter {
        &self.meter
    }

    /// Run one stage. `sizes[i]` is the wire byte size of planned range
    /// `i`; `fetch(lo..hi, staging)` performs the *pure data movement* for
    /// ranges `lo..hi`, appending to `staging` in plan order (metering
    /// must already have happened at issue time — see
    /// [`PairedWindow::start_get_both`](crate::PairedWindow::start_get_both));
    /// `foreground` is the compute to overlap. Returns the staging area
    /// (now holding every planned range, in plan order) and the
    /// foreground's result.
    ///
    /// Async path: spawn `fetch(0..k)` on a scoped background thread (`k`
    /// budget-admitted), run `foreground` on the calling thread, join
    /// (re-raising a background panic with its original payload, so typed
    /// `CommError`s survive), then demand-fetch `k..n` inline. Serial /
    /// disabled path: `foreground`, then `fetch(0..n)` inline — identical
    /// closures, deterministic single-thread order.
    pub fn stage<S: Send, T>(
        &mut self,
        sizes: &[u64],
        staging: &mut S,
        fetch: impl Fn(Range<usize>, &mut S) + Sync,
        foreground: impl FnOnce() -> T,
    ) -> T {
        let n = sizes.len();
        if !self.is_async() {
            self.meter.admit(sizes, 0);
            let out = foreground();
            if n > 0 {
                fetch(0..n, staging);
            }
            return out;
        }
        let k = self.meter.admit(sizes, self.cfg.max_inflight_bytes);
        let out = {
            let fetch = &fetch;
            std::thread::scope(|scope| {
                let bg = scope.spawn(move || {
                    if k > 0 {
                        fetch(0..k, staging);
                    }
                    staging
                });
                let out = foreground();
                // Rendezvous: the stage's staged bytes are complete (or the
                // failure is re-raised with its typed payload) before anyone
                // reads them — no torn stage buffers.
                match bg.join() {
                    Ok(staging) => {
                        if k < n {
                            fetch(k..n, staging);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
                out
            })
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn config_defaults_off_and_budget_constructors() {
        assert!(!PrefetchConfig::default().enabled);
        assert!(PrefetchConfig::on().enabled);
        let b = PrefetchConfig::budget(1024);
        assert!(b.enabled);
        assert_eq!(b.max_inflight_bytes, 1024);
    }

    #[test]
    fn meter_splits_exactly_and_respects_budget() {
        let mut m = PrefetchMeter::new();
        let sizes = [100u64, 200, 50, 400, 10];
        let k = m.admit(&sizes, 350);
        assert_eq!(k, 3); // 100+200+50 = 350 <= 350; +400 would burst
        assert_eq!(m.prefetched_bytes(), 350);
        assert_eq!(m.demand_bytes(), 410);
        assert_eq!(m.planned_bytes(), 760);
        assert_eq!(m.stages(), 1);
    }

    #[test]
    fn meter_never_admits_an_oversized_first_range() {
        let mut m = PrefetchMeter::new();
        assert_eq!(m.admit(&[1000, 1], 999), 0);
        assert_eq!(m.prefetched_bytes(), 0);
        assert_eq!(m.demand_bytes(), 1001);
    }

    #[test]
    fn meter_handles_overflowing_plans() {
        let mut m = PrefetchMeter::new();
        assert_eq!(m.admit(&[u64::MAX, u64::MAX - 5], u64::MAX), 1);
        assert_eq!(m.prefetched_bytes(), u64::MAX);
    }

    #[test]
    fn serial_stage_fetches_everything_in_plan_order() {
        Universe::new(1).run(|comm| {
            let mut pf = Prefetcher::new(comm, PrefetchConfig::on());
            assert!(!pf.is_async(), "SimComm degrades to in-order issue");
            let mut log: Vec<usize> = Vec::new();
            let sizes = [8u64, 8, 8];
            let fg = pf.stage(&sizes, &mut log, |r, log| log.extend(r), || "computed");
            assert_eq!(fg, "computed");
            assert_eq!(log, vec![0, 1, 2]);
            assert_eq!(pf.meter().prefetched_bytes(), 0);
            assert_eq!(pf.meter().demand_bytes(), 24);
        });
    }

    #[test]
    fn async_stage_covers_the_plan_and_returns_foreground() {
        Universe::new(1).run_threads(|comm| {
            let mut pf = Prefetcher::new(comm, PrefetchConfig::budget(16));
            assert!(pf.is_async());
            let mut log: Vec<usize> = Vec::new();
            let sizes = [8u64, 8, 8, 8];
            let fg = pf.stage(&sizes, &mut log, |r, log| log.extend(r), || 7u32);
            assert_eq!(fg, 7);
            // background got 0..2 (16 bytes), demand appended 2..4 after
            assert_eq!(log, vec![0, 1, 2, 3]);
            assert_eq!(pf.meter().prefetched_bytes(), 16);
            assert_eq!(pf.meter().demand_bytes(), 16);
        });
    }

    #[test]
    fn async_stage_reraises_background_panic_payload() {
        let caught = std::panic::catch_unwind(|| {
            Universe::new(1).run_threads(|comm| {
                let mut pf = Prefetcher::new(comm, PrefetchConfig::on());
                let mut sink = ();
                pf.stage(
                    &[1u64],
                    &mut sink,
                    |_, _| std::panic::panic_any("typed payload"),
                    || (),
                );
            });
        });
        let payload = caught.expect_err("stage must propagate the background panic");
        let s = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(s, "typed payload", "original payload survives the join");
    }

    #[test]
    fn overlap_capability_tracks_backend() {
        Universe::new(2).run(|comm| assert!(!comm.overlap_capable()));
        Universe::new(2).run_threads(|comm| assert!(comm.overlap_capable()));
    }
}
