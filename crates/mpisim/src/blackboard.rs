//! Zero-copy collective coordination ("blackboard").
//!
//! Ranks of one communicator deposit an `Arc` under a shared operation id
//! and receive everyone's deposits once all have arrived. Used for
//! *simulation-internal* rendezvous that is not network traffic: window
//! registration (exposing a buffer is not a transfer — the `get`s are) and
//! communicator splits.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Slot = Option<Arc<dyn Any + Send + Sync>>;

struct Entry {
    slots: Vec<Slot>,
    deposited: usize,
    read: usize,
}

#[derive(Default)]
pub(crate) struct Blackboard {
    entries: Mutex<HashMap<u64, Entry>>,
    cv: Condvar,
}

impl Blackboard {
    pub fn new() -> Self {
        Blackboard::default()
    }

    /// Collective all-exchange: rank `rank` of `n` deposits `value` under
    /// `opid`; returns all `n` deposits once complete. Every rank of the
    /// communicator must call with the same `opid` exactly once.
    pub fn exchange(
        &self,
        opid: u64,
        n: usize,
        rank: usize,
        value: Arc<dyn Any + Send + Sync>,
    ) -> Vec<Arc<dyn Any + Send + Sync>> {
        let mut entries = self.entries.lock();
        let entry = entries.entry(opid).or_insert_with(|| Entry {
            slots: vec![None; n],
            deposited: 0,
            read: 0,
        });
        assert!(entry.slots[rank].is_none(), "double deposit at op {opid}");
        entry.slots[rank] = Some(value);
        entry.deposited += 1;
        if entry.deposited == n {
            self.cv.notify_all();
        }
        loop {
            let entry = entries.get_mut(&opid).expect("entry vanished");
            if entry.deposited == n {
                let out: Vec<_> = entry
                    .slots
                    .iter()
                    .map(|s| s.as_ref().expect("deposited slot").clone())
                    .collect();
                entry.read += 1;
                if entry.read == n {
                    entries.remove(&opid);
                }
                return out;
            }
            self.cv.wait(&mut entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_exchange() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    let got = bb.exchange(1, 4, r, Arc::new(r * 10));
                    got.iter()
                        .map(|a| *a.clone().downcast::<usize>().unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn entry_cleaned_after_all_read() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    bb.exchange(9, 2, r, Arc::new(()));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(bb.entries.lock().is_empty(), "completed ops must not leak");
    }

    #[test]
    fn distinct_opids_are_independent() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    let op = (i / 2) as u64 + 100;
                    let rank = i % 2;
                    let got = bb.exchange(op, 2, rank, Arc::new(i));
                    got.len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    }
}
