//! Zero-copy collective coordination ("blackboard").
//!
//! Ranks of one communicator deposit an `Arc` under a shared operation id
//! and receive everyone's deposits once all have arrived. Used for
//! *simulation-internal* rendezvous that is not network traffic: window
//! registration (exposing a buffer is not a transfer — the `get`s are) and
//! communicator splits.

use crate::error::{raise, Primitive};
use crate::scheduler::{Scheduler, WaitSite};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

type Slot = Option<Arc<dyn Any + Send + Sync>>;

struct Entry {
    slots: Vec<Slot>,
    deposited: usize,
    read: usize,
}

#[derive(Default)]
pub(crate) struct Blackboard {
    entries: Mutex<HashMap<u64, Entry>>,
    cv: Condvar,
}

impl Blackboard {
    pub fn new() -> Self {
        Blackboard::default()
    }

    /// Collective all-exchange: rank `rank` of `n` deposits `value` under
    /// `opid`; returns all `n` deposits once complete. Every rank of the
    /// communicator must call with the same `opid` exactly once.
    ///
    /// Ranks that must wait for the remaining deposits park through
    /// [`Scheduler::park_until`]: the run permit goes back to `sched` while
    /// parked (and is reacquired lock-free on wake), so a serial universe's
    /// one runnable rank is always one that can still make progress — and a
    /// dead peer or expired watchdog unwinds the waiter with a typed
    /// [`CommError`](crate::CommError) instead of hanging it.
    pub fn exchange(
        &self,
        opid: u64,
        n: usize,
        rank: usize,
        value: Arc<dyn Any + Send + Sync>,
        sched: &Scheduler,
    ) -> Vec<Arc<dyn Any + Send + Sync>> {
        sched.check_healthy(Primitive::Exchange);
        {
            let mut entries = self.entries.lock();
            let entry = entries.entry(opid).or_insert_with(|| Entry {
                slots: vec![None; n],
                deposited: 0,
                read: 0,
            });
            assert!(entry.slots[rank].is_none(), "double deposit at op {opid}");
            entry.slots[rank] = Some(value);
            entry.deposited += 1;
            if entry.deposited == n {
                // Last depositor completes the op without yielding.
                self.cv.notify_all();
                return Self::take(&mut entries, opid, n);
            }
        }
        if let Err(e) = sched.park_until(&self.entries, &self.cv, WaitSite::exchange(opid), |e| {
            e.get(&opid)
                .map(|entry| entry.deposited == n)
                .unwrap_or(false)
        }) {
            raise(e);
        }
        let mut entries = self.entries.lock();
        Self::take(&mut entries, opid, n)
    }

    /// Read all slots of a completed entry and retire it once every rank
    /// has read. Caller must hold the entries lock and have checked
    /// completeness.
    fn take(
        entries: &mut HashMap<u64, Entry>,
        opid: u64,
        n: usize,
    ) -> Vec<Arc<dyn Any + Send + Sync>> {
        let entry = entries.get_mut(&opid).expect("entry vanished");
        let out: Vec<_> = entry
            .slots
            .iter()
            .map(|s| s.as_ref().expect("deposited slot").clone())
            .collect();
        entry.read += 1;
        if entry.read == n {
            entries.remove(&opid);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_exchange() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    let got = bb.exchange(1, 4, r, Arc::new(r * 10), &Scheduler::parallel(4, None));
                    got.iter()
                        .map(|a| *a.clone().downcast::<usize>().unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn entry_cleaned_after_all_read() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    bb.exchange(9, 2, r, Arc::new(()), &Scheduler::parallel(4, None));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(bb.entries.lock().is_empty(), "completed ops must not leak");
    }

    #[test]
    fn distinct_opids_are_independent() {
        let bb = Arc::new(Blackboard::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let bb = bb.clone();
                std::thread::spawn(move || {
                    let op = (i / 2) as u64 + 100;
                    let rank = i % 2;
                    let got = bb.exchange(op, 2, rank, Arc::new(i), &Scheduler::parallel(4, None));
                    got.len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    }
}
