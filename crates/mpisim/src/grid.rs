//! Process grids: the 2D `√P × √P` layout of sparse SUMMA and the
//! `√(P/c) × √(P/c) × c` layout of the 3D split algorithm.

use crate::backend::Comm;

/// A 2D process grid with row and column sub-communicators, generic over
/// the communicator backend.
///
/// Rank `r` sits at `(row, col) = (r / pc, r % pc)`; SUMMA broadcasts A
/// blocks along `row_comm` and B blocks along `col_comm`.
pub struct Grid2D<C: Comm> {
    pub pr: usize,
    pub pc: usize,
    pub myrow: usize,
    pub mycol: usize,
    pub row_comm: C,
    pub col_comm: C,
}

impl<C: Comm> Grid2D<C> {
    /// Build a `pr × pc` grid over `comm` (requires `pr·pc == comm.size()`).
    pub fn new(comm: &C, pr: usize, pc: usize) -> Grid2D<C> {
        assert_eq!(
            pr * pc,
            comm.size(),
            "grid {pr}x{pc} != {} ranks",
            comm.size()
        );
        let myrow = comm.rank() / pc;
        let mycol = comm.rank() % pc;
        let row_comm = comm.split(myrow, mycol); // peers in my row
        let col_comm = comm.split(pc + mycol, myrow); // peers in my column
        Grid2D {
            pr,
            pc,
            myrow,
            mycol,
            row_comm,
            col_comm,
        }
    }

    /// Square grid of `comm.size()` (must be a perfect square — the
    /// CombBLAS convention the paper follows).
    pub fn square(comm: &C) -> Grid2D<C> {
        let p = comm.size();
        let s = (p as f64).sqrt().round() as usize;
        assert_eq!(s * s, p, "{p} ranks is not a perfect square");
        Grid2D::new(comm, s, s)
    }

    /// Grid coordinates of a world rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.pc, rank % self.pc)
    }

    /// World rank at grid coordinates.
    pub fn rank_at(&self, row: usize, col: usize) -> usize {
        row * self.pc + col
    }
}

/// A 3D process grid: `c` layers, each a 2D `q × q` grid, plus "fiber"
/// communicators linking the same (row, col) position across layers.
/// Generic over the communicator backend like [`Grid2D`].
pub struct Grid3D<C: Comm> {
    pub q: usize,
    pub layers: usize,
    pub mylayer: usize,
    pub myrow: usize,
    pub mycol: usize,
    /// Communicator spanning this rank's layer (the grid's "world").
    pub layer_comm: C,
    /// 2D grid within this rank's layer.
    pub layer_grid: Grid2D<C>,
    /// Ranks sharing (row, col) across layers.
    pub fiber_comm: C,
}

impl<C: Comm> Grid3D<C> {
    /// Build `q × q × layers` over `comm` (requires `q²·layers ==
    /// comm.size()`). Layer-major rank order.
    pub fn new(comm: &C, q: usize, layers: usize) -> Grid3D<C> {
        assert_eq!(
            q * q * layers,
            comm.size(),
            "grid {q}x{q}x{layers} != {} ranks",
            comm.size()
        );
        let mylayer = comm.rank() / (q * q);
        let within = comm.rank() % (q * q);
        let myrow = within / q;
        let mycol = within % q;
        let layer_comm = comm.split(mylayer, within);
        let layer_grid = Grid2D::new(&layer_comm, q, q);
        let fiber_comm = comm.split(comm.size() + within, mylayer);
        Grid3D {
            q,
            layers,
            mylayer,
            myrow,
            mycol,
            layer_comm,
            layer_grid,
            fiber_comm,
        }
    }
}

/// Valid layer counts for a 3D grid over `p` ranks: `c` such that `p/c` is
/// a perfect square (the paper sweeps these and reports the best).
/// Free-standing (not an associated function) so callers need not name a
/// backend type parameter.
pub fn valid_layer_counts(p: usize) -> Vec<usize> {
    (1..=p)
        .filter(|c| {
            p.is_multiple_of(*c) && {
                let q2 = p / c;
                let q = (q2 as f64).sqrt().round() as usize;
                q * q == q2
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn grid2d_coordinates_and_subcomms() {
        let u = Universe::new(6);
        let got = u.run(|comm| {
            let g = Grid2D::new(comm, 2, 3);
            // row_comm sums my column index across my row; col_comm my row.
            let row_sum = g.row_comm.allreduce(g.mycol as u64, |a, b| a + b);
            let col_sum = g.col_comm.allreduce(g.myrow as u64, |a, b| a + b);
            (g.myrow, g.mycol, row_sum, col_sum)
        });
        for (r, &(row, col, row_sum, col_sum)) in got.iter().enumerate() {
            assert_eq!(row, r / 3);
            assert_eq!(col, r % 3);
            assert_eq!(row_sum, 3); // 0+1+2
            assert_eq!(col_sum, 1); // 0+1
        }
    }

    #[test]
    fn grid2d_square_asserts() {
        let u = Universe::new(4);
        let got = u.run(|comm| {
            let g = Grid2D::square(comm);
            (g.pr, g.pc, g.rank_at(g.myrow, g.mycol))
        });
        for (r, &(pr, pc, me)) in got.iter().enumerate() {
            assert_eq!((pr, pc), (2, 2));
            assert_eq!(me, r);
        }
    }

    #[test]
    fn grid3d_structure() {
        let u = Universe::new(8); // 2x2x2
        let got = u.run(|comm| {
            let g = Grid3D::new(comm, 2, 2);
            let fiber_sum = g.fiber_comm.allreduce(g.mylayer as u64, |a, b| a + b);
            (g.mylayer, g.myrow, g.mycol, fiber_sum, g.fiber_comm.size())
        });
        for (r, &(layer, row, col, fsum, fsize)) in got.iter().enumerate() {
            assert_eq!(layer, r / 4);
            assert_eq!(row, (r % 4) / 2);
            assert_eq!(col, r % 2);
            assert_eq!(fsum, 1); // layers 0+1
            assert_eq!(fsize, 2);
        }
    }

    #[test]
    fn layer_count_enumeration() {
        assert_eq!(valid_layer_counts(16), vec![1, 4, 16]);
        assert_eq!(valid_layer_counts(36), vec![1, 4, 9, 36]);
        assert_eq!(valid_layer_counts(8), vec![2, 8]);
    }
}
