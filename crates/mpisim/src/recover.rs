//! Recoverable jobs: turn typed rank failures into completed runs.
//!
//! PR 6 made failure a *value* ([`RankOutcome`]) and the procs backend made
//! it *real* (a SIGKILLable OS process) — but `try_run*` still ends the job
//! at the first failure. This module closes the detect→recover gap:
//! [`Universe::run_recoverable`] re-runs a [`RecoverableJob`] after a failed
//! attempt, tearing the whole rank set down first (every `try_run*` entry
//! point already joins **all** rank threads / reaps all child processes, so
//! teardown is inherent) and respawning it fresh — re-forked processes under
//! [`Backend::Procs`], re-launched rank threads under `Sim`/`Threads`.
//!
//! Restarts are governed by a [`RetryPolicy`]: at most `max_restarts`
//! re-entries, separated by bounded exponential backoff. The same policy
//! shape also drives the transport-level retry on the ProcComm bootstrap
//! dial/accept path ([`RetryPolicy::transport`]), where a transient
//! `ECONNREFUSED`/`EINTR` during mesh formation previously had no second
//! chance.
//!
//! The job sees its attempt number, which is how checkpoint/restart
//! composes: attempt 0 starts fresh (or from a prior run's store), attempt
//! `n+1` re-enters and resumes from whatever the last attempt checkpointed
//! (see `sa_dist`'s `CheckpointStore`). A [`RecoveryReport`] records every
//! attempt's per-rank failures, so "it recovered" is auditable, not silent.
//!
//! Zero-fault runs pay nothing: attempt 0 is exactly one
//! [`Universe::try_run_backend`] call, byte-identical to `try_run` on the
//! conformance surface.

use crate::backend::Backend;
use crate::error::{RankError, RankOutcome};
use crate::universe::{RankJob, Universe};
use crate::wire::Wire;
use crate::Comm;
use std::time::Duration;

/// How many times to re-enter a failed job, and how long to wait between
/// re-entries. Backoff is bounded exponential: restart `k` sleeps
/// `backoff · 2^k`, capped at `max_backoff`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of *restarts* (re-entries after the first attempt).
    /// `0` means one attempt, no recovery — the `try_run` semantics.
    pub max_restarts: u32,
    /// Base backoff before the first restart.
    pub backoff: Duration,
    /// Cap on the exponentially growing backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// `max_restarts` re-entries with the given base backoff and a 1 s cap.
    pub fn new(max_restarts: u32, backoff: Duration) -> RetryPolicy {
        RetryPolicy {
            max_restarts,
            backoff,
            max_backoff: Duration::from_secs(1),
        }
    }

    /// One attempt, no recovery.
    pub fn no_restarts() -> RetryPolicy {
        RetryPolicy::new(0, Duration::ZERO)
    }

    /// Override the backoff cap.
    pub fn with_max_backoff(mut self, cap: Duration) -> RetryPolicy {
        self.max_backoff = cap;
        self
    }

    /// The policy from the environment: `SA_MAX_RESTARTS` sets
    /// `max_restarts` (unset = 2; unparsable = 2, **logged**, so a typo'd
    /// knob never silently reverts to the default), with a 10 ms base
    /// backoff. `SA_MAX_RESTARTS=0` disables recovery.
    pub fn from_env() -> RetryPolicy {
        let max_restarts = parse_max_restarts(std::env::var("SA_MAX_RESTARTS").ok().as_deref());
        RetryPolicy::new(max_restarts, Duration::from_millis(10))
    }

    /// The transport preset used on the ProcComm mesh-bootstrap path: a
    /// freshly forked sibling may not have bound its listener yet, so dials
    /// retry through transient `ECONNREFUSED`/`EINTR` with short backoff
    /// (8 retries, 2 ms base, 200 ms cap) instead of failing the bootstrap
    /// on the first refused connection.
    pub fn transport() -> RetryPolicy {
        RetryPolicy::new(8, Duration::from_millis(2)).with_max_backoff(Duration::from_millis(200))
    }

    /// The sleep before restart number `restart` (0-based): bounded
    /// exponential, `backoff · 2^restart` capped at `max_backoff`.
    pub fn backoff_for(&self, restart: u32) -> Duration {
        self.backoff
            .saturating_mul(1u32.checked_shl(restart.min(20)).unwrap_or(u32::MAX))
            .min(self.max_backoff)
    }
}

/// Parse an `SA_MAX_RESTARTS` value. Unset → the default (2); a value
/// that does not parse as a `u32` also falls back, but *logs the rejected
/// value* — separated from [`RetryPolicy::from_env`] so the rejection
/// path is unit-testable without touching the process-global environment.
fn parse_max_restarts(raw: Option<&str>) -> u32 {
    const DEFAULT: u32 = 2;
    match raw {
        None => DEFAULT,
        Some(raw) => raw.trim().parse().unwrap_or_else(|_| {
            eprintln!(
                "sa-mpisim: ignoring unparseable SA_MAX_RESTARTS={raw:?} (want a u32); \
                 using default {DEFAULT}"
            );
            DEFAULT
        }),
    }
}

impl Default for RetryPolicy {
    /// The [`RetryPolicy::from_env`] defaults without consulting the
    /// environment: 2 restarts, 10 ms base backoff, 1 s cap.
    fn default() -> RetryPolicy {
        RetryPolicy::new(2, Duration::from_millis(10))
    }
}

/// The per-rank failures of one failed attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct AttemptFailure {
    /// Which attempt failed (0-based).
    pub attempt: u32,
    /// `(rank, error)` for every rank that did not return `Ok`.
    pub failures: Vec<(usize, RankError)>,
}

/// What [`Universe::run_recoverable`] did: how many attempts ran, how many
/// restarts that took, whether the final attempt succeeded, and every
/// failed attempt's per-rank errors (in attempt order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Total attempts executed (≥ 1).
    pub attempts: u32,
    /// Restarts performed (= `attempts - 1`).
    pub restarts: u32,
    /// `true` iff the final attempt returned `Ok` on every rank.
    pub recovered: bool,
    /// One entry per *failed* attempt, so a recovered run keeps the
    /// forensic record of what it recovered from.
    pub history: Vec<AttemptFailure>,
}

/// A backend-generic rank body that can be re-entered: like [`RankJob`],
/// but the body also receives the attempt number, which is what lets it
/// resume from a checkpoint instead of starting over (and lets a fault
/// plan arm itself for one attempt only — see
/// [`FaultPlan::for_attempt`](crate::FaultPlan::for_attempt)).
pub trait RecoverableJob: Sync {
    /// Per-rank result type (crosses a process boundary under procs).
    type Out: Wire + Send;
    /// The rank body. `attempt` is 0 on the first entry and increments on
    /// every restart.
    fn run<C: Comm>(&self, comm: &C, attempt: u32) -> Self::Out;
}

/// Adapter: one attempt of a [`RecoverableJob`] is a plain [`RankJob`].
/// The attempt number is ordinary captured data — under procs the fork
/// snapshots the parent's memory, so every re-forked child sees the right
/// attempt without any cross-process coordination.
struct AttemptJob<'a, J> {
    job: &'a J,
    attempt: u32,
}

impl<J: RecoverableJob> RankJob for AttemptJob<'_, J> {
    type Out = J::Out;
    fn run<C: Comm>(&self, comm: &C) -> J::Out {
        self.job.run(comm, self.attempt)
    }
}

impl Universe {
    /// Run `job` on `backend`, restarting the **entire rank set** after a
    /// failed attempt — up to `policy.max_restarts` times, with bounded
    /// exponential backoff between attempts.
    ///
    /// Teardown is complete before every restart: `try_run_backend` joins
    /// all rank threads (in-process) or reaps all child processes (procs),
    /// so a restart re-launches every rank from scratch — re-forked
    /// processes under [`Backend::Procs`], fresh `sa-rank-{r}` threads
    /// under `Sim`/`Threads` — with fresh communicators, windows, and
    /// `CommStats`. Cross-attempt state lives only where the job put it
    /// (its checkpoint store), which is what makes a recovered run's
    /// post-restart segment bit-identical to a fault-free run resumed from
    /// the same checkpoint.
    ///
    /// A zero-fault run executes exactly one `try_run_backend` call —
    /// byte-identical outcomes to [`Universe::try_run`] by construction.
    ///
    /// ```
    /// use sa_mpisim::{Backend, Comm, RecoverableJob, RetryPolicy, Universe};
    /// use std::time::Duration;
    ///
    /// /// Dies on its first attempt, succeeds when re-entered.
    /// struct FlakySum;
    /// impl RecoverableJob for FlakySum {
    ///     type Out = u64;
    ///     fn run<C: Comm>(&self, comm: &C, attempt: u32) -> u64 {
    ///         if attempt == 0 && comm.rank() == 1 {
    ///             panic!("injected fault: attempt 0 dies");
    ///         }
    ///         comm.allreduce(comm.rank() as u64, |a, b| a + b)
    ///     }
    /// }
    ///
    /// let u = Universe::new(3);
    /// let policy = RetryPolicy::new(2, Duration::from_millis(1));
    /// let (out, report) = u.run_recoverable(Backend::Sim, &policy, &FlakySum);
    /// assert_eq!(out.len(), 3);
    /// assert!(out.iter().all(|o| o.as_ref() == Ok(&3)));
    /// assert!(report.recovered);
    /// assert_eq!(report.restarts, 1);
    /// // the failed attempt stays on record
    /// assert_eq!(report.history[0].failures.len(), 3);
    /// ```
    pub fn run_recoverable<J: RecoverableJob>(
        &self,
        backend: Backend,
        policy: &RetryPolicy,
        job: &J,
    ) -> (Vec<RankOutcome<J::Out>>, RecoveryReport) {
        let mut history = Vec::new();
        let mut attempt = 0u32;
        loop {
            let out = self.try_run_backend(backend, &AttemptJob { job, attempt });
            let failures: Vec<(usize, RankError)> = out
                .iter()
                .enumerate()
                .filter_map(|(r, o)| o.as_ref().err().map(|e| (r, e.clone())))
                .collect();
            let recovered = failures.is_empty();
            if !recovered {
                history.push(AttemptFailure { attempt, failures });
            }
            if recovered || attempt >= policy.max_restarts {
                let report = RecoveryReport {
                    attempts: attempt + 1,
                    restarts: attempt,
                    recovered,
                    history,
                };
                return (out, report);
            }
            std::thread::sleep(policy.backoff_for(attempt));
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CommError;

    fn quiet_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let p = info.payload();
                let expected = p.downcast_ref::<CommError>().is_some()
                    || p.downcast_ref::<String>()
                        .is_some_and(|s| s.contains("injected fault"))
                    || p.downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("injected fault"));
                if !expected {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::new(10, Duration::from_millis(2))
            .with_max_backoff(Duration::from_millis(9));
        assert_eq!(p.backoff_for(0), Duration::from_millis(2));
        assert_eq!(p.backoff_for(1), Duration::from_millis(4));
        assert_eq!(p.backoff_for(2), Duration::from_millis(8));
        assert_eq!(p.backoff_for(3), Duration::from_millis(9)); // capped
        assert_eq!(p.backoff_for(40), Duration::from_millis(9)); // no overflow
        assert_eq!(RetryPolicy::no_restarts().backoff_for(0), Duration::ZERO);
    }

    #[test]
    fn zero_fault_job_runs_exactly_once() {
        struct CountingSum(std::sync::atomic::AtomicU32);
        impl RecoverableJob for CountingSum {
            type Out = u64;
            fn run<C: Comm>(&self, comm: &C, attempt: u32) -> u64 {
                assert_eq!(attempt, 0);
                if comm.rank() == 0 {
                    self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
                comm.allreduce(1u64, |a, b| a + b)
            }
        }
        let job = CountingSum(std::sync::atomic::AtomicU32::new(0));
        let u = Universe::new(4);
        let (out, report) = u.run_recoverable(Backend::Sim, &RetryPolicy::default(), &job);
        assert!(out.iter().all(|o| o.as_ref() == Ok(&4)));
        assert_eq!(report.attempts, 1);
        assert_eq!(report.restarts, 0);
        assert!(report.recovered && report.history.is_empty());
        assert_eq!(job.0.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_attempts_are_bounded_by_policy() {
        quiet_injected_panics();
        struct AlwaysDies;
        impl RecoverableJob for AlwaysDies {
            type Out = u64;
            fn run<C: Comm>(&self, comm: &C, _attempt: u32) -> u64 {
                if comm.rank() == 1 {
                    panic!("injected fault: permanent");
                }
                comm.barrier();
                0
            }
        }
        let u = Universe::new(3);
        let policy = RetryPolicy::new(2, Duration::from_millis(1));
        let (out, report) = u.run_recoverable(Backend::Sim, &policy, &AlwaysDies);
        assert!(out.iter().all(|o| o.is_err()));
        assert!(!report.recovered);
        assert_eq!(report.attempts, 3); // 1 try + 2 restarts
        assert_eq!(report.restarts, 2);
        assert_eq!(report.history.len(), 3);
        for (i, h) in report.history.iter().enumerate() {
            assert_eq!(h.attempt, i as u32);
            assert!(h.failures.iter().any(|(r, _)| *r == 1));
        }
    }

    #[test]
    fn recovery_works_on_threads_backend_too() {
        quiet_injected_panics();
        struct FlakyOnce;
        impl RecoverableJob for FlakyOnce {
            type Out = u64;
            fn run<C: Comm>(&self, comm: &C, attempt: u32) -> u64 {
                if attempt == 0 && comm.rank() == 2 {
                    panic!("injected fault: attempt 0 dies");
                }
                comm.allreduce(comm.rank() as u64, |a, b| a + b)
            }
        }
        let u = Universe::new(4);
        let policy = RetryPolicy::new(1, Duration::from_millis(1));
        let (out, report) = u.run_recoverable(Backend::Threads, &policy, &FlakyOnce);
        assert!(out.iter().all(|o| o.as_ref() == Ok(&6)));
        assert!(report.recovered);
        assert_eq!(report.restarts, 1);
    }

    #[test]
    fn env_policy_defaults_are_sane() {
        // Parsing only — the env var is process-global, so don't set it here.
        let p = RetryPolicy::from_env();
        assert!(p.max_restarts <= 10_000, "default must be small: {p:?}");
        assert!(p.backoff <= p.max_backoff);
    }

    #[test]
    fn max_restarts_parsing_accepts_and_rejects_explicitly() {
        // The pure parser, so no process-global env mutation is needed.
        assert_eq!(parse_max_restarts(None), 2);
        assert_eq!(parse_max_restarts(Some("0")), 0);
        assert_eq!(parse_max_restarts(Some(" 7 ")), 7);
        // Rejections fall back to the default (and log — not asserted here).
        assert_eq!(parse_max_restarts(Some("")), 2);
        assert_eq!(parse_max_restarts(Some("three")), 2);
        assert_eq!(parse_max_restarts(Some("-1")), 2);
        assert_eq!(parse_max_restarts(Some("4294967296")), 2); // > u32::MAX
    }
}
