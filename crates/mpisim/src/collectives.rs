//! MPI-style collectives, built on the two-sided transport so every byte is
//! metered. Linear algorithms (root-relays) — the volume they account is the
//! natural communication volume of the operation, which is what the paper's
//! analysis uses.

use crate::comm::Comm;

/// Internal tag namespace for collectives: high bit set, op id in the middle,
/// op kind in the low byte. User tags must stay below 2^48.
fn tag(op: u64, kind: u64) -> u64 {
    (1 << 63) | (op << 8) | kind
}

const K_BCAST: u64 = 1;
const K_GATHER: u64 = 2;
const K_SCATTER: u64 = 3;
const K_ALLTOALL: u64 = 4;
const K_REDUCE: u64 = 5;

impl Comm {
    /// Broadcast `data` from `root` to every rank; all ranks return the
    /// payload. Non-roots pass `None`.
    pub fn bcast_vec<T: Clone + Send + 'static>(
        &self,
        root: usize,
        data: Option<Vec<T>>,
    ) -> Vec<T> {
        let op = self.next_op();
        let t = tag(op, K_BCAST);
        if self.rank() == root {
            let data = data.expect("root must supply bcast data");
            for dst in 0..self.size() {
                if dst != root {
                    self.send_vec(dst, t, data.clone());
                }
            }
            data
        } else {
            self.recv_vec(root, t)
        }
    }

    /// Gather each rank's vector at `root`; returns `Some(per-rank vectors)`
    /// on the root, `None` elsewhere.
    pub fn gatherv<T: Send + 'static>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        let op = self.next_op();
        let t = tag(op, K_GATHER);
        if self.rank() == root {
            let mut out: Vec<Option<Vec<T>>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(data);
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = Some(self.recv_vec(src, t));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send_vec(root, t, data);
            None
        }
    }

    /// Scatter per-destination vectors from `root`; every rank returns its
    /// piece. Non-roots pass `None`.
    pub fn scatterv<T: Send + 'static>(&self, root: usize, data: Option<Vec<Vec<T>>>) -> Vec<T> {
        let op = self.next_op();
        let t = tag(op, K_SCATTER);
        if self.rank() == root {
            let mut data = data.expect("root must supply scatter data");
            assert_eq!(data.len(), self.size());
            let mine = std::mem::take(&mut data[root]);
            for (dst, part) in data.into_iter().enumerate() {
                if dst != root {
                    self.send_vec(dst, t, part);
                }
            }
            mine
        } else {
            self.recv_vec(root, t)
        }
    }

    /// All ranks receive every rank's vector (gather + bcast volume).
    pub fn allgatherv<T: Clone + Send + 'static>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        // gather to 0, then broadcast lengths+flat data
        let gathered = self.gatherv(0, data);
        let (flat, lens) = if self.rank() == 0 {
            let parts = gathered.unwrap();
            let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
            let mut flat = Vec::with_capacity(lens.iter().sum());
            for p in parts {
                flat.extend(p);
            }
            (Some(flat), Some(lens))
        } else {
            (None, None)
        };
        let lens = self.bcast_vec(0, lens);
        let flat = self.bcast_vec(0, flat);
        let mut out = Vec::with_capacity(lens.len());
        let mut off = 0usize;
        for l in lens {
            out.push(flat[off..off + l].to_vec());
            off += l;
        }
        out
    }

    /// Personalized all-to-all: `sends[d]` goes to rank `d`; returns what
    /// each source sent here.
    pub fn alltoallv<T: Send + 'static>(&self, mut sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        assert_eq!(sends.len(), self.size());
        let op = self.next_op();
        let t = tag(op, K_ALLTOALL);
        let mine = std::mem::take(&mut sends[self.rank()]);
        for (dst, part) in sends.into_iter().enumerate() {
            if dst != self.rank() {
                self.send_vec(dst, t, part);
            }
        }
        let mut out: Vec<Vec<T>> = Vec::with_capacity(self.size());
        let mut mine = Some(mine); // self-delivery: no network traffic
        for src in 0..self.size() {
            if src == self.rank() {
                out.push(mine.take().unwrap());
            } else {
                out.push(self.recv_vec(src, t));
            }
        }
        out
    }

    /// Reduce single values to `root` with `op_fn`; `Some` on root only.
    pub fn reduce<T: Send + 'static>(
        &self,
        root: usize,
        value: T,
        op_fn: impl Fn(T, T) -> T,
    ) -> Option<T> {
        let op = self.next_op();
        let t = tag(op, K_REDUCE);
        if self.rank() == root {
            let mut acc = value;
            for src in 0..self.size() {
                if src != root {
                    let v = self.recv_vec::<T>(src, t).pop().unwrap();
                    acc = op_fn(acc, v);
                }
            }
            Some(acc)
        } else {
            self.send_vec(root, t, vec![value]);
            None
        }
    }

    /// All-reduce single values (reduce at 0, then broadcast).
    pub fn allreduce<T: Clone + Send + 'static>(&self, value: T, op_fn: impl Fn(T, T) -> T) -> T {
        let reduced = self.reduce(0, value, op_fn);
        self.bcast_vec(0, reduced.map(|v| vec![v])).pop().unwrap()
    }

    /// Elementwise all-reduce of equal-length vectors.
    pub fn allreduce_vec<T: Clone + Send + 'static>(
        &self,
        value: Vec<T>,
        op_fn: impl Fn(&T, &T) -> T,
    ) -> Vec<T> {
        let reduced = self.reduce(0, value, |a, b| {
            a.iter().zip(b.iter()).map(|(x, y)| op_fn(x, y)).collect()
        });
        self.bcast_vec(0, reduced)
    }

    /// Exclusive prefix "scan" of a single u64 (rank 0 gets 0) plus the
    /// global total — the common "compute my offset" idiom.
    pub fn exscan_sum(&self, value: u64) -> (u64, u64) {
        let all = self.allgatherv(vec![value]);
        let mut prefix = 0u64;
        for (r, v) in all.iter().enumerate() {
            if r == self.rank() {
                break;
            }
            prefix += v[0];
        }
        let total = all.iter().map(|v| v[0]).sum();
        (prefix, total)
    }
}
