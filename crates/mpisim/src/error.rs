//! Typed failure surface of the runtime.
//!
//! A distributed job fails as a *job*, not as a single thread: when one rank
//! dies, every peer that is parked in a blocking primitive (a receive, a
//! barrier, a collective rendezvous) would otherwise wait forever for a
//! message that can no longer arrive. The runtime therefore **poisons** the
//! job on the first rank failure (see [`crate::scheduler`]): every parked
//! rank wakes and unwinds with a [`CommError::PeerFailed`] naming the victim,
//! and [`Universe::try_run`](crate::Universe::try_run) collects one
//! [`RankOutcome`] per rank instead of hanging.
//!
//! The same machinery backs the watchdog: when `SA_WATCHDOG_SECS` arms a
//! deadline, a rank that stays parked past it fails with
//! [`CommError::Timeout`] (after dumping a who-waits-on-whom diagnostic) and
//! poisons the job so its peers terminate too.

use std::time::Duration;

/// The blocking primitive a failure was observed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Primitive {
    /// A two-sided receive ([`Comm::recv_vec`](crate::Comm::recv_vec) or a
    /// provided collective built on it).
    Recv,
    /// [`Comm::barrier`](crate::Comm::barrier).
    Barrier,
    /// The zero-copy rendezvous behind window exposure and communicator
    /// splits ([`Comm::exchange_arcs`](crate::Comm::exchange_arcs)).
    Exchange,
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Primitive::Recv => "recv",
            Primitive::Barrier => "barrier",
            Primitive::Exchange => "exchange",
        })
    }
}

/// Why a blocking communication call could not complete.
///
/// Blocking primitives raise these by unwinding the rank thread with the
/// error as the panic payload (`std::panic::panic_any`) — algorithm code
/// written against [`Comm`](crate::Comm) stays `Result`-free, and
/// [`Universe::try_run`](crate::Universe::try_run) turns the payload back
/// into a typed [`RankOutcome`] at the join point.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// A peer rank died (panic or injected abort) while this rank was in —
    /// or about to enter — `primitive`. `rank` is the *first* failed rank of
    /// the job (the poison is first-writer-wins, so cascading secondary
    /// failures all name the original victim).
    ///
    /// On the `procs` backend this is also how every *transport-level*
    /// detection surfaces: a socket EOF (peer process exited), an abort
    /// broadcast, a CRC-corrupt frame on a clean (un-injected) link, missed
    /// heartbeats past `SA_HEARTBEAT_SECS`, and retransmit exhaustion under
    /// an injected lossy plan all poison the job naming the peer — the
    /// failure is always typed, never a silent wrong answer.
    PeerFailed { rank: usize, primitive: Primitive },
    /// The watchdog deadline expired while this rank was parked in
    /// `primitive` for `waited`.
    Timeout {
        primitive: Primitive,
        waited: Duration,
    },
    /// The job was already poisoned by this very rank (it was named the
    /// victim and yet issued another communication call — possible when user
    /// code catches the original unwind). No progress is possible.
    Poisoned,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerFailed { rank, primitive } => {
                write!(
                    f,
                    "peer rank {rank} failed while this rank was in {primitive}"
                )
            }
            CommError::Timeout { primitive, waited } => write!(
                f,
                "watchdog: blocked in {primitive} for {:.3}s past the deadline",
                waited.as_secs_f64()
            ),
            CommError::Poisoned => write!(f, "job already poisoned by this rank"),
        }
    }
}

impl std::error::Error for CommError {}

/// Raise a [`CommError`] out of a blocking primitive by unwinding the rank
/// thread with the typed error as the panic payload.
pub(crate) fn raise(err: CommError) -> ! {
    std::panic::panic_any(err)
}

/// Why one rank of a [`Universe`](crate::Universe) job failed.
#[derive(Clone, Debug, PartialEq)]
pub enum RankError {
    /// The rank unwound out of a blocking primitive with a typed
    /// communication failure.
    Comm(CommError),
    /// The rank panicked in user or library code; `summary` is the payload
    /// rendered to text (`String`/`&str` payloads verbatim, anything else a
    /// placeholder).
    Panic { summary: String },
}

impl RankError {
    /// Classify a joined thread's panic payload. Consumes the payload; the
    /// panicking `Universe::run` path keeps the raw payload instead so it
    /// can `resume_unwind` with the original.
    pub(crate) fn from_payload(payload: &(dyn std::any::Any + Send)) -> RankError {
        if let Some(err) = payload.downcast_ref::<CommError>() {
            return RankError::Comm(err.clone());
        }
        let summary = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        RankError::Panic { summary }
    }

    /// The typed communication error, if that is what felled this rank.
    pub fn as_comm(&self) -> Option<&CommError> {
        match self {
            RankError::Comm(e) => Some(e),
            RankError::Panic { .. } => None,
        }
    }
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankError::Comm(e) => write!(f, "{e}"),
            RankError::Panic { summary } => write!(f, "panicked: {summary}"),
        }
    }
}

impl std::error::Error for RankError {}

/// What one rank of a job produced: its closure's return value, or the
/// typed reason it failed. See
/// [`Universe::try_run`](crate::Universe::try_run).
pub type RankOutcome<R> = Result<R, RankError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_classification() {
        let comm: Box<dyn std::any::Any + Send> = Box::new(CommError::Poisoned);
        assert_eq!(
            RankError::from_payload(comm.as_ref()),
            RankError::Comm(CommError::Poisoned)
        );
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(
            RankError::from_payload(s.as_ref()),
            RankError::Panic {
                summary: "boom".into()
            }
        );
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("ouch"));
        assert!(matches!(
            RankError::from_payload(owned.as_ref()),
            RankError::Panic { summary } if summary == "ouch"
        ));
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert!(matches!(
            RankError::from_payload(opaque.as_ref()),
            RankError::Panic { .. }
        ));
    }

    #[test]
    fn errors_render_usefully() {
        let e = CommError::PeerFailed {
            rank: 3,
            primitive: Primitive::Barrier,
        };
        assert_eq!(
            e.to_string(),
            "peer rank 3 failed while this rank was in barrier"
        );
        let t = CommError::Timeout {
            primitive: Primitive::Recv,
            waited: Duration::from_millis(1500),
        };
        assert!(t.to_string().contains("recv"), "{t}");
        assert!(t.to_string().contains("1.500"), "{t}");
        assert!(RankError::Comm(CommError::Poisoned).as_comm().is_some());
    }
}
