//! Hockney α–β network cost model.
//!
//! Converts metered traffic into network time: `T = α·msgs + bytes/β`.
//! On one shared-memory machine the *measured* copy time underweights
//! latency relative to a dragonfly network; applying this model to the exact
//! per-rank counters recovers the figure shapes (e.g. Figure 6's message-
//! count effect) that depend on the network's α being ~10³× a memcpy's.

/// α–β network parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message latency, seconds.
    pub alpha_s: f64,
    /// Bandwidth, bytes/second.
    pub beta_bytes_per_s: f64,
}

impl CostModel {
    /// Slingshot-11-like constants (the paper's Perlmutter network):
    /// ~2 µs end-to-end latency, ~25 GB/s injection bandwidth per NIC.
    pub fn slingshot() -> Self {
        CostModel {
            alpha_s: 2e-6,
            beta_bytes_per_s: 25e9,
        }
    }

    /// A slower commodity cluster (for sensitivity studies).
    pub fn commodity() -> Self {
        CostModel {
            alpha_s: 20e-6,
            beta_bytes_per_s: 5e9,
        }
    }

    /// Modeled seconds for `msgs` messages carrying `bytes` total.
    pub fn time_s(&self, msgs: u64, bytes: u64) -> f64 {
        self.alpha_s * msgs as f64 + bytes as f64 / self.beta_bytes_per_s
    }

    /// Modeled time of a [`crate::CommStats`] snapshot's injected traffic.
    pub fn time_of(&self, stats: crate::CommStats) -> f64 {
        self.time_s(stats.injected_msgs(), stats.injected_bytes())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::slingshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let m = CostModel::slingshot();
        // 10k tiny messages vs 1 big one of the same total volume
        let many = m.time_s(10_000, 10_000 * 8);
        let one = m.time_s(1, 10_000 * 8);
        assert!(
            many > 100.0 * one,
            "fine-grained messaging must be penalized"
        );
    }

    #[test]
    fn bandwidth_term_scales() {
        let m = CostModel::slingshot();
        let t1 = m.time_s(1, 25_000_000_000);
        assert!((t1 - (2e-6 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_zero_time() {
        assert_eq!(CostModel::default().time_s(0, 0), 0.0);
    }
}
